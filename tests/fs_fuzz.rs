//! Model-based fuzzing of Clusterfile: a long random sequence of writes,
//! reads, relayouts and collective writes against a shadow byte model of
//! the file. Any divergence between the file system and the model is a
//! correctness bug in mapping, projection, gather/scatter or planning.

use arraydist::dist::{ArrayDistribution, DimDist};
use arraydist::grid::ProcGrid;
use arraydist::matrix::MatrixLayout;
use clusterfile::{relayout, Clusterfile, ClusterfileConfig, WritePolicy};
use falls::testing::Gen;
use parafile::{Mapper, Partition};

const N: u64 = 24; // 24×24 byte matrix
const COMPUTES: usize = 4;

fn random_physical(rng: &mut Gen) -> Partition {
    match rng.below(4) {
        0 => MatrixLayout::RowBlocks.partition(N, N, 1, 4),
        1 => MatrixLayout::ColumnBlocks.partition(N, N, 1, 4),
        2 => MatrixLayout::SquareBlocks.partition(N, N, 1, 4),
        _ => ArrayDistribution::new(
            vec![N, N],
            1,
            vec![DimDist::BlockCyclic(3), DimDist::Collapsed],
            ProcGrid::new(vec![4, 1]),
        )
        .partition(0),
    }
}

fn random_logical(rng: &mut Gen) -> Partition {
    match rng.below(3) {
        0 => MatrixLayout::RowBlocks.partition(N, N, 1, COMPUTES as u64),
        1 => MatrixLayout::ColumnBlocks.partition(N, N, 1, COMPUTES as u64),
        _ => ArrayDistribution::new(
            vec![N, N],
            1,
            vec![DimDist::Cyclic, DimDist::Collapsed],
            ProcGrid::new(vec![COMPUTES as u64, 1]),
        )
        .partition(0),
    }
}

fn run_fuzz(seed: u64, steps: usize) {
    let mut rng = Gen::new(seed);
    let file_len = N * N;
    let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
    let file = fs.create_file(random_physical(&mut rng), file_len);
    let mut model = vec![0u8; file_len as usize];
    let mut logical = random_logical(&mut rng);
    let mut views_set = [false; COMPUTES];

    for step in 0..steps {
        match rng.below(10) {
            // Re-view a compute node (possibly with a new logical layout).
            0 => {
                if rng.chance(2, 5) {
                    logical = random_logical(&mut rng);
                    views_set = [false; COMPUTES];
                }
                let c = rng.below(COMPUTES as u64) as usize;
                fs.set_view(c, file, &logical, c);
                views_set[c] = true;
            }
            // Relayout the file (views become stale).
            1 => {
                let new_phys = random_physical(&mut rng);
                relayout(&mut fs, file, new_phys);
                views_set = [false; COMPUTES];
            }
            // Collective full write (needs no views).
            2 => {
                let data: Vec<Vec<u8>> = (0..COMPUTES)
                    .map(|c| {
                        let m = Mapper::new(&logical, c);
                        let len = logical.element_len(c, file_len).unwrap();
                        (0..len)
                            .map(|y| {
                                let x = m.unmap(y);
                                let v = rng.next_u64() as u8;
                                model[x as usize] = v;
                                v
                            })
                            .collect()
                    })
                    .collect();
                fs.collective_write(file, &logical, &data);
            }
            // Partial view write.
            3..=6 => {
                let c = rng.below(COMPUTES as u64) as usize;
                if !views_set[c] {
                    fs.set_view(c, file, &logical, c);
                    views_set[c] = true;
                }
                let m = Mapper::new(&logical, c);
                let len = logical.element_len(c, file_len).unwrap();
                let lo = rng.range(0, len - 1);
                let hi = rng.range(lo, len - 1);
                let data: Vec<u8> = (lo..=hi)
                    .map(|y| {
                        let x = m.unmap(y);
                        let v = rng.next_u64() as u8;
                        model[x as usize] = v;
                        v
                    })
                    .collect();
                fs.write(c, file, lo, hi, &data);
            }
            // Partial view read, checked against the model.
            _ => {
                let c = rng.below(COMPUTES as u64) as usize;
                if !views_set[c] {
                    fs.set_view(c, file, &logical, c);
                    views_set[c] = true;
                }
                let m = Mapper::new(&logical, c);
                let len = logical.element_len(c, file_len).unwrap();
                let lo = rng.range(0, len - 1);
                let hi = rng.range(lo, len - 1);
                let back = fs.read(c, file, lo, hi);
                for (i, &b) in back.iter().enumerate() {
                    let x = m.unmap(lo + i as u64);
                    assert_eq!(
                        b,
                        model[x as usize],
                        "seed {seed} step {step}: compute {c} view offset {} (file {x})",
                        lo + i as u64
                    );
                }
            }
        }
        // Full-file consistency every few steps.
        if step % 7 == 0 {
            assert_eq!(fs.file_contents(file), model, "seed {seed} step {step}");
        }
    }
    assert_eq!(fs.file_contents(file), model, "seed {seed} final");
}

#[test]
fn fuzz_seed_1() {
    run_fuzz(1, 120);
}

#[test]
fn fuzz_seed_2() {
    run_fuzz(0xDEADBEEF, 120);
}

#[test]
fn fuzz_seed_3() {
    run_fuzz(42, 200);
}

#[test]
fn fuzz_many_short_runs() {
    for seed in 100..130 {
        run_fuzz(seed, 25);
    }
}
