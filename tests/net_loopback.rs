//! The paper's matrix-redistribution scenario end-to-end over real
//! sockets: the same `ClusterfileConfig`-shaped deployment (4 compute
//! nodes, 4 I/O nodes) must produce **byte-identical subfile contents**
//! whether it runs in the discrete-event simulator or against live
//! `parafile-net` daemons on loopback.
//!
//! By default each test spawns its own in-process loopback daemons. Set
//! `PF_NET_NODES=addr1,addr2,addr3,addr4` to run against externally
//! started daemons instead (the CI socket job does this); file ids are
//! disjoint per test so the tests can share one daemon set.

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, StorageBackend, WritePolicy};
use parafile::{Mapper, Partition};
use parafile_net::client::NodeClient;
use parafile_net::session::{spawn_loopback, Session};
use parafile_net::wire::{Reply, Request};
use parafile_net::{ErrCode, NetError};
use pf_tests::file_byte;

const COMPUTE_NODES: usize = 4;
const IO_NODES: usize = 4;

/// External daemon addresses from `PF_NET_NODES`, or fresh loopback
/// daemons. Keep the handles alive for the test's duration.
fn nodes() -> (Vec<parafile_net::server::DaemonHandle>, Vec<String>) {
    if let Ok(spec) = std::env::var("PF_NET_NODES") {
        let addrs: Vec<String> = spec.split(',').map(|s| s.trim().to_string()).collect();
        assert_eq!(addrs.len(), IO_NODES, "PF_NET_NODES must name {IO_NODES} daemons");
        (Vec::new(), addrs)
    } else {
        spawn_loopback(IO_NODES, StorageBackend::Memory).expect("spawn loopback daemons")
    }
}

fn simulated() -> Clusterfile {
    Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::WriteThrough))
}

/// Every compute node writes its full view, exactly as in the paper's
/// experiment — once through the simulator, once over the sockets.
fn write_full_views_sim(fs: &mut Clusterfile, file: usize, logical: &Partition, file_len: u64) {
    for c in 0..COMPUTE_NODES {
        fs.set_view(c, file, logical, c);
    }
    let ops: Vec<(usize, u64, u64, Vec<u8>)> = (0..COMPUTE_NODES)
        .map(|c| {
            let m = Mapper::new(logical, c);
            let len = logical.element_len(c, file_len).unwrap();
            let data: Vec<u8> = (0..len).map(|y| file_byte(m.unmap(y))).collect();
            (c, 0, len - 1, data)
        })
        .collect();
    fs.write_group(file, &ops);
}

fn write_full_views_net(s: &mut Session, file: u64, logical: &Partition, file_len: u64) {
    for c in 0..COMPUTE_NODES {
        s.set_view(c as u32, file, logical, c).expect("set view over socket");
    }
    for c in 0..COMPUTE_NODES {
        let m = Mapper::new(logical, c);
        let len = logical.element_len(c, file_len).unwrap();
        let data: Vec<u8> = (0..len).map(|y| file_byte(m.unmap(y))).collect();
        let written = s.write(c as u32, file, 0, len - 1, &data).expect("write over socket");
        assert_eq!(written, len, "full-view write stores every byte");
    }
}

/// The acceptance scenario: row-block views redistributed onto each
/// physical layout, simulated vs real, subfile for subfile.
#[test]
fn matrix_redistribution_sim_vs_real_byte_identical() {
    let n = 16u64;
    let file_len = n * n;
    let (_daemons, addrs) = nodes();
    for (i, phys) in MatrixLayout::all().iter().enumerate() {
        let physical = phys.partition(n, n, 1, IO_NODES as u64);
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, COMPUTE_NODES as u64);

        // Simulated run.
        let mut fs = simulated();
        let sim_file = fs.create_file(physical.clone(), file_len);
        write_full_views_sim(&mut fs, sim_file, &logical, file_len);

        // Real run over sockets.
        let mut session = Session::connect(&addrs);
        let net_file = 1000 + i as u64;
        session.create_file(net_file, physical, file_len).expect("create over sockets");
        write_full_views_net(&mut session, net_file, &logical, file_len);

        // Byte-identical subfile contents, subfile by subfile.
        for s in 0..IO_NODES {
            let sim_bytes = fs.subfile(sim_file, s);
            let net_bytes = session.subfile(net_file, s).expect("fetch subfile");
            assert_eq!(sim_bytes, net_bytes, "{phys:?}: subfile {s} diverges");
        }

        // And the assembled files agree too.
        assert_eq!(fs.file_contents(sim_file), session.file_contents(net_file).unwrap());

        // Reads through the views return what was written.
        for c in 0..COMPUTE_NODES {
            let m = Mapper::new(&logical, c);
            let len = logical.element_len(c, file_len).unwrap();
            let back = session.read(c as u32, net_file, 0, len - 1).expect("read over socket");
            for (y, &b) in back.iter().enumerate() {
                assert_eq!(b, file_byte(m.unmap(y as u64)), "{phys:?} view {c} offset {y}");
            }
        }
        session.flush(net_file).expect("flush");
    }
}

/// Writing past the view's share of the file crosses the subfile
/// boundaries: the daemons clip, report a short write, and reads of the
/// same interval come back partial (zeros past the end).
#[test]
fn partial_reads_and_short_writes_at_subfile_boundaries() {
    let n = 16u64;
    let file_len = n * n; // 256 bytes; each subfile holds 64
    let (_daemons, addrs) = nodes();
    let mut session = Session::connect(&addrs);
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, IO_NODES as u64);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, COMPUTE_NODES as u64);
    let file = 2000u64;
    session.create_file(file, physical, file_len).expect("create");
    session.set_view(0, file, &logical, 0).expect("set view");

    // View element 0 holds 64 in-file bytes; the interval [0, 95] runs 32
    // bytes past them, into the next tiling period beyond the file's end.
    let over = 96u64;
    let data: Vec<u8> = (0..over).map(|y| 100 + y as u8).collect();
    let written = session.write(0, file, 0, over - 1, &data).expect("short write succeeds");
    assert_eq!(written, 64, "only the in-file bytes are stored");

    // Partial read: the stored prefix comes back, the overhang reads zero.
    let back = session.read(0, file, 0, over - 1).expect("partial read succeeds");
    assert_eq!(&back[..64], &data[..64], "stored prefix round-trips");
    assert!(back[64..].iter().all(|&b| b == 0), "overhang reads as zeros");

    // The file itself holds the view's 64 bytes at their mapped offsets
    // and nothing else.
    let contents = session.file_contents(file).expect("fetch file");
    let m = Mapper::new(&logical, 0);
    for (x, &b) in contents.iter().enumerate() {
        match m.map(x as u64) {
            Some(y) if y < 64 => assert_eq!(b, data[y as usize], "file byte {x}"),
            _ => assert_eq!(b, 0, "file byte {x} outside the view must stay zero"),
        }
    }
}

/// A view pattern with error-severity audit findings is refused at the
/// protocol boundary with a structured `PatternRejected` reply carrying
/// the PA codes — the daemon never installs the view.
#[test]
fn audit_rejects_bad_view_patterns_over_the_socket() {
    use parafile_audit::{RawElement, RawFalls, RawPattern};
    let (_daemons, addrs) = nodes();
    let mut client = NodeClient::new(&addrs[0]);
    let file = 3000u64;
    client.expect_ok(&Request::Open { file, subfile: 0, len: 64, tenant: 0 }).expect("open");

    // Two elements claiming the same bytes: PA overlap, error severity.
    let overlapping = RawPattern {
        displacement: 0,
        elements: vec![
            RawElement::new(vec![RawFalls::leaf(0, 7, 8, 1)]),
            RawElement::new(vec![RawFalls::leaf(0, 7, 8, 1)]),
        ],
    };
    let req = Request::SetView {
        file,
        compute: 0,
        element: 0,
        view: overlapping,
        proj_set: vec![RawFalls::leaf(0, 7, 8, 1)],
        proj_period: 8,
    };
    let err = client.call(&req).expect_err("rejected");
    match err {
        NetError::Protocol(e) => {
            assert_eq!(e.code, ErrCode::PatternRejected);
            assert!(!e.pa_codes.is_empty(), "reply names the PA codes");
            assert!(e.pa_codes.iter().all(|c| c.starts_with("PA")), "{:?}", e.pa_codes);
        }
        other => panic!("expected a protocol error, got {other}"),
    }

    // The rejected view was not installed: accessing it still says NoView.
    let err =
        client.call(&Request::Read { file, compute: 0, l_s: 0, r_s: 7 }).expect_err("no view");
    match err {
        NetError::Protocol(e) => assert_eq!(e.code, ErrCode::NoView),
        other => panic!("expected NoView, got {other}"),
    }

    // A clean pattern on the same connection is accepted afterwards.
    let fine = RawPattern {
        displacement: 0,
        elements: vec![
            RawElement::new(vec![RawFalls::leaf(0, 3, 8, 1)]),
            RawElement::new(vec![RawFalls::leaf(4, 7, 8, 1)]),
        ],
    };
    let req = Request::SetView {
        file,
        compute: 0,
        element: 0,
        view: fine,
        proj_set: vec![RawFalls::leaf(0, 3, 8, 1)],
        proj_period: 8,
    };
    assert!(matches!(client.call(&req), Ok(Reply::Ok)));
}

/// Concurrent sessions (one per compute node, like the paper's concurrent
/// writers) land their disjoint view data without interference.
#[test]
fn concurrent_sessions_write_disjoint_views() {
    let n = 16u64;
    let file_len = n * n;
    let (_daemons, addrs) = nodes();
    let physical = MatrixLayout::SquareBlocks.partition(n, n, 1, IO_NODES as u64);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, COMPUTE_NODES as u64);
    let file = 4000u64;

    // One session creates the file; each writer then runs its own session,
    // as separate compute processes would.
    let mut owner = Session::connect(&addrs);
    owner.create_file(file, physical.clone(), file_len).expect("create");
    std::thread::scope(|scope| {
        for c in 0..COMPUTE_NODES {
            let addrs = &addrs;
            let physical = physical.clone();
            let logical = logical.clone();
            scope.spawn(move || {
                let mut s = Session::connect(addrs);
                // Re-opening with identical geometry is idempotent.
                s.create_file(file, physical, file_len).expect("reopen");
                s.set_view(c as u32, file, &logical, c).expect("view");
                let m = Mapper::new(&logical, c);
                let len = logical.element_len(c, file_len).unwrap();
                let data: Vec<u8> = (0..len).map(|y| file_byte(m.unmap(y))).collect();
                let written = s.write(c as u32, file, 0, len - 1, &data).expect("write");
                assert_eq!(written, len);
            });
        }
    });
    let contents = owner.file_contents(file).expect("fetch");
    for (x, &b) in contents.iter().enumerate() {
        assert_eq!(b, file_byte(x as u64), "file byte {x}");
    }
}

/// A tenanted workload against a reactor daemon with the per-tenant
/// inflight quota at its tightest (1): quota sheds surface as Busy, the
/// session's retry machinery absorbs them, and every byte still lands.
#[test]
fn tenant_quota_sheds_are_absorbed_by_retries() {
    let n = 16u64;
    let file_len = n * n;
    let config = parafile_net::DaemonConfig {
        backend: StorageBackend::Memory,
        workers: 2,
        tenant_inflight: 1,
        fair: true,
        ..parafile_net::DaemonConfig::default()
    };
    let mut daemon = parafile_net::serve("127.0.0.1:0", config).expect("spawn reactor daemon");
    let addrs = vec![daemon.addr().to_string()];
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, 1);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 1);
    let file = 5000u64;
    let mut s = Session::connect(&addrs).with_tenant(42);
    assert_eq!(s.tenant(), 42);
    s.create_file(file, physical, file_len).expect("create");
    s.set_view(0, file, &logical, 0).expect("view");
    let data: Vec<u8> = (0..file_len).map(file_byte).collect();
    let written = s.write(0, file, 0, file_len - 1, &data).expect("write under quota");
    assert_eq!(written, file_len);
    assert_eq!(s.read(0, file, 0, file_len - 1).expect("read back"), data);
    drop(s);
    daemon.stop();
}

/// A v6 client with a tenant id against a daemon capped at protocol v5:
/// the negotiation steps down, the Open loses its tenant field on the
/// wire (decoded as the anonymous tenant), and I/O works untouched.
#[test]
fn tenant_field_degrades_gracefully_against_a_v5_daemon() {
    let n = 16u64;
    let file_len = n * n;
    let config = parafile_net::DaemonConfig {
        backend: StorageBackend::Memory,
        max_version: 5,
        ..parafile_net::DaemonConfig::default()
    };
    let mut daemon = parafile_net::serve("127.0.0.1:0", config).expect("spawn v5 daemon");
    let addrs = vec![daemon.addr().to_string()];
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, 1);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 1);
    let file = 5100u64;
    let mut s = Session::connect(&addrs).with_tenant(7);
    s.create_file(file, physical, file_len).expect("create against v5 daemon");
    s.set_view(0, file, &logical, 0).expect("view");
    let data: Vec<u8> = (0..file_len).map(file_byte).collect();
    assert_eq!(s.write(0, file, 0, file_len - 1, &data).expect("write"), file_len);
    assert_eq!(s.read(0, file, 0, file_len - 1).expect("read back"), data);
    drop(s);
    daemon.stop();
}
