//! Every worked example in the paper, verified end to end across crates.

use falls::{Falls, NestedFalls, NestedSet};
use parafile::mapping::Mapper;
use parafile::model::{Partition, PartitionPattern};
use parafile::redist::{cut_falls, intersect_elements, intersect_falls, Projection};

/// Figure 1: the FALLS (3,5,6,5) covers exactly {3..5, 9..11, …, 27..29}.
#[test]
fn figure1() {
    let f = Falls::new(3, 5, 6, 5).unwrap();
    let want: Vec<u64> = (0..5).flat_map(|i| (3 + 6 * i)..=(5 + 6 * i)).collect();
    assert_eq!(f.offsets().collect::<Vec<_>>(), want);
    assert_eq!(f.size(), 15);
}

/// Figure 2: nested FALLS (0,3,8,2,{(0,0,2,2)}) has size 4.
#[test]
fn figure2() {
    let nf = NestedFalls::with_inner(
        Falls::new(0, 3, 8, 2).unwrap(),
        vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
    )
    .unwrap();
    assert_eq!(nf.size(), 4);
    assert_eq!(nf.absolute_offsets(), vec![0, 2, 8, 10]);
}

fn figure3_partition() -> Partition {
    let sets = [(0u64, 1u64), (2, 3), (4, 5)]
        .iter()
        .map(|&(l, r)| NestedSet::singleton(NestedFalls::leaf(Falls::new(l, r, 6, 1).unwrap())))
        .collect();
    Partition::new(2, PartitionPattern::new(sets).unwrap())
}

/// §6: MAP(10) = 2 and MAP⁻¹(2) = 10 for subfile 1 of Figure 3.
#[test]
fn section6_map_example() {
    let p = figure3_partition();
    let m = Mapper::new(&p, 1);
    assert_eq!(m.map(10), Some(2));
    assert_eq!(m.unmap(2), 10);
    // MAP⁻¹(MAP(x)) = x for every selected byte over several tiles.
    for x in 2..60 {
        if let Some(y) = m.map(x) {
            assert_eq!(m.unmap(y), x);
        }
    }
}

/// §6.1: byte 5 does not map on element 0; previous map 1, next map 2.
#[test]
fn section6_next_prev() {
    let p = figure3_partition();
    let m = Mapper::new(&p, 0);
    assert_eq!(m.map(5), None);
    assert_eq!(m.map_prev(5), Some(1));
    assert_eq!(m.map_next(5), 2);
}

/// §7: CUT-FALLS((3,5,6,5), 4, 28) = {(0,1,2,1), (5,7,6,3), (23,24,2,1)}.
#[test]
fn section7_cut() {
    let cut = cut_falls(&Falls::new(3, 5, 6, 5).unwrap(), 4, 28);
    assert_eq!(
        cut,
        vec![
            Falls::new(0, 1, 2, 1).unwrap(),
            Falls::new(5, 7, 6, 3).unwrap(),
            Falls::new(23, 24, 2, 1).unwrap(),
        ]
    );
}

/// Figure 4: INTERSECT-FALLS((0,7,16,2),(0,3,8,4)) = (0,3,16,2).
#[test]
fn figure4_flat_intersection() {
    let out = intersect_falls(&Falls::new(0, 7, 16, 2).unwrap(), &Falls::new(0, 3, 8, 4).unwrap());
    assert_eq!(out, vec![Falls::new(0, 3, 16, 2).unwrap()]);
}

fn with_complement(set: NestedSet, span: u64) -> Partition {
    let complement = set.complement(span);
    Partition::new(0, PartitionPattern::new(vec![set, complement]).unwrap())
}

/// Figure 4(b–d): nested intersection selects {0, 16}; both projections are
/// the index set {0, 4} (the paper's (0,0,4,2)).
#[test]
fn figure4_nested_intersection_and_projections() {
    let v = NestedSet::singleton(
        NestedFalls::with_inner(
            Falls::new(0, 7, 16, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())],
        )
        .unwrap(),
    );
    let s = NestedSet::singleton(
        NestedFalls::with_inner(
            Falls::new(0, 3, 8, 4).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
        )
        .unwrap(),
    );
    let pv = with_complement(v, 32);
    let ps = with_complement(s, 32);
    let inter = intersect_elements(&pv, 0, &ps, 0).unwrap();
    assert_eq!(inter.set.absolute_offsets(), vec![0, 16]);
    assert_eq!(inter.period, 32);
    let proj_v = Projection::compute(&inter, &pv, 0);
    let proj_s = Projection::compute(&inter, &ps, 0);
    assert_eq!(proj_v.set.absolute_offsets(), vec![0, 4]);
    assert_eq!(proj_s.set.absolute_offsets(), vec![0, 4]);
}

/// §6.2: mapping byte 4 of partition element V onto S — the direct mapping
/// MAP_S(MAP_V⁻¹(4)) = 4 of the paper's figure-4 pair.
#[test]
fn section62_cross_partition_mapping() {
    let v = NestedSet::singleton(
        NestedFalls::with_inner(
            Falls::new(0, 7, 16, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())],
        )
        .unwrap(),
    );
    let s = NestedSet::singleton(
        NestedFalls::with_inner(
            Falls::new(0, 3, 8, 4).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
        )
        .unwrap(),
    );
    let pv = with_complement(v, 32);
    let ps = with_complement(s, 32);
    let mv = Mapper::new(&pv, 0);
    let ms = Mapper::new(&ps, 0);
    // V's offset 4 is file byte 16, which S holds at offset 4.
    assert_eq!(mv.unmap(4), 16);
    assert_eq!(parafile::mapping::map_between(&mv, &ms, 4), Some(4));
}

/// §5: the partitioning pattern repeats throughout the file from the
/// displacement, each byte mapping on exactly one (subfile, offset) pair.
#[test]
fn section5_pattern_tiles_exclusively() {
    let p = figure3_partition();
    for x in 2..200u64 {
        let owners: Vec<usize> = (0..3).filter(|&e| Mapper::new(&p, e).selects(x)).collect();
        assert_eq!(owners.len(), 1, "byte {x} must belong to exactly one subfile");
        assert_eq!(p.owner_of(x), Some(owners[0]));
    }
}
