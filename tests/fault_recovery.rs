//! Chaos acceptance matrix: the paper's matrix-redistribution scenario
//! must survive every seeded fault family and still produce **byte-
//! identical subfile contents** to a fault-free simulator run.
//!
//! Each scenario expands a single `u64` seed into a deterministic
//! [`FaultPlan`] (see `parafile_net::fault`) wired into one I/O-node
//! daemon, with a supervisor thread standing in for init: when an
//! injected kill/torn-write crash fires, it rebinds the same address over
//! the same `Directory` backend with crash faults disarmed — one seed,
//! one crash, one recovery. The correctness oracle is always final-state
//! equivalence, never event order: concurrency makes the interleaving
//! vary, the seed makes the injected faults reproducible.

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, StorageBackend, WritePolicy};
use parafile::Mapper;
use parafile_audit::{RawElement, RawFalls, RawPattern};
use parafile_net::server::{serve, DaemonConfig, DaemonHandle};
use parafile_net::session::Session;
use parafile_net::wire::{Reply, Request};
use parafile_net::{ErrCode, FaultPlan, NetError, NodeClient, NodeHealth, SegmentOutcome};
use pf_tests::file_byte;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const COMPUTE_NODES: usize = 4;
const IO_NODES: usize = 4;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pf_chaos_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn dir_config(dir: &Path, fault: Option<FaultPlan>) -> DaemonConfig {
    DaemonConfig {
        backend: StorageBackend::Directory(dir.to_path_buf()),
        fault,
        ..Default::default()
    }
}

/// An I/O node under chaos, with its restart supervisor: after an
/// injected crash the supervisor rebinds the same address over the same
/// directory backend, crash faults disarmed, so journal recovery runs
/// exactly as it would under a real init/systemd respawn.
struct ChaosNode {
    addr: String,
    stop: Arc<AtomicBool>,
    supervisor: Option<JoinHandle<()>>,
}

impl ChaosNode {
    fn spawn(dir: PathBuf, plan: FaultPlan) -> Self {
        let handle =
            serve("127.0.0.1:0", dir_config(&dir, Some(plan.clone()))).expect("serve chaos node");
        let addr = handle.addr().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor = std::thread::spawn({
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            move || {
                let mut handle = handle;
                loop {
                    handle.wait();
                    if stop.load(Ordering::SeqCst) || !handle.fault_killed() {
                        break;
                    }
                    let disarmed = plan.disarmed_crashes();
                    handle = loop {
                        match serve(&addr, dir_config(&dir, Some(disarmed.clone()))) {
                            Ok(h) => break h,
                            // The dying daemon may not have released the
                            // port yet.
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    };
                }
            }
        });
        Self { addr, stop, supervisor: Some(supervisor) }
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = NodeClient::new(&self.addr).call(&Request::Shutdown);
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs the paper's redistribution scenario — row-block views written
/// onto a column-block physical layout — with node 0 under `plan`, and
/// demands byte-identical subfiles to the fault-free simulator run.
fn matrix_under_chaos(tag: &str, plan: FaultPlan, file: u64) {
    let n = 16u64;
    let file_len = n * n;
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, IO_NODES as u64);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, COMPUTE_NODES as u64);

    // Fault-free oracle: the discrete-event simulator.
    let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::WriteThrough));
    let sim_file = fs.create_file(physical.clone(), file_len);
    for c in 0..COMPUTE_NODES {
        fs.set_view(c, sim_file, &logical, c);
    }
    let ops: Vec<(usize, u64, u64, Vec<u8>)> = (0..COMPUTE_NODES)
        .map(|c| {
            let m = Mapper::new(&logical, c);
            let len = logical.element_len(c, file_len).unwrap();
            let data: Vec<u8> = (0..len).map(|y| file_byte(m.unmap(y))).collect();
            (c, 0, len - 1, data)
        })
        .collect();
    fs.write_group(sim_file, &ops);

    // Real daemons on persistent backends; node 0 runs the fault plan
    // behind its restart supervisor.
    let dirs: Vec<PathBuf> = (0..IO_NODES).map(|s| scratch_dir(&format!("{tag}_{s}"))).collect();
    let mut chaos = ChaosNode::spawn(dirs[0].clone(), plan);
    let others: Vec<DaemonHandle> = dirs[1..]
        .iter()
        .map(|d| serve("127.0.0.1:0", dir_config(d, None)).expect("serve"))
        .collect();
    let addrs: Vec<String> = std::iter::once(chaos.addr.clone())
        .chain(others.iter().map(|h| h.addr().to_string()))
        .collect();

    let mut session = Session::connect(&addrs);
    session.create_file(file, physical, file_len).expect("create under chaos");
    for c in 0..COMPUTE_NODES {
        session.set_view(c as u32, file, &logical, c).expect("set view under chaos");
    }
    for c in 0..COMPUTE_NODES {
        let m = Mapper::new(&logical, c);
        let len = logical.element_len(c, file_len).unwrap();
        let data: Vec<u8> = (0..len).map(|y| file_byte(m.unmap(y))).collect();
        let report =
            session.write_report(c as u32, file, 0, len - 1, &data).expect("write under chaos");
        assert!(
            report.fully_applied(),
            "{tag}: compute {c} left segments unapplied: {:?}",
            report.outcomes
        );
        assert_eq!(report.written, len, "{tag}: compute {c} byte count");
    }
    // Injected flush failures are absorbed by the session's flush retry.
    session.flush(file).expect("flush under chaos");

    for s in 0..IO_NODES {
        assert_eq!(
            fs.subfile(sim_file, s),
            session.subfile(file, s).expect("fetch subfile"),
            "{tag}: subfile {s} diverges from the fault-free simulator run"
        );
    }
    assert_eq!(
        fs.file_contents(sim_file),
        session.file_contents(file).expect("fetch file"),
        "{tag}: assembled file diverges"
    );

    chaos.shutdown();
    drop(others);
    for d in dirs {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Lowest seed whose expanded kill fires during the write phase of this
/// scenario's frame schedule (frames 6–9 on node 0: one `Open`, four
/// `SetView`s, then the four `Write`s).
fn kill_seed_in_write_phase() -> u64 {
    (0u64..10_000)
        .find(|&s| {
            matches!(FaultPlan::kill_one_node(s).kill_after_frames, Some(k) if (6..=9).contains(&k))
        })
        .expect("some seed kills inside the write phase")
}

#[test]
fn chaos_kill_one_node_recovers_byte_identical() {
    let seed = kill_seed_in_write_phase();
    matrix_under_chaos("kill", FaultPlan::kill_one_node(seed), 7000);
}

#[test]
fn chaos_torn_write_recovers_byte_identical() {
    matrix_under_chaos("torn", FaultPlan::torn_write(1), 7001);
}

#[test]
fn chaos_truncated_reply_recovers_byte_identical() {
    matrix_under_chaos("truncate", FaultPlan::truncate_frame(1), 7002);
}

#[test]
fn chaos_dropped_connections_recover_byte_identical() {
    matrix_under_chaos("drop", FaultPlan::drop_connection(1), 7003);
}

#[test]
fn chaos_failed_flushes_recover_byte_identical() {
    matrix_under_chaos("flush", FaultPlan::fail_flush(1), 7004);
}

/// The acceptance bullet, verbatim: a `Write` retried across a daemon
/// restart is applied **exactly once**. The first attempt journals the
/// intent, applies one of the two projected segments, and "crashes"
/// without replying. On restart, `Open` replays the journal (healing the
/// torn segment) and repopulates the dedup window from it — so the
/// retried stamp is answered `replayed` without touching the store again.
#[test]
fn write_retried_across_daemon_restart_applies_exactly_once() {
    let seed = (0u64..10_000)
        .find(|&s| FaultPlan::torn_write(s).torn_write == Some(1))
        .expect("some seed tears the first write");
    let dir = scratch_dir("torn_once");
    let mut node = ChaosNode::spawn(dir.clone(), FaultPlan::torn_write(seed));
    let mut client = NodeClient::new(&node.addr);

    let file = 7100u64;
    let sub_len = 16u64;
    // A strided view whose full-view write scatters into two subfile
    // segments, [0,3] and [8,11] — the crash lands between them.
    let open = Request::Open { file, subfile: 0, len: sub_len, tenant: 0 };
    let view = Request::SetView {
        file,
        compute: 0,
        element: 0,
        view: RawPattern {
            displacement: 0,
            elements: vec![
                RawElement::new(vec![RawFalls::leaf(0, 3, 8, 1)]),
                RawElement::new(vec![RawFalls::leaf(4, 7, 8, 1)]),
            ],
        },
        proj_set: vec![RawFalls::leaf(0, 3, 8, 1)],
        proj_period: 8,
    };
    let stamped = Request::Write {
        file,
        compute: 0,
        l_s: 0,
        r_s: sub_len - 1,
        session: 0xBEEF,
        seq: 1,
        payload: vec![0x5A; 8],
    };

    client.expect_ok(&open).expect("open");
    client.expect_ok(&view).expect("set view");
    // First attempt: journal + one segment + crash, no reply. The client's
    // transparent retry reaches the restarted daemon, which has forgotten
    // the file entirely.
    let err = client.call(&stamped).expect_err("the restarted daemon forgot the file");
    match err {
        NetError::Protocol(e) => assert_eq!(e.code, ErrCode::UnknownFile, "{e:?}"),
        other => panic!("expected UnknownFile from the restarted daemon, got {other}"),
    }

    // Recovery: re-open (journal replay + dedup repopulation), re-ship the
    // view, re-send the *same* stamp.
    client.expect_ok(&open).expect("re-open recovers the journal");
    client.expect_ok(&view).expect("re-ship view");
    let reply = client.call(&stamped).expect("retried write");
    assert_eq!(
        reply,
        Reply::WriteOk { written: 8, replayed: true },
        "the retry is answered from the journal-recovered dedup window"
    );

    // Exactly once, physically: both segments hold the payload (the torn
    // second segment was healed by journal replay, not by a re-apply)…
    let bytes = match client.call(&Request::Fetch { file }).expect("fetch") {
        Reply::Data { payload } => payload,
        other => panic!("expected Data, got {other:?}"),
    };
    let mut expect = vec![0u8; sub_len as usize];
    for i in [0usize, 1, 2, 3, 8, 9, 10, 11] {
        expect[i] = 0x5A;
    }
    assert_eq!(bytes, expect, "journal replay healed the torn write");
    // …and the restarted daemon never counted a fresh application.
    match client.call(&Request::Stat { file }).expect("stat") {
        Reply::Stat(s) => {
            assert_eq!(s.bytes_written, 0, "the restarted daemon applied nothing anew")
        }
        other => panic!("expected Stat, got {other:?}"),
    }

    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Degraded operation at the session level: a dead node is reported
/// per-segment (and then failed fast), the healthy node's data still
/// lands, and a later probe + restart brings the node back through the
/// re-establishment path.
#[test]
fn degraded_session_fails_fast_and_revives_after_probe() {
    let n = 8u64;
    let file_len = n * n;
    let file = 7200u64;
    let dirs = [scratch_dir("degraded_0"), scratch_dir("degraded_1")];
    let mut handles: Vec<DaemonHandle> =
        dirs.iter().map(|d| serve("127.0.0.1:0", dir_config(d, None)).expect("serve")).collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    // Column-block view over a row-block physical layout: the view
    // intersects both subfiles, so one write always fans out to both.
    let physical = MatrixLayout::RowBlocks.partition(n, n, 1, 2);
    let logical = MatrixLayout::ColumnBlocks.partition(n, n, 1, 2);
    let mut session = Session::connect(&addrs);
    session.create_file(file, physical, file_len).expect("create");
    session.set_view(0, file, &logical, 0).expect("set view");
    let len = logical.element_len(0, file_len).unwrap();

    let fill = |b: u8| vec![b; len as usize];
    let report = session.write_report(0, file, 0, len - 1, &fill(1)).expect("healthy write");
    assert!(report.fully_applied());
    assert!(report.outcomes.iter().all(|(_, o)| matches!(o, SegmentOutcome::Applied { .. })));

    // Node 1 dies for good (no supervisor).
    handles[1].stop();
    let report = session.write_report(0, file, 0, len - 1, &fill(2)).expect("degraded write");
    assert_eq!(report.unreachable(), vec![1], "node 1's segments were not applied");
    assert!(!report.fully_applied());
    assert_eq!(session.health()[1], NodeHealth::Dead);
    // From now on the dead node is failed fast — no retry schedule — and
    // the all-or-error wrapper surfaces the degradation.
    let report = session.write_report(0, file, 0, len - 1, &fill(3)).expect("fail-fast write");
    assert_eq!(report.unreachable(), vec![1]);
    session.write(0, file, 0, len - 1, &fill(3)).expect_err("write() refuses partial application");

    // Restart node 1 on the same address and backend; a probe revives it.
    handles[1] = serve(&addrs[1], dir_config(&dirs[1], None)).expect("rebind");
    let health = session.probe();
    assert!(matches!(health[1], NodeHealth::Alive { .. }), "probe revives the node: {health:?}");

    // The next write re-establishes the forgotten file/view on node 1.
    let report = session.write_report(0, file, 0, len - 1, &fill(4)).expect("revived write");
    assert!(report.fully_applied(), "{:?}", report.outcomes);
    assert!(
        report
            .outcomes
            .iter()
            .any(|&(s, o)| s == 1 && matches!(o, SegmentOutcome::Recovered { .. })),
        "node 1 went through re-establishment: {:?}",
        report.outcomes
    );
    let back = session.read(0, file, 0, len - 1).expect("read");
    assert_eq!(back, fill(4), "the revived cluster holds the last write everywhere");

    drop(handles);
    for d in dirs {
        let _ = std::fs::remove_dir_all(&d);
    }
}
