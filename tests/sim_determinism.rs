//! The simulator must be bit-for-bit reproducible, and failure injection
//! must surface the paper's "bounded by the slowest I/O server" behaviour.

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, PaperScenario, WritePolicy};
use parafile::Mapper;

fn run_write(slow_io: Option<usize>) -> (u64, Vec<u64>) {
    let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
    if let Some(io) = slow_io {
        fs.cluster_mut().slow_down(4 + io, 20);
    }
    let n = 64u64;
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    let file = fs.create_file(physical, n * n);
    let ops: Vec<(usize, u64, u64, Vec<u8>)> = (0..4usize)
        .map(|c| {
            let m = Mapper::new(&logical, c);
            let len = logical.element_len(c, n * n).unwrap();
            let data: Vec<u8> = (0..len).map(|y| (m.unmap(y) % 251) as u8).collect();
            (c, 0, len - 1, data)
        })
        .collect();
    for c in 0..4usize {
        fs.set_view(c, file, &logical, c);
    }
    let timings = fs.write_group(file, &ops);
    let t_w: Vec<u64> = timings.iter().map(|t| t.t_w_sim_ns).collect();
    (fs.cluster().stats().total_messages(), t_w)
}

/// Two identical runs produce identical simulated schedules (real-time
/// measurement differs, simulated values must not).
#[test]
fn identical_runs_identical_sim() {
    let (m1, _) = run_write(None);
    let (m2, _) = run_write(None);
    assert_eq!(m1, m2);
    // The simulated schedule is driven entirely by modeled costs, so the
    // write completions are bit-for-bit identical.
    let (_, t1) = run_write(None);
    let (_, t2) = run_write(None);
    assert_eq!(t1, t2, "simulated t_w must be exactly reproducible");
}

/// Slowing one I/O node inflates every writer's completion (each view
/// touches every column subfile).
#[test]
fn slow_io_node_bounds_everyone() {
    let (_, nominal) = run_write(None);
    let (_, degraded) = run_write(Some(2));
    for (c, (n, d)) in nominal.iter().zip(&degraded).enumerate() {
        assert!(*d > *n * 2, "compute {c}: a 20× slower I/O server must dominate t_w ({d} vs {n})");
    }
}

/// A crashed I/O node loses the write silently at the transport level; the
/// write stalls rather than completing (the drain returns with missing
/// acks), which the caller observes as fewer messages received.
#[test]
fn crashed_io_node_drops_traffic() {
    let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
    let n = 32u64;
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    let file = fs.create_file(physical, n * n);
    fs.set_view(0, file, &logical, 0);
    fs.cluster_mut().crash(4 + 1); // I/O node 1
    let m = Mapper::new(&logical, 0);
    let len = logical.element_len(0, n * n).unwrap();
    let data: Vec<u8> = (0..len).map(|y| (m.unmap(y) % 251) as u8).collect();
    fs.write(0, file, 0, len - 1, &data);
    // Subfiles 0 received data; subfile 1 did not.
    assert!(fs.io_timings()[0].bytes > 0);
    assert_eq!(fs.io_timings()[1].bytes, 0);
}

/// The scenario runner is reproducible in its simulated outputs.
#[test]
fn scenario_sim_outputs_reproducible() {
    let mk = || {
        let mut s = PaperScenario::paper(128, MatrixLayout::SquareBlocks, true);
        s.repetitions = 2;
        s.run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.fragments_per_io, b.fragments_per_io);
    assert_eq!(a.messages_per_compute, b.messages_per_compute);
    assert_eq!(a.t_s_us, b.t_s_us, "simulated t_s must be exactly reproducible");
    assert_eq!(a.t_w_us, b.t_w_us, "simulated t_w must be exactly reproducible");
}
