//! Replication acceptance tests: R = 2 subfile copies over three I/O-node
//! daemons must survive a **permanent** node kill mid-workload (byte-
//! identical reads, degraded writes fully applied), converge back to full
//! redundancy once a blank replacement daemon takes over the dead
//! address, and transparently heal reads when a stored copy is corrupted
//! on disk (a flipped byte is caught by the per-page CRC32C map, the read
//! fails over to the surviving replica, and the bad copy is queued for
//! repair).
//!
//! These tests manage their own daemon lifecycles (they kill and restart
//! nodes), so unlike `net_loopback` they never honor `PF_NET_NODES`.

use arraydist::matrix::MatrixLayout;
use clusterfile::StorageBackend;
use parafile_net::server::{serve, DaemonConfig, DaemonHandle};
use parafile_net::session::{spawn_loopback, Session};
use parafile_net::NodeHealth;
use parafile_replica::{copy_file_id, ScrubVerdict};
use std::path::{Path, PathBuf};
use std::time::Duration;

const IO_NODES: usize = 3;
const REPLICAS: usize = 2;
const N: u64 = 9;
const FILE_LEN: u64 = N * N;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pf_repl_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn dir_config(dir: &Path) -> DaemonConfig {
    DaemonConfig { backend: StorageBackend::Directory(dir.to_path_buf()), ..Default::default() }
}

/// Rebinds `addr` with `config`, retrying while the previous daemon's
/// socket drains out of TIME_WAIT.
fn serve_at(addr: &str, config: DaemonConfig) -> DaemonHandle {
    for _ in 0..200 {
        match serve(addr, config.clone()) {
            Ok(h) => return h,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("could not rebind {addr}");
}

/// Three daemons over `backend`, an R = 2 session, and `file` created as
/// a column-block 9×9 matrix with one row-block view per compute node.
fn replicated_session(addrs: &[String], file: u64) -> Session {
    let physical = MatrixLayout::ColumnBlocks.partition(N, N, 1, IO_NODES as u64);
    let logical = MatrixLayout::RowBlocks.partition(N, N, 1, IO_NODES as u64);
    let mut session = Session::connect_replicated(addrs, REPLICAS).expect("R=2 over 3 nodes");
    session.create_file(file, physical, FILE_LEN).expect("create file");
    for c in 0..IO_NODES {
        session.set_view(c as u32, file, &logical, c).expect("set view");
    }
    session
}

/// The full acceptance arc from the issue: healthy replicated writes,
/// a permanent `kill` of one daemon mid-workload, degraded-but-complete
/// writes with byte-identical reads, and scrub-driven convergence back to
/// full 2-way redundancy on a blank replacement daemon.
#[test]
fn permanent_node_loss_heals_onto_replacement_daemon() {
    let file = 11u64;
    let (mut handles, addrs) =
        spawn_loopback(IO_NODES, StorageBackend::Memory).expect("spawn loopback daemons");
    let mut session = replicated_session(&addrs, file);

    // Healthy phase: compute node 0 writes its band at full quorum.
    let expect: Vec<u8> =
        (0..FILE_LEN as usize).map(|i| (i as u8).wrapping_mul(7) ^ 0x2C).collect();
    session.write(0, file, 0, 26, &expect[0..27]).expect("healthy write");
    assert!(session.dirty_replicas().is_empty(), "healthy cluster stays clean");

    // Permanently kill node 1 mid-workload; the probe marks it dead so
    // the remaining writes fail fast onto the surviving replicas.
    handles[1].stop();
    session.probe();
    assert_eq!(session.health()[1], NodeHealth::Dead);
    for c in 1..IO_NODES {
        let band = &expect[c * 27..(c + 1) * 27];
        let report = session.write_report(c as u32, file, 0, 26, band).expect("degraded write");
        assert!(report.fully_applied(), "{report:?}");
    }
    // Every subfile kept one live copy, so reads are byte-identical...
    assert_eq!(session.file_contents(file).expect("read after loss"), expect);
    // ...and the dead node's copies are queued for repair.
    assert!(
        session.dirty_replicas().iter().any(|d| d.node == 1),
        "copies on the killed node must be dirty: {:?}",
        session.dirty_replicas()
    );
    // With the address still dead a scrub can only report the degraded
    // redundancy (this is `pf scrub --verify` exiting 5 in CI).
    let degraded = session.scrub_verify(file).expect("verify while degraded");
    assert!(!degraded.fully_redundant(), "{degraded:?}");
    assert!(degraded.lost.is_empty(), "one live copy per subfile: {degraded:?}");

    // A blank replacement daemon takes over the dead address (fresh
    // in-memory state — nothing survives from node 1's first life).
    handles[1] = serve_at(&addrs[1], DaemonConfig::default());
    session.probe();
    assert!(matches!(session.health()[1], NodeHealth::Alive { .. }));

    // The repair scrub re-clones the missing copies onto the replacement
    // through the plan engine, restoring full 2-way redundancy.
    let repair = session.scrub(file).expect("repair scrub");
    assert!(repair.repaired > 0, "{repair:?}");
    assert!(repair.fully_redundant(), "{repair:?}");
    let clean = session.scrub_verify(file).expect("verify after repair");
    assert!(clean.fully_redundant(), "{clean:?}");
    assert!(clean.verdicts.iter().all(|(_, v)| *v == ScrubVerdict::Healthy), "{clean:?}");

    // Byte identity held across the whole arc, and both copies of every
    // subfile agree again.
    assert_eq!(session.file_contents(file).expect("read after repair"), expect);
    for s in 0..IO_NODES {
        let rank0 = session.subfile_copy(file, s, 0).expect("rank 0 copy");
        let rank1 = session.subfile_copy(file, s, 1).expect("rank 1 copy");
        assert_eq!(rank0, rank1, "subfile {s} copies diverge after repair");
    }
    drop(session);
    for h in &mut handles {
        h.stop();
    }
}

/// Checksum-failover satellite: flip one byte of a stored segment on
/// disk behind the daemon's back. The next read must detect the mismatch
/// via the CRC32C sidecar, transparently heal from the other replica
/// (byte-identical result), schedule the bad copy for repair, and a
/// scrub pass must re-clone it back to a byte-identical copy.
#[test]
fn flipped_byte_on_disk_fails_over_and_schedules_repair() {
    let file = 7u64;
    let dirs: Vec<PathBuf> = (0..IO_NODES).map(|i| scratch_dir(&format!("flip{i}"))).collect();
    let mut handles: Vec<DaemonHandle> =
        dirs.iter().map(|d| serve("127.0.0.1:0", dir_config(d)).expect("serve")).collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    let mut session = replicated_session(&addrs, file);

    let expect: Vec<u8> = (0..FILE_LEN as usize).map(|i| (i as u8) ^ 0x5A).collect();
    for c in 0..IO_NODES {
        let band = &expect[c * 27..(c + 1) * 27];
        session.write(c as u32, file, 0, 26, band).expect("replicated write");
    }
    session.flush(file).expect("flush checkpoints journal and sidecars");
    assert!(session.dirty_replicas().is_empty());
    let sub0 = session.subfile(file, 0).expect("subfile 0");

    // Corrupt the rank-0 copy of subfile 0 while its daemon is down: the
    // primary copy of subfile s lives on node s under the file's own id.
    handles[0].stop();
    let victim = dirs[0].join(format!("file{}_subfile0.bin", copy_file_id(file, 0)));
    let mut bytes = std::fs::read(&victim).expect("read stored subfile");
    assert!(!bytes.is_empty());
    bytes[0] ^= 0xFF;
    std::fs::write(&victim, &bytes).expect("flip one byte");
    handles[0] = serve_at(&addrs[0], dir_config(&dirs[0]));
    session.probe();

    // The read covers subfile 0's flipped page (row 0, column 0 sits in
    // view element 0); the daemon answers ChecksumMismatch and the
    // session heals from the rank-1 copy.
    assert_eq!(session.read(0, file, 0, 26).expect("self-healing read"), expect[0..27]);
    let dirty = session.dirty_replicas();
    assert!(
        dirty.iter().any(|d| d.subfile == 0 && d.node == 0),
        "corrupt copy must be queued for repair: {dirty:?}"
    );

    // Scrub re-clones the corrupt copy from the healthy replica.
    let report = session.scrub(file).expect("repair scrub");
    assert!(report.repaired >= 1, "{report:?}");
    assert!(report.fully_redundant(), "{report:?}");
    assert!(session.dirty_replicas().is_empty(), "repair drains the dirty set");
    assert_eq!(session.subfile_copy(file, 0, 0).expect("healed copy"), sub0);
    assert_eq!(session.subfile_copy(file, 0, 1).expect("source copy"), sub0);
    assert_eq!(session.file_contents(file).expect("read after repair"), expect);

    drop(session);
    for h in &mut handles {
        h.stop();
    }
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}
