//! Shared helpers for the workspace integration tests.

use falls::{Falls, NestedFalls, NestedSet};
use parafile::model::{Partition, PartitionPattern};
use parafile::Mapper;

/// Contiguous stripes of `width` bytes over `count` elements.
pub fn stripes(count: u64, width: u64, displacement: u64) -> Partition {
    let pattern = PartitionPattern::new(
        (0..count)
            .map(|k| {
                NestedSet::singleton(NestedFalls::leaf(
                    Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                ))
            })
            .collect(),
    )
    .unwrap();
    Partition::new(displacement, pattern)
}

/// Byte-cyclic partition over `count` elements.
pub fn cyclic(count: u64, displacement: u64) -> Partition {
    let pattern = PartitionPattern::new(
        (0..count)
            .map(|k| NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap())))
            .collect(),
    )
    .unwrap();
    Partition::new(displacement, pattern)
}

/// Deterministic file contents for offset `x`.
pub fn file_byte(x: u64) -> u8 {
    (x.wrapping_mul(167).wrapping_add(43) % 251) as u8
}

/// Fills each element buffer of a partition with the file bytes it holds.
pub fn fill_element_buffers(p: &Partition, file_len: u64) -> Vec<Vec<u8>> {
    (0..p.element_count())
        .map(|e| {
            let m = Mapper::new(p, e);
            (0..p.element_len(e, file_len).unwrap()).map(|y| file_byte(m.unmap(y))).collect()
        })
        .collect()
}

/// Asserts that every in-range byte of the element buffers matches
/// [`file_byte`].
pub fn assert_element_buffers(p: &Partition, bufs: &[Vec<u8>], file_len: u64, from: u64) {
    for (e, buf) in bufs.iter().enumerate().take(p.element_count()) {
        let m = Mapper::new(p, e);
        for (y, &v) in buf.iter().enumerate() {
            let x = m.unmap(y as u64);
            if x < from || x >= file_len {
                continue;
            }
            assert_eq!(v, file_byte(x), "element {e} offset {y} (file byte {x})");
        }
    }
}
