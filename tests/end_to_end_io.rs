//! End-to-end Clusterfile I/O across layout combinations, partial
//! intervals, concurrent writers and relayouts.

use arraydist::dist::{ArrayDistribution, DimDist};
use arraydist::grid::ProcGrid;
use arraydist::matrix::MatrixLayout;
use clusterfile::{relayout, Clusterfile, ClusterfileConfig, WritePolicy};
use parafile::Mapper;
use pf_tests::file_byte;

fn deployment() -> Clusterfile {
    Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::WriteThrough))
}

fn write_full_views(
    fs: &mut Clusterfile,
    file: usize,
    logical: &parafile::Partition,
    file_len: u64,
) {
    let ops: Vec<(usize, u64, u64, Vec<u8>)> = (0..logical.element_count())
        .map(|c| {
            let m = Mapper::new(logical, c);
            let len = logical.element_len(c, file_len).unwrap();
            let data: Vec<u8> = (0..len).map(|y| file_byte(m.unmap(y))).collect();
            (c, 0, len - 1, data)
        })
        .collect();
    for c in 0..logical.element_count() {
        fs.set_view(c, file, logical, c);
    }
    fs.write_group(file, &ops);
}

fn assert_file(fs: &mut Clusterfile, file: usize, file_len: u64) {
    let contents = fs.file_contents(file);
    for (x, &b) in contents.iter().enumerate() {
        assert_eq!(b, file_byte(x as u64), "file byte {x}");
    }
    assert_eq!(contents.len() as u64, file_len);
}

/// All nine physical × logical layout combinations round-trip.
#[test]
fn all_layout_combinations_roundtrip() {
    let n = 32u64;
    for phys in MatrixLayout::all() {
        for log in MatrixLayout::all() {
            let mut fs = deployment();
            let file = fs.create_file(phys.partition(n, n, 1, 4), n * n);
            let logical = log.partition(n, n, 1, 4);
            write_full_views(&mut fs, file, &logical, n * n);
            assert_file(&mut fs, file, n * n);
            // And read back through the views.
            for c in 0..4usize {
                let m = Mapper::new(&logical, c);
                let len = logical.element_len(c, n * n).unwrap();
                let back = fs.read(c, file, 0, len - 1);
                for (y, &b) in back.iter().enumerate() {
                    assert_eq!(
                        b,
                        file_byte(m.unmap(y as u64)),
                        "{phys:?}/{log:?} view {c} offset {y}"
                    );
                }
            }
        }
    }
}

/// Writes of arbitrary partial view intervals land correctly.
#[test]
fn partial_interval_writes() {
    let n = 32u64;
    let mut fs = deployment();
    let file = fs.create_file(MatrixLayout::SquareBlocks.partition(n, n, 1, 4), n * n);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    for c in 0..4usize {
        fs.set_view(c, file, &logical, c);
    }
    let m0 = Mapper::new(&logical, 0);
    // Write three disjoint pieces of view 0 in arbitrary order.
    for (lo, hi) in [(100u64, 187u64), (0, 63), (200, 255)] {
        let data: Vec<u8> = (lo..=hi).map(|y| file_byte(m0.unmap(y))).collect();
        fs.write(0, file, lo, hi, &data);
    }
    let contents = fs.file_contents(file);
    for y in (0..64).chain(100..188).chain(200..256) {
        let x = m0.unmap(y);
        assert_eq!(contents[x as usize], file_byte(x), "view offset {y}");
    }
    // Untouched view bytes remain zero.
    let x = m0.unmap(64);
    assert_eq!(contents[x as usize], 0);
}

/// A cyclic logical view over a block-cyclic physical layout — stressing
/// non-trivial nested FALLS on both sides.
#[test]
fn cyclic_views_over_block_cyclic_files() {
    let n = 24u64;
    let physical = ArrayDistribution::new(
        vec![n, n],
        1,
        vec![DimDist::BlockCyclic(3), DimDist::Collapsed],
        ProcGrid::new(vec![4, 1]),
    )
    .partition(0);
    let logical = ArrayDistribution::new(
        vec![n, n],
        1,
        vec![DimDist::Cyclic, DimDist::Collapsed],
        ProcGrid::new(vec![4, 1]),
    )
    .partition(0);
    let mut fs = deployment();
    let file = fs.create_file(physical, n * n);
    write_full_views(&mut fs, file, &logical, n * n);
    assert_file(&mut fs, file, n * n);
}

/// Panda-style on-the-fly relayout keeps contents and improves the match
/// for a row-block access pattern.
#[test]
fn relayout_then_matched_io() {
    let n = 32u64;
    let mut fs = deployment();
    let old = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
    let file = fs.create_file(old, n * n);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    write_full_views(&mut fs, file, &logical, n * n);
    assert_file(&mut fs, file, n * n);

    // Relayout to row blocks: now the logical views match perfectly.
    let report = relayout(&mut fs, file, MatrixLayout::RowBlocks.partition(n, n, 1, 4));
    assert_eq!(report.bytes_moved, n * n);
    assert_file(&mut fs, file, n * n);

    // Re-set views (relayout dropped them) and verify the perfect match.
    for c in 0..4usize {
        fs.set_view(c, file, &logical, c);
    }
    let m0 = Mapper::new(&logical, 0);
    let len = logical.element_len(0, n * n).unwrap();
    let data: Vec<u8> = (0..len).map(|y| file_byte(m0.unmap(y))).collect();
    let w = fs.write(0, file, 0, len - 1, &data);
    assert!(w.all_contiguous, "row views on row subfiles take the fast path");
    assert_eq!(w.messages, 1);
    assert_file(&mut fs, file, n * n);
}

/// Non-square compute/I/O node counts.
#[test]
fn asymmetric_deployments() {
    let n = 24u64;
    let mut fs = Clusterfile::new(ClusterfileConfig {
        compute_nodes: 3,
        io_nodes: 2,
        hardware: clustersim::ClusterConfig::paper_testbed(5),
        write_policy: WritePolicy::BufferCache,
        stagger_writes: false,
    });
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, 2);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 3);
    let file = fs.create_file(physical, n * n);
    write_full_views(&mut fs, file, &logical, n * n);
    assert_file(&mut fs, file, n * n);
}

/// Reads after writes through *different* views agree.
#[test]
fn cross_view_read_consistency() {
    let n = 32u64;
    let mut fs = deployment();
    let file = fs.create_file(MatrixLayout::RowBlocks.partition(n, n, 1, 4), n * n);
    let rows = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    let cols = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
    write_full_views(&mut fs, file, &rows, n * n);

    // Re-view compute 0 through columns and read.
    fs.set_view(0, file, &cols, 0);
    let mc = Mapper::new(&cols, 0);
    let len = cols.element_len(0, n * n).unwrap();
    let back = fs.read(0, file, 0, len - 1);
    for (y, &b) in back.iter().enumerate() {
        assert_eq!(b, file_byte(mc.unmap(y as u64)), "column view offset {y}");
    }
}

/// The same write path against real file-backed subfiles: bytes land on the
/// host filesystem and survive reassembly.
#[test]
fn file_backed_storage_roundtrip() {
    use clusterfile::StorageBackend;
    let dir = std::env::temp_dir().join(format!("pf_backed_{}", std::process::id()));
    let n = 32u64;
    let mut fs = deployment();
    fs.set_storage_backend(StorageBackend::Directory(dir.clone()));
    let file = fs.create_file(MatrixLayout::ColumnBlocks.partition(n, n, 1, 4), n * n);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    write_full_views(&mut fs, file, &logical, n * n);
    assert_file(&mut fs, file, n * n);
    // The subfiles really exist on disk with the expected sizes.
    for s in 0..4 {
        let path = fs.subfile_path(file, s).expect("file-backed");
        let meta = std::fs::metadata(&path).expect("subfile on disk");
        assert_eq!(meta.len(), n * n / 4, "subfile {s}");
        // Disk contents equal the in-simulation view of the subfile.
        assert_eq!(std::fs::read(&path).unwrap(), fs.subfile(file, s));
    }
    // Reads go through the real files too.
    let m = Mapper::new(&logical, 2);
    let back = fs.read(2, file, 5, 40);
    for (i, &b) in back.iter().enumerate() {
        assert_eq!(b, pf_tests::file_byte(m.unmap(5 + i as u64)));
    }
    std::fs::remove_dir_all(&dir).ok();
}
