//! Property tests: redistribution between arbitrary partitions preserves
//! every byte, agrees with the byte-wise baseline, and gather/scatter
//! through projections is lossless.

use parafile::model::{Partition, PartitionPattern};
use parafile::plan::RedistributionPlan;
use parafile::redist::{intersect_elements, redistribute_bytewise, Projection};
use parafile::sg::{gather, scatter};
use parafile::Mapper;
use pf_tests::{assert_element_buffers, cyclic, file_byte, fill_element_buffers, stripes};
use proptest::prelude::*;

/// A random valid partition built from a random interleaving of segments.
fn arb_partition(max_elems: usize, span: u64) -> impl Strategy<Value = Partition> {
    (2..=max_elems, 1u64..=span, proptest::collection::vec(0u64..1000, 1..64)).prop_map(
        move |(elems, span, keys)| {
            // Deal `span` bytes into `elems` buckets driven by the key
            // stream, then compress each bucket into FALLS.
            let mut buckets: Vec<Vec<falls::LineSegment>> = vec![Vec::new(); elems];
            let mut pos = 0u64;
            let mut i = 0usize;
            while pos < span {
                let e = (keys[i % keys.len()] as usize) % elems;
                let len = 1 + keys[(i + 1) % keys.len()] % 7;
                let end = (pos + len).min(span) - 1;
                buckets[e].push(falls::LineSegment::new(pos, end).unwrap());
                pos = end + 1;
                i += 2;
            }
            let sets: Vec<falls::NestedSet> = buckets
                .into_iter()
                .filter(|b| !b.is_empty())
                .map(|b| falls::segments_to_falls(&b))
                .collect();
            Partition::new(0, PartitionPattern::new(sets).unwrap())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// plan.apply moves every byte to exactly where MAP says it belongs.
    #[test]
    fn plan_apply_matches_mapping(
        src in arb_partition(4, 48),
        dst in arb_partition(5, 36),
        tiles in 1u64..5,
    ) {
        let file_len = src.pattern().size().max(dst.pattern().size()) * tiles + 3;
        let plan = RedistributionPlan::build(&src, &dst).unwrap();
        let src_bufs = fill_element_buffers(&src, file_len);
        let mut dst_bufs: Vec<Vec<u8>> = (0..dst.element_count())
            .map(|e| vec![0u8; dst.element_len(e, file_len).unwrap() as usize])
            .collect();
        let moved = plan.apply(&src_bufs, &mut dst_bufs, file_len);
        prop_assert_eq!(moved, file_len);
        assert_element_buffers(&dst, &dst_bufs, file_len, 0);
    }

    /// The plan and the byte-wise baseline produce identical buffers.
    #[test]
    fn plan_agrees_with_bytewise(
        src in arb_partition(3, 30),
        dst in arb_partition(4, 24),
    ) {
        let file_len = 100u64;
        let src_bufs = fill_element_buffers(&src, file_len);
        let mk = |dst: &Partition| -> Vec<Vec<u8>> {
            (0..dst.element_count())
                .map(|e| vec![0u8; dst.element_len(e, file_len).unwrap() as usize])
                .collect()
        };
        let plan = RedistributionPlan::build(&src, &dst).unwrap();
        let mut via_plan = mk(&dst);
        plan.apply(&src_bufs, &mut via_plan, file_len);
        let mut via_bytes = mk(&dst);
        redistribute_bytewise(&src, &dst, &src_bufs, &mut via_bytes, file_len);
        prop_assert_eq!(via_plan, via_bytes);
    }

    /// gather followed by scatter through the two projections of an
    /// intersection moves view data into subfile positions losslessly.
    #[test]
    fn gather_scatter_projection_roundtrip(
        a in arb_partition(3, 40),
        b in arb_partition(3, 40),
        lo_frac in 0u64..100,
        hi_frac in 0u64..100,
    ) {
        let file_len = 160u64;
        let inter = intersect_elements(&a, 0, &b, 0).unwrap();
        prop_assume!(!inter.is_empty());
        let proj_a = Projection::compute(&inter, &a, 0);
        let proj_b = Projection::compute(&inter, &b, 0);

        let a_len = a.element_len(0, file_len).unwrap();
        prop_assume!(a_len > 0);
        let lo = lo_frac * a_len / 100;
        let hi = (hi_frac * a_len / 100).min(a_len - 1);
        prop_assume!(lo <= hi);

        // Element A's buffer holds its file bytes; gather the shared data.
        let ma = Mapper::new(&a, 0);
        let src: Vec<u8> = (0..a_len).map(|y| file_byte(ma.unmap(y))).collect();
        let mut packed = Vec::new();
        let n = gather(&mut packed, &src, lo, hi, &proj_a);
        prop_assert_eq!(n as usize, packed.len());

        // Scatter into element B at the corresponding interval.
        let mb = Mapper::new(&b, 0);
        let x_lo = ma.unmap(lo);
        let x_hi = ma.unmap(hi);
        let l_b = mb.map_next(x_lo);
        let r_b = match mb.map_prev(x_hi) { Some(v) => v, None => return Ok(()) };
        if l_b > r_b { return Ok(()); }
        let b_len = b.element_len(0, file_len.max(mb.unmap(r_b) + 1)).unwrap().max(r_b + 1);
        let mut dst = vec![0u8; b_len as usize];
        let m = scatter(&mut dst, &packed, l_b, r_b, &proj_b);
        prop_assert_eq!(m, n);

        // Every scattered byte sits at its file position.
        for (y, &v) in dst.iter().enumerate() {
            if v != 0 {
                prop_assert_eq!(v, file_byte(mb.unmap(y as u64)), "b offset {}", y);
            }
        }
    }

    /// Stripes ↔ cyclic redistribution round-trips back to the original.
    #[test]
    fn there_and_back_again(width in 1u64..9, count in 2u64..6, tiles in 1u64..6) {
        let a = stripes(count, width, 0);
        let b = cyclic(count, 0);
        let file_len = count * width * tiles + width / 2;
        let orig = fill_element_buffers(&a, file_len);
        let forth = RedistributionPlan::build(&a, &b).unwrap();
        let back = RedistributionPlan::build(&b, &a).unwrap();
        let mut mid: Vec<Vec<u8>> = (0..b.element_count())
            .map(|e| vec![0u8; b.element_len(e, file_len).unwrap() as usize])
            .collect();
        forth.apply(&orig, &mut mid, file_len);
        let mut final_: Vec<Vec<u8>> = (0..a.element_count())
            .map(|e| vec![0u8; a.element_len(e, file_len).unwrap() as usize])
            .collect();
        back.apply(&mid, &mut final_, file_len);
        prop_assert_eq!(orig, final_);
    }
}
