//! Timing breakdowns matching the paper's Tables 1 and 2.

use std::time::Duration;

/// Cost of setting a view (paper: `t_i`): intersecting the view with every
/// subfile and computing both projections. Real, measured wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewSetTimings {
    /// Intersection + projection time.
    pub t_i: Duration,
    /// Subfiles the view intersects.
    pub intersecting_subfiles: usize,
}

/// Per-write breakdown at the compute node (paper's Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteTimings {
    /// Real time to map the access interval's extremities on the subfiles
    /// (paper: `t_m`). Zero when view and subfile overlap perfectly.
    pub t_m: Duration,
    /// Real time to gather non-contiguous view data into message buffers
    /// (paper: `t_g`). Zero for an optimal distribution match.
    pub t_g: Duration,
    /// Simulated time from the first write request to the last
    /// acknowledgment (paper: `t_w`), in nanoseconds.
    pub t_w_sim_ns: u64,
    /// Messages the compute node sent.
    pub messages: u64,
    /// Payload bytes the compute node sent.
    pub bytes_sent: u64,
    /// Whether every subfile transfer took the contiguous fast path.
    pub all_contiguous: bool,
}

/// Per-I/O-node accumulators (paper's Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoTimings {
    /// Simulated scatter time (cache staging, plus the write-back flush when
    /// the policy is write-through), in nanoseconds (paper: `t_s`).
    pub t_s_sim_ns: u64,
    /// Real wall-clock of the scatter copies into the subfile buffer.
    pub t_s_real: Duration,
    /// Fragments scattered.
    pub fragments: u64,
    /// Bytes written into the subfile.
    pub bytes: u64,
    /// Requests served.
    pub requests: u64,
}

impl IoTimings {
    /// Accumulates another request's timings.
    pub fn absorb(&mut self, other: &IoTimings) {
        self.t_s_sim_ns += other.t_s_sim_ns;
        self.t_s_real += other.t_s_real;
        self.fragments += other.fragments;
        self.bytes += other.bytes;
        self.requests += other.requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_timings_absorb() {
        let mut a = IoTimings {
            t_s_sim_ns: 10,
            fragments: 2,
            bytes: 100,
            requests: 1,
            ..Default::default()
        };
        let b =
            IoTimings { t_s_sim_ns: 5, fragments: 1, bytes: 50, requests: 1, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.t_s_sim_ns, 15);
        assert_eq!(a.fragments, 3);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.requests, 2);
    }
}
