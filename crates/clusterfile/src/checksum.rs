//! Per-page CRC32C checksums stored alongside subfile data.
//!
//! Every subfile store can carry a [`ChecksumMap`]: one CRC32C (Castagnoli)
//! checksum per fixed-size page of the store. The map lets a daemon verify
//! the pages covered by a read *before* shipping bytes to a client, so a
//! bit-flip on disk surfaces as a checksum error the replication layer can
//! fail over from, rather than as silently corrupt data.
//!
//! The checksums use the Castagnoli polynomial (`0x1EDC6F41`, reflected
//! `0x82F63B78`) — deliberately distinct from the CRC-32 (IEEE) protecting
//! journal records, so a unit test mixing the two fails loudly.
//!
//! For directory-backed stores the map persists to a sidecar file next to
//! the data (`file<fid>_subfile<idx>.crc`), written on flush. The sidecar
//! is exactly as fresh as the last flush; anything newer is covered by the
//! intent journal, so after a crash recovery the map is rebuilt from the
//! replayed bytes instead of trusted from disk.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::storage::{StorageBackend, SubfileStore};

/// Default checksum granularity in bytes.
pub const CHECKSUM_PAGE: u64 = 4096;

/// Sidecar file magic ("ParaFile CheckSums").
const SIDECAR_MAGIC: &[u8; 4] = b"PFCS";
/// Sidecar format version.
const SIDECAR_VERSION: u8 = 1;

/// CRC32C table for the reflected Castagnoli polynomial `0x82F63B78`.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82F6_3B78 } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32C_TABLE: [u32; 256] = build_table();

/// CRC32C (Castagnoli) of `data`.
///
/// This is the checksum guarding stored *data* pages; journal records use
/// the independent CRC-32 (IEEE) in [`crate::journal`].
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Sidecar path for `file<fid>_subfile<idx>.crc` under `dir`.
#[must_use]
pub fn sidecar_path(dir: &Path, file_id: usize, subfile: usize) -> PathBuf {
    dir.join(format!("file{file_id}_subfile{subfile}.crc"))
}

/// Page-granular CRC32C map over one subfile store.
///
/// The map always covers the store exactly: `ceil(len / page)` checksums,
/// the last one over the trailing partial page. Callers must keep it in
/// sync by routing every mutation through [`record_write`] (or
/// [`rebuild`] after wholesale changes).
///
/// [`record_write`]: ChecksumMap::record_write
/// [`rebuild`]: ChecksumMap::rebuild
#[derive(Debug)]
pub struct ChecksumMap {
    page: u64,
    sums: Vec<u32>,
    /// Sidecar path, when the backing store is directory-backed.
    path: Option<PathBuf>,
}

impl ChecksumMap {
    /// Build the map for a store, loading the sidecar when it is present,
    /// trusted, and consistent with the store's current length — otherwise
    /// recomputing every page from the bytes.
    ///
    /// Pass `trust_sidecar = false` when journaled intents were replayed
    /// into the store after the last flush (the sidecar predates them).
    pub fn for_store(
        backend: &StorageBackend,
        file_id: usize,
        subfile: usize,
        store: &mut SubfileStore,
        trust_sidecar: bool,
    ) -> io::Result<Self> {
        let path = match backend {
            StorageBackend::Memory => None,
            StorageBackend::Directory(dir) => Some(sidecar_path(dir, file_id, subfile)),
        };
        let mut map = ChecksumMap { page: CHECKSUM_PAGE, sums: Vec::new(), path };
        if trust_sidecar {
            if let Some(sums) = map.load_sidecar(store.len())? {
                map.sums = sums;
                return Ok(map);
            }
        }
        map.rebuild(store)?;
        Ok(map)
    }

    /// Checksum granularity in bytes.
    #[must_use]
    pub fn page(&self) -> u64 {
        self.page
    }

    /// Number of checksummed pages.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.sums.len()
    }

    fn page_count(len: u64, page: u64) -> usize {
        (len.div_ceil(page)) as usize
    }

    fn page_bytes(&self, store: &mut SubfileStore, idx: usize) -> io::Result<Vec<u8>> {
        let off = idx as u64 * self.page;
        let len = (store.len() - off).min(self.page);
        store.read_at(off, len)
    }

    /// Recompute every page checksum from the store's current bytes.
    pub fn rebuild(&mut self, store: &mut SubfileStore) -> io::Result<()> {
        let n = Self::page_count(store.len(), self.page);
        self.sums.clear();
        self.sums.reserve(n);
        for idx in 0..n {
            let bytes = self.page_bytes(store, idx)?;
            self.sums.push(crc32c(&bytes));
        }
        Ok(())
    }

    /// Refresh the checksums of every page touched by a write of `len`
    /// bytes at `offset` (call *after* the bytes hit the store).
    pub fn record_write(
        &mut self,
        store: &mut SubfileStore,
        offset: u64,
        len: u64,
    ) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        // Keep the map sized to the store (replace() may have resized it).
        let n = Self::page_count(store.len(), self.page);
        self.sums.resize(n, 0);
        let first = (offset / self.page) as usize;
        let last = ((offset + len - 1) / self.page) as usize;
        for idx in first..=last.min(n.saturating_sub(1)) {
            let bytes = self.page_bytes(store, idx)?;
            self.sums[idx] = crc32c(&bytes);
        }
        Ok(())
    }

    /// Verify the pages covering `[offset, offset + len)`; returns how many
    /// failed their checksum. `Err` is reserved for real I/O failures.
    pub fn verify_range(&self, store: &mut SubfileStore, offset: u64, len: u64) -> io::Result<u64> {
        if len == 0 {
            return Ok(0);
        }
        let first = (offset / self.page) as usize;
        let last = ((offset + len - 1) / self.page) as usize;
        let mut bad = 0u64;
        for idx in first..=last.min(self.sums.len().saturating_sub(1)) {
            let bytes = self.page_bytes(store, idx)?;
            if crc32c(&bytes) != self.sums[idx] {
                bad += 1;
            }
        }
        Ok(bad)
    }

    /// Verify every page; returns the number of mismatching pages.
    pub fn verify_all(&self, store: &mut SubfileStore) -> io::Result<u64> {
        let len = store.len();
        self.verify_range(store, 0, len)
    }

    /// Persist the map to its sidecar (no-op for memory-backed stores).
    pub fn flush(&self) -> io::Result<()> {
        let Some(path) = &self.path else { return Ok(()) };
        let mut body = Vec::with_capacity(17 + self.sums.len() * 4);
        body.push(SIDECAR_VERSION);
        body.extend_from_slice(&self.page.to_le_bytes());
        body.extend_from_slice(&(self.sums.len() as u64).to_le_bytes());
        for sum in &self.sums {
            body.extend_from_slice(&sum.to_le_bytes());
        }
        let trailer = crc32c(&body);
        let mut file = std::fs::File::create(path)?;
        file.write_all(SIDECAR_MAGIC)?;
        file.write_all(&body)?;
        file.write_all(&trailer.to_le_bytes())?;
        file.sync_all()
    }

    /// Load the sidecar if it exists, parses, and matches `store_len`.
    /// A missing, truncated, or stale sidecar is `Ok(None)` — the caller
    /// rebuilds — never an error.
    fn load_sidecar(&self, store_len: u64) -> io::Result<Option<Vec<u32>>> {
        let Some(path) = &self.path else { return Ok(None) };
        let mut raw = Vec::new();
        match std::fs::File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        if raw.len() < 4 + 17 + 4 || &raw[..4] != SIDECAR_MAGIC {
            return Ok(None);
        }
        let body = &raw[4..raw.len() - 4];
        let trailer = u32::from_le_bytes(raw[raw.len() - 4..].try_into().unwrap_or([0; 4]));
        if crc32c(body) != trailer || body[0] != SIDECAR_VERSION {
            return Ok(None);
        }
        let page = u64::from_le_bytes(body[1..9].try_into().unwrap_or([0; 8]));
        let count = u64::from_le_bytes(body[9..17].try_into().unwrap_or([0; 8])) as usize;
        if page != self.page
            || count != Self::page_count(store_len, self.page)
            || body.len() != 17 + count * 4
        {
            return Ok(None);
        }
        let sums = body[17..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap_or([0; 4])))
            .collect();
        Ok(Some(sums))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // RFC 3720 test vector.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // Distinct from the journal's CRC-32 (IEEE).
        assert_ne!(crc32c(b"123456789"), crate::journal::crc32(b"123456789"));
    }

    #[test]
    fn map_tracks_writes_and_detects_corruption() {
        let mut store = SubfileStore::create(&StorageBackend::Memory, 0, 0, 10_000).unwrap();
        let mut map =
            ChecksumMap::for_store(&StorageBackend::Memory, 0, 0, &mut store, true).unwrap();
        assert_eq!(map.pages(), 3);
        store.write_at(4000, &[7; 200]).unwrap();
        // Stale until recorded: pages 0 and 1 are both touched by [4000, 4200).
        assert_eq!(map.verify_range(&mut store, 4000, 200).unwrap(), 2);
        map.record_write(&mut store, 4000, 200).unwrap();
        assert_eq!(map.verify_all(&mut store).unwrap(), 0);
        // Verification is page-granular: a write in page 2 does not disturb
        // verification of page 0.
        store.write_at(9000, &[1]).unwrap();
        assert_eq!(map.verify_range(&mut store, 0, 4096).unwrap(), 0);
        assert_eq!(map.verify_range(&mut store, 9000, 1).unwrap(), 1);
    }

    #[test]
    fn sidecar_round_trips_and_rejects_staleness() {
        let dir = std::env::temp_dir().join(format!("pf_crc_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let backend = StorageBackend::Directory(dir.clone());
        let mut store = SubfileStore::create(&backend, 5, 2, 9000).unwrap();
        store.write_at(100, b"payload").unwrap();
        let mut map = ChecksumMap::for_store(&backend, 5, 2, &mut store, true).unwrap();
        map.record_write(&mut store, 100, 7).unwrap();
        map.flush().unwrap();
        assert!(sidecar_path(&dir, 5, 2).exists());

        // Reload trusts the sidecar and agrees with the data.
        let map2 = ChecksumMap::for_store(&backend, 5, 2, &mut store, true).unwrap();
        assert_eq!(map2.verify_all(&mut store).unwrap(), 0);

        // An untrusted sidecar (journal replay happened) is rebuilt, so a
        // data change invisible to the sidecar still verifies clean.
        store.write_at(5000, &[3; 10]).unwrap();
        let map3 = ChecksumMap::for_store(&backend, 5, 2, &mut store, false).unwrap();
        assert_eq!(map3.verify_all(&mut store).unwrap(), 0);
        // ... while the trusted (stale) sidecar flags the page.
        let map4 = ChecksumMap::for_store(&backend, 5, 2, &mut store, true).unwrap();
        assert_eq!(map4.verify_all(&mut store).unwrap(), 1);

        // A corrupt sidecar falls back to rebuild rather than erroring.
        std::fs::write(sidecar_path(&dir, 5, 2), b"PFCSgarbage").unwrap();
        let map5 = ChecksumMap::for_store(&backend, 5, 2, &mut store, true).unwrap();
        assert_eq!(map5.verify_all(&mut store).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_bit_flip_is_detected() {
        let dir = std::env::temp_dir().join(format!("pf_crc_flip_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let backend = StorageBackend::Directory(dir.clone());
        let mut store = SubfileStore::create(&backend, 1, 0, 4096 * 2).unwrap();
        store.write_at(0, &vec![0xAAu8; 8192]).unwrap();
        let mut map = ChecksumMap::for_store(&backend, 1, 0, &mut store, true).unwrap();
        map.record_write(&mut store, 0, 8192).unwrap();
        let path = store.path().unwrap().to_path_buf();
        store.flush().unwrap();

        // Flip one byte behind the store's back, as disk rot would.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[5000] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut reopened = SubfileStore::open_or_create(&backend, 1, 0, 8192).unwrap().0;
        assert_eq!(map.verify_all(&mut reopened).unwrap(), 1);
        assert_eq!(map.verify_range(&mut reopened, 0, 4096).unwrap(), 0);
        assert_eq!(map.verify_range(&mut reopened, 4097, 1000).unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_write_resizes_with_the_store() {
        let mut store = SubfileStore::create(&StorageBackend::Memory, 0, 0, 100).unwrap();
        let mut map =
            ChecksumMap::for_store(&StorageBackend::Memory, 0, 0, &mut store, true).unwrap();
        assert_eq!(map.pages(), 1);
        store.replace(vec![1u8; 10_000]).unwrap();
        map.record_write(&mut store, 0, 10_000).unwrap();
        assert_eq!(map.pages(), 3);
        assert_eq!(map.verify_all(&mut store).unwrap(), 0);
    }
}
