//! Write-ahead intent journal for [`SubfileStore`] scatter writes.
//!
//! A networked scatter write lands on several non-contiguous segments of a
//! subfile. A daemon crash between two of those segments would leave a
//! *torn* subfile — some segments carrying the new bytes, some the old —
//! which no retry can detect, because the projection arithmetic is
//! oblivious to history. The journal closes that hole with the classic
//! redo-log discipline:
//!
//! 1. **Intend** — before the first byte touches the store, the full
//!    intent (segment list, payload checksum, payload bytes) is appended
//!    to the journal and synced.
//! 2. **Apply** — the scatter writes run against the store.
//! 3. **Checkpoint** — once the store itself has been flushed, the journal
//!    is truncated; records are redundant from then on.
//!
//! On reopen after a crash, [`Journal::recover`] replays every complete,
//! checksum-valid record in order (scatter writes use absolute offsets, so
//! replay is idempotent) and discards a torn tail record — the crash
//! happened before the intent was durable, so the write never happened.
//! Each record also carries the client's `(session, seq)` retry stamp and
//! the acknowledged byte count, letting a daemon repopulate its dedup
//! window and answer a post-crash retry with the original result.
//!
//! Memory-backed stores get [`Journal::Disabled`]: their bytes do not
//! survive a restart, so there is nothing for a journal to protect.

use crate::storage::{StorageBackend, SubfileStore};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Journal format version written in the header.
const JOURNAL_VERSION: u8 = 1;

/// File magic: "PFWJ" + version byte.
const MAGIC: [u8; 5] = [b'P', b'F', b'W', b'J', JOURNAL_VERSION];

/// Marker byte opening every record.
const RECORD_MARKER: u8 = 0xA5;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One scatter write's full intent, as journaled before application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentRecord {
    /// Client session that issued the write (0 = unstamped).
    pub session: u64,
    /// Client sequence number within the session.
    pub seq: u64,
    /// `(offset, len)` segments, in application order.
    pub segments: Vec<(u64, u64)>,
    /// Gathered payload bytes, in segment order.
    pub payload: Vec<u8>,
}

impl IntentRecord {
    /// Total bytes this intent stores (the acknowledged `written` count).
    #[must_use]
    pub fn written(&self) -> u64 {
        self.segments.iter().map(|&(_, len)| len).sum()
    }

    fn encode(&self) -> Vec<u8> {
        let body_len = 8 + 8 + 4 + 16 * self.segments.len() + 4 + self.payload.len();
        let mut out = Vec::with_capacity(1 + 4 + body_len);
        out.push(RECORD_MARKER);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for &(off, len) in &self.segments {
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one record body (after marker and length). `None` means the
    /// record is torn or corrupt and must be discarded.
    fn decode(body: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let end = pos.checked_add(n)?;
            if end > body.len() {
                return None;
            }
            let out = &body[*pos..end];
            *pos = end;
            Some(out)
        };
        let u64_at = |b: &[u8]| b.try_into().ok().map(u64::from_le_bytes);
        let u32_at = |b: &[u8]| b.try_into().ok().map(u32::from_le_bytes);
        let session = u64_at(take(&mut pos, 8)?)?;
        let seq = u64_at(take(&mut pos, 8)?)?;
        let nsegs = u32_at(take(&mut pos, 4)?)? as usize;
        // A record cannot hold more segments than bytes remain.
        if nsegs > body.len() / 16 + 1 {
            return None;
        }
        let mut segments = Vec::with_capacity(nsegs);
        let mut total = 0u64;
        for _ in 0..nsegs {
            let off = u64_at(take(&mut pos, 8)?)?;
            let len = u64_at(take(&mut pos, 8)?)?;
            total = total.checked_add(len)?;
            segments.push((off, len));
        }
        let crc = u32_at(take(&mut pos, 4)?)?;
        let payload = body.get(pos..)?.to_vec();
        if payload.len() as u64 != total || crc32(&payload) != crc {
            return None;
        }
        Some(IntentRecord { session, seq, segments, payload })
    }
}

/// What [`Journal::recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete records replayed into the store.
    pub replayed: usize,
    /// Torn/corrupt tail records discarded (at most 1 in practice).
    pub discarded: usize,
    /// `(session, seq, written)` stamps of replayed records, oldest first,
    /// for repopulating a retry dedup window.
    pub dedup: Vec<(u64, u64, u64)>,
}

/// A per-subfile write-ahead journal.
#[derive(Debug)]
pub enum Journal {
    /// No journaling (memory-backed stores).
    Disabled,
    /// A real journal file next to the subfile it protects.
    File {
        /// The open journal file, positioned at its end.
        file: File,
        /// Journal path (`file<fid>_subfile<idx>.journal`).
        path: PathBuf,
        /// Current journal length in bytes (header included).
        len: u64,
    },
}

impl Journal {
    /// Opens (or creates) the journal for subfile `subfile` of `file_id`
    /// under `backend`. Memory backends get [`Journal::Disabled`].
    pub fn open(backend: &StorageBackend, file_id: usize, subfile: usize) -> std::io::Result<Self> {
        let dir = match backend {
            StorageBackend::Memory => return Ok(Journal::Disabled),
            StorageBackend::Directory(dir) => dir,
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("file{file_id}_subfile{subfile}.journal"));
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let len = file.metadata()?.len();
        if len < MAGIC.len() as u64 {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&MAGIC)?;
            file.sync_data()?;
            return Ok(Journal::File { file, path, len: MAGIC.len() as u64 });
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Journal::File { file, path, len })
    }

    /// Whether this journal actually persists intents.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Journal::File { .. })
    }

    /// Current journal size in bytes (0 when disabled).
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            Journal::Disabled => 0,
            Journal::File { len, .. } => *len,
        }
    }

    /// Whether the journal holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() <= MAGIC.len() as u64
    }

    /// Appends `record` and syncs it to stable storage. After this returns,
    /// a crash at any point during the matching scatter writes is
    /// recoverable by replay.
    pub fn append(&mut self, record: &IntentRecord) -> std::io::Result<()> {
        match self {
            Journal::Disabled => Ok(()),
            Journal::File { file, len, .. } => {
                let bytes = record.encode();
                file.write_all(&bytes)?;
                file.sync_data()?;
                *len += bytes.len() as u64;
                Ok(())
            }
        }
    }

    /// Replays every complete record into `store` (in append order),
    /// discards a torn tail, flushes the store, and truncates the journal.
    pub fn recover(&mut self, store: &mut SubfileStore) -> std::io::Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let (file, len) = match self {
            Journal::Disabled => return Ok(report),
            Journal::File { file, len, .. } => (file, len),
        };
        let mut bytes = Vec::with_capacity(*len as usize);
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let mut pos = MAGIC.len();
        if bytes.len() < pos || bytes[..pos.min(bytes.len())] != MAGIC[..] {
            // Unrecognizable journal: treat everything as torn.
            report.discarded = usize::from(!bytes.is_empty());
        } else {
            while pos < bytes.len() {
                if bytes[pos] != RECORD_MARKER || pos + 5 > bytes.len() {
                    report.discarded += 1;
                    break;
                }
                let Ok(len_bytes) = bytes[pos + 1..pos + 5].try_into() else {
                    report.discarded += 1;
                    break;
                };
                let body_len = u32::from_le_bytes(len_bytes) as usize;
                let Some(end) = (pos + 5).checked_add(body_len) else {
                    report.discarded += 1;
                    break;
                };
                if end > bytes.len() {
                    report.discarded += 1;
                    break;
                }
                match IntentRecord::decode(&bytes[pos + 5..end]) {
                    Some(rec) => {
                        let mut off = 0usize;
                        let store_len = store.len();
                        for &(seg_off, seg_len) in &rec.segments {
                            let n = seg_len as usize;
                            if seg_off + seg_len <= store_len {
                                store.write_at(seg_off, &rec.payload[off..off + n])?;
                            }
                            off += n;
                        }
                        report.dedup.push((rec.session, rec.seq, rec.written()));
                        report.replayed += 1;
                        pos = end;
                    }
                    None => {
                        report.discarded += 1;
                        break;
                    }
                }
            }
        }
        store.flush()?;
        self.truncate()?;
        Ok(report)
    }

    /// Flushes `store` and truncates the journal (records are redundant
    /// once the store bytes are durable).
    pub fn checkpoint(&mut self, store: &mut SubfileStore) -> std::io::Result<()> {
        if let Journal::File { .. } = self {
            store.flush()?;
            self.truncate()?;
        }
        Ok(())
    }

    fn truncate(&mut self) -> std::io::Result<()> {
        if let Journal::File { file, len, .. } = self {
            file.set_len(MAGIC.len() as u64)?;
            file.seek(SeekFrom::End(0))?;
            file.sync_data()?;
            *len = MAGIC.len() as u64;
        }
        Ok(())
    }

    /// Deletes the journal file (used when a subfile is re-created from
    /// scratch and old intents must not replay into it).
    pub fn reset(&mut self) -> std::io::Result<()> {
        match self {
            Journal::Disabled => Ok(()),
            Journal::File { file, len, .. } => {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&MAGIC)?;
                file.sync_data()?;
                *len = MAGIC.len() as u64;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_backend(tag: &str) -> (StorageBackend, PathBuf) {
        let dir = std::env::temp_dir().join(format!("pf_journal_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        (StorageBackend::Directory(dir.clone()), dir)
    }

    fn record(session: u64, seq: u64, segs: &[(u64, u64)], byte: u8) -> IntentRecord {
        let total: u64 = segs.iter().map(|&(_, l)| l).sum();
        IntentRecord { session, seq, segments: segs.to_vec(), payload: vec![byte; total as usize] }
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn records_round_trip() {
        let rec = record(7, 42, &[(0, 3), (10, 2)], 9);
        let bytes = rec.encode();
        assert_eq!(bytes[0], RECORD_MARKER);
        let body = &bytes[5..];
        assert_eq!(IntentRecord::decode(body), Some(rec));
        // Any single-byte corruption of the payload is caught by the CRC.
        let mut bad = body.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert_eq!(IntentRecord::decode(&bad), None);
    }

    #[test]
    fn memory_backend_disables_journaling() {
        let j = Journal::open(&StorageBackend::Memory, 0, 0).unwrap();
        assert!(!j.is_enabled());
        assert_eq!(j.len(), 0);
    }

    #[test]
    fn replay_after_simulated_crash_heals_a_torn_write() {
        let (backend, dir) = temp_backend("replay");
        let mut store = SubfileStore::create(&backend, 1, 0, 32).unwrap();
        let mut journal = Journal::open(&backend, 1, 0).unwrap();
        // Intend a two-segment scatter, then "crash" after applying only
        // the first segment: the subfile is torn.
        let rec = record(5, 1, &[(0, 4), (16, 4)], 0xAB);
        journal.append(&rec).unwrap();
        store.write_at(0, &rec.payload[..4]).unwrap();
        drop(journal);
        drop(store);

        // Restart: reopen the store (preserving bytes) and recover.
        let (mut store, existed) = SubfileStore::open_or_create(&backend, 1, 0, 32).unwrap();
        assert!(existed);
        let mut journal = Journal::open(&backend, 1, 0).unwrap();
        let report = journal.recover(&mut store).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.discarded, 0);
        assert_eq!(report.dedup, vec![(5, 1, 8)]);
        assert_eq!(store.read_at(0, 4).unwrap(), vec![0xAB; 4]);
        assert_eq!(store.read_at(16, 4).unwrap(), vec![0xAB; 4], "second segment healed by replay");
        assert!(journal.is_empty(), "recovery checkpoints the journal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_record_is_discarded_not_replayed() {
        let (backend, dir) = temp_backend("torn");
        let mut store = SubfileStore::create(&backend, 2, 0, 32).unwrap();
        let mut journal = Journal::open(&backend, 2, 0).unwrap();
        let good = record(1, 1, &[(0, 4)], 0x11);
        journal.append(&good).unwrap();
        // A torn append: only half the second record reaches the file.
        let torn = record(1, 2, &[(8, 4)], 0x22).encode();
        if let Journal::File { file, .. } = &mut journal {
            file.write_all(&torn[..torn.len() / 2]).unwrap();
            file.sync_data().unwrap();
        }
        drop(journal);

        let mut journal = Journal::open(&backend, 2, 0).unwrap();
        let report = journal.recover(&mut store).unwrap();
        assert_eq!(report.replayed, 1, "the complete record replays");
        assert_eq!(report.discarded, 1, "the torn record is dropped");
        assert_eq!(store.read_at(0, 4).unwrap(), vec![0x11; 4]);
        assert_eq!(store.read_at(8, 4).unwrap(), vec![0; 4], "torn intent never applied");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_after_store_flush() {
        let (backend, dir) = temp_backend("ckpt");
        let mut store = SubfileStore::create(&backend, 3, 0, 16).unwrap();
        let mut journal = Journal::open(&backend, 3, 0).unwrap();
        journal.append(&record(1, 1, &[(0, 8)], 7)).unwrap();
        assert!(!journal.is_empty());
        journal.checkpoint(&mut store).unwrap();
        assert!(journal.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_is_idempotent_when_run_twice() {
        let (backend, dir) = temp_backend("idem");
        let mut store = SubfileStore::create(&backend, 4, 0, 16).unwrap();
        let mut journal = Journal::open(&backend, 4, 0).unwrap();
        journal.append(&record(9, 3, &[(2, 4)], 0x5C)).unwrap();
        let first = journal.recover(&mut store).unwrap();
        assert_eq!(first.replayed, 1);
        let second = journal.recover(&mut store).unwrap();
        assert_eq!(second.replayed, 0, "checkpointed records do not replay again");
        assert_eq!(store.read_at(2, 4).unwrap(), vec![0x5C; 4]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
