//! The paper's experiment (§8.2): N×N byte matrices written through
//! Clusterfile under each combination of physical and logical partitioning.
//!
//! Four compute nodes hold a row-block logical partition of the matrix; the
//! file is physically partitioned over four I/O nodes as column blocks
//! (`c`), square blocks (`b`) or row blocks (`r`). Every compute node writes
//! its full view; Table 1 reports the mean per-compute-node breakdown and
//! Table 2 the mean per-I/O-node scatter time.

use crate::fs::{Clusterfile, ClusterfileConfig, WritePolicy};
use crate::timing::WriteTimings;
use arraydist::matrix::MatrixLayout;
use parafile::Mapper;

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct PaperScenario {
    /// Matrix side in bytes (the paper sweeps 256, 512, 1024, 2048).
    pub matrix_dim: u64,
    /// Compute nodes (paper: 4).
    pub compute_nodes: usize,
    /// I/O nodes (paper: 4).
    pub io_nodes: usize,
    /// Physical layout of the file over the I/O nodes.
    pub physical: MatrixLayout,
    /// Logical layout over the compute nodes (paper: row blocks).
    pub logical: MatrixLayout,
    /// Whether I/O nodes write through to disk.
    pub write_through: bool,
    /// Repetitions to average over (paper: 10).
    pub repetitions: usize,
    /// Replication factor R for the physical layer (paper: 1). Replication
    /// is a placement property layered *under* the view machinery — each
    /// subfile's copies are written concurrently by the transport — so it
    /// does not change the paper's timing decomposition; the knob is
    /// validated here and carried into the result for labeling.
    pub replicas: usize,
}

impl PaperScenario {
    /// The paper's configuration for a given size / physical layout /
    /// policy.
    #[must_use]
    pub fn paper(matrix_dim: u64, physical: MatrixLayout, write_through: bool) -> Self {
        Self {
            matrix_dim,
            compute_nodes: 4,
            io_nodes: 4,
            physical,
            logical: MatrixLayout::RowBlocks,
            write_through,
            repetitions: 10,
            replicas: 1,
        }
    }

    /// Runs the scenario and aggregates the timing breakdown.
    #[must_use]
    pub fn run(&self) -> ScenarioResult {
        // Fail fast on an impossible replica placement (e.g. replicas=3
        // over 2 I/O nodes) before any simulation work happens.
        let _map = parafile_replica::ReplicaMap::new(self.io_nodes, self.replicas.max(1))
            .expect("scenario replica placement must be valid");
        let policy =
            if self.write_through { WritePolicy::WriteThrough } else { WritePolicy::BufferCache };
        let n = self.matrix_dim;
        let logical = self.logical.partition(n, n, 1, self.compute_nodes as u64);

        let mut acc = ScenarioResult::new(self);
        for _ in 0..self.repetitions.max(1) {
            let mut fs = Clusterfile::new(ClusterfileConfig {
                compute_nodes: self.compute_nodes,
                io_nodes: self.io_nodes,
                hardware: clustersim::ClusterConfig::paper_testbed(
                    self.compute_nodes + self.io_nodes,
                ),
                write_policy: policy,
                stagger_writes: false,
            });
            let physical = self.physical.partition(n, n, 1, self.io_nodes as u64);
            let file = fs.create_file(physical, n * n);

            // View set: every compute node sets its row-block view; t_i is
            // the measured intersection + projection cost.
            let mut t_i_us = 0.0;
            for c in 0..self.compute_nodes {
                let t = fs.set_view(c, file, &logical, c);
                t_i_us += t.t_i.as_secs_f64() * 1e6;
            }
            t_i_us /= self.compute_nodes as f64;

            // Concurrent full-view writes.
            let ops: Vec<(usize, u64, u64, Vec<u8>)> = (0..self.compute_nodes)
                .map(|c| {
                    let m = Mapper::new(&logical, c);
                    let len = logical.element_len(c, n * n).expect("view element exists");
                    let data: Vec<u8> = (0..len).map(|y| (m.unmap(y) % 251) as u8).collect();
                    (c, 0, len - 1, data)
                })
                .collect();
            let timings = fs.write_group(file, &ops);
            acc.absorb_round(t_i_us, &timings, &fs);
        }
        acc.finish(self.repetitions.max(1));
        acc
    }
}

/// Aggregated results of a scenario, in the units of the paper's tables
/// (microseconds).
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Matrix side in bytes.
    pub matrix_dim: u64,
    /// Physical layout label (`c`, `b` or `r`).
    pub physical: String,
    /// Logical layout label.
    pub logical: String,
    /// Whether writes went through to disk.
    pub write_through: bool,
    /// Replication factor the scenario was configured with.
    pub replicas: usize,
    /// Mean view-set (intersection + projection) time per compute node, µs.
    /// Real measured wall-clock (paper: `t_i`).
    pub t_i_us: f64,
    /// Mean extremity-mapping time per compute node, µs (paper: `t_m`).
    pub t_m_us: f64,
    /// Mean gather time per compute node, µs (paper: `t_g`).
    pub t_g_us: f64,
    /// Mean simulated write completion per compute node, µs (paper: `t_w`).
    pub t_w_us: f64,
    /// Mean simulated scatter time per I/O node, µs (paper: `t_s`).
    pub t_s_us: f64,
    /// Mean real scatter wall-clock per I/O node, µs.
    pub t_s_real_us: f64,
    /// Mean scatter fragments per I/O node per round.
    pub fragments_per_io: f64,
    /// Messages per compute node per write.
    pub messages_per_compute: f64,
}

impl ScenarioResult {
    fn new(s: &PaperScenario) -> Self {
        Self {
            matrix_dim: s.matrix_dim,
            physical: s.physical.label().to_string(),
            logical: s.logical.label().to_string(),
            write_through: s.write_through,
            replicas: s.replicas.max(1),
            t_i_us: 0.0,
            t_m_us: 0.0,
            t_g_us: 0.0,
            t_w_us: 0.0,
            t_s_us: 0.0,
            t_s_real_us: 0.0,
            fragments_per_io: 0.0,
            messages_per_compute: 0.0,
        }
    }

    fn absorb_round(&mut self, t_i_us: f64, timings: &[WriteTimings], fs: &Clusterfile) {
        self.t_i_us += t_i_us;
        let nc = timings.len() as f64;
        self.t_m_us += timings.iter().map(|t| t.t_m.as_secs_f64() * 1e6).sum::<f64>() / nc;
        self.t_g_us += timings.iter().map(|t| t.t_g.as_secs_f64() * 1e6).sum::<f64>() / nc;
        self.t_w_us += timings.iter().map(|t| t.t_w_sim_ns as f64 / 1e3).sum::<f64>() / nc;
        self.messages_per_compute += timings.iter().map(|t| t.messages as f64).sum::<f64>() / nc;
        let io = fs.io_timings();
        let ni = io.len() as f64;
        self.t_s_us += io.iter().map(|t| t.t_s_sim_ns as f64 / 1e3).sum::<f64>() / ni;
        self.t_s_real_us += io.iter().map(|t| t.t_s_real.as_secs_f64() * 1e6).sum::<f64>() / ni;
        self.fragments_per_io += io.iter().map(|t| t.fragments as f64).sum::<f64>() / ni;
    }

    fn finish(&mut self, rounds: usize) {
        let r = rounds as f64;
        for v in [
            &mut self.t_i_us,
            &mut self.t_m_us,
            &mut self.t_g_us,
            &mut self.t_w_us,
            &mut self.t_s_us,
            &mut self.t_s_real_us,
            &mut self.fragments_per_io,
            &mut self.messages_per_compute,
        ] {
            *v /= r;
        }
    }

    /// A Table-1-style row: `size phys log t_i t_m t_g t_w`.
    #[must_use]
    pub fn table1_row(&self) -> String {
        format!(
            "{:>5}  {:>4}  {:>3}  {:>10.1} {:>10.3} {:>10.1} {:>12.1}",
            self.matrix_dim,
            self.physical,
            self.logical,
            self.t_i_us,
            self.t_m_us,
            self.t_g_us,
            self.t_w_us
        )
    }

    /// A Table-2-style row: `size phys log t_s`.
    #[must_use]
    pub fn table2_row(&self) -> String {
        format!(
            "{:>5}  {:>4}  {:>3}  {:>12.1} {:>12.3}",
            self.matrix_dim, self.physical, self.logical, self.t_s_us, self.t_s_real_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(physical: MatrixLayout, n: u64, through: bool) -> ScenarioResult {
        PaperScenario { repetitions: 1, ..PaperScenario::paper(n, physical, through) }.run()
    }

    /// The central qualitative claims of Table 1, on a small matrix.
    #[test]
    fn table1_shape_holds() {
        let c = quick(MatrixLayout::ColumnBlocks, 256, false);
        let b = quick(MatrixLayout::SquareBlocks, 256, false);
        let r = quick(MatrixLayout::RowBlocks, 256, false);
        // t_m and t_g vanish for the perfect match.
        assert_eq!(r.t_m_us, 0.0, "perfect match needs no extremity mapping");
        assert_eq!(r.t_g_us, 0.0, "perfect match needs no gather");
        // Worse matches gather more: c > b > r. The c/b gap is small and
        // t_g is wall-clock, so a single-rep run on a loaded host can
        // invert it; re-measure with more averaging before failing.
        let mut gather_ordered = c.t_g_us > b.t_g_us;
        for reps in [5, 10, 20] {
            if gather_ordered {
                break;
            }
            let c = PaperScenario {
                repetitions: reps,
                ..PaperScenario::paper(256, MatrixLayout::ColumnBlocks, false)
            }
            .run();
            let b = PaperScenario {
                repetitions: reps,
                ..PaperScenario::paper(256, MatrixLayout::SquareBlocks, false)
            }
            .run();
            gather_ordered = c.t_g_us > b.t_g_us;
        }
        assert!(gather_ordered, "c gathers more than b ({} vs {})", c.t_g_us, b.t_g_us);
        assert!(b.t_g_us > 0.0);
        // Intersection cost ordering: c > b > r.
        assert!(c.t_i_us > r.t_i_us, "c intersects slower than r");
        // Write completion: mismatched layouts send more, smaller messages.
        assert!(c.t_w_us > r.t_w_us, "c writes slower than r ({} vs {})", c.t_w_us, r.t_w_us);
        assert!(c.messages_per_compute > r.messages_per_compute);
    }

    /// Table 2's shape: scatter cost ordering and the disk premium.
    #[test]
    fn table2_shape_holds() {
        let c_bc = quick(MatrixLayout::ColumnBlocks, 256, false);
        let r_bc = quick(MatrixLayout::RowBlocks, 256, false);
        assert!(
            c_bc.t_s_us > r_bc.t_s_us,
            "fragmented scatter costs more ({} vs {})",
            c_bc.t_s_us,
            r_bc.t_s_us
        );
        let c_disk = quick(MatrixLayout::ColumnBlocks, 256, true);
        assert!(c_disk.t_s_us > 3.0 * c_bc.t_s_us, "write-through pays disk time");
    }

    /// t_i is roughly size-independent (the paper: "doesn't vary
    /// significantly with the matrix size").
    #[test]
    fn t_i_size_independent() {
        let small = quick(MatrixLayout::ColumnBlocks, 256, false);
        let large = quick(MatrixLayout::ColumnBlocks, 1024, false);
        // Within an order of magnitude despite 16× more data; t_g meanwhile
        // must grow superlinearly relative to it.
        assert!(large.t_i_us < small.t_i_us * 16.0, "t_i must not scale with the data");
        assert!(large.t_g_us > small.t_g_us, "t_g grows with the data");
    }
}
