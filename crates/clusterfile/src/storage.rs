//! Subfile storage backends.
//!
//! The simulator models *service times*; the bytes themselves can live in
//! memory (default, fastest for experiments) or in real files on the host
//! filesystem — one file per subfile, written with positioned I/O — so the
//! library is usable as an actual store and the scatter/gather paths are
//! exercised against a real kernel.
//!
//! All accessors return `io::Result`: a full disk or a bad offset is a
//! recoverable condition for a daemon (it answers with a `Nack`), not an
//! abort. File-backed stores use positioned I/O (`pread`/`pwrite` via
//! [`std::os::unix::fs::FileExt`] on unix, a seek fallback elsewhere) so
//! concurrent readers never race a shared cursor.
//!
//! The [`scatter`] / [`gather`] entry points coalesce adjacent segment
//! runs into a run table of [`BatchOp`] entries and submit the whole
//! table at once through the [`IoBatch`] trait — an io_uring-shaped
//! queue/submit interface whose portable backend issues one `FileExt`
//! positioned syscall per entry. A ring-backed implementation can slot in
//! behind the same submission shape without touching the callers.
//!
//! [`scatter`]: SubfileStore::scatter
//! [`gather`]: SubfileStore::gather

use std::fs::{File, OpenOptions};
#[cfg(not(unix))]
use std::io::Read;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Where subfile bytes are kept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageBackend {
    /// In-memory buffers (default).
    #[default]
    Memory,
    /// One real file per subfile under the given directory, named
    /// `file<fid>_subfile<idx>.bin`.
    Directory(PathBuf),
}

/// One subfile's bytes.
///
/// Public so transports other than the simulator (the `parafile-net`
/// daemon) can host the same stores behind the same [`StorageBackend`].
#[derive(Debug)]
pub enum SubfileStore {
    /// Bytes held in memory.
    Memory(Vec<u8>),
    /// Bytes held in a real host file.
    File {
        /// The open backing file.
        file: File,
        /// Current store length in bytes.
        len: u64,
        /// Path of the backing file.
        path: PathBuf,
    },
}

/// One submission entry in a positioned-I/O batch.
///
/// Entries are offset/length descriptors, not borrowed buffers: writes
/// slice a shared payload by `(src, len)` the way a ring submission
/// references a registered buffer, so a run table is plain data that can
/// be built once and handed to any [`IoBatch`] backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Write `payload[src..src + len]` at store byte `offset`.
    Write {
        /// Store byte offset the run lands at.
        offset: u64,
        /// Start of the run's bytes inside the shared payload.
        src: usize,
        /// Run length in bytes.
        len: usize,
    },
    /// Read `len` bytes at store byte `offset`, appending them to the
    /// batch's output buffer in submission order.
    Read {
        /// Store byte offset the run starts at.
        offset: u64,
        /// Run length in bytes.
        len: u64,
    },
}

/// One completion: the submitted entry's index and the bytes it moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// Index of the completed entry in the submitted run table.
    pub index: usize,
    /// Bytes written or read by that entry.
    pub bytes: u64,
}

/// io_uring-shaped batch submission: the caller queues a run table of
/// positioned operations and submits them all at once, receiving one
/// completion per entry.
///
/// Entries complete in submission order. The first failing entry aborts
/// the submission: earlier entries have already reached the store, the
/// failing and later ones produce no completions, and read bytes
/// appended to `out` by the failing entry are rolled back (earlier
/// entries' bytes stay). The portable backend issues one positioned
/// syscall per entry; the shape leaves room for a backend that stages
/// the whole table into a real submission ring.
pub trait IoBatch {
    /// Submits `ops` against the backing storage. Writes pull their bytes
    /// from `payload`; reads append theirs to `out`. Returns one [`Cqe`]
    /// per completed entry, in submission order.
    fn submit_batch(
        &mut self,
        ops: &[BatchOp],
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> io::Result<Vec<Cqe>>;
}

/// Folds ordered `(offset, len)` runs into a coalesced [`BatchOp`] run
/// table: adjacent runs (`offset_a + len_a == offset_b`) merge into one
/// entry. `writes` selects write entries (consuming a payload left to
/// right) or read entries. Zero-length runs still participate in
/// coalescing but never force a syscall of their own.
pub fn coalesce_runs<I>(runs: I, writes: bool) -> Vec<BatchOp>
where
    I: IntoIterator<Item = (u64, u64)>,
{
    let mut table: Vec<BatchOp> = Vec::new();
    let mut pos: usize = 0;
    for (offset, len) in runs {
        match table.last_mut() {
            Some(BatchOp::Write { offset: off0, len: acc, .. })
                if writes && *off0 + *acc as u64 == offset =>
            {
                *acc += len as usize;
            }
            Some(BatchOp::Read { offset: off0, len: acc }) if !writes && *off0 + *acc == offset => {
                *acc += len;
            }
            _ => table.push(if writes {
                BatchOp::Write { offset, src: pos, len: len as usize }
            } else {
                BatchOp::Read { offset, len }
            }),
        }
        pos += len as usize;
    }
    table
}

impl IoBatch for SubfileStore {
    fn submit_batch(
        &mut self,
        ops: &[BatchOp],
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> io::Result<Vec<Cqe>> {
        let mut cqes = Vec::with_capacity(ops.len());
        for (index, op) in ops.iter().enumerate() {
            let bytes = match *op {
                BatchOp::Write { offset, src, len } => {
                    let data = payload.get(src..src + len).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "batch write entry reaches past its payload",
                        )
                    })?;
                    self.write_at(offset, data)?;
                    len as u64
                }
                BatchOp::Read { offset, len } => {
                    self.gather_one(offset, len, out)?;
                    len
                }
            };
            cqes.push(Cqe { index, bytes });
        }
        Ok(cqes)
    }
}

fn out_of_range(what: &str, offset: u64, len: u64, store_len: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("{what} [{offset}, {offset}+{len}) beyond the {store_len}-byte subfile"),
    )
}

#[cfg(unix)]
fn positioned_write(file: &mut File, offset: u64, data: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(data, offset)
}

#[cfg(unix)]
fn positioned_read(file: &mut File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn positioned_write(file: &mut File, offset: u64, data: &[u8]) -> io::Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(data)
}

#[cfg(not(unix))]
fn positioned_read(file: &mut File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

impl SubfileStore {
    /// Creates a zero-filled store of `len` bytes.
    pub fn create(
        backend: &StorageBackend,
        file_id: usize,
        subfile: usize,
        len: u64,
    ) -> io::Result<Self> {
        match backend {
            StorageBackend::Memory => Ok(SubfileStore::Memory(vec![0u8; len as usize])),
            StorageBackend::Directory(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("file{file_id}_subfile{subfile}.bin"));
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)?;
                file.set_len(len)?;
                Ok(SubfileStore::File { file, len, path })
            }
        }
    }

    /// Opens an existing subfile *preserving its bytes*, or creates a
    /// zero-filled one of `len` bytes. Returns the store and whether it
    /// already existed.
    ///
    /// A memory store never survives its process, so the memory backend
    /// always creates fresh. A directory-backed store that survives a
    /// daemon crash keeps its on-disk length (which may differ from the
    /// requested `len`; the caller decides whether that is a geometry
    /// mismatch) so crash recovery can replay journaled intents into the
    /// real pre-crash bytes instead of a zero-filled impostor.
    pub fn open_or_create(
        backend: &StorageBackend,
        file_id: usize,
        subfile: usize,
        len: u64,
    ) -> io::Result<(Self, bool)> {
        if let StorageBackend::Directory(dir) = backend {
            let path = dir.join(format!("file{file_id}_subfile{subfile}.bin"));
            if path.exists() {
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                let on_disk = file.metadata()?.len();
                return Ok((SubfileStore::File { file, len: on_disk, path }, true));
            }
        }
        Ok((Self::create(backend, file_id, subfile, len)?, false))
    }

    /// Store length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            SubfileStore::Memory(v) => v.len() as u64,
            SubfileStore::File { len, .. } => *len,
        }
    }

    /// Whether the store holds zero bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces buffered bytes to stable storage (no-op for memory stores).
    pub fn flush(&mut self) -> io::Result<()> {
        match self {
            SubfileStore::Memory(_) => Ok(()),
            SubfileStore::File { file, .. } => file.sync_all(),
        }
    }

    /// Backing path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        match self {
            SubfileStore::Memory(_) => None,
            SubfileStore::File { path, .. } => Some(path),
        }
    }

    /// Writes `data` at byte `offset`. Out-of-range writes and I/O errors
    /// (e.g. a full disk) surface as `Err`, never a panic.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or_else(|| out_of_range("write", offset, data.len() as u64, self.len()))?;
        if end > self.len() {
            return Err(out_of_range("write", offset, data.len() as u64, self.len()));
        }
        match self {
            SubfileStore::Memory(v) => {
                v[offset as usize..offset as usize + data.len()].copy_from_slice(data);
                Ok(())
            }
            SubfileStore::File { file, .. } => positioned_write(file, offset, data),
        }
    }

    /// Reads exactly `buf.len()` bytes at `offset` into `buf`.
    pub fn read_into(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or_else(|| out_of_range("read", offset, buf.len() as u64, self.len()))?;
        if end > self.len() {
            return Err(out_of_range("read", offset, buf.len() as u64, self.len()));
        }
        match self {
            SubfileStore::Memory(v) => {
                buf.copy_from_slice(&v[offset as usize..offset as usize + buf.len()]);
                Ok(())
            }
            SubfileStore::File { file, .. } => positioned_read(file, offset, buf),
        }
    }

    /// Reads `len` bytes at `offset`.
    pub fn read_at(&mut self, offset: u64, len: u64) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        self.read_into(offset, &mut buf)?;
        Ok(buf)
    }

    /// Reads the whole store.
    pub fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let len = self.len();
        self.read_at(0, len)
    }

    /// Replaces the contents wholesale (used by relayout).
    pub fn replace(&mut self, data: Vec<u8>) -> io::Result<()> {
        match self {
            SubfileStore::Memory(v) => {
                *v = data;
                Ok(())
            }
            SubfileStore::File { file, len, .. } => {
                *len = data.len() as u64;
                file.set_len(*len)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&data)
            }
        }
    }

    /// Scatters a contiguous `payload` across `(offset, len)` runs, in
    /// order, coalescing adjacent runs (`offset_a + len_a == offset_b`)
    /// into a run table submitted as one [`IoBatch`] of positioned
    /// writes. The payload is consumed left to right; it must cover every
    /// run. Returns the bytes written.
    pub fn scatter<I>(&mut self, runs: I, payload: &[u8]) -> io::Result<u64>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let table = coalesce_runs(runs, true);
        let total: usize = table
            .iter()
            .map(|op| match op {
                BatchOp::Write { len, .. } => *len,
                BatchOp::Read { .. } => 0,
            })
            .sum();
        if total > payload.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "scatter payload shorter than its segment runs",
            ));
        }
        let mut sink = Vec::new();
        self.submit_batch(&table, payload, &mut sink)?;
        Ok(total as u64)
    }

    /// Gathers `(offset, len)` runs, in order, appending the bytes to
    /// `out`; adjacent runs are coalesced into a run table submitted as
    /// one [`IoBatch`] of positioned reads. Returns the bytes appended.
    pub fn gather<I>(&mut self, runs: I, out: &mut Vec<u8>) -> io::Result<u64>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let base = out.len();
        let table = coalesce_runs(runs, false);
        self.submit_batch(&table, &[], out)?;
        Ok((out.len() - base) as u64)
    }

    fn gather_one(&mut self, offset: u64, len: u64, out: &mut Vec<u8>) -> io::Result<()> {
        let base = out.len();
        out.resize(base + len as usize, 0);
        match self.read_into(offset, &mut out[base..]) {
            Ok(()) => Ok(()),
            Err(e) => {
                out.truncate(base);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_round_trip() {
        let mut s = SubfileStore::create(&StorageBackend::Memory, 0, 0, 16).unwrap();
        assert_eq!(s.len(), 16);
        assert!(s.path().is_none());
        s.write_at(4, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_at(3, 5).unwrap(), vec![0, 1, 2, 3, 0]);
        s.replace(vec![9; 4]).unwrap();
        assert_eq!(s.read_all().unwrap(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn file_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("pf_store_test_{}", std::process::id()));
        let backend = StorageBackend::Directory(dir.clone());
        let mut s = SubfileStore::create(&backend, 3, 1, 32).unwrap();
        assert_eq!(s.len(), 32);
        let path = s.path().unwrap().to_path_buf();
        assert!(path.ends_with("file3_subfile1.bin"));
        s.write_at(10, b"hello").unwrap();
        assert_eq!(s.read_at(9, 7).unwrap(), b"\0hello\0");
        // The bytes are really on disk.
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(&on_disk[10..15], b"hello");
        s.replace(b"short".to_vec()).unwrap();
        assert_eq!(s.read_all().unwrap(), b"short");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("pf_store_oob_{}", std::process::id()));
        let backend = StorageBackend::Directory(dir.clone());
        let mut s = SubfileStore::create(&backend, 0, 0, 4).unwrap();
        let err = s.write_at(2, &[0; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = s.read_at(3, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Offset overflow must not wrap.
        assert!(s.write_at(u64::MAX, &[1]).is_err());
        // The store is still usable afterwards.
        s.write_at(0, &[7; 4]).unwrap();
        assert_eq!(s.read_all().unwrap(), vec![7; 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scatter_gather_coalesce_adjacent_runs() {
        let mut s = SubfileStore::create(&StorageBackend::Memory, 0, 0, 24).unwrap();
        // Runs [0,4) + [4,8) coalesce; [16,20) is separate.
        let written =
            s.scatter([(0, 4), (4, 4), (16, 4)], &[1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]).unwrap();
        assert_eq!(written, 12);
        let mut out = Vec::new();
        let read = s.gather([(0, 4), (4, 4), (16, 4)], &mut out).unwrap();
        assert_eq!(read, 12);
        assert_eq!(out, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        // Short payload is an error and applies nothing past the runs it covers.
        assert!(s.scatter([(0, 8)], &[0; 4]).is_err());
    }

    #[test]
    fn coalesce_builds_minimal_run_tables() {
        // Adjacent write runs merge and keep payload slices contiguous.
        let w = coalesce_runs([(0, 4), (4, 4), (16, 4)], true);
        assert_eq!(
            w,
            vec![
                BatchOp::Write { offset: 0, src: 0, len: 8 },
                BatchOp::Write { offset: 16, src: 8, len: 4 },
            ]
        );
        // Same geometry as reads.
        let r = coalesce_runs([(0, 4), (4, 4), (16, 4)], false);
        assert_eq!(
            r,
            vec![BatchOp::Read { offset: 0, len: 8 }, BatchOp::Read { offset: 16, len: 4 }]
        );
        // Non-adjacent runs (gap, or out of order) stay separate entries.
        assert_eq!(coalesce_runs([(8, 4), (0, 4)], false).len(), 2);
        assert!(coalesce_runs(std::iter::empty(), true).is_empty());
    }

    #[test]
    fn mixed_batch_submits_in_order_with_one_cqe_per_entry() {
        let mut s = SubfileStore::create(&StorageBackend::Memory, 0, 0, 16).unwrap();
        s.write_at(8, &[9; 4]).unwrap();
        // A single submission carrying writes and a read-back of bytes the
        // store already held: completions arrive in submission order.
        let ops = [
            BatchOp::Write { offset: 0, src: 0, len: 4 },
            BatchOp::Read { offset: 8, len: 4 },
            BatchOp::Write { offset: 12, src: 4, len: 2 },
        ];
        let mut out = Vec::new();
        let cqes = s.submit_batch(&ops, &[1, 2, 3, 4, 5, 6], &mut out).unwrap();
        assert_eq!(
            cqes,
            vec![
                Cqe { index: 0, bytes: 4 },
                Cqe { index: 1, bytes: 4 },
                Cqe { index: 2, bytes: 2 },
            ]
        );
        assert_eq!(out, vec![9; 4]);
        assert_eq!(s.read_at(0, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(s.read_at(12, 2).unwrap(), vec![5, 6]);
    }

    #[test]
    fn failing_entry_aborts_the_batch_and_rolls_back_its_read_bytes() {
        let mut s = SubfileStore::create(&StorageBackend::Memory, 0, 0, 8).unwrap();
        s.write_at(0, &[5; 8]).unwrap();
        // Entry 0 lands, entry 1 is out of range: the error surfaces, the
        // first entry's bytes stay in `out`, the failing entry's do not.
        let ops = [BatchOp::Read { offset: 0, len: 4 }, BatchOp::Read { offset: 6, len: 4 }];
        let mut out = Vec::new();
        assert!(s.submit_batch(&ops, &[], &mut out).is_err());
        assert_eq!(out, vec![5; 4]);
        // A write entry whose slice reaches past the payload is rejected.
        let ops = [BatchOp::Write { offset: 0, src: 2, len: 4 }];
        assert!(s.submit_batch(&ops, &[0; 4], &mut out).is_err());
    }

    #[test]
    fn scatter_gather_on_real_files() {
        let dir = std::env::temp_dir().join(format!("pf_store_sg_{}", std::process::id()));
        let backend = StorageBackend::Directory(dir.clone());
        let mut s = SubfileStore::create(&backend, 0, 0, 16).unwrap();
        s.scatter([(2, 3), (5, 3), (12, 2)], b"abcdefgh").unwrap();
        let mut out = Vec::new();
        s.gather([(2, 6), (12, 2)], &mut out).unwrap();
        assert_eq!(out, b"abcdefgh");
        // A failing gather leaves `out` unchanged.
        let before = out.clone();
        assert!(s.gather([(15, 4)], &mut out).is_err());
        assert_eq!(out, before);
        std::fs::remove_dir_all(&dir).ok();
    }
}
