//! Subfile storage backends.
//!
//! The simulator models *service times*; the bytes themselves can live in
//! memory (default, fastest for experiments) or in real files on the host
//! filesystem — one file per subfile, written with positioned I/O — so the
//! library is usable as an actual store and the scatter/gather paths are
//! exercised against a real kernel.
//!
//! All accessors return `io::Result`: a full disk or a bad offset is a
//! recoverable condition for a daemon (it answers with a `Nack`), not an
//! abort. File-backed stores use positioned I/O (`pread`/`pwrite` via
//! [`std::os::unix::fs::FileExt`] on unix, a seek fallback elsewhere) so
//! concurrent readers never race a shared cursor, and the [`scatter`] /
//! [`gather`] entry points coalesce adjacent segment runs into single
//! syscalls.
//!
//! [`scatter`]: SubfileStore::scatter
//! [`gather`]: SubfileStore::gather

use std::fs::{File, OpenOptions};
#[cfg(not(unix))]
use std::io::Read;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Where subfile bytes are kept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageBackend {
    /// In-memory buffers (default).
    #[default]
    Memory,
    /// One real file per subfile under the given directory, named
    /// `file<fid>_subfile<idx>.bin`.
    Directory(PathBuf),
}

/// One subfile's bytes.
///
/// Public so transports other than the simulator (the `parafile-net`
/// daemon) can host the same stores behind the same [`StorageBackend`].
#[derive(Debug)]
pub enum SubfileStore {
    /// Bytes held in memory.
    Memory(Vec<u8>),
    /// Bytes held in a real host file.
    File {
        /// The open backing file.
        file: File,
        /// Current store length in bytes.
        len: u64,
        /// Path of the backing file.
        path: PathBuf,
    },
}

fn out_of_range(what: &str, offset: u64, len: u64, store_len: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("{what} [{offset}, {offset}+{len}) beyond the {store_len}-byte subfile"),
    )
}

#[cfg(unix)]
fn positioned_write(file: &mut File, offset: u64, data: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(data, offset)
}

#[cfg(unix)]
fn positioned_read(file: &mut File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn positioned_write(file: &mut File, offset: u64, data: &[u8]) -> io::Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(data)
}

#[cfg(not(unix))]
fn positioned_read(file: &mut File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

impl SubfileStore {
    /// Creates a zero-filled store of `len` bytes.
    pub fn create(
        backend: &StorageBackend,
        file_id: usize,
        subfile: usize,
        len: u64,
    ) -> io::Result<Self> {
        match backend {
            StorageBackend::Memory => Ok(SubfileStore::Memory(vec![0u8; len as usize])),
            StorageBackend::Directory(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("file{file_id}_subfile{subfile}.bin"));
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)?;
                file.set_len(len)?;
                Ok(SubfileStore::File { file, len, path })
            }
        }
    }

    /// Opens an existing subfile *preserving its bytes*, or creates a
    /// zero-filled one of `len` bytes. Returns the store and whether it
    /// already existed.
    ///
    /// A memory store never survives its process, so the memory backend
    /// always creates fresh. A directory-backed store that survives a
    /// daemon crash keeps its on-disk length (which may differ from the
    /// requested `len`; the caller decides whether that is a geometry
    /// mismatch) so crash recovery can replay journaled intents into the
    /// real pre-crash bytes instead of a zero-filled impostor.
    pub fn open_or_create(
        backend: &StorageBackend,
        file_id: usize,
        subfile: usize,
        len: u64,
    ) -> io::Result<(Self, bool)> {
        if let StorageBackend::Directory(dir) = backend {
            let path = dir.join(format!("file{file_id}_subfile{subfile}.bin"));
            if path.exists() {
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                let on_disk = file.metadata()?.len();
                return Ok((SubfileStore::File { file, len: on_disk, path }, true));
            }
        }
        Ok((Self::create(backend, file_id, subfile, len)?, false))
    }

    /// Store length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            SubfileStore::Memory(v) => v.len() as u64,
            SubfileStore::File { len, .. } => *len,
        }
    }

    /// Whether the store holds zero bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces buffered bytes to stable storage (no-op for memory stores).
    pub fn flush(&mut self) -> io::Result<()> {
        match self {
            SubfileStore::Memory(_) => Ok(()),
            SubfileStore::File { file, .. } => file.sync_all(),
        }
    }

    /// Backing path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        match self {
            SubfileStore::Memory(_) => None,
            SubfileStore::File { path, .. } => Some(path),
        }
    }

    /// Writes `data` at byte `offset`. Out-of-range writes and I/O errors
    /// (e.g. a full disk) surface as `Err`, never a panic.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or_else(|| out_of_range("write", offset, data.len() as u64, self.len()))?;
        if end > self.len() {
            return Err(out_of_range("write", offset, data.len() as u64, self.len()));
        }
        match self {
            SubfileStore::Memory(v) => {
                v[offset as usize..offset as usize + data.len()].copy_from_slice(data);
                Ok(())
            }
            SubfileStore::File { file, .. } => positioned_write(file, offset, data),
        }
    }

    /// Reads exactly `buf.len()` bytes at `offset` into `buf`.
    pub fn read_into(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or_else(|| out_of_range("read", offset, buf.len() as u64, self.len()))?;
        if end > self.len() {
            return Err(out_of_range("read", offset, buf.len() as u64, self.len()));
        }
        match self {
            SubfileStore::Memory(v) => {
                buf.copy_from_slice(&v[offset as usize..offset as usize + buf.len()]);
                Ok(())
            }
            SubfileStore::File { file, .. } => positioned_read(file, offset, buf),
        }
    }

    /// Reads `len` bytes at `offset`.
    pub fn read_at(&mut self, offset: u64, len: u64) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        self.read_into(offset, &mut buf)?;
        Ok(buf)
    }

    /// Reads the whole store.
    pub fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let len = self.len();
        self.read_at(0, len)
    }

    /// Replaces the contents wholesale (used by relayout).
    pub fn replace(&mut self, data: Vec<u8>) -> io::Result<()> {
        match self {
            SubfileStore::Memory(v) => {
                *v = data;
                Ok(())
            }
            SubfileStore::File { file, len, .. } => {
                *len = data.len() as u64;
                file.set_len(*len)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&data)
            }
        }
    }

    /// Scatters a contiguous `payload` across `(offset, len)` runs, in
    /// order, coalescing adjacent runs (`offset_a + len_a == offset_b`)
    /// into single positioned writes. The payload is consumed left to
    /// right; it must cover every run. Returns the bytes written.
    pub fn scatter<I>(&mut self, runs: I, payload: &[u8]) -> io::Result<u64>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut pos: usize = 0;
        // Pending coalesced run: store offset + payload start + length.
        let mut pending: Option<(u64, usize, usize)> = None;
        for (offset, len) in runs {
            let n = len as usize;
            if payload.len() - pos < n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "scatter payload shorter than its segment runs",
                ));
            }
            match pending {
                Some((off0, start, acc)) if off0 + acc as u64 == offset => {
                    pending = Some((off0, start, acc + n));
                }
                Some((off0, start, acc)) => {
                    self.write_at(off0, &payload[start..start + acc])?;
                    pending = Some((offset, pos, n));
                }
                None => pending = Some((offset, pos, n)),
            }
            pos += n;
        }
        if let Some((off0, start, acc)) = pending {
            self.write_at(off0, &payload[start..start + acc])?;
        }
        Ok(pos as u64)
    }

    /// Gathers `(offset, len)` runs, in order, appending the bytes to
    /// `out`; adjacent runs are coalesced into single positioned reads.
    /// Returns the bytes appended.
    pub fn gather<I>(&mut self, runs: I, out: &mut Vec<u8>) -> io::Result<u64>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let base = out.len();
        let mut pending: Option<(u64, u64)> = None;
        for (offset, len) in runs {
            match pending {
                Some((off0, acc)) if off0 + acc == offset => pending = Some((off0, acc + len)),
                Some((off0, acc)) => {
                    self.gather_one(off0, acc, out)?;
                    pending = Some((offset, len));
                }
                None => pending = Some((offset, len)),
            }
        }
        if let Some((off0, acc)) = pending {
            self.gather_one(off0, acc, out)?;
        }
        Ok((out.len() - base) as u64)
    }

    fn gather_one(&mut self, offset: u64, len: u64, out: &mut Vec<u8>) -> io::Result<()> {
        let base = out.len();
        out.resize(base + len as usize, 0);
        match self.read_into(offset, &mut out[base..]) {
            Ok(()) => Ok(()),
            Err(e) => {
                out.truncate(base);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_round_trip() {
        let mut s = SubfileStore::create(&StorageBackend::Memory, 0, 0, 16).unwrap();
        assert_eq!(s.len(), 16);
        assert!(s.path().is_none());
        s.write_at(4, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_at(3, 5).unwrap(), vec![0, 1, 2, 3, 0]);
        s.replace(vec![9; 4]).unwrap();
        assert_eq!(s.read_all().unwrap(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn file_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("pf_store_test_{}", std::process::id()));
        let backend = StorageBackend::Directory(dir.clone());
        let mut s = SubfileStore::create(&backend, 3, 1, 32).unwrap();
        assert_eq!(s.len(), 32);
        let path = s.path().unwrap().to_path_buf();
        assert!(path.ends_with("file3_subfile1.bin"));
        s.write_at(10, b"hello").unwrap();
        assert_eq!(s.read_at(9, 7).unwrap(), b"\0hello\0");
        // The bytes are really on disk.
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(&on_disk[10..15], b"hello");
        s.replace(b"short".to_vec()).unwrap();
        assert_eq!(s.read_all().unwrap(), b"short");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("pf_store_oob_{}", std::process::id()));
        let backend = StorageBackend::Directory(dir.clone());
        let mut s = SubfileStore::create(&backend, 0, 0, 4).unwrap();
        let err = s.write_at(2, &[0; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = s.read_at(3, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Offset overflow must not wrap.
        assert!(s.write_at(u64::MAX, &[1]).is_err());
        // The store is still usable afterwards.
        s.write_at(0, &[7; 4]).unwrap();
        assert_eq!(s.read_all().unwrap(), vec![7; 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scatter_gather_coalesce_adjacent_runs() {
        let mut s = SubfileStore::create(&StorageBackend::Memory, 0, 0, 24).unwrap();
        // Runs [0,4) + [4,8) coalesce; [16,20) is separate.
        let written =
            s.scatter([(0, 4), (4, 4), (16, 4)], &[1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]).unwrap();
        assert_eq!(written, 12);
        let mut out = Vec::new();
        let read = s.gather([(0, 4), (4, 4), (16, 4)], &mut out).unwrap();
        assert_eq!(read, 12);
        assert_eq!(out, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        // Short payload is an error and applies nothing past the runs it covers.
        assert!(s.scatter([(0, 8)], &[0; 4]).is_err());
    }

    #[test]
    fn scatter_gather_on_real_files() {
        let dir = std::env::temp_dir().join(format!("pf_store_sg_{}", std::process::id()));
        let backend = StorageBackend::Directory(dir.clone());
        let mut s = SubfileStore::create(&backend, 0, 0, 16).unwrap();
        s.scatter([(2, 3), (5, 3), (12, 2)], b"abcdefgh").unwrap();
        let mut out = Vec::new();
        s.gather([(2, 6), (12, 2)], &mut out).unwrap();
        assert_eq!(out, b"abcdefgh");
        // A failing gather leaves `out` unchanged.
        let before = out.clone();
        assert!(s.gather([(15, 4)], &mut out).is_err());
        assert_eq!(out, before);
        std::fs::remove_dir_all(&dir).ok();
    }
}
