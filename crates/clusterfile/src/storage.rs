//! Subfile storage backends.
//!
//! The simulator models *service times*; the bytes themselves can live in
//! memory (default, fastest for experiments) or in real files on the host
//! filesystem — one file per subfile, written with positioned I/O — so the
//! library is usable as an actual store and the scatter/gather paths are
//! exercised against a real kernel.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Where subfile bytes are kept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageBackend {
    /// In-memory buffers (default).
    #[default]
    Memory,
    /// One real file per subfile under the given directory, named
    /// `file<fid>_subfile<idx>.bin`.
    Directory(PathBuf),
}

/// One subfile's bytes.
///
/// Public so transports other than the simulator (the `parafile-net`
/// daemon) can host the same stores behind the same [`StorageBackend`].
#[derive(Debug)]
pub enum SubfileStore {
    /// Bytes held in memory.
    Memory(Vec<u8>),
    /// Bytes held in a real host file.
    File {
        /// The open backing file.
        file: File,
        /// Current store length in bytes.
        len: u64,
        /// Path of the backing file.
        path: PathBuf,
    },
}

impl SubfileStore {
    /// Creates a zero-filled store of `len` bytes.
    pub fn create(
        backend: &StorageBackend,
        file_id: usize,
        subfile: usize,
        len: u64,
    ) -> std::io::Result<Self> {
        match backend {
            StorageBackend::Memory => Ok(SubfileStore::Memory(vec![0u8; len as usize])),
            StorageBackend::Directory(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("file{file_id}_subfile{subfile}.bin"));
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)?;
                file.set_len(len)?;
                Ok(SubfileStore::File { file, len, path })
            }
        }
    }

    /// Opens an existing subfile *preserving its bytes*, or creates a
    /// zero-filled one of `len` bytes. Returns the store and whether it
    /// already existed.
    ///
    /// A memory store never survives its process, so the memory backend
    /// always creates fresh. A directory-backed store that survives a
    /// daemon crash keeps its on-disk length (which may differ from the
    /// requested `len`; the caller decides whether that is a geometry
    /// mismatch) so crash recovery can replay journaled intents into the
    /// real pre-crash bytes instead of a zero-filled impostor.
    pub fn open_or_create(
        backend: &StorageBackend,
        file_id: usize,
        subfile: usize,
        len: u64,
    ) -> std::io::Result<(Self, bool)> {
        if let StorageBackend::Directory(dir) = backend {
            let path = dir.join(format!("file{file_id}_subfile{subfile}.bin"));
            if path.exists() {
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                let on_disk = file.metadata()?.len();
                return Ok((SubfileStore::File { file, len: on_disk, path }, true));
            }
        }
        Ok((Self::create(backend, file_id, subfile, len)?, false))
    }

    /// Store length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            SubfileStore::Memory(v) => v.len() as u64,
            SubfileStore::File { len, .. } => *len,
        }
    }

    /// Whether the store holds zero bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces buffered bytes to stable storage (no-op for memory stores).
    pub fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SubfileStore::Memory(_) => Ok(()),
            SubfileStore::File { file, .. } => file.sync_all(),
        }
    }

    /// Backing path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        match self {
            SubfileStore::Memory(_) => None,
            SubfileStore::File { path, .. } => Some(path),
        }
    }

    /// Writes `data` at byte `offset`.
    ///
    /// # Panics
    /// Panics on out-of-range writes or I/O errors (storage corruption is
    /// not a recoverable condition for the simulation).
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        match self {
            SubfileStore::Memory(v) => {
                v[offset as usize..offset as usize + data.len()].copy_from_slice(data);
            }
            SubfileStore::File { file, len, .. } => {
                assert!(offset + data.len() as u64 <= *len, "write beyond the subfile");
                file.seek(SeekFrom::Start(offset)).expect("seek subfile");
                file.write_all(data).expect("write subfile");
            }
        }
    }

    /// Reads `len` bytes at `offset`.
    pub fn read_at(&mut self, offset: u64, len: u64) -> Vec<u8> {
        match self {
            SubfileStore::Memory(v) => v[offset as usize..(offset + len) as usize].to_vec(),
            SubfileStore::File { file, len: flen, .. } => {
                assert!(offset + len <= *flen, "read beyond the subfile");
                let mut buf = vec![0u8; len as usize];
                file.seek(SeekFrom::Start(offset)).expect("seek subfile");
                file.read_exact(&mut buf).expect("read subfile");
                buf
            }
        }
    }

    /// Reads the whole store.
    pub fn read_all(&mut self) -> Vec<u8> {
        let len = self.len();
        self.read_at(0, len)
    }

    /// Replaces the contents wholesale (used by relayout).
    pub fn replace(&mut self, data: Vec<u8>) {
        match self {
            SubfileStore::Memory(v) => *v = data,
            SubfileStore::File { file, len, .. } => {
                *len = data.len() as u64;
                file.set_len(*len).expect("resize subfile");
                file.seek(SeekFrom::Start(0)).expect("seek subfile");
                file.write_all(&data).expect("rewrite subfile");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_round_trip() {
        let mut s = SubfileStore::create(&StorageBackend::Memory, 0, 0, 16).unwrap();
        assert_eq!(s.len(), 16);
        assert!(s.path().is_none());
        s.write_at(4, &[1, 2, 3]);
        assert_eq!(s.read_at(3, 5), vec![0, 1, 2, 3, 0]);
        s.replace(vec![9; 4]);
        assert_eq!(s.read_all(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn file_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("pf_store_test_{}", std::process::id()));
        let backend = StorageBackend::Directory(dir.clone());
        let mut s = SubfileStore::create(&backend, 3, 1, 32).unwrap();
        assert_eq!(s.len(), 32);
        let path = s.path().unwrap().to_path_buf();
        assert!(path.ends_with("file3_subfile1.bin"));
        s.write_at(10, b"hello");
        assert_eq!(s.read_at(9, 7), b"\0hello\0");
        // The bytes are really on disk.
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(&on_disk[10..15], b"hello");
        s.replace(b"short".to_vec());
        assert_eq!(s.read_all(), b"short");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "write beyond")]
    fn file_store_bounds_checked() {
        let dir = std::env::temp_dir().join(format!("pf_store_oob_{}", std::process::id()));
        let backend = StorageBackend::Directory(dir.clone());
        let mut s = SubfileStore::create(&backend, 0, 0, 4).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.write_at(2, &[0; 8]);
        }));
        std::fs::remove_dir_all(&dir).ok();
        if let Err(e) = result {
            std::panic::resume_unwind(e);
        }
    }
}
