//! Two-phase collective writes — an extension on top of the paper's model.
//!
//! When logical and physical partitions match poorly, every compute node
//! sends small fragments to every I/O node. Two-phase (ROMIO-style)
//! collective I/O first **exchanges** data among the compute nodes so that
//! each ends up holding one subfile's contents contiguously, then each
//! aggregator ships a single contiguous block to its I/O node.
//!
//! The exchange schedule is exactly a [`RedistributionPlan`] from the
//! logical to the physical partition — the paper's machinery makes the
//! optimization a few lines: "using the redistribution algorithm it is
//! possible to implement disk redistribution on the fly … in order to
//! better suit the layout to a certain access pattern" (§3).

use crate::fs::{Clusterfile, FileId, Message};
use parafile::model::Partition;

/// Timing breakdown of a collective write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectiveTimings {
    /// Simulated time of the compute-side exchange phase (ns).
    pub exchange_ns: u64,
    /// Simulated time of the aggregated write phase (ns).
    pub write_ns: u64,
    /// Exchange messages sent between compute nodes.
    pub exchange_messages: u64,
    /// Bytes that crossed the network during the exchange.
    pub exchange_bytes: u64,
    /// Write messages to I/O nodes (one per subfile).
    pub write_messages: u64,
}

impl Clusterfile {
    /// Collectively writes every compute node's **full view** of `file` in
    /// two phases. `data[c]` holds compute node `c`'s view contents
    /// (element `c` of `logical`).
    ///
    /// Requires as many compute nodes as subfiles (each compute node
    /// aggregates one subfile). Returns the phase timings.
    ///
    /// # Panics
    /// Panics if the shape prerequisites don't hold or buffers have the
    /// wrong length.
    pub fn collective_write(
        &mut self,
        file: FileId,
        logical: &Partition,
        data: &[Vec<u8>],
    ) -> CollectiveTimings {
        let compute_nodes = self.config().compute_nodes;
        let io_nodes = self.config().io_nodes;
        assert!(
            compute_nodes >= io_nodes,
            "need at least one compute node per subfile to aggregate"
        );
        assert_eq!(data.len(), logical.element_count(), "one buffer per view");
        let physical = self.physical_partition(file).clone();
        let file_len = self.file_len(file);
        for (c, buf) in data.iter().enumerate() {
            assert_eq!(
                buf.len() as u64,
                logical.element_len(c, file_len).expect("view element exists"),
                "view {c} buffer length"
            );
        }

        // The exchange schedule: logical → physical redistribution, compiled
        // (and cached) by the deployment's plan engine. Charge a modeled
        // planning cost (the collective analogue of view setting).
        let plan = self
            .plan_engine()
            .compile_redist(logical, &physical)
            .expect("partitions describe the same file");
        for c in 0..compute_nodes {
            self.cluster_mut().compute(c, 30_000 + 500 * plan.runs_per_period() as u64);
        }

        // Assemble each subfile's contents at its aggregator, packing one
        // message per (source, aggregator) pair per phase.
        let windows = if file_len > plan.displacement() {
            (file_len - plan.displacement()).div_ceil(plan.period().max(1))
        } else {
            0
        };
        let mut timings = CollectiveTimings::default();
        let phase_start: Vec<u64> = (0..compute_nodes).map(|c| self.cluster().clock(c)).collect();

        // aggregator for subfile s is compute node s.
        let mut assembled: Vec<Vec<u8>> = (0..io_nodes)
            .map(|s| vec![0u8; physical.element_len(s, file_len).expect("subfile") as usize])
            .collect();
        // Pack per (src, dst) messages: (payload, unpack runs).
        for pair in plan.pairs() {
            let src = pair.src_element;
            let agg = pair.dst_element; // aggregator index == subfile index
            let mut payload: Vec<u8> = Vec::new();
            let mut unpack: Vec<(u64, u64)> = Vec::new();
            for k in 0..windows {
                let base = plan.displacement() + k * plan.period();
                for run in plan.runs_of(pair) {
                    let abs = base + run.file_rel;
                    if abs >= file_len {
                        continue;
                    }
                    let len = run.len.min(file_len - abs);
                    let s_off = (run.src_off + k * pair.src_period) as usize;
                    let d_off = run.dst_off + k * pair.dst_period;
                    payload.extend_from_slice(&data[src][s_off..s_off + len as usize]);
                    unpack.push((d_off, len));
                }
            }
            if payload.is_empty() {
                continue;
            }
            if src == agg {
                // Local: a memcpy, no message.
                let mut pos = 0usize;
                for (d_off, len) in &unpack {
                    assembled[agg][*d_off as usize..(*d_off + *len) as usize]
                        .copy_from_slice(&payload[pos..pos + *len as usize]);
                    pos += *len as usize;
                }
                let cost = self
                    .config()
                    .hardware
                    .cache
                    .write_fragmented_ns(payload.len() as u64, unpack.len() as u64);
                self.cluster_mut().compute(agg, cost);
            } else {
                timings.exchange_messages += 1;
                timings.exchange_bytes += payload.len() as u64;
                let bytes = 24 + payload.len() as u64;
                self.cluster_mut().send(
                    src,
                    agg,
                    bytes,
                    Message::Exchange { file, subfile: agg, runs: unpack, payload },
                );
            }
        }
        // Drain the exchange; handlers copy into the staging area.
        self.begin_collective(file, assembled);
        self.drain_public();
        let exchange_end: Vec<u64> = (0..compute_nodes).map(|c| self.cluster().clock(c)).collect();
        timings.exchange_ns =
            exchange_end.iter().zip(&phase_start).map(|(e, s)| e - s).max().unwrap_or(0);

        // Phase 2: each aggregator ships one contiguous block.
        let assembled = self.take_collective(file);
        for (s, buf) in assembled.into_iter().enumerate() {
            if buf.is_empty() {
                continue;
            }
            timings.write_messages += 1;
            let bytes = 24 + buf.len() as u64;
            let io = self.io_node_id(s);
            self.cluster_mut().send(
                s,
                io,
                bytes,
                Message::RawWrite { file, subfile: s, offset: 0, payload: buf },
            );
        }
        self.drain_public();
        let write_end: Vec<u64> = (0..compute_nodes).map(|c| self.cluster().clock(c)).collect();
        timings.write_ns =
            write_end.iter().zip(&exchange_end).map(|(e, s)| e - s).max().unwrap_or(0);
        timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{ClusterfileConfig, WritePolicy};
    use arraydist::matrix::MatrixLayout;
    use parafile::Mapper;

    fn view_buffers(logical: &Partition, file_len: u64) -> Vec<Vec<u8>> {
        (0..logical.element_count())
            .map(|c| {
                let m = Mapper::new(logical, c);
                (0..logical.element_len(c, file_len).unwrap())
                    .map(|y| (m.unmap(y) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn collective_write_lands_correctly() {
        for layout in MatrixLayout::all() {
            let mut fs =
                Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
            let n = 32u64;
            let file = fs.create_file(layout.partition(n, n, 1, 4), n * n);
            let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
            let t = fs.collective_write(file, &logical, &view_buffers(&logical, n * n));
            assert_eq!(t.write_messages, 4, "one aggregated write per subfile");
            let contents = fs.file_contents(file);
            for (x, &b) in contents.iter().enumerate() {
                assert_eq!(b, (x as u64 % 251) as u8, "layout {layout:?} byte {x}");
            }
        }
    }

    #[test]
    fn matched_layout_needs_no_exchange() {
        let mut fs =
            Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
        let n = 32u64;
        let file = fs.create_file(MatrixLayout::RowBlocks.partition(n, n, 1, 4), n * n);
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        let t = fs.collective_write(file, &logical, &view_buffers(&logical, n * n));
        assert_eq!(t.exchange_messages, 0, "views already match the subfiles");
        assert_eq!(t.exchange_bytes, 0);
    }

    #[test]
    fn mismatched_layout_exchanges_all_remote_data() {
        let mut fs =
            Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
        let n = 32u64;
        let file = fs.create_file(MatrixLayout::ColumnBlocks.partition(n, n, 1, 4), n * n);
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        let t = fs.collective_write(file, &logical, &view_buffers(&logical, n * n));
        // Each compute node keeps 1/4 of its data locally, exchanges 3/4.
        assert_eq!(t.exchange_messages, 12);
        assert_eq!(t.exchange_bytes, (n * n / 4) * 3);
    }

    /// Under write-through, the collective write turns four fragmented disk
    /// writes into one contiguous stream per I/O node, beating the direct
    /// path for the mismatched layout.
    #[test]
    fn collective_beats_direct_for_mismatched_disk_writes() {
        let n = 256u64;
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);

        let direct = {
            let mut fs =
                Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::WriteThrough));
            let file = fs.create_file(MatrixLayout::ColumnBlocks.partition(n, n, 1, 4), n * n);
            for c in 0..4usize {
                fs.set_view(c, file, &logical, c);
            }
            let ops: Vec<(usize, u64, u64, Vec<u8>)> = view_buffers(&logical, n * n)
                .into_iter()
                .enumerate()
                .map(|(c, d)| (c, 0, d.len() as u64 - 1, d))
                .collect();
            let t = fs.write_group(file, &ops);
            t.iter().map(|w| w.t_w_sim_ns).max().unwrap()
        };
        let collective = {
            let mut fs =
                Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::WriteThrough));
            let file = fs.create_file(MatrixLayout::ColumnBlocks.partition(n, n, 1, 4), n * n);
            let t = fs.collective_write(file, &logical, &view_buffers(&logical, n * n));
            t.exchange_ns + t.write_ns
        };
        assert!(
            collective < direct,
            "two-phase should win for the mismatched layout ({collective} vs {direct})"
        );
    }
}
