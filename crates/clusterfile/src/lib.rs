//! Clusterfile — the case-study parallel file system of §8 of the paper,
//! rebuilt over the [`clustersim`] discrete-event cluster.
//!
//! The cluster's nodes are split into *compute nodes* and *I/O nodes*. A
//! file is physically partitioned into subfiles (one per I/O node) and
//! logically partitioned into views (one per compute process), both
//! described by the [`parafile`] file model. The write path follows the
//! paper's pseudocode exactly:
//!
//! 1. **View set** — the compute node intersects its view with every
//!    subfile, keeps `PROJ_V(V∩S)` locally and sends `PROJ_S(V∩S)` to the
//!    subfile's I/O node. This is where the redistribution machinery runs;
//!    its cost (`t_i`) is paid once and amortized over all later accesses.
//! 2. **Write** — for each intersecting subfile the compute node maps the
//!    access interval's extremities onto the subfile (`t_m`), gathers the
//!    non-contiguous view data into a message buffer unless the projection
//!    is contiguous (`t_g`), and sends it. The I/O node scatters the
//!    received buffer into the subfile through the buffer cache (`t_s`),
//!    optionally writing through to disk.
//!
//! Real CPU phases (intersections, mappings, gathers, scatters) execute on
//! real buffers and are measured with wall-clock timers; network and
//! storage service times come from the simulator models. See DESIGN.md §5
//! for how this substitution preserves the paper's claims.

//! # Example
//!
//! ```
//! use arraydist::matrix::MatrixLayout;
//! use clusterfile::{Clusterfile, ClusterfileConfig, WritePolicy};
//!
//! let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(
//!     WritePolicy::BufferCache,
//! ));
//! // 16×16 byte matrix stored as column blocks over 4 I/O nodes.
//! let file = fs.create_file(MatrixLayout::ColumnBlocks.partition(16, 16, 1, 4), 256);
//! // Compute node 0 views the first 4 rows.
//! let logical = MatrixLayout::RowBlocks.partition(16, 16, 1, 4);
//! fs.set_view(0, file, &logical, 0);
//! let data = vec![7u8; 64];
//! let timings = fs.write(0, file, 0, 63, &data);
//! assert_eq!(timings.messages, 4, "a row view scatters over all 4 column subfiles");
//! assert_eq!(fs.read(0, file, 0, 63), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
mod collective;
mod fs;
pub mod journal;
mod relayout;
pub mod scenario;
pub mod storage;
mod timing;

pub use checksum::{crc32c, ChecksumMap, CHECKSUM_PAGE};
pub use collective::CollectiveTimings;
pub use fs::{Clusterfile, ClusterfileConfig, FileId, WritePolicy};
pub use journal::{crc32, IntentRecord, Journal, RecoveryReport};
pub use relayout::{relayout, relayout_cost, RelayoutReport};
pub use scenario::{PaperScenario, ScenarioResult};
pub use storage::{coalesce_runs, BatchOp, Cqe, IoBatch, StorageBackend, SubfileStore};
pub use timing::{IoTimings, ViewSetTimings, WriteTimings};
