//! On-the-fly physical redistribution (Panda-style, §3): re-laying a file's
//! subfiles out in a new physical partition to better match an access
//! pattern.

use crate::fs::{Clusterfile, FileId};
use parafile::matching::MatchingDegree;
use parafile::model::Partition;
use parafile::PlanEngine;
use std::time::{Duration, Instant};

/// Outcome of an on-the-fly relayout.
#[derive(Debug, Clone)]
pub struct RelayoutReport {
    /// Bytes moved between subfiles.
    pub bytes_moved: u64,
    /// Copy runs executed (fragmentation of the move).
    pub runs: usize,
    /// Real wall-clock of planning (intersections + projections + runs).
    pub plan_time: Duration,
    /// Real wall-clock of the data movement.
    pub move_time: Duration,
    /// Matching degree from the old to the new layout.
    pub matching: MatchingDegree,
}

/// Replaces `file`'s physical partition by `new_physical`, moving every byte
/// to its new subfile with the redistribution plan, and returns a report.
///
/// Views become stale after a relayout; callers re-set them (the paper's
/// design likewise recomputes projections when the physical layout changes).
pub fn relayout(fs: &mut Clusterfile, file: FileId, new_physical: Partition) -> RelayoutReport {
    let plan_start = Instant::now();
    let old_physical = fs.physical_partition(file).clone();
    let plan = fs
        .plan_engine()
        .compile_redist(&old_physical, &new_physical)
        .expect("partitions describe the same file");
    let matching = MatchingDegree::from_plan(plan.plan(), &new_physical);
    let plan_time = plan_start.elapsed();

    let move_start = Instant::now();
    let bytes_moved = fs.apply_relayout(file, new_physical, &plan);
    let move_time = move_start.elapsed();

    RelayoutReport { bytes_moved, runs: plan.runs_per_period(), plan_time, move_time, matching }
}

/// Estimates the simulated network cost of a relayout without performing it:
/// every byte that changes subfile crosses the wire once, in `runs` messages
/// per aligned period.
#[must_use]
pub fn relayout_cost(
    old_physical: &Partition,
    new_physical: &Partition,
    file_len: u64,
    net: &clustersim::NetworkModel,
) -> u64 {
    let plan = PlanEngine::global()
        .compile_redist(old_physical, new_physical)
        .expect("partitions describe the same file");
    if plan.bytes_per_period() == 0 {
        return 0;
    }
    let periods = file_len.div_ceil(plan.period()).max(1);
    let mut total = 0u64;
    for pair in plan.pairs() {
        if pair.src_element == pair.dst_element {
            continue; // stays on the same I/O node
        }
        for run in plan.runs_of(pair) {
            total += net.delivery_ns(run.len) * periods;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{ClusterfileConfig, WritePolicy};
    use arraydist::matrix::MatrixLayout;
    use parafile::Mapper;

    #[test]
    fn relayout_preserves_contents() {
        let mut fs =
            Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
        let n = 32u64;
        let old = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
        let file = fs.create_file(old, n * n);
        // Fill subfiles directly with a recognizable pattern.
        fs.fill_file(file, |x| (x % 251) as u8);
        let before = fs.file_contents(file);

        let new = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        let report = relayout(&mut fs, file, new.clone());
        assert_eq!(report.bytes_moved, n * n);
        assert!(report.runs > 4, "column → row relayout fragments");

        let after = fs.file_contents(file);
        assert_eq!(before, after, "relayout must not change file contents");
        // And the new physical layout is live: subfile 0 = first row block.
        let m = Mapper::new(&new, 0);
        for y in 0..16 {
            assert_eq!(fs.subfile(file, 0)[y as usize], ((m.unmap(y)) % 251) as u8);
        }
    }

    #[test]
    fn identity_relayout_moves_everything_locally() {
        let mut fs =
            Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
        let n = 16u64;
        let layout = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        let file = fs.create_file(layout.clone(), n * n);
        fs.fill_file(file, |x| (x * 3 % 256) as u8);
        let report = relayout(&mut fs, file, layout);
        assert_eq!(report.bytes_moved, n * n);
        assert_eq!(report.runs, 4, "identity relayout is one run per subfile");
        assert!((report.matching.degree - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn relayout_cost_zero_for_identity() {
        let layout = MatrixLayout::RowBlocks.partition(16, 16, 1, 4);
        let net = clustersim::NetworkModel::myrinet();
        assert_eq!(relayout_cost(&layout, &layout, 256, &net), 0);
        let cols = MatrixLayout::ColumnBlocks.partition(16, 16, 1, 4);
        assert!(relayout_cost(&layout, &cols, 256, &net) > 0);
    }
}
