//! The Clusterfile file system proper.

use crate::storage::{StorageBackend, SubfileStore};
use crate::timing::{IoTimings, ViewSetTimings, WriteTimings};
use clustersim::{Cluster, ClusterConfig, Delivery, NodeId};
use parafile::engine::{CompiledPlan, CompiledView, PlanEngine, SegmentReplay};
use parafile::model::Partition;
use parafile::redist::Projection;
use parafile::Mapper;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies an open file.
pub type FileId = usize;

/// Fixed I/O-node cost to process one request (kernel entry, request
/// parsing, buffer management) — 10 µs of a 2002-era CPU.
const IO_REQUEST_OVERHEAD_NS: u64 = 10_000;

/// Modeled compute-node cost to map one access interval's extremities onto
/// a subfile (the paper's `t_m` is a few µs per subfile on its hardware).
const MAPPING_CPU_NS: u64 = 3_000;

/// What the I/O nodes do with written data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Stage into the buffer cache only (the paper's `t^bc` columns).
    BufferCache,
    /// Stage into the cache and write through to disk (`t^disk` columns).
    WriteThrough,
}

/// Static configuration of a Clusterfile deployment.
#[derive(Debug, Clone)]
pub struct ClusterfileConfig {
    /// Number of compute nodes (node ids `0..compute_nodes`).
    pub compute_nodes: usize,
    /// Number of I/O nodes (node ids `compute_nodes..compute_nodes+io_nodes`).
    pub io_nodes: usize,
    /// Hardware models.
    pub hardware: ClusterConfig,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Stagger each compute node's per-subfile write loop to start at
    /// subfile `compute mod io_nodes` instead of subfile 0. With many
    /// concurrent writers this avoids every round hammering the same I/O
    /// node — matters when the network models receive-link contention.
    pub stagger_writes: bool,
}

impl ClusterfileConfig {
    /// The paper's deployment: four compute nodes and four I/O nodes on the
    /// Myrinet/IDE testbed.
    #[must_use]
    pub fn paper_deployment(policy: WritePolicy) -> Self {
        Self {
            compute_nodes: 4,
            io_nodes: 4,
            hardware: ClusterConfig::paper_testbed(8),
            write_policy: policy,
            stagger_writes: false,
        }
    }
}

/// Messages exchanged between compute and I/O nodes (public only because it
/// parameterizes the [`Cluster`] accessor; applications never construct it).
#[allow(missing_docs)]
pub enum Message {
    /// `PROJ_S(V∩S)` shipped to the subfile's I/O node at view-set time.
    ViewProjection { file: FileId, compute: usize, subfile: usize, projection: Projection },
    /// A write request: interval extremities on the subfile plus payload.
    WriteReq {
        file: FileId,
        compute: usize,
        subfile: usize,
        l_s: u64,
        r_s: u64,
        contiguous: bool,
        payload: Vec<u8>,
    },
    /// Write acknowledgment.
    WriteAck,
    /// A read request for `[l_s, r_s]` of the subfile.
    ReadReq { file: FileId, compute: usize, subfile: usize, l_s: u64, r_s: u64, contiguous: bool },
    /// Read response: the gathered subfile bytes.
    ReadData { file: FileId, subfile: usize, payload: Vec<u8> },
    /// Two-phase collective exchange: data destined for `subfile`, shipped
    /// to its aggregator compute node with subfile-linear unpack runs.
    Exchange { file: FileId, subfile: usize, runs: Vec<(u64, u64)>, payload: Vec<u8> },
    /// Aggregated contiguous write of a whole assembled region.
    RawWrite { file: FileId, subfile: usize, offset: u64, payload: Vec<u8> },
}

struct ViewState {
    view: Partition,
    element: usize,
    /// The engine-compiled view plan: per subfile, `PROJ_V` (kept at the
    /// compute node), the perfect-match flag, and the zero-allocation
    /// segment replay tables. Shared via `Arc` with the engine's cache.
    plan: Arc<CompiledView>,
    timings: ViewSetTimings,
}

struct FileState {
    physical: Partition,
    len: u64,
    /// Subfile contents, indexed by subfile (= I/O node offset).
    subfiles: Vec<SubfileStore>,
    /// Views keyed by compute node.
    views: HashMap<usize, ViewState>,
    /// `PROJ_S(V∩S)` held at the I/O nodes, keyed by (compute, subfile),
    /// lowered to a replay table once on arrival.
    io_projections: HashMap<(usize, usize), SegmentReplay>,
}

/// A Clusterfile instance: a set of files over a simulated cluster.
pub struct Clusterfile {
    cluster: Cluster<Message>,
    config: ClusterfileConfig,
    files: Vec<FileState>,
    io_timings: Vec<IoTimings>,
    /// Scratch area where in-flight reads assemble their results.
    read_buffers: HashMap<usize, (u64, Vec<u8>)>,
    /// Per-compute queues of write requests not yet issued: the write loop
    /// is sequential per subfile (send a request, wait for its ack, move to
    /// the next subfile), as in the paper's pseudocode.
    pending_writes: HashMap<usize, std::collections::VecDeque<QueuedWrite>>,
    /// Staging area for in-flight two-phase collective writes, keyed by
    /// file: one assembly buffer per subfile, held at the aggregators.
    collective_staging: HashMap<FileId, Vec<Vec<u8>>>,
    /// Accumulated real scatter time of in-flight reads, per compute node.
    read_scatter_real: HashMap<usize, Duration>,
    /// Where subfile bytes live (memory by default, or real files).
    storage: StorageBackend,
    /// Plan engine scoped to this deployment: one compilation path and plan
    /// cache per simulated cluster, so measured view-set times (`t_i`)
    /// reflect this instance's history rather than unrelated deployments in
    /// the same process.
    engine: PlanEngine,
}

/// A prepared per-subfile write request awaiting its turn.
struct QueuedWrite {
    file: FileId,
    subfile: usize,
    l_s: u64,
    r_s: u64,
    contiguous: bool,
    payload: Vec<u8>,
}

impl Clusterfile {
    /// Boots a Clusterfile deployment.
    ///
    /// # Panics
    /// Panics if the hardware node count doesn't cover compute + I/O nodes.
    #[must_use]
    pub fn new(config: ClusterfileConfig) -> Self {
        assert!(
            config.hardware.nodes >= config.compute_nodes + config.io_nodes,
            "hardware must provide every compute and I/O node"
        );
        let io_timings = vec![IoTimings::default(); config.io_nodes];
        Self {
            cluster: Cluster::new(config.hardware),
            config,
            files: Vec::new(),
            io_timings,
            read_buffers: HashMap::new(),
            pending_writes: HashMap::new(),
            collective_staging: HashMap::new(),
            read_scatter_real: HashMap::new(),
            storage: StorageBackend::Memory,
            engine: PlanEngine::new(),
        }
    }

    /// The deployment's plan engine (compiled-plan cache statistics).
    #[must_use]
    pub fn plan_engine(&self) -> &PlanEngine {
        &self.engine
    }

    /// Selects the storage backend for files created **after** this call
    /// (existing files keep their stores). [`StorageBackend::Directory`]
    /// puts one real file per subfile under the given directory.
    pub fn set_storage_backend(&mut self, backend: StorageBackend) {
        self.storage = backend;
    }

    fn io_node(&self, subfile: usize) -> NodeId {
        self.config.compute_nodes + subfile
    }

    /// The underlying simulator (for clocks, stats and failure injection).
    #[must_use]
    pub fn cluster(&self) -> &Cluster<Message> {
        &self.cluster
    }

    /// Mutable access to the simulator (failure injection in tests).
    pub fn cluster_mut(&mut self) -> &mut Cluster<Message> {
        &mut self.cluster
    }

    /// Accumulated per-I/O-node timings (paper's Table 2 source).
    #[must_use]
    pub fn io_timings(&self) -> &[IoTimings] {
        &self.io_timings
    }

    /// Clears the per-I/O-node accumulators.
    pub fn reset_io_timings(&mut self) {
        self.io_timings = vec![IoTimings::default(); self.config.io_nodes];
    }

    /// Creates a file physically partitioned by `physical` (one element per
    /// I/O node), `len` bytes long, zero-filled.
    ///
    /// # Panics
    /// Panics if the physical partition's element count differs from the
    /// I/O node count.
    pub fn create_file(&mut self, physical: Partition, len: u64) -> FileId {
        assert_eq!(physical.element_count(), self.config.io_nodes, "one subfile per I/O node");
        let file_id = self.files.len();
        let subfiles = (0..self.config.io_nodes)
            .map(|s| {
                let sub_len = physical.element_len(s, len).expect("subfile index valid");
                SubfileStore::create(&self.storage, file_id, s, sub_len)
                    .expect("subfile store creation")
            })
            .collect();
        self.files.push(FileState {
            physical,
            len,
            subfiles,
            views: HashMap::new(),
            io_projections: HashMap::new(),
        });
        self.files.len() - 1
    }

    /// File length in bytes.
    #[must_use]
    pub fn file_len(&self, file: FileId) -> u64 {
        self.files[file].len
    }

    /// A subfile's current contents (test/diagnostic accessor).
    #[must_use]
    pub fn subfile(&mut self, file: FileId, subfile: usize) -> Vec<u8> {
        self.files[file].subfiles[subfile].read_all().expect("read subfile")
    }

    /// The host path backing a subfile, when file-backed storage is in use.
    #[must_use]
    pub fn subfile_path(&self, file: FileId, subfile: usize) -> Option<std::path::PathBuf> {
        self.files[file].subfiles[subfile].path().map(|p| p.to_path_buf())
    }

    /// The file's current physical partition.
    #[must_use]
    pub fn physical_partition(&self, file: FileId) -> &Partition {
        &self.files[file].physical
    }

    /// Fills the file's logical contents byte-by-byte from `f(file_offset)`
    /// (test/setup helper; writes through the physical mapping directly).
    pub fn fill_file(&mut self, file: FileId, f: impl Fn(u64) -> u8) {
        let st = &mut self.files[file];
        for s in 0..st.subfiles.len() {
            let m = Mapper::new(&st.physical, s);
            let len = st.subfiles[s].len();
            let data: Vec<u8> = (0..len).map(|y| f(m.unmap(y))).collect();
            st.subfiles[s].replace(data).expect("fill subfile");
        }
    }

    /// Swaps the file onto a new physical partition by applying a
    /// redistribution plan built from the old one. Views become stale and
    /// are dropped. Returns the bytes moved.
    ///
    /// Simulated network costs of the subfile shuffle are estimated
    /// separately by [`crate::relayout_cost`]; this method performs the real
    /// data movement.
    pub fn apply_relayout(
        &mut self,
        file: FileId,
        new_physical: Partition,
        plan: &CompiledPlan,
    ) -> u64 {
        assert_eq!(new_physical.element_count(), self.config.io_nodes, "one subfile per I/O node");
        let st = &mut self.files[file];
        let old: Vec<Vec<u8>> =
            st.subfiles.iter_mut().map(|s| s.read_all().expect("read subfile")).collect();
        let mut new_bufs: Vec<Vec<u8>> = (0..new_physical.element_count())
            .map(|s| {
                vec![
                    0u8;
                    new_physical.element_len(s, st.len).expect("subfile index valid") as usize
                ]
            })
            .collect();
        let moved = plan.apply_parallel(&old, &mut new_bufs, st.len);
        for (s, buf) in new_bufs.into_iter().enumerate() {
            st.subfiles[s].replace(buf).expect("relayout subfile");
        }
        st.physical = new_physical;
        st.views.clear();
        st.io_projections.clear();
        moved
    }

    /// Assembles the file's linear contents from the subfiles.
    #[must_use]
    pub fn file_contents(&mut self, file: FileId) -> Vec<u8> {
        let st = &mut self.files[file];
        let mut out = vec![0u8; st.len as usize];
        for s in 0..st.subfiles.len() {
            let m = Mapper::new(&st.physical, s);
            let data = st.subfiles[s].read_all().expect("read subfile");
            for (y, &b) in data.iter().enumerate() {
                let x = m.unmap(y as u64);
                if x < st.len {
                    out[x as usize] = b;
                }
            }
        }
        out
    }

    /// Sets compute node `compute`'s view on `file` to element `element` of
    /// the logical partition `logical`.
    ///
    /// Runs the paper's view-set protocol: intersect the view with every
    /// subfile, keep `PROJ_V` locally, ship `PROJ_S` to the I/O nodes.
    /// Returns the measured intersection/projection cost (`t_i`).
    pub fn set_view(
        &mut self,
        compute: usize,
        file: FileId,
        logical: &Partition,
        element: usize,
    ) -> ViewSetTimings {
        let physical = self.files[file].physical.clone();
        let start = Instant::now();
        let plan =
            self.engine.compile_view(logical, element, &physical).expect("element indices valid");
        let t_i = start.elapsed();
        let timings = ViewSetTimings { t_i, intersecting_subfiles: plan.intersecting_subfiles() };

        // Simulated cost: a *modeled* 2002-era CPU time (a fixed base plus a
        // per-FALLS-node cost), keeping the simulation deterministic; the
        // measured wall-clock is reported separately in the timings.
        self.cluster.compute(compute, 50_000 + 2_000 * plan.work_nodes() as u64);
        for s in 0..self.config.io_nodes {
            let proj = &plan.access(s).proj_sub;
            if proj.is_empty() {
                continue;
            }
            let approx_bytes = 16 + 32 * proj.set.node_count() as u64;
            self.cluster.send(
                compute,
                self.io_node(s),
                approx_bytes,
                Message::ViewProjection { file, compute, subfile: s, projection: proj.clone() },
            );
        }
        self.drain();

        self.files[file]
            .views
            .insert(compute, ViewState { view: logical.clone(), element, plan, timings });
        timings
    }

    /// The view-set timings recorded for a compute node's view.
    #[must_use]
    pub fn view_timings(&self, compute: usize, file: FileId) -> Option<ViewSetTimings> {
        self.files[file].views.get(&compute).map(|v| v.timings)
    }

    /// Writes `data` to the view interval `[lo_v, hi_v]` of `compute`'s view
    /// on `file`, following the paper's write pseudocode. Returns the
    /// compute-node timing breakdown.
    pub fn write(
        &mut self,
        compute: usize,
        file: FileId,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> WriteTimings {
        let (mut timings, first_send) = self.begin_write(compute, file, lo_v, hi_v, data);
        self.drain();
        timings.t_w_sim_ns += self.cluster.clock(compute).saturating_sub(first_send);
        timings
    }

    /// Issues several writes (one per compute node) before processing any
    /// I/O, modelling the paper's concurrent writers. Returns one breakdown
    /// per operation, with `t_w` measured from each compute node's first
    /// request to its last acknowledgment.
    pub fn write_group(
        &mut self,
        file: FileId,
        ops: &[(usize, u64, u64, Vec<u8>)],
    ) -> Vec<WriteTimings> {
        let mut send_clocks = Vec::with_capacity(ops.len());
        let mut timings: Vec<WriteTimings> = ops
            .iter()
            .map(|(compute, lo, hi, data)| {
                let (t, first_send) = self.begin_write(*compute, file, *lo, *hi, data);
                send_clocks.push(first_send);
                t
            })
            .collect();
        self.drain();
        for ((compute, ..), (t, sent)) in ops.iter().zip(timings.iter_mut().zip(send_clocks)) {
            t.t_w_sim_ns += self.cluster.clock(*compute).saturating_sub(sent);
        }
        timings
    }

    /// The compute-node half of a write: mapping, gathering, and issuing the
    /// first per-subfile request (the rest follow ack-by-ack, matching the
    /// paper's sequential per-subfile write loop). Returns the breakdown
    /// plus the compute clock at the first request send — the paper
    /// measures `t_w` "between sending the first write request ... and
    /// receiving the last acknowledgment".
    fn begin_write(
        &mut self,
        compute: usize,
        file: FileId,
        lo_v: u64,
        hi_v: u64,
        data: &[u8],
    ) -> (WriteTimings, u64) {
        assert_eq!(data.len() as u64, hi_v - lo_v + 1, "data must cover the interval");
        let st = &self.files[file];
        let vs = st.views.get(&compute).expect("view must be set before writing");
        let physical = &st.physical;
        let view = &vs.view;
        let mv = Mapper::new(view, vs.element);

        let mut t_m = Duration::ZERO;
        let mut t_g = Duration::ZERO;
        let mut sim_cpu_ns = 0u64;
        let mut sends: Vec<(usize, u64, u64, bool, Vec<u8>)> = Vec::new();
        #[allow(unused_mut)]
        let mut all_contiguous = true;

        for s in 0..self.config.io_nodes {
            let replay = vs.plan.replay(s);
            if replay.is_empty() {
                continue;
            }
            let covered = replay.bytes_between(lo_v, hi_v);
            if covered == 0 {
                continue;
            }
            let perfect_match = vs.plan.access(s).perfect_match;

            // t_m: map the access interval extremities onto the subfile
            // (lines 3–4 of the paper's pseudocode). Free when view and
            // subfile perfectly overlap — the paper reports t_m = 0 there.
            let (l_s, r_s) = if perfect_match {
                (lo_v, hi_v)
            } else {
                let m_start = Instant::now();
                let ms = Mapper::new(physical, s);
                let x_lo = mv.unmap(lo_v);
                let x_hi = mv.unmap(hi_v);
                let l_s = ms.map_next(x_lo);
                let r_s = ms.map_prev(x_hi).expect("subfile holds data in range");
                t_m += m_start.elapsed();
                (l_s, r_s)
            };

            // Gather, unless the projection covers the interval contiguously
            // (lines 6–10).
            let contiguous = covered == hi_v - lo_v + 1;
            let payload = if contiguous {
                data.to_vec()
            } else {
                all_contiguous = false;
                let g_start = Instant::now();
                let mut buf = Vec::with_capacity(covered as usize);
                let mut seg_count = 0u64;
                replay.for_each_between(lo_v, hi_v, |seg| {
                    let a = (seg.l() - lo_v) as usize;
                    let b = (seg.r() - lo_v) as usize;
                    buf.extend_from_slice(&data[a..=b]);
                    seg_count += 1;
                });
                t_g += g_start.elapsed();
                sim_cpu_ns += self.cluster.config().cache.write_fragmented_ns(covered, seg_count);
                buf
            };
            if !perfect_match {
                sim_cpu_ns += MAPPING_CPU_NS;
            }
            sends.push((s, l_s, r_s, contiguous, payload));
        }

        // Advance the compute node's clock by the *modeled* CPU cost of the
        // mapping and gather phases (memcpy at 2002-era bandwidth plus a
        // fixed mapping cost), keeping the simulation deterministic; the
        // measured wall-clock goes into the returned timings.
        self.cluster.compute(compute, sim_cpu_ns);
        let first_send = self.cluster.clock(compute);
        let messages = sends.len() as u64;
        let bytes_sent: u64 = sends.iter().map(|(.., p)| p.len() as u64).sum();
        if self.config.stagger_writes && !sends.is_empty() {
            // Rotate the per-subfile loop so concurrent writers start on
            // different I/O nodes.
            let start = compute % self.config.io_nodes;
            let pivot = sends.iter().position(|(s, ..)| *s >= start).unwrap_or(0);
            sends.rotate_left(pivot);
        }
        let mut queue: std::collections::VecDeque<QueuedWrite> = sends
            .into_iter()
            .map(|(subfile, l_s, r_s, contiguous, payload)| QueuedWrite {
                file,
                subfile,
                l_s,
                r_s,
                contiguous,
                payload,
            })
            .collect();
        if let Some(first) = queue.pop_front() {
            self.issue_write(compute, first);
        }
        if !queue.is_empty() {
            self.pending_writes.insert(compute, queue);
        }
        (WriteTimings { t_m, t_g, t_w_sim_ns: 0, messages, bytes_sent, all_contiguous }, first_send)
    }

    /// Puts one prepared request on the wire.
    fn issue_write(&mut self, compute: usize, w: QueuedWrite) {
        let wire = 24 + w.payload.len() as u64;
        self.cluster.send(
            compute,
            self.io_node(w.subfile),
            wire,
            Message::WriteReq {
                file: w.file,
                compute,
                subfile: w.subfile,
                l_s: w.l_s,
                r_s: w.r_s,
                contiguous: w.contiguous,
                payload: w.payload,
            },
        );
    }

    /// Reads the view interval `[lo_v, hi_v]` of `compute`'s view on `file`.
    /// The read path is the reverse-symmetric of the write path: I/O nodes
    /// gather from their subfiles, the compute node scatters into the
    /// result buffer.
    pub fn read(&mut self, compute: usize, file: FileId, lo_v: u64, hi_v: u64) -> Vec<u8> {
        self.read_timed(compute, file, lo_v, hi_v).0
    }

    /// Like [`Clusterfile::read`] but also returns the timing breakdown —
    /// the read path is the reverse-symmetric of the write path, so the
    /// breakdown mirrors [`WriteTimings`]: `t_m` for extremity mapping,
    /// `t_g` for the compute-side scatter into the result buffer, and the
    /// simulated completion time from first request to last data arrival.
    pub fn read_timed(
        &mut self,
        compute: usize,
        file: FileId,
        lo_v: u64,
        hi_v: u64,
    ) -> (Vec<u8>, WriteTimings) {
        let st = &self.files[file];
        let vs = st.views.get(&compute).expect("view must be set before reading");
        let mv = Mapper::new(&vs.view, vs.element);
        let mut requests = Vec::new();
        let mut t_m = Duration::ZERO;
        let mut sim_cpu_ns = 0u64;
        for s in 0..self.config.io_nodes {
            let replay = vs.plan.replay(s);
            if replay.is_empty() {
                continue;
            }
            let covered = replay.bytes_between(lo_v, hi_v);
            if covered == 0 {
                continue;
            }
            let contiguous = covered == hi_v - lo_v + 1;
            let (l_s, r_s) = if vs.plan.access(s).perfect_match {
                (lo_v, hi_v)
            } else {
                let m_start = Instant::now();
                let ms = Mapper::new(&st.physical, s);
                let l_s = ms.map_next(mv.unmap(lo_v));
                let r_s = ms.map_prev(mv.unmap(hi_v)).expect("subfile holds data in range");
                t_m += m_start.elapsed();
                sim_cpu_ns += MAPPING_CPU_NS;
                (l_s, r_s)
            };
            requests.push((s, l_s, r_s, contiguous));
        }
        self.cluster.compute(compute, sim_cpu_ns);
        self.read_buffers.insert(compute, (lo_v, vec![0u8; (hi_v - lo_v + 1) as usize]));
        let first_send = self.cluster.clock(compute);
        let messages = requests.len() as u64;
        for (s, l_s, r_s, contiguous) in requests {
            self.cluster.send(
                compute,
                self.io_node(s),
                24,
                Message::ReadReq { file, compute, subfile: s, l_s, r_s, contiguous },
            );
        }
        self.drain();
        let buf = self.read_buffers.remove(&compute).expect("read buffer present").1;
        let timings = WriteTimings {
            t_m,
            t_g: self.read_scatter_real.remove(&compute).unwrap_or_default(),
            t_w_sim_ns: self.cluster.clock(compute).saturating_sub(first_send),
            messages,
            bytes_sent: buf.len() as u64,
            all_contiguous: messages <= 1,
        };
        (buf, timings)
    }

    /// Processes queued messages until the cluster goes idle.
    fn drain(&mut self) {
        while let Some(delivery) = self.cluster.step() {
            self.handle(delivery);
        }
    }

    fn handle(&mut self, d: Delivery<Message>) {
        match d.msg {
            Message::ViewProjection { file, compute, subfile, projection } => {
                // Registering the projection costs a small fixed overhead.
                self.cluster.compute(d.to, 1_000);
                self.files[file]
                    .io_projections
                    .insert((compute, subfile), SegmentReplay::new(&projection));
            }
            Message::WriteReq { file, compute, subfile, l_s, r_s, contiguous, payload } => {
                self.serve_write(d.to, file, compute, subfile, l_s, r_s, contiguous, &payload);
                self.cluster.send(d.to, compute, 16, Message::WriteAck);
            }
            Message::WriteAck => {
                // The ack unblocks the compute node's sequential write loop:
                // issue the next per-subfile request, if any.
                let compute = d.to;
                if let Some(queue) = self.pending_writes.get_mut(&compute) {
                    let next = queue.pop_front();
                    if queue.is_empty() {
                        self.pending_writes.remove(&compute);
                    }
                    if let Some(w) = next {
                        self.issue_write(compute, w);
                    }
                }
            }
            Message::ReadReq { file, compute, subfile, l_s, r_s, contiguous } => {
                let payload = self.serve_read(d.to, file, compute, subfile, l_s, r_s, contiguous);
                let wire = 16 + payload.len() as u64;
                self.cluster.send(
                    d.to,
                    compute,
                    wire,
                    Message::ReadData { file, subfile, payload },
                );
            }
            Message::ReadData { file, subfile, payload } => {
                self.absorb_read_data(d.to, file, subfile, &payload);
            }
            Message::Exchange { file, subfile, runs, payload } => {
                // Aggregator side of the two-phase exchange: unpack the
                // received runs into the subfile staging buffer.
                let cost = self
                    .config
                    .hardware
                    .cache
                    .write_fragmented_ns(payload.len() as u64, runs.len() as u64);
                self.cluster.compute(d.to, cost);
                let staging =
                    self.collective_staging.get_mut(&file).expect("collective write in flight");
                let buf = &mut staging[subfile];
                let mut pos = 0usize;
                for (off, len) in runs {
                    buf[off as usize..(off + len) as usize]
                        .copy_from_slice(&payload[pos..pos + len as usize]);
                    pos += len as usize;
                }
            }
            Message::RawWrite { file, subfile, offset, payload } => {
                let io = d.to;
                self.files[file].subfiles[subfile].write_at(offset, &payload).expect("raw write");
                let bytes = payload.len() as u64;
                self.cluster.compute(io, IO_REQUEST_OVERHEAD_NS);
                let mut cost =
                    IO_REQUEST_OVERHEAD_NS + self.cluster.cache_write_fragmented(io, bytes, 1);
                if self.config.write_policy == WritePolicy::WriteThrough {
                    cost += self.cluster.disk_flush(io, offset, bytes, 1);
                }
                self.io_timings[subfile].absorb(&IoTimings {
                    t_s_sim_ns: cost,
                    t_s_real: Duration::ZERO,
                    fragments: 1,
                    bytes,
                    requests: 1,
                });
                self.cluster.send(io, d.from, 16, Message::WriteAck);
            }
        }
    }

    /// Registers the staging buffers of an in-flight collective write.
    pub(crate) fn begin_collective(&mut self, file: FileId, buffers: Vec<Vec<u8>>) {
        self.collective_staging.insert(file, buffers);
    }

    /// Removes and returns the staging buffers of a collective write.
    pub(crate) fn take_collective(&mut self, file: FileId) -> Vec<Vec<u8>> {
        self.collective_staging.remove(&file).expect("collective write in flight")
    }

    /// The configuration (shared with the collective module).
    #[must_use]
    pub fn config(&self) -> &ClusterfileConfig {
        &self.config
    }

    /// Node id of subfile `s`'s I/O node.
    #[must_use]
    pub fn io_node_id(&self, s: usize) -> NodeId {
        self.io_node(s)
    }

    /// Processes queued messages until idle (crate-internal alias used by
    /// the collective module).
    pub(crate) fn drain_public(&mut self) {
        self.drain();
    }

    /// I/O-node side of a write (the paper's second pseudocode fragment):
    /// if `PROJ_S(V∩S)` is contiguous between the extremities the data is
    /// written in one block, otherwise it is scattered.
    #[allow(clippy::too_many_arguments)]
    fn serve_write(
        &mut self,
        io: NodeId,
        file: FileId,
        compute: usize,
        subfile: usize,
        l_s: u64,
        r_s: u64,
        _contiguous_hint: bool,
        payload: &[u8],
    ) {
        let FileState { io_projections, subfiles, .. } = &mut self.files[file];
        let replay =
            io_projections.get(&(compute, subfile)).expect("projection shipped at view-set time");
        let expect = replay.bytes_between(l_s, r_s);
        assert_eq!(payload.len() as u64, expect, "scatter size mismatch");
        let real_start = Instant::now();
        let mut pos = 0usize;
        let mut fragments = 0u64;
        replay.for_each_between(l_s, r_s, |seg| {
            let len = seg.len() as usize;
            subfiles[subfile]
                .write_at(seg.l(), &payload[pos..pos + len])
                .expect("scatter subfile bytes");
            pos += len;
            fragments += 1;
        });
        let t_s_real = real_start.elapsed();

        // Simulated storage costs: fixed request handling plus the staging
        // copy (plus the write-back flush under write-through).
        let bytes = payload.len() as u64;
        self.cluster.compute(io, IO_REQUEST_OVERHEAD_NS);
        let mut t_s_sim =
            IO_REQUEST_OVERHEAD_NS + self.cluster.cache_write_fragmented(io, bytes, fragments);
        if self.config.write_policy == WritePolicy::WriteThrough {
            t_s_sim += self.cluster.disk_flush(io, l_s, bytes, fragments);
        }
        let acc = &mut self.io_timings[subfile];
        acc.absorb(&IoTimings { t_s_sim_ns: t_s_sim, t_s_real, fragments, bytes, requests: 1 });
    }

    /// I/O-node side of a read: gather the requested subfile bytes.
    #[allow(clippy::too_many_arguments)]
    fn serve_read(
        &mut self,
        io: NodeId,
        file: FileId,
        compute: usize,
        subfile: usize,
        l_s: u64,
        r_s: u64,
        _contiguous_hint: bool,
    ) -> Vec<u8> {
        let FileState { io_projections, subfiles, .. } = &mut self.files[file];
        let replay =
            io_projections.get(&(compute, subfile)).expect("projection shipped at view-set time");
        let mut buf = Vec::with_capacity(replay.bytes_between(l_s, r_s) as usize);
        let mut seg_count = 0u64;
        replay.for_each_between(l_s, r_s, |seg| {
            let base = buf.len();
            buf.resize(base + seg.len() as usize, 0);
            subfiles[subfile].read_into(seg.l(), &mut buf[base..]).expect("gather subfile bytes");
            seg_count += 1;
        });
        // Reading from the cache costs request handling plus one copy per
        // gathered fragment.
        self.cluster.compute(io, IO_REQUEST_OVERHEAD_NS);
        self.cluster.cache_write_fragmented(io, buf.len() as u64, seg_count);
        buf
    }

    /// Compute-node side of a read response: scatter into the result buffer.
    fn absorb_read_data(&mut self, compute: NodeId, file: FileId, subfile: usize, payload: &[u8]) {
        let st = &self.files[file];
        let vs = st.views.get(&compute).expect("view set");
        let (lo_v, buf) = self.read_buffers.get_mut(&compute).expect("read in flight");
        let hi_v = *lo_v + buf.len() as u64 - 1;
        let start = Instant::now();
        let mut pos = 0usize;
        let mut seg_count = 0u64;
        let lo = *lo_v;
        vs.plan.replay(subfile).for_each_between(lo, hi_v, |seg| {
            let len = seg.len() as usize;
            let a = (seg.l() - lo) as usize;
            buf[a..a + len].copy_from_slice(&payload[pos..pos + len]);
            pos += len;
            seg_count += 1;
        });
        assert_eq!(pos, payload.len(), "read payload size mismatch");
        *self.read_scatter_real.entry(compute).or_default() += start.elapsed();
        // Modeled CPU for the scatter copy.
        let cost = self.config.hardware.cache.write_fragmented_ns(payload.len() as u64, seg_count);
        self.cluster.compute(compute, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arraydist::matrix::MatrixLayout;

    fn deployment(policy: WritePolicy) -> Clusterfile {
        Clusterfile::new(ClusterfileConfig::paper_deployment(policy))
    }

    fn matrix_file(fs: &mut Clusterfile, n: u64, physical: MatrixLayout) -> (FileId, Partition) {
        let phys = physical.partition(n, n, 1, 4);
        let file = fs.create_file(phys, n * n);
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        (file, logical)
    }

    fn pattern_byte(x: u64) -> u8 {
        (x.wrapping_mul(131).wrapping_add(17) % 251) as u8
    }

    /// End-to-end: all four compute nodes write their full row-block views;
    /// the assembled file must equal the expected pattern — for every
    /// physical layout.
    #[test]
    fn full_write_roundtrip_all_layouts() {
        for layout in MatrixLayout::all() {
            let mut fs = deployment(WritePolicy::BufferCache);
            let n = 32;
            let (file, logical) = matrix_file(&mut fs, n, layout);
            for c in 0..4usize {
                fs.set_view(c, file, &logical, c);
            }
            let ops: Vec<(usize, u64, u64, Vec<u8>)> = (0..4usize)
                .map(|c| {
                    let m = Mapper::new(&logical, c);
                    let len = logical.element_len(c, n * n).unwrap();
                    let data: Vec<u8> = (0..len).map(|y| pattern_byte(m.unmap(y))).collect();
                    (c, 0, len - 1, data)
                })
                .collect();
            let timings = fs.write_group(file, &ops);
            assert_eq!(timings.len(), 4);
            let contents = fs.file_contents(file);
            for (x, &b) in contents.iter().enumerate() {
                assert_eq!(b, pattern_byte(x as u64), "layout {layout:?}, byte {x}");
            }
        }
    }

    #[test]
    fn read_returns_written_data() {
        let mut fs = deployment(WritePolicy::BufferCache);
        let n = 16;
        let (file, logical) = matrix_file(&mut fs, n, MatrixLayout::ColumnBlocks);
        for c in 0..4usize {
            fs.set_view(c, file, &logical, c);
        }
        let len = logical.element_len(0, n * n).unwrap();
        let data: Vec<u8> = (0..len as usize).map(|i| (i % 251) as u8).collect();
        fs.write(0, file, 0, len - 1, &data);
        let back = fs.read(0, file, 0, len - 1);
        assert_eq!(back, data);
        // Partial interval read.
        let back = fs.read(0, file, 10, 33);
        assert_eq!(back, &data[10..=33]);
    }

    #[test]
    fn matched_layout_takes_fast_paths() {
        let mut fs = deployment(WritePolicy::BufferCache);
        let n = 16;
        let (file, logical) = matrix_file(&mut fs, n, MatrixLayout::RowBlocks);
        fs.set_view(0, file, &logical, 0);
        let len = logical.element_len(0, n * n).unwrap();
        let data = vec![7u8; len as usize];
        let t = fs.write(0, file, 0, len - 1, &data);
        assert!(t.all_contiguous, "row view on row subfiles is a perfect match");
        assert_eq!(t.t_g, Duration::ZERO, "no gather for a perfect match");
        assert_eq!(t.messages, 1, "exactly one subfile intersects");
        assert_eq!(fs.io_timings()[0].fragments, 1);
    }

    #[test]
    fn mismatched_layout_gathers_and_fragments() {
        let mut fs = deployment(WritePolicy::BufferCache);
        let n = 16;
        let (file, logical) = matrix_file(&mut fs, n, MatrixLayout::ColumnBlocks);
        fs.set_view(0, file, &logical, 0);
        let len = logical.element_len(0, n * n).unwrap();
        let data = vec![7u8; len as usize];
        let t = fs.write(0, file, 0, len - 1, &data);
        assert!(!t.all_contiguous);
        assert_eq!(t.messages, 4, "row view scatters over all four column subfiles");
        // Although the *view* side fragments (one gather piece per row),
        // one compute node's rows land contiguously inside each column
        // subfile, so the I/O side writes a single fragment per request.
        let frags: u64 = fs.io_timings().iter().map(|t| t.fragments).sum();
        assert_eq!(frags, 4, "one contiguous landing zone per subfile");
        assert!(t.t_g > Duration::ZERO, "the view side had to gather");
    }

    #[test]
    fn write_through_costs_more_than_cache() {
        let n = 64;
        let run = |policy| {
            let mut fs = deployment(policy);
            let (file, logical) = matrix_file(&mut fs, n, MatrixLayout::SquareBlocks);
            fs.set_view(0, file, &logical, 0);
            let len = logical.element_len(0, n * n).unwrap();
            let data = vec![1u8; len as usize];
            fs.write(0, file, 0, len - 1, &data);
            fs.io_timings().iter().map(|t| t.t_s_sim_ns).sum::<u64>()
        };
        let bc = run(WritePolicy::BufferCache);
        let disk = run(WritePolicy::WriteThrough);
        assert!(disk > bc * 2, "write-through must pay disk time ({disk} vs {bc})");
    }

    #[test]
    fn slow_io_node_bounds_write_completion() {
        let n = 64;
        let run = |slow: Option<NodeId>| {
            let mut fs = deployment(WritePolicy::BufferCache);
            let (file, logical) = matrix_file(&mut fs, n, MatrixLayout::ColumnBlocks);
            if let Some(node) = slow {
                fs.cluster_mut().slow_down(node, 50);
            }
            fs.set_view(0, file, &logical, 0);
            let len = logical.element_len(0, n * n).unwrap();
            let data = vec![1u8; len as usize];
            fs.write(0, file, 0, len - 1, &data).t_w_sim_ns
        };
        let nominal = run(None);
        let degraded = run(Some(5)); // io node 1
        assert!(
            degraded > nominal * 5,
            "a slow I/O server must bound the write ({degraded} vs {nominal})"
        );
    }

    /// The paper presents only the write path "because the write and read
    /// are reverse symmetrical" — check the symmetry holds in the model:
    /// matched layouts take single-message fast paths in both directions,
    /// and read/write completions are within 2× of each other.
    #[test]
    fn read_write_symmetry() {
        let n = 64u64;
        for layout in MatrixLayout::all() {
            let mut fs = deployment(WritePolicy::BufferCache);
            let (file, logical) = matrix_file(&mut fs, n, layout);
            fs.set_view(0, file, &logical, 0);
            let len = logical.element_len(0, n * n).unwrap();
            let data = vec![9u8; len as usize];
            let w = fs.write(0, file, 0, len - 1, &data);
            let (back, r) = fs.read_timed(0, file, 0, len - 1);
            assert_eq!(back, data);
            assert_eq!(r.messages, w.messages, "layout {layout:?}");
            let ratio = r.t_w_sim_ns as f64 / w.t_w_sim_ns as f64;
            assert!(
                (0.4..2.5).contains(&ratio),
                "layout {layout:?}: read {} vs write {} ns",
                r.t_w_sim_ns,
                w.t_w_sim_ns
            );
            if layout == MatrixLayout::RowBlocks {
                assert_eq!(r.t_m, Duration::ZERO);
            }
        }
    }

    /// Staggered write loops land the same bytes, just in a different
    /// request order.
    #[test]
    fn staggered_writes_preserve_contents() {
        let n = 32u64;
        let mut config = ClusterfileConfig::paper_deployment(WritePolicy::BufferCache);
        config.stagger_writes = true;
        let mut fs = Clusterfile::new(config);
        let file = fs.create_file(MatrixLayout::ColumnBlocks.partition(n, n, 1, 4), n * n);
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        let ops: Vec<(usize, u64, u64, Vec<u8>)> = (0..4usize)
            .map(|c| {
                fs.set_view(c, file, &logical, c);
                let m = Mapper::new(&logical, c);
                let len = logical.element_len(c, n * n).unwrap();
                let data: Vec<u8> = (0..len).map(|y| pattern_byte(m.unmap(y))).collect();
                (c, 0, len - 1, data)
            })
            .collect();
        fs.write_group(file, &ops);
        let contents = fs.file_contents(file);
        for (x, &b) in contents.iter().enumerate() {
            assert_eq!(b, pattern_byte(x as u64), "byte {x}");
        }
    }

    #[test]
    fn view_timings_are_recorded() {
        let mut fs = deployment(WritePolicy::BufferCache);
        let (file, logical) = matrix_file(&mut fs, 16, MatrixLayout::SquareBlocks);
        let t = fs.set_view(2, file, &logical, 2);
        assert_eq!(t.intersecting_subfiles, 2, "a row block spans one grid row = 2 tiles");
        assert_eq!(fs.view_timings(2, file), Some(t));
        assert!(fs.view_timings(0, file).is_none());
    }

    #[test]
    #[should_panic(expected = "view must be set")]
    fn write_without_view_panics() {
        let mut fs = deployment(WritePolicy::BufferCache);
        let (file, _) = matrix_file(&mut fs, 16, MatrixLayout::RowBlocks);
        fs.write(0, file, 0, 0, &[0]);
    }
}
