//! A minimal JSON implementation for the parafile workspace.
//!
//! The workspace runs in hermetic environments with no registry access, so
//! the tools carry their own small JSON layer instead of depending on
//! `serde_json`. Only what the partition-spec and diagnostic formats need is
//! implemented: the full value model, a strict recursive-descent parser with
//! line/column errors, and compact/pretty printers.
//!
//! Integers are kept exact: an unsigned integer literal parses to
//! [`Json::UInt`] (full `u64` range, as FALLS offsets require), a negative
//! one to [`Json::Int`], and anything with a fraction or exponent to
//! [`Json::Float`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (exact through the full `u64` range).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// A parse error with 1-based position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub column: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}, column {}", self.message, self.line, self.column)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("unexpected trailing characters"));
        }
        Ok(v)
    }

    /// The value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as ordered key/value pairs if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup on objects (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The object's keys, for unknown-field detection.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        self.as_object().map_or_else(Vec::new, |o| o.iter().map(|(k, _)| k.as_str()).collect())
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a trailing `.0` so the value re-parses as
                    // a float.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into [`Json`], for ergonomic construction of output documents.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::UInt((*self).into())
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 {
            Json::UInt(*self as u64)
        } else {
            Json::Int(*self)
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Builds a [`Json::Object`] from `("key", value)` pairs:
/// `obj![("a", 1u64), ("b", "text")]`.
#[macro_export]
macro_rules! obj {
    ($(($key:expr, $value:expr)),* $(,)?) => {
        $crate::Json::Object(vec![
            $(($key.to_string(), $crate::ToJson::to_json(&$value))),*
        ])
    };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        let (mut line, mut column) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError { message: message.to_string(), line, column }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are rare in partition specs;
                            // replace lone surrogates rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 3; // the final +1 below consumes the 4th digit
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text == "-" || text.is_empty() {
            return Err(self.err("invalid number"));
        }
        if float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("invalid number"))
        } else if negative {
            text.parse::<i64>().map(Json::Int).map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>().map(Json::UInt).map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5e2").unwrap(), Json::Float(150.0));
        assert_eq!(Json::parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn u64_range_is_exact() {
        let max = u64::MAX.to_string();
        assert_eq!(Json::parse(&max).unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse(&max).unwrap().render(), max);
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{ "a": [1, 2, {"b": false}], "c": "x" }"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn errors_carry_position() {
        let err = Json::parse("{\n  \"a\": ,\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unexpected"));
        assert!(Json::parse("[1, 2] trailing").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn round_trips() {
        let text = r#"{"displacement":2,"elements":[[{"l":0,"r":1,"s":6,"n":1}]]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        let again = Json::parse(&v.render_pretty()).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn obj_macro_builds_objects() {
        let v = obj![("a", 1u64), ("b", "text"), ("c", vec![1u64, 2])];
        assert_eq!(v.render(), r#"{"a":1,"b":"text","c":[1,2]}"#);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }
}
