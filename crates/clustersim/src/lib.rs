//! A deterministic discrete-event cluster simulator.
//!
//! The paper's evaluation ran on a 2002-era cluster: 16 Pentium III 800 MHz
//! nodes with IDE disks, interconnected by Myrinet, split into compute nodes
//! and I/O nodes. This crate substitutes that testbed with a simulator whose
//! service-time models are calibrated to the same hardware class:
//!
//! * [`NetworkModel`] — LogP-style: per-message overhead + wire latency +
//!   size / bandwidth (Myrinet ≈ 100 MB/s, ≈ 9 µs latency);
//! * [`DiskModel`] — average seek + half-rotation on non-sequential access,
//!   then size / sequential bandwidth (IDE ≈ 25 MB/s);
//! * [`CacheModel`] — buffer-cache writes cost a memcpy (≈ 250 MB/s) and
//!   dirty data can be flushed to the disk model.
//!
//! The *algorithms* under study (intersection, mapping, gather/scatter) run
//! for real on real buffers; only wire and platter service times are
//! simulated, so message counts, sizes and fragmentation — the quantities
//! the paper's claims are about — are produced by the genuine code paths.
//!
//! Events are processed in `(time, sequence)` order, which makes every run
//! bit-for-bit reproducible; see [`Cluster`].
//!
//! [`parallel`] additionally provides a real-thread executor used to run
//! per-node phases concurrently (the simulator stays single-threaded and
//! deterministic; the executor is for measuring real CPU phases on real
//! cores, as the case study does).
//!
//! # Example
//!
//! ```
//! use clustersim::{Cluster, ClusterConfig};
//!
//! let mut cluster: Cluster<&str> = Cluster::new(ClusterConfig::paper_testbed(2));
//! cluster.send(0, 1, 4096, "write this block");
//! cluster.run_until_idle(|cluster, delivery| {
//!     // Service the request on the receiving node's simulated disk.
//!     cluster.disk_write(delivery.to, 0, delivery.bytes);
//! });
//! assert_eq!(cluster.node_stats(1).disk_bytes, 4096);
//! assert!(cluster.clock(1) > cluster.clock(0), "the disk write dominates");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod devices;
pub mod parallel;
mod stats;
mod trace;

pub use cluster::{Cluster, Delivery, NodeId, SimTime};
pub use devices::{CacheModel, CacheState, ClusterConfig, DiskModel, DiskState, NetworkModel};
pub use stats::{ClusterStats, NodeStats};
pub use trace::{TraceEntry, TraceKind};
