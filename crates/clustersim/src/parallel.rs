//! Real-thread execution of per-node phases.
//!
//! The simulator itself is single-threaded and deterministic; this module
//! runs the *real* CPU work of a phase (gathers, scatters, intersections)
//! on one OS thread per node, the way the actual cluster executed them, and
//! reports per-node wall-clock times. `std::thread::scope` keeps borrowing
//! safe without `Arc`-wrapping every input; a mutex collects results as
//! nodes finish.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Outcome of one node's phase execution.
#[derive(Debug, Clone)]
pub struct PhaseResult<T> {
    /// Node index.
    pub node: usize,
    /// Real wall-clock the node's work took.
    pub elapsed: Duration,
    /// The node's output.
    pub output: T,
}

/// Runs `work(node)` for every node on its own thread and returns the
/// results ordered by node index, each with its measured wall-clock time.
///
/// The phase's overall latency is that of the slowest node — the same
/// "limited by the slowest I/O server" effect the paper observes for its
/// parallel write phase.
pub fn run_phase<T, F>(nodes: usize, work: F) -> Vec<PhaseResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let results: Mutex<Vec<PhaseResult<T>>> = Mutex::new(Vec::with_capacity(nodes));
    std::thread::scope(|s| {
        for node in 0..nodes {
            let work = &work;
            let results = &results;
            s.spawn(move || {
                let start = Instant::now();
                let output = work(node);
                let elapsed = start.elapsed();
                results.lock().expect("phase result mutex poisoned").push(PhaseResult {
                    node,
                    elapsed,
                    output,
                });
            });
        }
    });
    let mut out = results.into_inner().expect("phase result mutex poisoned");
    out.sort_by_key(|r| r.node);
    out
}

/// Longest per-node wall-clock in a phase — the phase's latency.
#[must_use]
pub fn phase_latency<T>(results: &[PhaseResult<T>]) -> Duration {
    results.iter().map(|r| r.elapsed).max().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_node_once() {
        let counter = AtomicUsize::new(0);
        let results = run_phase(8, |node| {
            counter.fetch_add(1, Ordering::Relaxed);
            node * 2
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.node, i);
            assert_eq!(r.output, i * 2);
        }
    }

    #[test]
    fn latency_is_slowest_node() {
        let results = run_phase(4, |node| {
            // Node 3 does measurably more work.
            let iters = if node == 3 { 4_000_000 } else { 1_000 };
            let mut acc = 0u64;
            for i in 0..iters {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            acc
        });
        let latency = phase_latency(&results);
        assert_eq!(latency, results[3].elapsed.max(latency));
        assert!(latency >= results[0].elapsed);
    }

    #[test]
    fn zero_nodes_is_empty() {
        let results = run_phase(0, |n| n);
        assert!(results.is_empty());
        assert_eq!(phase_latency(&results), Duration::ZERO);
    }
}
