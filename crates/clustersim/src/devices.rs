//! Service-time models for the simulated hardware.

const NS_PER_SEC: u64 = 1_000_000_000;

/// Converts a byte count and a bandwidth (bytes/second) to nanoseconds.
fn transfer_ns(bytes: u64, bandwidth: u64) -> u64 {
    if bandwidth == 0 {
        return 0;
    }
    // Round up: a byte on the wire occupies at least a nanosecond slot.
    (bytes as u128 * NS_PER_SEC as u128).div_ceil(bandwidth as u128) as u64
}

/// LogP-style network model: every message pays a fixed send overhead plus
/// wire latency, and `size / bandwidth` of serialization time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// CPU overhead to initiate a message (ns).
    pub per_message_overhead_ns: u64,
    /// Wire latency (ns).
    pub latency_ns: u64,
    /// Link bandwidth (bytes per second).
    pub bandwidth: u64,
    /// Model receive-link contention: when several senders target the same
    /// node, their payloads serialize on its inbound link (store-and-
    /// forward). Off by default — the paper-calibrated models charge
    /// serialization at the sender only.
    pub rx_contention: bool,
}

impl NetworkModel {
    /// Raw Myrinet-class defaults (≈ 9 µs latency, 100 MB/s).
    #[must_use]
    pub fn myrinet() -> Self {
        Self {
            per_message_overhead_ns: 2_000,
            latency_ns: 9_000,
            bandwidth: 100_000_000,
            rx_contention: false,
        }
    }

    /// TCP over Myrinet on a 2002-era CPU: the socket stack costs tens of
    /// microseconds per message and caps the effective bandwidth around
    /// 50 MB/s — the throughput class the paper's end-to-end write numbers
    /// imply (1 MB in ≈ 20 ms for the matched layout).
    #[must_use]
    pub fn tcp_myrinet() -> Self {
        Self {
            per_message_overhead_ns: 60_000,
            latency_ns: 20_000,
            bandwidth: 50_000_000,
            rx_contention: false,
        }
    }

    /// Total delivery delay for a message of `bytes`.
    #[must_use]
    pub fn delivery_ns(&self, bytes: u64) -> u64 {
        self.per_message_overhead_ns + self.latency_ns + transfer_ns(bytes, self.bandwidth)
    }

    /// Pure serialization time of `bytes` on one link.
    #[must_use]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        transfer_ns(bytes, self.bandwidth)
    }

    /// The sender-side occupancy (overhead + serialization) — the time the
    /// sending node's CPU is busy.
    #[must_use]
    pub fn send_occupancy_ns(&self, bytes: u64) -> u64 {
        self.per_message_overhead_ns + transfer_ns(bytes, self.bandwidth)
    }
}

/// Disk service-time model: sequential transfers run at full bandwidth;
/// any discontinuity pays an average seek plus half a rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskModel {
    /// Average seek time (ns).
    pub avg_seek_ns: u64,
    /// Half-rotation latency (ns).
    pub rotational_ns: u64,
    /// Sequential bandwidth (bytes per second).
    pub bandwidth: u64,
    /// Write-back overhead per dirty fragment (ns) — fragmented cache
    /// contents cost extra bookkeeping at flush even though the kernel
    /// largely sequentializes the platter traffic.
    pub per_fragment_ns: u64,
}

impl DiskModel {
    /// 2002-era IDE disk: ≈ 9 ms seek, 7200 rpm (≈ 4.2 ms half-rotation),
    /// 25 MB/s sequential, ≈ 4 µs of write-back bookkeeping per fragment.
    #[must_use]
    pub fn ide() -> Self {
        Self {
            avg_seek_ns: 9_000_000,
            rotational_ns: 4_200_000,
            bandwidth: 25_000_000,
            per_fragment_ns: 4_000,
        }
    }

    /// Service time for accessing `bytes` at `offset` given the disk head's
    /// current position.
    #[must_use]
    pub fn access_ns(&self, sequential: bool, bytes: u64) -> u64 {
        let positioning = if sequential { 0 } else { self.avg_seek_ns + self.rotational_ns };
        positioning + transfer_ns(bytes, self.bandwidth)
    }

    /// Service time for flushing `bytes` of cache content that arrived as
    /// `fragments` pieces through the write-back path.
    ///
    /// Write-back hides positioning: the kernel orders dirty pages and the
    /// drive's write cache absorbs the head movement (the paper's disk
    /// columns are pure transfer time over the cache numbers), so the cost
    /// is bandwidth plus per-fragment bookkeeping.
    #[must_use]
    pub fn flush_ns(&self, bytes: u64, fragments: u64) -> u64 {
        transfer_ns(bytes, self.bandwidth) + fragments.saturating_sub(1) * self.per_fragment_ns
    }
}

/// Per-node disk head state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskState {
    /// One past the last byte the head touched.
    pub head: u64,
    /// Whether any access happened yet (first access always seeks).
    pub touched: bool,
}

impl DiskState {
    /// Accounts an access, returning whether it was sequential.
    pub fn access(&mut self, offset: u64, bytes: u64) -> bool {
        let sequential = self.touched && offset == self.head;
        self.head = offset + bytes;
        self.touched = true;
        sequential
    }
}

/// Buffer-cache model: writes into the cache cost one memory copy; dirty
/// bytes are flushed to disk either explicitly or when the cache overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheModel {
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Memory-copy bandwidth (bytes per second).
    pub memcpy_bandwidth: u64,
    /// Fixed cost per copied fragment (page lookup, copy setup) in ns.
    pub per_fragment_ns: u64,
}

impl CacheModel {
    /// 2002-era node: 256 MB usable buffer cache, ≈ 250 MB/s copy bandwidth,
    /// ≈ 300 ns per copied fragment.
    #[must_use]
    pub fn classic() -> Self {
        Self { capacity: 256 << 20, memcpy_bandwidth: 250_000_000, per_fragment_ns: 300 }
    }

    /// Cost of staging `bytes` into the cache as one fragment.
    #[must_use]
    pub fn write_ns(&self, bytes: u64) -> u64 {
        self.per_fragment_ns + transfer_ns(bytes, self.memcpy_bandwidth)
    }

    /// Cost of staging `bytes` split into `fragments` pieces.
    #[must_use]
    pub fn write_fragmented_ns(&self, bytes: u64, fragments: u64) -> u64 {
        fragments * self.per_fragment_ns + transfer_ns(bytes, self.memcpy_bandwidth)
    }
}

/// Per-node cache state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheState {
    /// Dirty bytes awaiting flush.
    pub dirty: u64,
}

/// Full hardware configuration of a simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Per-node disk model.
    pub disk: DiskModel,
    /// Per-node buffer-cache model.
    pub cache: CacheModel,
}

impl ClusterConfig {
    /// The paper's testbed class: TCP over Myrinet + IDE disks.
    #[must_use]
    pub fn paper_testbed(nodes: usize) -> Self {
        Self {
            nodes,
            network: NetworkModel::tcp_myrinet(),
            disk: DiskModel::ide(),
            cache: CacheModel::classic(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_delivery_scales_with_size() {
        let n = NetworkModel::myrinet();
        let small = n.delivery_ns(64);
        let big = n.delivery_ns(1 << 20);
        assert!(big > small);
        // 1 MiB at 100 MB/s ≈ 10.5 ms.
        assert!((big - n.per_message_overhead_ns - n.latency_ns) > 10_000_000);
        assert!(n.send_occupancy_ns(64) < n.delivery_ns(64));
    }

    #[test]
    fn zero_bandwidth_means_free_transfer() {
        let n = NetworkModel {
            per_message_overhead_ns: 5,
            latency_ns: 7,
            bandwidth: 0,
            rx_contention: false,
        };
        assert_eq!(n.delivery_ns(1 << 30), 12);
    }

    #[test]
    fn disk_sequential_vs_random() {
        let d = DiskModel::ide();
        let mut st = DiskState::default();
        assert!(!st.access(0, 4096), "first access is never sequential");
        assert!(st.access(4096, 4096), "continuation is sequential");
        assert!(!st.access(0, 4096), "rewind seeks");
        let seq = d.access_ns(true, 1 << 20);
        let rnd = d.access_ns(false, 1 << 20);
        assert_eq!(rnd - seq, d.avg_seek_ns + d.rotational_ns);
    }

    #[test]
    fn cache_write_cost() {
        let c = CacheModel::classic();
        // 1 MB at 250 MB/s ≈ 4 ms.
        let t = c.write_ns(1_000_000);
        assert!((3_900_000..4_100_000).contains(&t), "got {t}");
    }

    #[test]
    fn transfer_rounds_up() {
        assert_eq!(super::transfer_ns(1, 1_000_000_000), 1);
        assert_eq!(super::transfer_ns(0, 1_000_000_000), 0);
        assert_eq!(super::transfer_ns(3, 2_000_000_000), 2);
    }
}
