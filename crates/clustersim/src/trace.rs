//! Event traces for debugging and for asserting schedules in tests.

use crate::cluster::{NodeId, SimTime};

/// One traced simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Node the event happened on.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// The kinds of traced events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// CPU work.
    Compute {
        /// Scaled duration (ns).
        ns: u64,
    },
    /// Message departure.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload size.
        bytes: u64,
    },
    /// Message arrival.
    Receive {
        /// Source node.
        from: NodeId,
        /// Payload size.
        bytes: u64,
    },
    /// Message dropped because the destination crashed.
    Dropped {
        /// Source node.
        from: NodeId,
        /// Payload size.
        bytes: u64,
    },
    /// Buffer-cache staging.
    CacheWrite {
        /// Bytes staged.
        bytes: u64,
    },
    /// Disk write.
    DiskWrite {
        /// Byte offset on the disk.
        offset: u64,
        /// Bytes written.
        bytes: u64,
        /// Whether the access continued the previous one.
        sequential: bool,
    },
}

impl TraceEntry {
    /// Compact one-line rendering, convenient for test failure output.
    #[must_use]
    pub fn render(&self) -> String {
        match &self.kind {
            TraceKind::Compute { ns } => {
                format!("[{:>12}] n{} compute {}ns", self.at, self.node, ns)
            }
            TraceKind::Send { to, bytes } => {
                format!("[{:>12}] n{} send {}B -> n{}", self.at, self.node, bytes, to)
            }
            TraceKind::Receive { from, bytes } => {
                format!("[{:>12}] n{} recv {}B <- n{}", self.at, self.node, bytes, from)
            }
            TraceKind::Dropped { from, bytes } => {
                format!("[{:>12}] n{} DROP {}B <- n{}", self.at, self.node, bytes, from)
            }
            TraceKind::CacheWrite { bytes } => {
                format!("[{:>12}] n{} cache {}B", self.at, self.node, bytes)
            }
            TraceKind::DiskWrite { offset, bytes, sequential } => format!(
                "[{:>12}] n{} disk {}B @{} {}",
                self.at,
                self.node,
                bytes,
                offset,
                if *sequential { "seq" } else { "seek" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable() {
        let e = TraceEntry { at: 5, node: 1, kind: TraceKind::Send { to: 2, bytes: 64 } };
        assert_eq!(e.render(), "[           5] n1 send 64B -> n2");
        let d = TraceEntry {
            at: 7,
            node: 0,
            kind: TraceKind::DiskWrite { offset: 0, bytes: 10, sequential: false },
        };
        assert!(d.render().ends_with("seek"));
    }
}
