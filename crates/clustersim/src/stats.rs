//! Simulation statistics.

use crate::cluster::SimTime;

/// Per-node counters accumulated during a simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Simulated CPU time (ns).
    pub cpu_ns: u64,
    /// Simulated disk busy time (ns).
    pub disk_ns: u64,
    /// Bytes written to disk.
    pub disk_bytes: u64,
    /// Bytes staged into the buffer cache.
    pub cache_bytes: u64,
    /// Non-sequential disk accesses.
    pub seeks: u64,
}

/// Aggregated cluster statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Counters per node.
    pub per_node: Vec<NodeStats>,
    /// Largest node clock — the simulated wall-clock of the run.
    pub makespan: SimTime,
}

impl ClusterStats {
    /// Total messages sent across the cluster.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.per_node.iter().map(|n| n.messages_sent).sum()
    }

    /// Total payload bytes sent across the cluster.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.per_node.iter().map(|n| n.bytes_sent).sum()
    }

    /// Total seeks across the cluster.
    #[must_use]
    pub fn total_seeks(&self) -> u64 {
        self.per_node.iter().map(|n| n.seeks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let stats = ClusterStats {
            per_node: vec![
                NodeStats { messages_sent: 2, bytes_sent: 100, seeks: 1, ..Default::default() },
                NodeStats { messages_sent: 3, bytes_sent: 50, seeks: 4, ..Default::default() },
            ],
            makespan: 42,
        };
        assert_eq!(stats.total_messages(), 5);
        assert_eq!(stats.total_bytes(), 150);
        assert_eq!(stats.total_seeks(), 5);
    }
}
