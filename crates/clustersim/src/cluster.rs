//! The deterministic discrete-event engine.

use crate::devices::{CacheState, ClusterConfig, DiskState};
use crate::stats::{ClusterStats, NodeStats};
use crate::trace::{TraceEntry, TraceKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// Node identifier (index into the cluster's node table).
pub type NodeId = usize;

/// A message delivered to a node.
#[derive(Debug)]
pub struct Delivery<M> {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Simulated payload size in bytes (drives the network model).
    pub bytes: u64,
    /// The message itself.
    pub msg: M,
    /// Simulated arrival time.
    pub at: SimTime,
}

struct QueuedEvent<M> {
    at: SimTime,
    from: NodeId,
    to: NodeId,
    bytes: u64,
    msg: M,
}

#[derive(Debug, Default, Clone)]
struct NodeState {
    clock: SimTime,
    /// Time the inbound link becomes free (rx-contention mode).
    rx_free: SimTime,
    disk: DiskState,
    cache: CacheState,
    stats: NodeStats,
    /// CPU time multiplier ×1000 (1000 = nominal, 4000 = 4× slower).
    slowdown_millis: u64,
    crashed: bool,
}

/// A deterministic discrete-event cluster of nodes exchanging simulated
/// messages and performing simulated disk / buffer-cache I/O.
///
/// Messages sent with [`Cluster::send`] are delivered in `(arrival time,
/// send sequence)` order by [`Cluster::step`] / [`Cluster::run_until_idle`],
/// so identical inputs always produce identical schedules.
pub struct Cluster<M> {
    config: ClusterConfig,
    nodes: Vec<NodeState>,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    pending: std::collections::HashMap<(SimTime, u64), QueuedEvent<M>>,
    seq: u64,
    trace: Option<Vec<TraceEntry>>,
}

impl<M> Cluster<M> {
    /// Creates a cluster with the given hardware configuration.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        let nodes = (0..config.nodes)
            .map(|_| NodeState { slowdown_millis: 1000, ..NodeState::default() })
            .collect();
        Self {
            config,
            nodes,
            queue: BinaryHeap::new(),
            pending: std::collections::HashMap::new(),
            seq: 0,
            trace: None,
        }
    }

    /// Enables event tracing (disabled by default to keep runs cheap).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The collected trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&[TraceEntry]> {
        self.trace.as_deref()
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node's local clock.
    #[must_use]
    pub fn clock(&self, node: NodeId) -> SimTime {
        self.nodes[node].clock
    }

    /// Marks a node as crashed: messages to it are dropped silently
    /// (failure injection for the "bounded by the slowest server" tests).
    pub fn crash(&mut self, node: NodeId) {
        self.nodes[node].crashed = true;
    }

    /// Slows a node's CPU and I/O by `factor` (e.g. 4 = four times slower).
    pub fn slow_down(&mut self, node: NodeId, factor: u64) {
        self.nodes[node].slowdown_millis = factor.max(1) * 1000;
    }

    fn scale(&self, node: NodeId, ns: u64) -> u64 {
        ns * self.nodes[node].slowdown_millis / 1000
    }

    fn record(&mut self, entry: TraceEntry) {
        if let Some(t) = &mut self.trace {
            t.push(entry);
        }
    }

    /// Advances a node's clock by `ns` of CPU work (scaled by its slowdown).
    pub fn compute(&mut self, node: NodeId, ns: u64) {
        let scaled = self.scale(node, ns);
        self.nodes[node].clock += scaled;
        self.nodes[node].stats.cpu_ns += scaled;
        let at = self.nodes[node].clock;
        self.record(TraceEntry { at, node, kind: TraceKind::Compute { ns: scaled } });
    }

    /// Sends a message of `bytes` simulated size from `from` to `to` at the
    /// sender's current local time. The sender's clock advances by the send
    /// occupancy; delivery is scheduled after overhead + latency +
    /// serialization.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: u64, msg: M) {
        // The sender's CPU is occupied for the overhead plus serialization;
        // the message then lands one wire latency after departure.
        let occupancy = self.scale(from, self.config.network.send_occupancy_ns(bytes));
        let depart = self.nodes[from].clock + occupancy;
        self.nodes[from].clock = depart;
        let arrive = depart + self.config.network.latency_ns;
        self.nodes[from].stats.messages_sent += 1;
        self.nodes[from].stats.bytes_sent += bytes;
        self.record(TraceEntry { at: depart, node: from, kind: TraceKind::Send { to, bytes } });
        let key = (arrive, self.seq);
        self.queue.push(Reverse(key));
        self.pending.insert(key, QueuedEvent { at: arrive, from, to, bytes, msg });
        self.seq += 1;
    }

    /// Delivers the next queued message (in arrival order), advancing the
    /// receiver's clock to at least the arrival time. `None` when idle.
    pub fn step(&mut self) -> Option<Delivery<M>> {
        loop {
            let Reverse(key) = self.queue.pop()?;
            let ev = self.pending.remove(&key).expect("queued event present");
            if self.nodes[ev.to].crashed {
                self.record(TraceEntry {
                    at: ev.at,
                    node: ev.to,
                    kind: TraceKind::Dropped { from: ev.from, bytes: ev.bytes },
                });
                continue;
            }
            let node = &mut self.nodes[ev.to];
            let at = if self.config.network.rx_contention {
                // Store-and-forward: the payload serializes on the
                // receiver's inbound link after the preceding arrivals.
                let start = ev.at.max(node.rx_free);
                let done = start + self.config.network.transfer_ns(ev.bytes);
                node.rx_free = done;
                done
            } else {
                ev.at
            };
            node.clock = node.clock.max(at);
            node.stats.messages_received += 1;
            node.stats.bytes_received += ev.bytes;
            self.record(TraceEntry {
                at,
                node: ev.to,
                kind: TraceKind::Receive { from: ev.from, bytes: ev.bytes },
            });
            return Some(Delivery { from: ev.from, to: ev.to, bytes: ev.bytes, msg: ev.msg, at });
        }
    }

    /// Runs `handler` for every delivery until the queue drains.
    pub fn run_until_idle(&mut self, mut handler: impl FnMut(&mut Self, Delivery<M>)) {
        while let Some(d) = self.step() {
            handler(self, d);
        }
    }

    /// Stages `bytes` into a node's buffer cache (one memory copy),
    /// advancing its clock; returns the simulated cost.
    pub fn cache_write(&mut self, node: NodeId, bytes: u64) -> SimTime {
        let cost = self.scale(node, self.config.cache.write_ns(bytes));
        self.nodes[node].clock += cost;
        self.nodes[node].cache.dirty += bytes;
        self.nodes[node].stats.cache_bytes += bytes;
        let at = self.nodes[node].clock;
        self.record(TraceEntry { at, node, kind: TraceKind::CacheWrite { bytes } });
        // Overflow forces a synchronous flush of everything dirty.
        if self.nodes[node].cache.dirty > self.config.cache.capacity {
            let dirty = self.nodes[node].cache.dirty;
            let flush = self.disk_write(node, self.nodes[node].disk.head, dirty);
            return cost + flush;
        }
        cost
    }

    /// Stages `bytes` split into `fragments` pieces into a node's buffer
    /// cache; returns the simulated cost.
    pub fn cache_write_fragmented(&mut self, node: NodeId, bytes: u64, fragments: u64) -> SimTime {
        let cost = self.scale(node, self.config.cache.write_fragmented_ns(bytes, fragments));
        self.nodes[node].clock += cost;
        self.nodes[node].cache.dirty += bytes;
        self.nodes[node].stats.cache_bytes += bytes;
        let at = self.nodes[node].clock;
        self.record(TraceEntry { at, node, kind: TraceKind::CacheWrite { bytes } });
        if self.nodes[node].cache.dirty > self.config.cache.capacity {
            let dirty = self.nodes[node].cache.dirty;
            let flush = self.disk_write(node, self.nodes[node].disk.head, dirty);
            return cost + flush;
        }
        cost
    }

    /// Flushes `bytes` of cache content (arrived as `fragments` pieces) to
    /// `offset` on a node's disk through the write-back path (positioning is
    /// absorbed by request ordering and the drive's write cache).
    pub fn disk_flush(&mut self, node: NodeId, offset: u64, bytes: u64, fragments: u64) -> SimTime {
        let sequential = self.nodes[node].disk.access(offset, bytes);
        let cost = self.scale(node, self.config.disk.flush_ns(bytes, fragments));
        self.nodes[node].clock += cost;
        self.nodes[node].cache.dirty = self.nodes[node].cache.dirty.saturating_sub(bytes);
        let st = &mut self.nodes[node].stats;
        st.disk_ns += cost;
        st.disk_bytes += bytes;
        let at = self.nodes[node].clock;
        self.record(TraceEntry {
            at,
            node,
            kind: TraceKind::DiskWrite { offset, bytes, sequential },
        });
        cost
    }

    /// Writes `bytes` at `offset` on a node's disk, advancing its clock;
    /// returns the simulated cost. Sequential continuation is detected from
    /// the head position.
    pub fn disk_write(&mut self, node: NodeId, offset: u64, bytes: u64) -> SimTime {
        let sequential = self.nodes[node].disk.access(offset, bytes);
        let cost = self.scale(node, self.config.disk.access_ns(sequential, bytes));
        self.nodes[node].clock += cost;
        self.nodes[node].cache.dirty = self.nodes[node].cache.dirty.saturating_sub(bytes);
        let st = &mut self.nodes[node].stats;
        st.disk_ns += cost;
        st.disk_bytes += bytes;
        if !sequential {
            st.seeks += 1;
        }
        let at = self.nodes[node].clock;
        self.record(TraceEntry {
            at,
            node,
            kind: TraceKind::DiskWrite { offset, bytes, sequential },
        });
        cost
    }

    /// Aggregated statistics across all nodes.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            per_node: self.nodes.iter().map(|n| n.stats.clone()).collect(),
            makespan: self.nodes.iter().map(|n| n.clock).max().unwrap_or(0),
        }
    }

    /// One node's statistics.
    #[must_use]
    pub fn node_stats(&self, node: NodeId) -> &NodeStats {
        &self.nodes[node].stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{CacheModel, DiskModel, NetworkModel};

    fn cluster(n: usize) -> Cluster<&'static str> {
        Cluster::new(ClusterConfig::paper_testbed(n))
    }

    #[test]
    fn message_delivery_order_is_deterministic() {
        let mut c = cluster(3);
        c.send(0, 1, 100, "a");
        c.send(0, 2, 100, "b");
        c.send(0, 1, 10, "c");
        let mut got = Vec::new();
        c.run_until_idle(|_, d| got.push(d.msg));
        // Same-source messages serialize on the sender's clock: a, b, c by
        // arrival (a departs first, b after a's occupancy, c last).
        assert_eq!(got, vec!["a", "b", "c"]);
        // Re-running an identical scenario gives identical stats.
        let mut c2 = cluster(3);
        c2.send(0, 1, 100, "a");
        c2.send(0, 2, 100, "b");
        c2.send(0, 1, 10, "c");
        c2.run_until_idle(|_, _| {});
        assert_eq!(c.stats(), c2.stats());
    }

    #[test]
    fn receiver_clock_advances_to_arrival() {
        let mut c = cluster(2);
        c.send(0, 1, 1_000_000, "big");
        let d = c.step().unwrap();
        assert_eq!(c.clock(1), d.at);
        assert!(d.at >= c.config().network.delivery_ns(1_000_000));
        assert_eq!(c.node_stats(1).messages_received, 1);
        assert_eq!(c.node_stats(0).bytes_sent, 1_000_000);
    }

    #[test]
    fn request_response_round_trip() {
        let mut c = cluster(2);
        c.send(0, 1, 64, "request");
        c.run_until_idle(|c, d| {
            if d.msg == "request" {
                c.send(d.to, d.from, 32, "response");
            }
        });
        assert_eq!(c.node_stats(0).messages_received, 1);
        assert!(c.clock(0) >= c.clock(1), "requester finishes after the responder sent");
    }

    #[test]
    fn crashed_node_drops_messages() {
        let mut c = cluster(2);
        c.enable_trace();
        c.crash(1);
        c.send(0, 1, 64, "lost");
        assert!(c.step().is_none());
        let trace = c.trace().unwrap();
        assert!(trace.iter().any(|e| matches!(e.kind, TraceKind::Dropped { .. })));
    }

    #[test]
    fn slowdown_scales_compute_and_io() {
        let mut fast = cluster(1);
        let mut slow = cluster(1);
        slow.slow_down(0, 4);
        fast.compute(0, 1000);
        slow.compute(0, 1000);
        assert_eq!(slow.clock(0), 4 * fast.clock(0));
        let cf = fast.disk_write(0, 0, 4096);
        let cs = slow.disk_write(0, 0, 4096);
        assert_eq!(cs, 4 * cf);
    }

    #[test]
    fn disk_sequential_detection_through_cluster() {
        let mut c = cluster(1);
        let first = c.disk_write(0, 0, 4096);
        let second = c.disk_write(0, 4096, 4096);
        assert!(first > second, "sequential continuation avoids the seek");
        assert_eq!(c.node_stats(0).seeks, 1);
    }

    #[test]
    fn cache_overflow_flushes() {
        let mut c: Cluster<()> = Cluster::new(ClusterConfig {
            nodes: 1,
            network: NetworkModel::myrinet(),
            disk: DiskModel::ide(),
            cache: CacheModel {
                capacity: 1024,
                memcpy_bandwidth: 250_000_000,
                per_fragment_ns: 300,
            },
        });
        let small = c.cache_write(0, 512);
        let overflow = c.cache_write(0, 1024);
        assert!(overflow > small + c.config().disk.avg_seek_ns / 2, "overflow pays disk time");
        assert_eq!(c.node_stats(0).disk_bytes, 1536);
    }

    #[test]
    fn rx_contention_serializes_inbound_traffic() {
        let mut config = ClusterConfig::paper_testbed(3);
        let free = {
            let mut c: Cluster<u8> = Cluster::new(config);
            c.send(0, 2, 1_000_000, 1);
            c.send(1, 2, 1_000_000, 2);
            let mut last = 0;
            c.run_until_idle(|_, d| last = d.at);
            last
        };
        config.network.rx_contention = true;
        let contended = {
            let mut c: Cluster<u8> = Cluster::new(config);
            c.send(0, 2, 1_000_000, 1);
            c.send(1, 2, 1_000_000, 2);
            let mut last = 0;
            c.run_until_idle(|_, d| last = d.at);
            last
        };
        // Two simultaneous 1 MB messages share node 2's inbound link: the
        // second lands at least one extra serialization later.
        let one_transfer = config.network.transfer_ns(1_000_000);
        assert!(
            contended >= free + one_transfer,
            "contended {contended} vs free {free} (+{one_transfer})"
        );
    }

    #[test]
    fn makespan_is_max_clock() {
        let mut c = cluster(4);
        c.compute(2, 5_000);
        c.compute(3, 9_000);
        assert_eq!(c.stats().makespan, 9_000);
    }
}
