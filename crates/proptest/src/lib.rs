//! An offline, dependency-free property-testing harness exposing the subset
//! of the `proptest` crate API this workspace uses.
//!
//! The real `proptest` cannot be vendored into hermetic build environments,
//! so this crate re-implements the pieces the test suites rely on:
//! strategies over integer ranges and tuples, `prop_map` / `prop_filter` /
//! `prop_filter_map` / `prop_flat_map` / `prop_recursive` combinators,
//! `prop_oneof!`, `proptest::collection::vec`, the `proptest!` macro with
//! `#![proptest_config]`, and the `prop_assert*` macros.
//!
//! Cases are generated from a deterministic splitmix64 stream: case `i` of a
//! test derives its seed from the test name and `i`, so failures reproduce
//! exactly across runs and machines. There is no shrinking; the failure
//! report carries the case index and seed instead.

#![forbid(unsafe_code)]

use std::rc::Rc;

/// Re-exports matching `proptest::prelude::*` for the names used here.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
    /// Mirror of `proptest::prelude::prop` (collection strategies).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng, VecStrategy};

    /// A strategy producing `Vec`s whose length is drawn from `len` and
    /// whose items are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.pick(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Deterministic splitmix64 stream driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is undefined");
        self.next_u64() % bound
    }
}

/// Error type returned (via `prop_assert*` / `prop_assume!`) from a test
/// case that did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is redrawn.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// Builds a rejection (the runner redraws the case).
    #[must_use]
    pub fn reject() -> Self {
        Self::Reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
            TestCaseError::Reject => f.write_str("case rejected by prop_assume!"),
        }
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values for property tests.
///
/// `generate` returns `None` when the drawn raw values fall outside the
/// strategy's domain (a *rejection*); the runner redraws the whole case.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value, or `None` to reject this case.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; rejected values redraw.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _why: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }

    /// Maps through a fallible `f`; `None` results redraw.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        _why: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive values: `f` receives a strategy for the previous
    /// depth and returns the strategy for the next. `depth` bounds the
    /// recursion; the `desired_size`/`expected_branch_size` hints of the
    /// real proptest API are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate_dyn(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.pred)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let derived = (self.f)(self.inner.generate(rng)?);
        derived.generate(rng)
    }
}

/// See [`collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

/// A length specification for [`collection::vec`]: an exact length or a
/// half-open/inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// Uniform strategy over every value of `T` (`proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// Types with a canonical uniform generator, for [`any`].
pub trait Arbitrary {
    /// Draws a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo + rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one alternative");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Outcome of one generated case.
#[doc(hidden)]
pub enum CaseOutcome {
    /// The strategy rejected the drawn raw values; redraw.
    Reject,
    /// The case ran.
    Ran(Result<(), TestCaseError>),
}

/// Drives `case` until `cfg.cases` successful runs complete, panicking on
/// the first failure with a reproducible case index and seed.
#[doc(hidden)]
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> CaseOutcome,
) {
    // Stable per-test base seed: FNV-1a over the test name.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut ran = 0u32;
    let mut draws = 0u64;
    let max_draws = u64::from(cfg.cases) * 64;
    while ran < cfg.cases {
        assert!(
            draws < max_draws,
            "proptest `{name}`: too many rejections ({draws} draws for {ran} cases); \
             loosen the strategy filters"
        );
        let seed = base ^ draws.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        draws += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            CaseOutcome::Reject | CaseOutcome::Ran(Err(TestCaseError::Reject)) => continue,
            CaseOutcome::Ran(Ok(())) => ran += 1,
            CaseOutcome::Ran(Err(e)) => {
                panic!("proptest `{name}` failed at case {ran} (seed {seed:#x}): {e}")
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&cfg, stringify!($name), |rng| {
                    $(
                        let $arg = match $crate::Strategy::generate(&($strat), rng) {
                            Some(v) => v,
                            None => return $crate::CaseOutcome::Reject,
                        };
                    )+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    $crate::CaseOutcome::Ran(result)
                });
            }
        )*
    };
}

/// Discards the current case (without failing) when its precondition does
/// not hold; the runner redraws.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject());
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 5u32..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn maps_apply(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_filters(
            (a, b) in (0u64..50, 0u64..50).prop_filter("ordered", |(a, b)| a < b)
        ) {
            prop_assert!(a < b, "{} must be below {}", a, b);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u64), Just(2), 10u64..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_derives(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u64..9, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn early_ok_return(x in 0u64..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 4, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::new(42);
        for _ in 0..200 {
            let t = strat.generate(&mut rng).unwrap();
            assert!(depth(&t) <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        let cfg = ProptestConfig::with_cases(16);
        crate::run_cases(&cfg, "demo", |rng| {
            let x = rng.below(100);
            crate::CaseOutcome::Ran(if x < 1000 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            })
        });
    }
}
