//! Intersection projections (§7): re-expressing an intersection in the
//! linear space of one of the intersected partition elements.

use crate::model::Partition;
use crate::redist::Intersection;
use falls::{segments_to_falls, LineSegment, NestedSet};

/// The segments of one partition element within one aligned window
/// `[D + k·period, D + (k+1)·period)` of the file, annotated with their
/// element-linear offsets.
///
/// This is the bridge between file space and element space used by
/// projections and by copy-run construction: entry `(seg, off)` says that
/// file bytes `D + seg.l() ..= D + seg.r()` occupy element offsets
/// `off .. off + seg.len()` (for window 0; window `k` adds `k · period_elem`
/// to the element offsets and `k · period` to the file offsets).
#[derive(Debug, Clone)]
pub struct ElementWindow {
    /// `(file segment relative to the window start, element-linear offset)`
    /// pairs, sorted by file offset.
    pub entries: Vec<(LineSegment, u64)>,
    /// Element-linear bytes per window: `(period / SIZE(P)) · SIZE(S)`.
    pub period_elem: u64,
}

/// Computes the [`ElementWindow`] of `element` of `partition` for windows of
/// `period` bytes starting at absolute file offset `displacement`.
///
/// `displacement` must be at or past the partition's own displacement and
/// `period` a multiple of the pattern size (both hold for the values carried
/// by an [`Intersection`]).
#[must_use]
pub fn element_window(
    partition: &Partition,
    element: usize,
    displacement: u64,
    period: u64,
) -> ElementWindow {
    let d = partition.displacement();
    assert!(
        displacement >= d,
        "window start {displacement} precedes the partition displacement {d}"
    );
    let psize = partition.pattern().size();
    assert_eq!(period % psize, 0, "window period must be a multiple of the pattern size");
    let set = partition.pattern().element(element).expect("element index in range");
    let esize = set.size();

    // Tree segments of one pattern tile with their linear offsets.
    let mut tile_entries: Vec<(LineSegment, u64)> = Vec::new();
    let mut linear = 0u64;
    for seg in set.tree_segments() {
        tile_entries.push((seg, linear));
        linear += seg.len();
    }

    let win_lo = displacement;
    let win_hi = displacement + period - 1;
    let t_start = (win_lo - d) / psize;
    let t_end = (win_hi - d) / psize;
    let mut entries = Vec::with_capacity(tile_entries.len() * (t_end - t_start + 1) as usize);
    for t in t_start..=t_end {
        let tile_base = d + t * psize;
        for (seg, off) in &tile_entries {
            let abs = seg.shift_up(tile_base).expect("fits in u64");
            let Some(clipped) = abs.clip(win_lo, win_hi) else { continue };
            let elem_off = t * esize + off + (clipped.l() - abs.l());
            let rel = clipped.shift_down(win_lo).expect("clipped to the window");
            entries.push((rel, elem_off));
        }
    }
    entries.sort_unstable_by_key(|(seg, _)| seg.l());
    ElementWindow { entries, period_elem: (period / psize) * esize }
}

/// A projection of an intersection onto the linear space of one of the two
/// intersected partition elements (the paper's `PROJ`).
///
/// `set` holds the element-linear positions of the common data within the
/// first aligned window; the selection repeats every `period` element bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// Element-linear positions of the common bytes in window 0.
    pub set: NestedSet,
    /// Element-linear bytes per aligned window.
    pub period: u64,
}

impl Projection {
    /// Projects `intersection` onto `element` of `partition`, which must be
    /// one of the two elements the intersection was computed from.
    #[must_use]
    pub fn compute(intersection: &Intersection, partition: &Partition, element: usize) -> Self {
        let window =
            element_window(partition, element, intersection.displacement, intersection.period);
        let mut runs: Vec<LineSegment> = Vec::new();
        // Merge join: both lists are sorted by file offset and the
        // intersection is a subset of the element's bytes.
        let inter_segs = intersection.set.absolute_segments();
        let mut wi = 0usize;
        for iseg in &inter_segs {
            let mut pos = iseg.l();
            while pos <= iseg.r() {
                while wi < window.entries.len() && window.entries[wi].0.r() < pos {
                    wi += 1;
                }
                let (eseg, eoff) = window.entries.get(wi).unwrap_or_else(|| {
                    panic!("intersection byte {pos} not covered by the element")
                });
                assert!(eseg.l() <= pos, "intersection byte {pos} not covered by the element");
                let end = iseg.r().min(eseg.r());
                let start_off = eoff + (pos - eseg.l());
                runs.push(
                    LineSegment::new(start_off, start_off + (end - pos))
                        .expect("run is well-formed"),
                );
                pos = end + 1;
            }
        }
        runs.sort_unstable();
        Self { set: segments_to_falls(&runs), period: window.period_elem }
    }

    /// An empty projection (of an empty intersection).
    #[must_use]
    pub fn empty() -> Self {
        Self { set: NestedSet::empty(), period: 1 }
    }

    /// Whether the projection selects no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Common bytes per aligned window.
    #[must_use]
    pub fn bytes_per_period(&self) -> u64 {
        self.set.size()
    }

    /// Element-linear segments of the projection clipped to `[lo, hi]`
    /// (inclusive), across however many windows that range spans, in
    /// increasing element-offset order.
    #[must_use]
    pub fn segments_between(&self, lo: u64, hi: u64) -> Vec<LineSegment> {
        if self.is_empty() || lo > hi {
            return Vec::new();
        }
        let base = self.set.absolute_segments();
        let min_pos = base.first().expect("non-empty").l();
        let max_pos = base.last().expect("non-empty").r();
        let k_lo = lo.saturating_sub(max_pos) / self.period;
        if min_pos > hi {
            return Vec::new();
        }
        let k_hi = (hi - min_pos) / self.period;
        let mut out = Vec::new();
        for k in k_lo..=k_hi {
            let shift = k * self.period;
            for seg in &base {
                let abs = seg.shift_up(shift).expect("fits in u64");
                if let Some(clipped) = abs.clip(lo, hi) {
                    out.push(clipped);
                }
            }
        }
        // Window 0's offsets can span more than one period when the element's
        // tree order differs from byte order under a displacement mismatch;
        // the per-window concatenation is then not globally sorted. The
        // offsets are still unique (MAP is injective), so sorting yields the
        // canonical disjoint ordering the derived queries rely on.
        out.sort_unstable();
        out
    }

    /// Number of projected bytes within `[lo, hi]`.
    #[must_use]
    pub fn bytes_between(&self, lo: u64, hi: u64) -> u64 {
        self.segments_between(lo, hi).iter().map(LineSegment::len).sum()
    }

    /// Whether the projection covers *every* byte of `[lo, hi]` — the
    /// paper's "PROJ is contiguous between ÷ and ø" fast-path test: when it
    /// holds, the buffer interval can be sent/written as one contiguous
    /// block with no gather/scatter.
    #[must_use]
    pub fn covers_interval(&self, lo: u64, hi: u64) -> bool {
        lo <= hi && self.bytes_between(lo, hi) == hi - lo + 1
    }

    /// The single contiguous run formed by the projected bytes within
    /// `[lo, hi]`, if they form exactly one run (`None` if empty or
    /// fragmented).
    #[must_use]
    pub fn contiguous_run_between(&self, lo: u64, hi: u64) -> Option<LineSegment> {
        let segs = self.segments_between(lo, hi);
        let mut iter = segs.into_iter();
        let mut run = iter.next()?;
        for seg in iter {
            if run.abuts(&seg) {
                run = LineSegment::new(run.l(), seg.r()).expect("ordered run");
            } else {
                return None;
            }
        }
        Some(run)
    }

    /// Number of disjoint fragments within `[lo, hi]` (adjacent segments
    /// coalesce into one fragment).
    #[must_use]
    pub fn fragments_between(&self, lo: u64, hi: u64) -> usize {
        let segs = self.segments_between(lo, hi);
        let mut count = 0usize;
        let mut prev: Option<LineSegment> = None;
        for seg in segs {
            match prev {
                Some(p) if p.abuts(&seg) => {}
                _ => count += 1,
            }
            prev = Some(seg);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartitionPattern;
    use crate::redist::intersect_elements;
    use falls::{Falls, NestedFalls, NestedSet};

    fn leaf(l: u64, r: u64, s: u64, n: u64) -> NestedFalls {
        NestedFalls::leaf(Falls::new(l, r, s, n).unwrap())
    }

    fn nested(l: u64, r: u64, s: u64, n: u64, inner: Vec<NestedFalls>) -> NestedFalls {
        NestedFalls::with_inner(Falls::new(l, r, s, n).unwrap(), inner).unwrap()
    }

    /// Figure 4(c)/(d): both projections of V ∩ S equal (0,0,4,2) — element
    /// offsets {0, 4}.
    #[test]
    fn paper_figure4_projections() {
        // V = {(0,7,16,2, {(0,1,4,2)})} plus a complement element so the
        // pattern tiles; S likewise.
        let v_set = NestedSet::singleton(nested(0, 7, 16, 2, vec![leaf(0, 1, 4, 2)]));
        let v_rest = v_set.complement(32);
        let s_set = NestedSet::singleton(nested(0, 3, 8, 4, vec![leaf(0, 0, 2, 2)]));
        let s_rest = s_set.complement(32);
        let pv = Partition::new(0, PartitionPattern::new(vec![v_set, v_rest]).unwrap());
        let ps = Partition::new(0, PartitionPattern::new(vec![s_set, s_rest]).unwrap());
        let inter = intersect_elements(&pv, 0, &ps, 0).unwrap();
        assert_eq!(inter.set.absolute_offsets(), vec![0, 16]);

        let proj_v = Projection::compute(&inter, &pv, 0);
        let proj_s = Projection::compute(&inter, &ps, 0);
        assert_eq!(proj_v.set.absolute_offsets(), vec![0, 4]);
        assert_eq!(proj_s.set.absolute_offsets(), vec![0, 4]);
        assert_eq!(proj_v.period, 8);
        assert_eq!(proj_s.period, 8);
    }

    #[test]
    fn projection_of_identical_elements_is_identity() {
        let pat = PartitionPattern::new(vec![
            NestedSet::singleton(leaf(0, 3, 8, 1)),
            NestedSet::singleton(leaf(4, 7, 8, 1)),
        ])
        .unwrap();
        let p = Partition::new(0, pat);
        let inter = intersect_elements(&p, 0, &p, 0).unwrap();
        let proj = Projection::compute(&inter, &p, 0);
        assert_eq!(proj.set.absolute_offsets(), vec![0, 1, 2, 3]);
        assert!(proj.covers_interval(0, 3));
        assert!(proj.covers_interval(0, 100));
        assert_eq!(proj.fragments_between(0, 15), 1);
    }

    #[test]
    fn projection_round_trips_through_mapping() {
        use crate::mapping::Mapper;
        use falls::testing::{random_nested_set, Gen};
        // Random single-element-of-interest partitions: element 0 random,
        // element 1 the complement.
        let mut g = Gen::new(0x5EED);
        for _ in 0..40 {
            let span = g.range(8, 96);
            let a0 = random_nested_set(&mut g, span, 2);
            let b0 = random_nested_set(&mut g, span, 2);
            let (pa, pb) = match (complement_ok(&a0, span), complement_ok(&b0, span)) {
                (Some(pa), Some(pb)) => (pa, pb),
                _ => continue,
            };
            let inter = intersect_elements(&pa, 0, &pb, 0).unwrap();
            if inter.is_empty() {
                continue;
            }
            let proj_a = Projection::compute(&inter, &pa, 0);
            let ma = Mapper::new(&pa, 0);
            // Every intersection byte's MAP value appears in the projection.
            let want: Vec<u64> = inter
                .set
                .absolute_offsets()
                .iter()
                .map(|&x| ma.map(x).expect("intersection ⊆ element"))
                .collect();
            let mut want_sorted = want.clone();
            want_sorted.sort_unstable();
            assert_eq!(proj_a.set.absolute_offsets(), want_sorted);
        }
    }

    fn complement_ok(set: &NestedSet, span: u64) -> Option<Partition> {
        let rest = set.complement(span);
        if rest.is_empty() {
            // The element covers everything; single-element pattern.
            return PartitionPattern::new(vec![set.clone()]).ok().map(|p| Partition::new(0, p));
        }
        PartitionPattern::new(vec![set.clone(), rest]).ok().map(|p| Partition::new(0, p))
    }

    #[test]
    fn segments_between_spans_windows() {
        let pat = PartitionPattern::new(vec![
            NestedSet::singleton(leaf(0, 1, 4, 1)),
            NestedSet::singleton(leaf(2, 3, 4, 1)),
        ])
        .unwrap();
        let p = Partition::new(0, pat);
        let inter = intersect_elements(&p, 0, &p, 0).unwrap();
        let proj = Projection::compute(&inter, &p, 0);
        assert_eq!(proj.period, 2);
        // The projection is the identity on element 0's space.
        let segs = proj.segments_between(3, 9);
        let offs: Vec<u64> = segs.iter().flat_map(LineSegment::offsets).collect();
        assert_eq!(offs, vec![3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn fragmented_projection_detected() {
        // Row element intersected with a column element fragments.
        let rows = Partition::new(
            0,
            PartitionPattern::new(
                (0..2).map(|k| NestedSet::singleton(leaf(8 * k, 8 * k + 7, 16, 1))).collect(),
            )
            .unwrap(),
        );
        let cols = Partition::new(
            0,
            PartitionPattern::new(
                (0..2).map(|k| NestedSet::singleton(leaf(2 * k, 2 * k + 1, 4, 4))).collect(),
            )
            .unwrap(),
        );
        let inter = intersect_elements(&rows, 0, &cols, 0).unwrap();
        let proj_r = Projection::compute(&inter, &rows, 0);
        // Row 0's bytes [0,8) keep columns {0,1,4,5} → two fragments.
        assert_eq!(proj_r.set.absolute_offsets(), vec![0, 1, 4, 5]);
        assert_eq!(proj_r.fragments_between(0, 7), 2);
        assert!(!proj_r.covers_interval(0, 7));
        assert!(proj_r.covers_interval(0, 1));
        assert_eq!(proj_r.contiguous_run_between(0, 7), None);
        assert_eq!(proj_r.contiguous_run_between(3, 7), Some(LineSegment::new(4, 5).unwrap()));
    }

    #[test]
    fn empty_projection_behaviour() {
        let p = Projection::empty();
        assert!(p.is_empty());
        assert!(p.segments_between(0, 100).is_empty());
        assert!(!p.covers_interval(0, 0));
        assert_eq!(p.fragments_between(0, 10), 0);
    }
}
