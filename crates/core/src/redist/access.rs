//! View access plans: the compiled `MAP_V ∘ MAP_S⁻¹` machinery for one view
//! over one physical partition.
//!
//! Setting a view is the paper's expensive, amortized phase: the view
//! element is intersected with every subfile, and the intersection is
//! projected onto both linear spaces (`PROJ_V` kept at the compute side,
//! `PROJ_S` shipped to the subfile's I/O node). Both the simulated
//! Clusterfile and the real `parafile-net` client need exactly this
//! computation, so it lives here instead of being duplicated per transport.

use crate::model::Partition;
use crate::redist::{intersect_elements, Projection};
use crate::Error;

/// The compiled access information for one (view element, subfile) pair.
#[derive(Debug, Clone)]
pub struct SubfileAccess {
    /// `PROJ_V(V ∩ S)` — the intersection in the view's linear space
    /// (kept at the compute side; drives gathers and request intervals).
    pub proj_view: Projection,
    /// `PROJ_S(V ∩ S)` — the intersection in the subfile's linear space
    /// (shipped to the I/O node; drives scatters).
    pub proj_sub: Projection,
    /// Whether view and subfile describe the same byte set, so view offsets
    /// equal subfile offsets and mapping extremities is free (§6.2: identical
    /// parameters make each view map exactly on a subfile).
    pub perfect_match: bool,
}

impl SubfileAccess {
    /// Whether the pair shares no data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.proj_view.is_empty()
    }

    fn empty() -> Self {
        Self { proj_view: Projection::empty(), proj_sub: Projection::empty(), perfect_match: false }
    }
}

/// The full access plan of one view element against a physical partition:
/// one [`SubfileAccess`] per subfile, in subfile order.
#[derive(Debug, Clone)]
pub struct ViewPlan {
    /// Per-subfile access information, indexed by subfile.
    pub per_subfile: Vec<SubfileAccess>,
}

impl ViewPlan {
    /// Compiles the plan: intersects `element` of `view` with every element
    /// of `physical` and projects each non-empty intersection on both sides.
    ///
    /// This is the compute bulk of the paper's view-set protocol (`t_i`);
    /// its cost is paid once per view and amortized over all accesses.
    pub fn compile(view: &Partition, element: usize, physical: &Partition) -> Result<Self, Error> {
        let mut per_subfile = Vec::with_capacity(physical.element_count());
        for s in 0..physical.element_count() {
            let inter = intersect_elements(view, element, physical, s)?;
            if inter.is_empty() {
                per_subfile.push(SubfileAccess::empty());
                continue;
            }
            let proj_view = Projection::compute(&inter, view, element);
            let proj_sub = Projection::compute(&inter, physical, s);
            let perfect_match =
                proj_view.period == proj_sub.period && proj_view.set == proj_sub.set;
            per_subfile.push(SubfileAccess { proj_view, proj_sub, perfect_match });
        }
        Ok(Self { per_subfile })
    }

    /// Number of subfiles the view shares data with.
    #[must_use]
    pub fn intersecting_subfiles(&self) -> usize {
        self.per_subfile.iter().filter(|a| !a.is_empty()).count()
    }

    /// Total FALLS-tree nodes over all projections — the size of the
    /// symbolic representation, used as a cost proxy by the simulator.
    #[must_use]
    pub fn work_nodes(&self) -> usize {
        self.per_subfile
            .iter()
            .map(|a| a.proj_view.set.node_count() + a.proj_sub.set.node_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartitionPattern;
    use falls::{Falls, NestedFalls, NestedSet};

    fn stripes(count: u64, width: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(
                        Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                    ))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(0, pattern)
    }

    fn cyclic(count: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap()))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(0, pattern)
    }

    #[test]
    fn identical_partitions_are_perfect_matches() {
        let p = stripes(4, 8);
        let plan = ViewPlan::compile(&p, 1, &p).unwrap();
        assert_eq!(plan.per_subfile.len(), 4);
        assert_eq!(plan.intersecting_subfiles(), 1);
        assert!(plan.per_subfile[1].perfect_match);
        assert!(plan.per_subfile[0].is_empty());
        assert!(plan.work_nodes() > 0);
    }

    #[test]
    fn mismatched_partitions_intersect_everywhere() {
        let plan = ViewPlan::compile(&stripes(4, 8), 0, &cyclic(4)).unwrap();
        assert_eq!(plan.intersecting_subfiles(), 4);
        for a in &plan.per_subfile {
            assert!(!a.perfect_match);
            // A stripe of 8 meets each cyclic element in 2 bytes per period.
            assert_eq!(a.proj_view.bytes_per_period(), 2);
            assert_eq!(a.proj_sub.bytes_per_period(), 2);
        }
    }

    #[test]
    fn bad_element_index_is_an_error() {
        let p = stripes(2, 4);
        assert!(ViewPlan::compile(&p, 7, &p).is_err());
    }
}
