//! Byte-by-byte redistribution baseline.
//!
//! §3 of the paper argues that "by converting between two different
//! distributions, it would be inefficient to map each byte from one
//! distribution to another" — this module implements exactly that strawman
//! (one `MAP⁻¹`/`MAP` composition per byte) so the benefit of segment-based
//! redistribution can be measured.

use crate::mapping::Mapper;
use crate::model::Partition;

/// Moves every byte of the file region `[max(d₁, d₂), file_len)` from its
/// source element buffer to its destination element buffer, one byte at a
/// time, using the mapping functions.
///
/// Buffers are indexed by element; each must be at least
/// [`Partition::element_len`] bytes long. Returns the number of bytes moved.
///
/// # Panics
/// Panics if a buffer is too short for its element.
pub fn redistribute_bytewise(
    src: &Partition,
    dst: &Partition,
    src_bufs: &[Vec<u8>],
    dst_bufs: &mut [Vec<u8>],
    file_len: u64,
) -> u64 {
    let src_mappers: Vec<Mapper<'_>> =
        (0..src.element_count()).map(|e| Mapper::new(src, e)).collect();
    let dst_mappers: Vec<Mapper<'_>> =
        (0..dst.element_count()).map(|e| Mapper::new(dst, e)).collect();
    let start = src.displacement().max(dst.displacement());
    let mut moved = 0u64;
    for x in start..file_len {
        let (Some(se), Some(de)) = (src.owner_of(x), dst.owner_of(x)) else {
            continue;
        };
        let soff = src_mappers[se].map(x).expect("owner element selects the byte");
        let doff = dst_mappers[de].map(x).expect("owner element selects the byte");
        dst_bufs[de][doff as usize] = src_bufs[se][soff as usize];
        moved += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartitionPattern;
    use falls::{Falls, NestedFalls, NestedSet};

    fn stripes(count: u64, width: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(
                        Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                    ))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(0, pattern)
    }

    fn cyclic(count: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap()))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(0, pattern)
    }

    #[test]
    fn bytewise_moves_every_byte() {
        let src = stripes(2, 4);
        let dst = cyclic(4);
        let file_len = 32u64;
        // Fill source element buffers with the file contents they hold.
        let fill = |p: &Partition| -> Vec<Vec<u8>> {
            (0..p.element_count())
                .map(|e| {
                    let m = Mapper::new(p, e);
                    let len = p.element_len(e, file_len).unwrap();
                    (0..len).map(|y| m.unmap(y) as u8).collect()
                })
                .collect()
        };
        let src_bufs = fill(&src);
        let mut dst_bufs: Vec<Vec<u8>> = (0..dst.element_count())
            .map(|e| vec![0u8; dst.element_len(e, file_len).unwrap() as usize])
            .collect();
        let moved = redistribute_bytewise(&src, &dst, &src_bufs, &mut dst_bufs, file_len);
        assert_eq!(moved, file_len);
        // Every destination byte must hold the file offset it represents.
        for (e, buf) in dst_bufs.iter().enumerate() {
            let m = Mapper::new(&dst, e);
            for (y, &v) in buf.iter().enumerate() {
                assert_eq!(v, m.unmap(y as u64) as u8, "element {e} offset {y}");
            }
        }
    }
}
