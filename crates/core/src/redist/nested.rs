//! Intersection of sets of nested FALLS (§7): `INTERSECT` with its
//! PREPROCESS phase, and the recursive `INTERSECT-AUX`.

use crate::model::Partition;
use crate::redist::{cut_falls, intersect_falls};
use crate::Error;
use falls::{checked_lcm, Falls, LineSegment, NestedFalls, NestedSet};

/// The intersection of two partition elements belonging to two partitions of
/// the same file.
///
/// `set` describes the common bytes within one *aligned period* of length
/// `period = lcm(SIZE(P₁), SIZE(P₂))`, relative to the common displacement
/// `displacement = max(d₁, d₂)`; the selection repeats with `period` from
/// there on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intersection {
    /// Common bytes within one aligned period (offsets relative to
    /// [`Intersection::displacement`]).
    pub set: NestedSet,
    /// Absolute file offset where the aligned tiling starts.
    pub displacement: u64,
    /// Aligned period: `lcm` of the two pattern sizes.
    pub period: u64,
}

impl Intersection {
    /// Whether the two elements share no data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Number of common bytes per aligned period.
    #[must_use]
    pub fn bytes_per_period(&self) -> u64 {
        self.set.size()
    }

    /// Absolute file segments of the intersection within `[lo, hi]`
    /// (absolute file offsets, both inclusive).
    #[must_use]
    pub fn file_segments_between(&self, lo: u64, hi: u64) -> Vec<LineSegment> {
        if self.is_empty() || hi < self.displacement || lo > hi {
            return Vec::new();
        }
        let lo = lo.max(self.displacement);
        let base_segs = self.set.absolute_segments();
        let first_tile = (lo - self.displacement) / self.period;
        let last_tile = (hi - self.displacement) / self.period;
        let mut out = Vec::new();
        for tile in first_tile..=last_tile {
            let shift = self.displacement + tile * self.period;
            for seg in &base_segs {
                let abs = seg.shift_up(shift).expect("offsets fit in u64");
                if let Some(clipped) = abs.clip(lo, hi) {
                    out.push(clipped);
                }
            }
        }
        out
    }

    /// Number of common bytes within the absolute file range `[lo, hi]`.
    #[must_use]
    pub fn bytes_between(&self, lo: u64, hi: u64) -> u64 {
        self.file_segments_between(lo, hi).iter().map(LineSegment::len).sum()
    }
}

/// Intersects element `e1` of partition `p1` with element `e2` of partition
/// `p2` — the paper's `INTERSECT`, PREPROCESS included.
///
/// PREPROCESS extends both partitioning patterns over
/// `lcm(SIZE(P₁), SIZE(P₂))` and aligns them at `max(d₁, d₂)` by rotating
/// the earlier-displaced pattern with two nested cuts (structure-preserving,
/// per "cutting and extending the partitioning pattern starting at the
/// lowest displacement").
pub fn intersect_elements(
    p1: &Partition,
    e1: usize,
    p2: &Partition,
    e2: usize,
) -> Result<Intersection, Error> {
    let s1 = p1.pattern().element(e1)?;
    let s2 = p2.pattern().element(e2)?;
    let (sz1, sz2) = (p1.pattern().size(), p2.pattern().size());
    let period = checked_lcm(sz1, sz2).ok_or(Error::PeriodOverflow { size1: sz1, size2: sz2 })?;
    let displacement = p1.displacement().max(p2.displacement());

    let ext1 = extend_set(s1, sz1, period);
    let ext2 = extend_set(s2, sz2, period);
    let ext1 = align_set(&ext1, period, displacement - p1.displacement());
    let ext2 = align_set(&ext2, period, displacement - p2.displacement());

    let set = intersect_sets(&ext1, period, &ext2, period);
    Ok(Intersection { set, displacement, period })
}

/// Intersects two sets of nested FALLS living in the same linear space —
/// `INTERSECT-AUX` applied at the top level with limits `[0, span−1]`.
///
/// `span1`/`span2` bound the spaces the sets were defined over; both sets
/// must already be extended to a common period for a meaningful result (as
/// [`intersect_elements`] does).
#[must_use]
pub fn intersect_sets(s1: &NestedSet, span1: u64, s2: &NestedSet, span2: u64) -> NestedSet {
    let span = span1.max(span2);
    let mut families = intersect_siblings(s1.families(), 0, span - 1, s2.families(), 0, span - 1);
    families.sort_by_key(|f| (f.falls().l(), f.falls().r()));
    NestedSet::new(families).expect("intersection families are disjoint")
}

/// Replicates a pattern-element set over `period` (a multiple of `size`).
fn extend_set(set: &NestedSet, size: u64, period: u64) -> NestedSet {
    debug_assert_eq!(period % size, 0);
    let copies = period / size;
    if copies == 1 {
        return set.clone();
    }
    let mut families = Vec::with_capacity(set.families().len() * copies as usize);
    for k in 0..copies {
        let shifted = set.shift_up(k * size).expect("extension fits in u64");
        families.extend(shifted.families().iter().cloned());
    }
    NestedSet::new(families).expect("replicated tiles are disjoint")
}

/// Rotates a period-`period` set left by `shift` bytes: the returned set
/// selects byte `p` iff the input selects `(p + shift) mod period`.
///
/// Used to re-express a pattern relative to a later displacement. Built
/// from two nested cuts, so nesting structure is preserved.
fn align_set(set: &NestedSet, period: u64, shift: u64) -> NestedSet {
    let shift = shift % period;
    if shift == 0 {
        return set.clone();
    }
    let mut families: Vec<NestedFalls> = cut_set(set, shift, period - 1).families().to_vec();
    if shift > 0 {
        let left = cut_set(set, 0, shift - 1);
        for f in left.families() {
            families.push(f.shift_up(period - shift).expect("fits in u64"));
        }
    }
    families.sort_by_key(|f| (f.falls().l(), f.falls().r()));
    NestedSet::new(families).expect("rotation keeps families disjoint")
}

/// Cuts a whole set of nested FALLS between `lo` and `hi` (inclusive),
/// re-expressed relative to `lo` — the nested generalization of
/// [`cut_falls`], preserving tree structure wherever blocks survive intact.
///
/// This is what "restrict a view to a region" means in the paper's model.
#[must_use]
pub fn cut_set(set: &NestedSet, lo: u64, hi: u64) -> NestedSet {
    let mut families = cut_siblings(set.families(), lo, hi);
    families.sort_by_key(|f| (f.falls().l(), f.falls().r()));
    NestedSet::new(families).expect("cut pieces stay disjoint")
}

/// Cuts every family of a sibling list to `[lo, hi]`, rebasing to `lo`.
fn cut_siblings(sibs: &[NestedFalls], lo: u64, hi: u64) -> Vec<NestedFalls> {
    let mut out = Vec::new();
    for nf in sibs {
        for piece in cut_falls(nf.falls(), lo, hi) {
            if nf.is_leaf() {
                out.push(NestedFalls::leaf(piece));
                continue;
            }
            // Offset of the piece's first block within the original block
            // (every repetition sits at the same offset because the piece's
            // stride equals the original stride for multi-block pieces).
            let off = (lo + piece.l() - nf.falls().l()) % nf.falls().stride();
            let span = piece.block_len();
            let children = cut_siblings(nf.inner(), off, off + span - 1);
            if children.is_empty() {
                continue; // the surviving block range selects nothing
            }
            out.push(
                NestedFalls::with_inner(piece, children)
                    .expect("cut children fit in the cut block"),
            );
        }
    }
    out
}

/// `INTERSECT-AUX`: intersects two sibling lists after cutting them to
/// `[lo, hi]` limits expressed in each list's own coordinates; results are
/// relative to the cut inferior limits (which denote the same absolute
/// position in both spaces).
fn intersect_siblings(
    s1: &[NestedFalls],
    lo1: u64,
    hi1: u64,
    s2: &[NestedFalls],
    lo2: u64,
    hi2: u64,
) -> Vec<NestedFalls> {
    let mut out: Vec<NestedFalls> = Vec::new();
    for f1 in s1 {
        let cut1 = cut_falls(f1.falls(), lo1, hi1);
        if cut1.is_empty() {
            continue;
        }
        for f2 in s2 {
            let cut2 = cut_falls(f2.falls(), lo2, hi2);
            for g1 in &cut1 {
                for g2 in &cut2 {
                    for f in intersect_falls(g1, g2) {
                        if let Some(node) = build_node(f, f1, lo1, f2, lo2) {
                            out.push(node);
                        }
                    }
                }
            }
        }
    }
    out.sort_by_key(|f| (f.falls().l(), f.falls().r()));
    out
}

/// Builds the intersection node for outer FALLS `f`, recursing into the
/// inner families of its two sources (line 10 of INTERSECT-AUX).
fn build_node(
    f: Falls,
    f1: &NestedFalls,
    lo1: u64,
    f2: &NestedFalls,
    lo2: u64,
) -> Option<NestedFalls> {
    if f1.is_leaf() && f2.is_leaf() {
        return Some(NestedFalls::leaf(f));
    }
    // Offset of f's first block within the original blocks of f1 and f2.
    // Every repetition of f sits at the same relative offsets because f's
    // stride is a common multiple of both sources' strides.
    let off1 = (lo1 + f.l() - f1.falls().l()) % f1.falls().stride();
    let off2 = (lo2 + f.l() - f2.falls().l()) % f2.falls().stride();
    let span = f.block_len();
    let full = [NestedFalls::leaf(Falls::new(0, span - 1, span, 1).expect("span ≥ 1"))];
    let (in1, o1): (&[NestedFalls], u64) =
        if f1.is_leaf() { (&full, 0) } else { (f1.inner(), off1) };
    let (in2, o2): (&[NestedFalls], u64) =
        if f2.is_leaf() { (&full, 0) } else { (f2.inner(), off2) };
    let children = intersect_siblings(in1, o1, o1 + span - 1, in2, o2, o2 + span - 1);
    if children.is_empty() {
        return None;
    }
    Some(NestedFalls::with_inner(f, children).expect("children are disjoint and in-block"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartitionPattern;
    use falls::NestedFalls;

    fn leaf(l: u64, r: u64, s: u64, n: u64) -> NestedFalls {
        NestedFalls::leaf(Falls::new(l, r, s, n).unwrap())
    }

    fn nested(l: u64, r: u64, s: u64, n: u64, inner: Vec<NestedFalls>) -> NestedFalls {
        NestedFalls::with_inner(Falls::new(l, r, s, n).unwrap(), inner).unwrap()
    }

    /// Figure 4's nested intersection:
    /// V = {(0,7,16,2, {(0,1,4,2)})}, S = {(0,3,8,4, {(0,0,2,2)})},
    /// patterns of size 32 ⇒ V ∩ S selects bytes {0, 16}.
    #[test]
    fn paper_figure4_intersection() {
        let v = NestedSet::singleton(nested(0, 7, 16, 2, vec![leaf(0, 1, 4, 2)]));
        let s = NestedSet::singleton(nested(0, 3, 8, 4, vec![leaf(0, 0, 2, 2)]));
        assert_eq!(v.absolute_offsets(), vec![0, 1, 4, 5, 16, 17, 20, 21]);
        assert_eq!(s.absolute_offsets(), vec![0, 2, 8, 10, 16, 18, 24, 26]);
        let i = intersect_sets(&v, 32, &s, 32);
        assert_eq!(i.absolute_offsets(), vec![0, 16]);
        // The paper reports the result as {(0,3,16,2, {(0,0,4,1)})} — outer
        // family with stride 16, count 2, one byte per block.
        assert_eq!(i.size(), 2);
        let outer = &i.families()[0];
        assert_eq!(outer.falls().stride(), 16);
        assert_eq!(outer.falls().count(), 2);
    }

    #[test]
    fn intersection_equals_set_intersection_of_offsets() {
        use falls::testing::{random_nested_set, Gen};
        let mut g = Gen::new(0xBEEF);
        for round in 0..150 {
            let span = g.range(8, 160);
            let a = random_nested_set(&mut g, span, 3);
            let b = random_nested_set(&mut g, span, 3);
            let i = intersect_sets(&a, span, &b, span);
            let oa = a.absolute_offsets();
            let ob = b.absolute_offsets();
            let want: Vec<u64> = oa.iter().copied().filter(|x| ob.contains(x)).collect();
            assert_eq!(i.absolute_offsets(), want, "round {round}: {a} ∩ {b}");
        }
    }

    #[test]
    fn mixed_depth_trees() {
        // A flat family intersected with a nested one.
        let a = NestedSet::singleton(leaf(0, 7, 16, 2));
        let b = NestedSet::singleton(nested(0, 3, 8, 4, vec![leaf(0, 0, 2, 2)]));
        let i = intersect_sets(&a, 32, &b, 32);
        // a selects [0,7] ∪ [16,23]; b selects {0,2,8,10,16,18,24,26}.
        assert_eq!(i.absolute_offsets(), vec![0, 2, 16, 18]);
    }

    fn row_pattern() -> PartitionPattern {
        // 4 "rows" of 8 bytes each, one element per row: pattern size 32.
        PartitionPattern::new(
            (0..4).map(|k| NestedSet::singleton(leaf(8 * k, 8 * k + 7, 32, 1))).collect(),
        )
        .unwrap()
    }

    fn column_pattern() -> PartitionPattern {
        // 4 "column blocks": element k takes bytes [2k, 2k+1] of every 8.
        PartitionPattern::new(
            (0..4).map(|k| NestedSet::singleton(leaf(2 * k, 2 * k + 1, 8, 4))).collect(),
        )
        .unwrap()
    }

    #[test]
    fn full_partition_pair_covers_everything() {
        let rows = Partition::new(0, row_pattern());
        let cols = Partition::new(0, column_pattern());
        let mut total = 0;
        for i in 0..4 {
            for j in 0..4 {
                let inter = intersect_elements(&rows, i, &cols, j).unwrap();
                assert_eq!(inter.period, 32);
                total += inter.bytes_per_period();
            }
        }
        // Every byte of the 32-byte period lies in exactly one (row, col) pair.
        assert_eq!(total, 32);
    }

    #[test]
    fn identical_elements_intersect_fully() {
        let rows = Partition::new(0, row_pattern());
        for i in 0..4 {
            let inter = intersect_elements(&rows, i, &rows, i).unwrap();
            assert_eq!(inter.bytes_per_period(), 8);
            let other = intersect_elements(&rows, i, &rows, (i + 1) % 4).unwrap();
            assert!(other.is_empty());
        }
    }

    #[test]
    fn different_pattern_sizes_extend_to_lcm() {
        // P1: size 6 (figure 3's S0); P2: size 4, two halves.
        let p1 = Partition::new(
            0,
            PartitionPattern::new(vec![
                NestedSet::singleton(leaf(0, 1, 6, 1)),
                NestedSet::singleton(leaf(2, 5, 6, 1)),
            ])
            .unwrap(),
        );
        let p2 = Partition::new(
            0,
            PartitionPattern::new(vec![
                NestedSet::singleton(leaf(0, 1, 4, 1)),
                NestedSet::singleton(leaf(2, 3, 4, 1)),
            ])
            .unwrap(),
        );
        let inter = intersect_elements(&p1, 0, &p2, 0).unwrap();
        assert_eq!(inter.period, 12);
        // S1,0 selects {0,1,6,7}; S2,0 selects {0,1,4,5,8,9} per 12 bytes.
        assert_eq!(inter.set.absolute_offsets(), vec![0, 1]);
    }

    #[test]
    fn displacement_alignment() {
        // Same pattern, displacements 0 and 2: alignment at 2.
        let pat = || {
            PartitionPattern::new(vec![
                NestedSet::singleton(leaf(0, 1, 4, 1)),
                NestedSet::singleton(leaf(2, 3, 4, 1)),
            ])
            .unwrap()
        };
        let p1 = Partition::new(0, pat());
        let p2 = Partition::new(2, pat());
        let inter = intersect_elements(&p1, 0, &p2, 0).unwrap();
        assert_eq!(inter.displacement, 2);
        // Relative to 2: p1's element 0 selects {2,3} mod 4 (absolute {4,5,8,9...}
        // → relative {2,3}); p2's element 0 selects {0,1}. Disjoint.
        assert!(inter.is_empty());
        // Element 0 of p1 vs element 1 of p2 fully overlap.
        let inter = intersect_elements(&p1, 0, &p2, 1).unwrap();
        assert_eq!(inter.set.absolute_offsets(), vec![2, 3]);
    }

    #[test]
    fn file_segments_between_tiles_and_clips() {
        let rows = Partition::new(0, row_pattern());
        let cols = Partition::new(0, column_pattern());
        let inter = intersect_elements(&rows, 0, &cols, 0).unwrap();
        // row 0 = [0,8); col 0 = {0,1, 8,9, 16,17, 24,25}; common = {0,1}.
        let segs = inter.file_segments_between(0, 63);
        let offs: Vec<u64> = segs.iter().flat_map(LineSegment::offsets).collect();
        assert_eq!(offs, vec![0, 1, 32, 33]);
        assert_eq!(inter.bytes_between(1, 32), 2);
        assert_eq!(inter.bytes_between(40, 50), 0);
    }

    #[test]
    fn cut_set_is_clip_and_shift() {
        use falls::testing::{random_nested_set, Gen};
        let mut g = Gen::new(0xC07);
        for _ in 0..200 {
            let span = g.range(4, 120);
            let set = random_nested_set(&mut g, span, 3);
            let lo = g.below(span + 4);
            let hi = lo + g.below(span + 4);
            let cut = cut_set(&set, lo, hi);
            let want: Vec<u64> = set
                .absolute_offsets()
                .into_iter()
                .filter(|&x| lo <= x && x <= hi)
                .map(|x| x - lo)
                .collect();
            assert_eq!(cut.absolute_offsets(), want, "cut {set} between {lo} and {hi}");
        }
    }

    #[test]
    fn cut_set_preserves_nesting_on_aligned_cuts() {
        // Figure 4's V: cutting at block boundaries keeps the tree shape.
        let v = NestedSet::singleton(nested(0, 7, 16, 2, vec![leaf(0, 1, 4, 2)]));
        let cut = cut_set(&v, 16, 31);
        assert_eq!(cut.height(), 2, "nesting preserved");
        assert_eq!(cut.absolute_offsets(), vec![0, 1, 4, 5]);
        // A mid-block cut trims the inner families.
        let cut = cut_set(&v, 1, 20);
        assert_eq!(cut.absolute_offsets(), vec![0, 3, 4, 15, 16, 19],);
    }

    #[test]
    fn alignment_preserves_nesting() {
        // Rotating a nested set must keep inner structure for the unsplit
        // families (no flattening to byte-granular leaves).
        let v = NestedSet::singleton(nested(0, 7, 16, 2, vec![leaf(0, 1, 4, 2)]));
        let rotated = super::align_set(&v, 32, 16);
        assert_eq!(rotated.absolute_offsets(), vec![0, 1, 4, 5, 16, 17, 20, 21]);
        assert_eq!(rotated.height(), 2, "rotation keeps the FALLS trees");
    }

    #[test]
    fn empty_range_queries() {
        let rows = Partition::new(4, row_pattern());
        let cols = Partition::new(4, column_pattern());
        let inter = intersect_elements(&rows, 0, &cols, 0).unwrap();
        assert!(inter.file_segments_between(0, 3).is_empty());
        assert!(inter.file_segments_between(10, 5).is_empty());
    }
}
