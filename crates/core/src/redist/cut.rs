//! `CUT-FALLS` (§7): clipping a FALLS between two limits.

use falls::Falls;

/// Cuts FALLS `f` between inferior limit `a` and superior limit `b` (both
/// inclusive), returning the surviving pieces *relative to `a`*.
///
/// A partial first or last block becomes its own single-segment FALLS; the
/// untouched middle blocks stay one family, so the output has at most three
/// entries. The paper's example: cutting Figure 1's `(3,5,6,5)` between 4
/// and 28 yields `{(0,1,2,1), (5,7,6,3), (23,24,2,1)}`.
#[must_use]
pub fn cut_falls(f: &Falls, a: u64, b: u64) -> Vec<Falls> {
    if a > b {
        return Vec::new();
    }
    let (l, r, s, n) = (f.l(), f.r(), f.stride(), f.count());
    // First repetition whose block end reaches `a`.
    let r0 = if a <= r { 0 } else { (a - r).div_ceil(s) };
    // Last repetition whose block start is at most `b`.
    if b < l || r0 >= n {
        return Vec::new();
    }
    let r1 = ((b - l) / s).min(n - 1);
    if r0 > r1 {
        return Vec::new();
    }

    let clip = |rep: u64| -> Option<(u64, u64)> {
        let bl = l + rep * s;
        let br = r + rep * s;
        let cl = bl.max(a);
        let cr = br.min(b);
        (cl <= cr).then_some((cl - a, cr - a))
    };

    let mut out: Vec<Falls> = Vec::with_capacity(3);
    let push_or_merge = |seg_l: u64, seg_r: u64, out: &mut Vec<Falls>| {
        // Fold a full block into a preceding family with matching geometry.
        if let Some(last) = out.last_mut() {
            let next_l = last.l() + last.count() * s;
            if seg_r - seg_l == last.r() - last.l() && seg_l == next_l {
                *last = Falls::new(last.l(), last.r(), s, last.count() + 1)
                    .expect("extended family stays valid");
                return;
            }
        }
        out.push(Falls::new(seg_l, seg_r, s, 1).expect("clipped segment is valid"));
    };

    let (f_l, f_r) = clip(r0).expect("first repetition intersects [a, b]");
    push_or_merge(f_l, f_r, &mut out);

    if r1 > r0 {
        // Middle repetitions (r0+1 .. r1) are fully inside [a, b].
        if r1 - r0 >= 2 {
            let m_l = l + (r0 + 1) * s - a;
            let m_r = r + (r0 + 1) * s - a;
            // Merge with a full first block if geometry continues.
            if let Some(last) = out.last_mut() {
                if last.r() - last.l() == m_r - m_l && last.l() + s == m_l {
                    *last = Falls::new(last.l(), last.r(), s, r1 - r0)
                        .expect("merged family stays valid");
                } else {
                    out.push(Falls::new(m_l, m_r, s, r1 - r0 - 1).expect("middle run is valid"));
                }
            }
        }
        let (l_l, l_r) = clip(r1).expect("last repetition intersects [a, b]");
        push_or_merge(l_l, l_r, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offsets(falls: &[Falls]) -> Vec<u64> {
        let mut v: Vec<u64> = falls.iter().flat_map(|f| f.offsets().collect::<Vec<_>>()).collect();
        v.sort_unstable();
        v
    }

    /// The paper's example: cut (3,5,6,5) between a=4 and b=28, relative
    /// to 4 → {(0,1,2,1), (5,7,6,3), (23,24,2,1)}.
    #[test]
    fn paper_cut_example() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        let cut = cut_falls(&f, 4, 28);
        assert_eq!(cut.len(), 3);
        assert_eq!(cut[0], Falls::new(0, 1, 2, 1).unwrap());
        assert_eq!(cut[1], Falls::new(5, 7, 6, 3).unwrap());
        assert_eq!(cut[2], Falls::new(23, 24, 2, 1).unwrap());
    }

    #[test]
    fn cut_equals_clip_and_shift_reference() {
        // Reference semantics: keep bytes in [a, b], re-express relative to a.
        let cases = [
            (Falls::new(3, 5, 6, 5).unwrap(), 4u64, 28u64),
            (Falls::new(0, 7, 16, 2).unwrap(), 0, 31),
            (Falls::new(0, 3, 8, 4).unwrap(), 5, 30),
            (Falls::new(2, 2, 3, 10).unwrap(), 7, 23),
            (Falls::new(0, 0, 1, 1).unwrap(), 0, 0),
        ];
        for (f, a, b) in cases {
            let want: Vec<u64> = f.offsets().filter(|&x| a <= x && x <= b).map(|x| x - a).collect();
            assert_eq!(offsets(&cut_falls(&f, a, b)), want, "cut {f} between {a} and {b}");
        }
    }

    #[test]
    fn cut_outside_extent_is_empty() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        assert!(cut_falls(&f, 30, 40).is_empty());
        assert!(cut_falls(&f, 0, 2).is_empty());
        assert!(cut_falls(&f, 10, 5).is_empty());
        // a and b inside a gap between blocks
        assert!(cut_falls(&f, 6, 8).is_empty());
    }

    #[test]
    fn cut_whole_family_is_identity_shape() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        let cut = cut_falls(&f, 0, 31);
        assert_eq!(cut, vec![Falls::new(3, 5, 6, 5).unwrap()]);
        // Aligned cut rebases to zero.
        let cut = cut_falls(&f, 3, 29);
        assert_eq!(cut, vec![Falls::new(0, 2, 6, 5).unwrap()]);
    }

    #[test]
    fn cut_single_block() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        // Only repetition 1 ([9,11]) survives, partially.
        let cut = cut_falls(&f, 10, 11);
        assert_eq!(cut, vec![Falls::new(0, 1, 2, 1).unwrap()]);
    }

    #[test]
    fn cut_two_blocks_merges_when_full() {
        let f = Falls::new(0, 1, 4, 4).unwrap(); // [0,1],[4,5],[8,9],[12,13]
        let cut = cut_falls(&f, 4, 9);
        assert_eq!(cut, vec![Falls::new(0, 1, 4, 2).unwrap()]);
    }

    #[test]
    fn cut_exhaustive_against_reference() {
        let families = [
            Falls::new(0, 2, 5, 4).unwrap(),
            Falls::new(1, 1, 2, 8).unwrap(),
            Falls::new(4, 9, 10, 3).unwrap(),
        ];
        for f in families {
            let end = f.extent_end() + 3;
            for a in 0..end {
                for b in a..end {
                    let want: Vec<u64> =
                        f.offsets().filter(|&x| a <= x && x <= b).map(|x| x - a).collect();
                    let got = offsets(&cut_falls(&f, a, b));
                    assert_eq!(got, want, "cut {f} between {a} and {b}");
                }
            }
        }
    }
}
