//! The data redistribution algorithm (§7 of the paper): FALLS cutting and
//! intersection, nested-FALLS intersection with preprocessing, and
//! intersection projections.
//!
//! Given two partitions of the same file, redistribution moves the data from
//! one partition to the other by intersecting pairs of partition elements
//! and projecting each intersection onto the linear spaces of the two
//! elements — moving non-contiguous *segments* of bytes, never single bytes.

mod access;
mod baseline;
mod cut;
mod flat;
mod nested;
mod project;

pub use access::{SubfileAccess, ViewPlan};
pub use baseline::redistribute_bytewise;
pub use cut::cut_falls;
pub use flat::{intersect_falls, intersect_falls_merge};
pub use nested::{cut_set, intersect_elements, intersect_sets, Intersection};
pub use project::{element_window, ElementWindow, Projection};
