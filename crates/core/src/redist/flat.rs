//! `INTERSECT-FALLS` (§7): intersection of two flat FALLS.
//!
//! Two implementations are provided:
//!
//! * [`intersect_falls`] — the paper's periodic algorithm. The intersection
//!   of two FALLS is periodic with period `T = lcm(s₁, s₂)`; only segment
//!   pairs within one period (plus the ±T wraparound) are examined, and each
//!   overlapping pair yields one *generator* FALLS of stride `T` whose count
//!   is bounded by the families' extents. Cost is `O((T/s₁)·(T/s₂))`
//!   regardless of the counts `n₁`, `n₂`.
//! * [`intersect_falls_merge`] — a two-pointer merge over the segment
//!   streams with arithmetic skip-ahead, used as a cross-checking reference
//!   (property tests assert both describe identical byte sets) and as the
//!   comparison point for the ablation benchmark.

use falls::{checked_lcm, compress_segments, Falls, LineSegment};

/// The paper's periodic FALLS intersection; see the module docs.
///
/// Returns disjoint FALLS (possibly interleaved), sorted by left index.
/// Example from Figure 4: `INTERSECT-FALLS((0,7,16,2), (0,3,8,4)) =
/// (0,3,16,2)`.
#[must_use]
pub fn intersect_falls(f1: &Falls, f2: &Falls) -> Vec<Falls> {
    let lo = f1.l().max(f2.l());
    let hi = f1.extent_end().min(f2.extent_end());
    if lo > hi {
        return Vec::new();
    }
    // Drop the segments that end before the common extent begins, so both
    // families' first segments lie within one period of each other — the
    // ±T wraparound cases below then cover every candidate pair.
    let Some(f1) = &skip_before(f1, lo) else { return Vec::new() };
    let Some(f2) = &skip_before(f2, lo) else { return Vec::new() };
    // A saturated lcm would make k1/k2 wrong and silently drop overlaps, so
    // when the exact period is unrepresentable fall back to the merge
    // algorithm, which never forms the product.
    let Some(t) = checked_lcm(f1.stride(), f2.stride()) else {
        return intersect_falls_merge(f1, f2);
    };
    // The wraparound scan below works in i64; keep every candidate position
    // (bounded by extent + T) inside that range or use the merge path.
    if t > i64::MAX as u64 || hi > i64::MAX as u64 - t {
        return intersect_falls_merge(f1, f2);
    }
    let k1 = t / f1.stride();
    let k2 = t / f2.stride();
    let (n1, n2) = (f1.count(), f2.count());

    let mut out: Vec<Falls> = Vec::new();
    for i1 in 0..k1.min(n1) {
        let a = f1.segment(i1).expect("i1 < n1");
        for i2 in 0..k2.min(n2) {
            // A segment of f2 overlapping A either lies in the same period,
            // or wraps around from the previous/next one.
            for d in [-1i64, 0, 1] {
                let shift = d * (k2 as i64);
                let b_idx0 = i2 as i64 + shift; // index of B at occurrence 0
                let b_l = f2.l() as i64 + (i2 as i64 + shift) * f2.stride() as i64;
                let b_r = b_l + (f2.r() - f2.l()) as i64;
                let ol = (a.l() as i64).max(b_l);
                let or = (a.r() as i64).min(b_r);
                if ol > or {
                    continue;
                }
                // Occurrence k shifts both families by k·T. Valid while both
                // segment indices stay in range.
                let kmin = if b_idx0 < 0 { 1 } else { 0 };
                let kmax_a = (n1 - 1 - i1) / k1;
                let b_room = n2 as i64 - 1 - b_idx0;
                if b_room < 0 && kmin == 0 {
                    continue;
                }
                let kmax_b = if b_room < 0 {
                    // b_idx0 negative (kmin = 1): index at k is b_idx0 + k·k2.
                    ((n2 as i64 - 1 - b_idx0) / k2 as i64) as u64
                } else {
                    (b_room as u64) / k2
                };
                let kmax = kmax_a.min(kmax_b);
                if kmax < kmin {
                    continue;
                }
                let count = kmax - kmin + 1;
                let gen_l = (ol as u64) + kmin * t;
                let gen_r = (or as u64) + kmin * t;
                out.push(Falls::new(gen_l, gen_r, t, count).expect("generator is valid"));
            }
        }
    }
    out.sort_unstable_by_key(|f| (f.l(), f.r()));
    out
}

/// Drops the leading segments of `f` that end strictly before `lo`
/// (segments end before `lo` whenever their index is below
/// `(lo − l) / s`, because block length never exceeds the stride).
fn skip_before(f: &Falls, lo: u64) -> Option<Falls> {
    if lo <= f.l() {
        return Some(*f);
    }
    let skip = (lo - f.l()) / f.stride();
    if skip == 0 {
        return Some(*f);
    }
    if skip >= f.count() {
        // Only the last segment could still overlap; keep it.
        let last = f.count() - 1;
        return Falls::new(f.l() + last * f.stride(), f.r() + last * f.stride(), f.stride(), 1)
            .ok();
    }
    Falls::new(f.l() + skip * f.stride(), f.r() + skip * f.stride(), f.stride(), f.count() - skip)
        .ok()
}

/// Reference FALLS intersection: merges the two segment streams with
/// arithmetic skip-ahead and re-compresses the overlaps.
#[must_use]
pub fn intersect_falls_merge(f1: &Falls, f2: &Falls) -> Vec<Falls> {
    let mut out: Vec<LineSegment> = Vec::new();
    let (mut i, mut j) = (0u64, 0u64);
    while i < f1.count() && j < f2.count() {
        let a = f1.segment(i).expect("i < n1");
        let b = f2.segment(j).expect("j < n2");
        if let Some(ov) = a.intersect(&b) {
            out.push(ov);
        }
        if a.r() <= b.r() {
            // Skip ahead to the first segment of f1 that can reach b.l().
            i += if b.l() > a.r() { ((b.l() - a.r()) / f1.stride()).max(1) } else { 1 };
        } else {
            j += if a.l() > b.r() { ((a.l() - b.r()) / f2.stride()).max(1) } else { 1 };
        }
    }
    compress_segments(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn byte_set(falls: &[Falls]) -> Vec<u64> {
        let mut v: Vec<u64> = falls.iter().flat_map(|f| f.offsets().collect::<Vec<_>>()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Figure 4: INTERSECT-FALLS((0,7,16,2), (0,3,8,4)) = (0,3,16,2).
    #[test]
    fn paper_intersect_example() {
        let f1 = Falls::new(0, 7, 16, 2).unwrap();
        let f2 = Falls::new(0, 3, 8, 4).unwrap();
        let out = intersect_falls(&f1, &f2);
        assert_eq!(out, vec![Falls::new(0, 3, 16, 2).unwrap()]);
        assert_eq!(byte_set(&out), byte_set(&intersect_falls_merge(&f1, &f2)));
    }

    #[test]
    fn disjoint_families() {
        let f1 = Falls::new(0, 1, 8, 4).unwrap();
        let f2 = Falls::new(4, 5, 8, 4).unwrap();
        assert!(intersect_falls(&f1, &f2).is_empty());
        assert!(intersect_falls_merge(&f1, &f2).is_empty());
    }

    #[test]
    fn identical_families() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        assert_eq!(byte_set(&intersect_falls(&f, &f)), f.offsets().collect::<Vec<_>>());
    }

    #[test]
    fn contained_family() {
        let big = Falls::new(0, 31, 32, 1).unwrap();
        let small = Falls::new(3, 5, 6, 5).unwrap();
        let out = intersect_falls(&big, &small);
        assert_eq!(byte_set(&out), small.offsets().collect::<Vec<_>>());
    }

    #[test]
    fn misaligned_phases() {
        // f1 blocks [1,2],[7,8],[13,14]..., f2 blocks [0,3],[10,13],[20,23]...
        let f1 = Falls::new(1, 2, 6, 10).unwrap();
        let f2 = Falls::new(0, 3, 10, 6).unwrap();
        let got = byte_set(&intersect_falls(&f1, &f2));
        let want = byte_set(&intersect_falls_merge(&f1, &f2));
        assert_eq!(got, want);
        // Spot-check against brute force.
        let brute: Vec<u64> = f1.offsets().filter(|x| f2.offsets().any(|y| y == *x)).collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn wraparound_pairs_are_found() {
        // A late segment of f2 in period k overlaps an early segment of f1
        // in period k+1 — the d = ±1 cases.
        let f1 = Falls::new(0, 2, 12, 8).unwrap();
        let f2 = Falls::new(10, 14, 12, 8).unwrap(); // [10,14] wraps into [12,...)
        let got = byte_set(&intersect_falls(&f1, &f2));
        let want = byte_set(&intersect_falls_merge(&f1, &f2));
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn truncated_counts_limit_result() {
        // Same strides/phases but f2 stops early.
        let f1 = Falls::new(0, 3, 8, 100).unwrap();
        let f2 = Falls::new(0, 3, 8, 3).unwrap();
        let out = intersect_falls(&f1, &f2);
        assert_eq!(byte_set(&out), f2.offsets().collect::<Vec<_>>());
    }

    #[test]
    fn single_segment_families() {
        let f1 = Falls::new(5, 25, 21, 1).unwrap();
        let f2 = Falls::new(0, 2, 4, 10).unwrap();
        let got = byte_set(&intersect_falls(&f1, &f2));
        let brute: Vec<u64> = f2.offsets().filter(|&x| (5..=25).contains(&x)).collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn randomized_cross_check() {
        use falls::testing::{random_falls, Gen};
        let mut g = Gen::new(0xF0F0);
        for _ in 0..300 {
            let f1 = random_falls(&mut g, 200);
            let f2 = random_falls(&mut g, 200);
            let fast = byte_set(&intersect_falls(&f1, &f2));
            let slow = byte_set(&intersect_falls_merge(&f1, &f2));
            assert_eq!(fast, slow, "mismatch for {f1} ∩ {f2}");
        }
    }
}
