//! Mapping functions between file offsets and partition-element offsets
//! (§6 of the paper).
//!
//! For a partition element described by a set of nested FALLS `S` within a
//! partitioning pattern `P` starting at displacement `d`:
//!
//! ```text
//! MAP_S(x)    = ((x − d) div SIZE(P)) · SIZE(S) + MAP-AUX_S((x − d) mod SIZE(P))
//! MAP_S⁻¹(y)  = d + (y div SIZE(S)) · SIZE(P) + MAP-AUX_S⁻¹(y mod SIZE(S))
//! ```
//!
//! `MAP_S(x)` is defined only when byte `x` belongs to one of the line
//! segments of `S`; [`Mapper::map`] returns `None` otherwise, and the
//! [`Mapper::map_next`] / [`Mapper::map_prev`] variants round to the
//! next/previous byte that does map, as sketched at the end of §6.1.

use crate::model::Partition;
use crate::Error;
use falls::{NestedFalls, NestedSet, Offset};

/// Maps between the file's linear space and the linear space of one
/// partition element (subfile or view).
///
/// The element's linear space is laid out in *tree order*: families in
/// sibling order, repetitions in index order, inner families depth-first —
/// exactly the order implied by the paper's `MAP-AUX` pseudocode.
#[derive(Debug, Clone, Copy)]
pub struct Mapper<'a> {
    partition: &'a Partition,
    element: usize,
    /// Cached pattern size.
    psize: u64,
    /// Cached element size (bytes of the element per pattern tile).
    esize: u64,
}

impl<'a> Mapper<'a> {
    /// Creates a mapper for element `element` of `partition`.
    ///
    /// # Panics
    /// Panics if the element index is out of range; use
    /// [`Mapper::try_new`] for a fallible constructor.
    #[must_use]
    pub fn new(partition: &'a Partition, element: usize) -> Self {
        Self::try_new(partition, element).expect("element index in range")
    }

    /// Fallible constructor.
    pub fn try_new(partition: &'a Partition, element: usize) -> Result<Self, Error> {
        let set = partition.pattern().element(element)?;
        Ok(Self { partition, element, psize: partition.pattern().size(), esize: set.size() })
    }

    /// The element index this mapper addresses.
    #[must_use]
    pub fn element(&self) -> usize {
        self.element
    }

    /// The partition this mapper operates on.
    #[must_use]
    pub fn partition(&self) -> &'a Partition {
        self.partition
    }

    /// Bytes of this element per pattern tile.
    #[must_use]
    pub fn element_size(&self) -> u64 {
        self.esize
    }

    fn set(&self) -> &'a NestedSet {
        self.partition.pattern().element(self.element).expect("validated at construction")
    }

    /// `MAP_S(x)`: the element offset that absolute file byte `x` maps to,
    /// or `None` if `x` lies below the displacement or is not selected by
    /// the element.
    #[must_use]
    pub fn map(&self, x: Offset) -> Option<u64> {
        let d = self.partition.displacement();
        if x < d {
            return None;
        }
        let y = x - d;
        let tile = y / self.psize;
        let rel = y % self.psize;
        Some(tile * self.esize + map_in_siblings(self.set().families(), rel)?)
    }

    /// `MAP_S⁻¹(y)`: the absolute file byte holding element offset `y`.
    #[must_use]
    pub fn unmap(&self, y: u64) -> Offset {
        let tile = y / self.esize;
        let rem = y % self.esize;
        self.partition.displacement()
            + tile * self.psize
            + unmap_in_siblings(self.set().families(), rem)
    }

    /// The smallest file offset `x' ≥ x` that the element selects.
    ///
    /// Always exists because the pattern tiles the file indefinitely.
    #[must_use]
    pub fn next_selected(&self, x: Offset) -> Offset {
        let d = self.partition.displacement();
        let x = x.max(d);
        let y = x - d;
        let tile = y / self.psize;
        let rel = y % self.psize;
        match next_in_siblings(self.set().families(), rel) {
            Some(p) => d + tile * self.psize + p,
            None => {
                let first = next_in_siblings(self.set().families(), 0)
                    .expect("non-empty element selects at least one byte per tile");
                d + (tile + 1) * self.psize + first
            }
        }
    }

    /// The largest file offset `x' ≤ x` that the element selects, or `None`
    /// if no selected byte exists at or before `x`.
    #[must_use]
    pub fn prev_selected(&self, x: Offset) -> Option<Offset> {
        let d = self.partition.displacement();
        if x < d {
            return None;
        }
        let y = x - d;
        let mut tile = y / self.psize;
        let mut rel = y % self.psize;
        loop {
            if let Some(p) = prev_in_siblings(self.set().families(), rel) {
                return Some(d + tile * self.psize + p);
            }
            if tile == 0 {
                return None;
            }
            tile -= 1;
            rel = self.psize - 1;
        }
    }

    /// `MAP` of the next selected byte at or after `x` (the paper's
    /// *next-byte* mapping variant).
    #[must_use]
    pub fn map_next(&self, x: Offset) -> u64 {
        self.map(self.next_selected(x)).expect("next_selected returns a selected byte")
    }

    /// `MAP` of the previous selected byte at or before `x` (the paper's
    /// *previous-byte* mapping variant).
    #[must_use]
    pub fn map_prev(&self, x: Offset) -> Option<u64> {
        Some(self.map(self.prev_selected(x)?).expect("prev_selected returns a selected byte"))
    }

    /// Whether the element selects file byte `x`.
    #[must_use]
    pub fn selects(&self, x: Offset) -> bool {
        self.map(x).is_some()
    }
}

/// Maps offset `y` of element `from` onto the linear space of element `to`
/// (possibly of a different partition of the same file):
/// `MAP_to(MAP_from⁻¹(y))`, as in §6.2.
///
/// Returns `None` when the byte does not belong to `to`.
#[must_use]
pub fn map_between(from: &Mapper<'_>, to: &Mapper<'_>, y: u64) -> Option<u64> {
    to.map(from.unmap(y))
}

/// Like [`map_between`] but rounds forward to the next byte of `from`'s file
/// position that maps onto `to` — used for the left extremity of an access
/// interval.
#[must_use]
pub fn map_between_next(from: &Mapper<'_>, to: &Mapper<'_>, y: u64) -> u64 {
    to.map_next(from.unmap(y))
}

/// Like [`map_between`] but rounds backward — used for the right extremity
/// of an access interval. `None` if no byte of `to` lies at or before it.
#[must_use]
pub fn map_between_prev(from: &Mapper<'_>, to: &Mapper<'_>, y: u64) -> Option<u64> {
    to.map_prev(from.unmap(y))
}

// ---------------------------------------------------------------------------
// MAP-AUX and its inverse over sibling family lists.
// ---------------------------------------------------------------------------

/// `MAP-AUX_S(rel)`: position of pattern-relative byte `rel` in the linear
/// space of the sibling list, or `None` if not selected.
pub(crate) fn map_in_siblings(sibs: &[NestedFalls], rel: u64) -> Option<u64> {
    let mut before = 0u64;
    for nf in sibs {
        if let Some(m) = map_in_family(nf, rel) {
            return Some(before + m);
        }
        before += nf.size();
    }
    None
}

/// `MAP-AUX_f(rel)` for a single nested family.
fn map_in_family(nf: &NestedFalls, rel: u64) -> Option<u64> {
    let f = nf.falls();
    if rel < f.l() {
        return None;
    }
    let rep = f.repetition_of(rel)?;
    let within = (rel - f.l()) - rep * f.stride();
    if within >= f.block_len() {
        return None; // in the gap between two blocks
    }
    if nf.is_leaf() {
        Some(rep * f.block_len() + within)
    } else {
        Some(rep * nf.block_size() + map_in_siblings(nf.inner(), within)?)
    }
}

/// `MAP-AUX_S⁻¹(y)`: pattern-relative byte holding linear offset `y` of the
/// sibling list. `y` must be smaller than the total size of the list.
pub(crate) fn unmap_in_siblings(sibs: &[NestedFalls], y: u64) -> u64 {
    let mut acc = y;
    for nf in sibs {
        let sz = nf.size();
        if acc < sz {
            return unmap_in_family(nf, acc);
        }
        acc -= sz;
    }
    panic!("offset {y} beyond the size of the sibling list");
}

fn unmap_in_family(nf: &NestedFalls, y: u64) -> u64 {
    let f = nf.falls();
    let bs = nf.block_size();
    let rep = y / bs;
    debug_assert!(rep < f.count(), "offset beyond family size");
    let rem = y % bs;
    let base = f.l() + rep * f.stride();
    if nf.is_leaf() {
        base + rem
    } else {
        base + unmap_in_siblings(nf.inner(), rem)
    }
}

/// Smallest selected position `≥ rel` within one pattern tile, across the
/// sibling list.
pub(crate) fn next_in_siblings(sibs: &[NestedFalls], rel: u64) -> Option<u64> {
    sibs.iter().filter_map(|nf| next_in_family(nf, rel)).min()
}

fn next_in_family(nf: &NestedFalls, rel: u64) -> Option<u64> {
    let f = nf.falls();
    let mut rep = if rel <= f.l() { 0 } else { (rel - f.l()) / f.stride() };
    while rep < f.count() {
        let base = f.l() + rep * f.stride();
        let within = rel.saturating_sub(base);
        if within < f.block_len() {
            if nf.is_leaf() {
                return Some(base + within);
            }
            if let Some(w) = next_in_siblings(nf.inner(), within) {
                return Some(base + w);
            }
        }
        rep += 1;
    }
    None
}

/// Largest selected position `≤ rel` within one pattern tile, across the
/// sibling list.
pub(crate) fn prev_in_siblings(sibs: &[NestedFalls], rel: u64) -> Option<u64> {
    sibs.iter().filter_map(|nf| prev_in_family(nf, rel)).max()
}

fn prev_in_family(nf: &NestedFalls, rel: u64) -> Option<u64> {
    let f = nf.falls();
    if rel < f.l() {
        return None;
    }
    let mut rep = ((rel - f.l()) / f.stride()).min(f.count() - 1);
    loop {
        let base = f.l() + rep * f.stride();
        // Last in-block relative position not exceeding rel.
        let within = (rel - base).min(f.block_len() - 1);
        let found = if nf.is_leaf() {
            Some(base + within)
        } else {
            prev_in_siblings(nf.inner(), within).map(|w| base + w)
        };
        if let Some(v) = found {
            return Some(v);
        }
        if rep == 0 {
            return None;
        }
        rep -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartitionPattern;
    use falls::{Falls, NestedFalls, NestedSet};

    fn leaf_set(l: u64, r: u64, s: u64, n: u64) -> NestedSet {
        NestedSet::singleton(NestedFalls::leaf(Falls::new(l, r, s, n).unwrap()))
    }

    fn figure3_partition() -> Partition {
        let pattern = PartitionPattern::new(vec![
            leaf_set(0, 1, 6, 1),
            leaf_set(2, 3, 6, 1),
            leaf_set(4, 5, 6, 1),
        ])
        .unwrap();
        Partition::new(2, pattern)
    }

    /// §6's worked example: with S = {(2,3,6,1)}, pattern size 6,
    /// displacement 2: MAP(10) = 2 and MAP⁻¹(2) = 10.
    #[test]
    fn paper_map_example() {
        let part = figure3_partition();
        let m = Mapper::new(&part, 1);
        assert_eq!(m.map(10), Some(2));
        assert_eq!(m.unmap(2), 10);
    }

    /// §6.1's closed form for S = {(0,1,6,1)}, displacement 2:
    /// MAP(x) = ((x−2) div 6)·2 + (x−2) mod 6 for selected bytes.
    #[test]
    fn paper_closed_form_subfile0() {
        let part = figure3_partition();
        let m = Mapper::new(&part, 0);
        for x in 2..50u64 {
            let rel = (x - 2) % 6;
            if rel < 2 {
                let want = ((x - 2) / 6) * 2 + rel;
                assert_eq!(m.map(x), Some(want), "x={x}");
                assert_eq!(m.unmap(want), x);
            } else {
                assert_eq!(m.map(x), None, "x={x}");
            }
        }
    }

    /// §6.1: byte at file offset 5 doesn't map on element 0; its previous
    /// map is subfile offset 1 and its next map is subfile offset 2.
    #[test]
    fn paper_next_prev_example() {
        let part = figure3_partition();
        let m = Mapper::new(&part, 0);
        assert_eq!(m.map(5), None);
        assert_eq!(m.map_prev(5), Some(1));
        assert_eq!(m.map_next(5), 2);
    }

    #[test]
    fn below_displacement() {
        let part = figure3_partition();
        let m = Mapper::new(&part, 0);
        assert_eq!(m.map(0), None);
        assert_eq!(m.map_prev(1), None);
        assert_eq!(m.next_selected(0), 2);
        assert_eq!(m.prev_selected(1), None);
    }

    #[test]
    fn map_unmap_roundtrip_nested() {
        // Element selecting {0,2,8,10} per 16-byte tile (Figure 2) plus the
        // complement as a second element.
        let fig2 = NestedSet::singleton(
            NestedFalls::with_inner(
                Falls::new(0, 3, 8, 2).unwrap(),
                vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
            )
            .unwrap(),
        );
        let rest = NestedSet::new(vec![
            NestedFalls::leaf(Falls::new(1, 1, 2, 2).unwrap()),
            NestedFalls::leaf(Falls::new(4, 7, 16, 1).unwrap()),
            NestedFalls::leaf(Falls::new(9, 9, 2, 2).unwrap()),
            NestedFalls::leaf(Falls::new(12, 15, 16, 1).unwrap()),
        ])
        .unwrap();
        let pattern = PartitionPattern::new(vec![fig2, rest]).unwrap();
        let part = Partition::new(0, pattern);
        for e in 0..2 {
            let m = Mapper::new(&part, e);
            for y in 0..64u64 {
                let x = m.unmap(y);
                assert_eq!(m.map(x), Some(y), "element {e}, offset {y}");
            }
        }
        // Every file byte belongs to exactly one element.
        let m0 = Mapper::new(&part, 0);
        let m1 = Mapper::new(&part, 1);
        for x in 0..64u64 {
            assert!(m0.selects(x) ^ m1.selects(x), "byte {x}");
        }
    }

    #[test]
    fn next_prev_across_tiles() {
        let part = figure3_partition();
        let m = Mapper::new(&part, 0);
        // Element 0 selects file bytes {2,3, 8,9, 14,15, ...}.
        assert_eq!(m.next_selected(4), 8);
        assert_eq!(m.next_selected(10), 14);
        assert_eq!(m.prev_selected(7), Some(3));
        assert_eq!(m.prev_selected(13), Some(9));
    }

    #[test]
    fn composition_between_partitions() {
        // View partition: single view covering everything (identity-ish),
        // physical partition: figure 3.
        let phys = figure3_partition();
        let view_pattern = PartitionPattern::new(vec![leaf_set(0, 5, 6, 1)]).unwrap();
        let view = Partition::new(2, view_pattern);
        let mv = Mapper::new(&view, 0);
        let ms = Mapper::new(&phys, 1);
        // View offset 2 is file byte 4 → subfile 1 offset 0.
        assert_eq!(map_between(&mv, &ms, 2), Some(0));
        // View offset 0 is file byte 2 → subfile 1 doesn't hold it.
        assert_eq!(map_between(&mv, &ms, 0), None);
        assert_eq!(map_between_next(&mv, &ms, 0), 0);
        assert_eq!(map_between_prev(&mv, &ms, 0), None);
        // MAP_S(MAP_S⁻¹(y)) = y.
        for y in 0..24 {
            assert_eq!(map_between(&ms, &ms, y), Some(y));
        }
    }

    #[test]
    fn identical_partitions_map_identity() {
        // §6.2: with identical physical and logical parameters, each view
        // maps exactly on a subfile.
        let a = figure3_partition();
        let b = figure3_partition();
        for e in 0..3 {
            let mv = Mapper::new(&a, e);
            let ms = Mapper::new(&b, e);
            for y in 0..30 {
                assert_eq!(map_between(&mv, &ms, y), Some(y));
            }
        }
    }
}
