//! The parallel file model (§5 of the paper): displacement + partitioning
//! pattern.

use crate::Error;
use falls::{LineSegment, NestedSet, Offset};
use std::fmt;

/// A partitioning pattern: the union of `p` sets of nested FALLS, each of
/// which defines one partition element (a subfile or a view).
///
/// The pattern must describe a *contiguous* region `[0, size)` and the
/// elements must be mutually *non-overlapping*; both properties are checked
/// at construction. The pattern is applied repeatedly throughout the linear
/// space of the file, starting at the partition's displacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPattern {
    elements: Vec<NestedSet>,
    size: u64,
}

impl PartitionPattern {
    /// Builds and validates a partitioning pattern.
    ///
    /// Checks that element sizes sum to the covered extent and that the union
    /// of all elements is exactly `[0, size)` — which together imply both
    /// contiguity and non-overlap.
    pub fn new(elements: Vec<NestedSet>) -> Result<Self, Error> {
        if elements.is_empty() || elements.iter().any(NestedSet::is_empty) {
            // An element that selects no bytes has no linear space: the
            // mapping functions (MAP⁻¹ divides by the element size) and the
            // tiling semantics are undefined for it.
            return Err(Error::EmptyPattern);
        }
        let total = elements
            .iter()
            .try_fold(0u64, |acc, e| acc.checked_add(e.size()))
            .ok_or(Error::Falls(falls::FallsError::Overflow))?;
        if total == 0 {
            return Err(Error::EmptyPattern);
        }
        // Union of all segments must be exactly [0, total).
        let mut segs: Vec<LineSegment> = Vec::new();
        for e in &elements {
            segs.extend(e.absolute_segments());
        }
        segs.sort_unstable();
        // Overlap check: since sizes sum to `total`, any overlap forces the
        // union to cover < total bytes; but catch it explicitly for a better
        // error.
        for w in segs.windows(2) {
            if w[1].l() <= w[0].r() {
                return Err(Error::OverlappingElements);
            }
        }
        let covered = coverage_end(&segs);
        if covered != Some(total) {
            return Err(Error::NonTilingPattern { total, covered: covered.unwrap_or(0) });
        }
        Ok(Self { elements, size: total })
    }

    /// Number of partition elements.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The element sets, in index order.
    #[must_use]
    pub fn elements(&self) -> &[NestedSet] {
        &self.elements
    }

    /// The set describing element `i`.
    pub fn element(&self, i: usize) -> Result<&NestedSet, Error> {
        self.elements.get(i).ok_or(Error::NoSuchElement { index: i, count: self.elements.len() })
    }

    /// The pattern size: sum of the sizes of all of its nested FALLS.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Index of the element owning byte `rel` of the pattern
    /// (`rel ∈ [0, size)`).
    #[must_use]
    pub fn owner_of(&self, rel: Offset) -> Option<usize> {
        self.elements.iter().position(|e| e.contains(rel))
    }
}

impl fmt::Display for PartitionPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pattern(size={}, {} elements):", self.size, self.elements.len())?;
        for (i, e) in self.elements.iter().enumerate() {
            writeln!(f, "  S{i} = {e}")?;
        }
        Ok(())
    }
}

/// One past the last covered byte if `segs` (sorted, disjoint) cover a
/// contiguous region starting at 0; `None` otherwise.
fn coverage_end(segs: &[LineSegment]) -> Option<u64> {
    let mut expect = 0u64;
    for s in segs {
        if s.l() != expect {
            return None;
        }
        expect = s.r() + 1;
    }
    Some(expect)
}

/// A partition of a file: an absolute byte *displacement* plus a
/// [`PartitionPattern`] tiled repeatedly from the displacement onward.
///
/// The paper uses the same structure for physical partitions (into subfiles)
/// and logical partitions (into views).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    displacement: Offset,
    pattern: PartitionPattern,
}

impl Partition {
    /// A partition starting at `displacement` with the given pattern.
    #[must_use]
    pub fn new(displacement: Offset, pattern: PartitionPattern) -> Self {
        Self { displacement, pattern }
    }

    /// Absolute byte position where the tiling starts.
    #[must_use]
    pub fn displacement(&self) -> Offset {
        self.displacement
    }

    /// The partitioning pattern.
    #[must_use]
    pub fn pattern(&self) -> &PartitionPattern {
        &self.pattern
    }

    /// Number of partition elements.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.pattern.element_count()
    }

    /// Which element owns absolute file byte `x`, if `x` is at or past the
    /// displacement.
    #[must_use]
    pub fn owner_of(&self, x: Offset) -> Option<usize> {
        if x < self.displacement {
            return None;
        }
        let rel = (x - self.displacement) % self.pattern.size();
        self.pattern.owner_of(rel)
    }

    /// Number of bytes of element `i` contained in the file region
    /// `[0, file_len)` (the pattern tiles from the displacement, so bytes
    /// below it belong to no element).
    pub fn element_len(&self, i: usize, file_len: u64) -> Result<u64, Error> {
        let set = self.pattern.element(i)?;
        let psize = self.pattern.size();
        let effective = file_len.saturating_sub(self.displacement);
        let tiles = effective / psize;
        let tail = effective % psize;
        let mut len = tiles * set.size();
        if tail > 0 {
            len += set
                .absolute_segments()
                .iter()
                .filter_map(|s| s.clip(0, tail - 1))
                .map(|s| s.len())
                .sum::<u64>();
        }
        Ok(len)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition(displacement={}, {})", self.displacement, self.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falls::{Falls, NestedFalls};

    fn leaf_set(l: u64, r: u64, s: u64, n: u64) -> NestedSet {
        NestedSet::singleton(NestedFalls::leaf(Falls::new(l, r, s, n).unwrap()))
    }

    /// Figure 3's partitioning pattern: three subfiles, pattern size 6.
    pub(crate) fn figure3_pattern() -> PartitionPattern {
        PartitionPattern::new(vec![
            leaf_set(0, 1, 6, 1),
            leaf_set(2, 3, 6, 1),
            leaf_set(4, 5, 6, 1),
        ])
        .unwrap()
    }

    #[test]
    fn figure3_validates() {
        let p = figure3_pattern();
        assert_eq!(p.size(), 6);
        assert_eq!(p.element_count(), 3);
    }

    #[test]
    fn figure3_ownership() {
        let part = Partition::new(2, figure3_pattern());
        // Bytes below the displacement belong to nobody.
        assert_eq!(part.owner_of(0), None);
        assert_eq!(part.owner_of(1), None);
        // Pattern tiles from byte 2: [2,3]→S0, [4,5]→S1, [6,7]→S2, ...
        assert_eq!(part.owner_of(2), Some(0));
        assert_eq!(part.owner_of(5), Some(1));
        assert_eq!(part.owner_of(7), Some(2));
        assert_eq!(part.owner_of(8), Some(0));
        assert_eq!(part.owner_of(10), Some(1));
    }

    #[test]
    fn gap_in_pattern_rejected() {
        let err = PartitionPattern::new(vec![leaf_set(0, 1, 6, 1), leaf_set(4, 5, 6, 1)]);
        assert!(matches!(err, Err(Error::NonTilingPattern { total: 4, .. })));
    }

    #[test]
    fn pattern_not_starting_at_zero_rejected() {
        let err = PartitionPattern::new(vec![leaf_set(1, 2, 6, 1)]);
        assert!(matches!(err, Err(Error::NonTilingPattern { .. })));
    }

    #[test]
    fn overlapping_elements_rejected() {
        let err = PartitionPattern::new(vec![leaf_set(0, 3, 6, 1), leaf_set(2, 5, 6, 1)]);
        assert!(matches!(err, Err(Error::OverlappingElements)));
    }

    #[test]
    fn empty_pattern_rejected() {
        assert!(matches!(PartitionPattern::new(vec![]), Err(Error::EmptyPattern)));
    }

    /// An element selecting no bytes must be rejected: its linear space is
    /// empty, so MAP⁻¹ (which divides by the element size) is undefined.
    #[test]
    fn empty_element_rejected() {
        let full = NestedSet::singleton(NestedFalls::leaf(Falls::new(0, 5, 6, 1).unwrap()));
        let err = PartitionPattern::new(vec![full, NestedSet::empty()]);
        assert!(matches!(err, Err(Error::EmptyPattern)));
    }

    #[test]
    fn interleaved_elements_tile() {
        // Elements with multi-segment FALLS: S0 = (0,1,8,2) ∪ via second
        // family, S1 = (4,5,8,2) etc. Together they tile [0,16).
        let s0 = NestedSet::new(vec![
            NestedFalls::leaf(Falls::new(0, 1, 8, 2).unwrap()),
            NestedFalls::leaf(Falls::new(6, 7, 8, 2).unwrap()),
        ])
        .unwrap();
        let s1 = NestedSet::new(vec![
            NestedFalls::leaf(Falls::new(2, 3, 8, 2).unwrap()),
            NestedFalls::leaf(Falls::new(4, 5, 8, 2).unwrap()),
        ])
        .unwrap();
        let p = PartitionPattern::new(vec![s0, s1]).unwrap();
        assert_eq!(p.size(), 16);
        assert_eq!(p.owner_of(0), Some(0));
        assert_eq!(p.owner_of(2), Some(1));
        assert_eq!(p.owner_of(6), Some(0));
        assert_eq!(p.owner_of(12), Some(1));
    }

    #[test]
    fn element_len_partial_tile() {
        let part = Partition::new(0, figure3_pattern());
        // 8 bytes = one full tile (6) + 2 bytes of the next: S0 gets 2+2.
        assert_eq!(part.element_len(0, 8).unwrap(), 4);
        assert_eq!(part.element_len(1, 8).unwrap(), 2);
        assert_eq!(part.element_len(2, 8).unwrap(), 2);
        assert!(part.element_len(3, 8).is_err());
    }

    #[test]
    fn element_accessor_bounds() {
        let p = figure3_pattern();
        assert!(p.element(2).is_ok());
        assert!(matches!(p.element(3), Err(Error::NoSuchElement { index: 3, count: 3 })));
    }
}
