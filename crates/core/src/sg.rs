//! `GATHER` and `SCATTER` (§8): copying between the non-contiguous regions
//! described by a set of nested FALLS (or a projection) and a contiguous
//! buffer.
//!
//! The paper implements both as a recursive traversal of the FALLS trees
//! with copy operations at the leaves; here the traversal is the
//! tree-ordered segment walk of the [`falls`] crate, clipped to the
//! requested `[lo, hi]` interval of the element's linear space.

use crate::engine::SegmentReplay;
use crate::redist::Projection;
use falls::{LineSegment, NestedSet};

/// Copies the bytes of `src` selected by `set` within `[lo, hi]` (positions
/// in `src`'s linear space, inclusive) into the contiguous buffer `dst`,
/// appending in tree order. Returns the number of bytes gathered.
pub fn gather_set(dst: &mut Vec<u8>, src: &[u8], lo: u64, hi: u64, set: &NestedSet) -> u64 {
    let mut copied = 0u64;
    for seg in set.tree_segments() {
        if let Some(c) = seg.clip(lo, hi) {
            dst.extend_from_slice(&src[c.l() as usize..=c.r() as usize]);
            copied += c.len();
        }
    }
    copied
}

/// Reverse of [`gather_set`]: distributes the contiguous buffer `src` into
/// the positions of `dst` selected by `set` within `[lo, hi]`, consuming
/// `src` in tree order. Returns the number of bytes scattered.
///
/// # Panics
/// Panics if `src` holds fewer bytes than the selection requires.
pub fn scatter_set(dst: &mut [u8], src: &[u8], lo: u64, hi: u64, set: &NestedSet) -> u64 {
    let mut pos = 0usize;
    for seg in set.tree_segments() {
        if let Some(c) = seg.clip(lo, hi) {
            let len = c.len() as usize;
            dst[c.l() as usize..=c.r() as usize].copy_from_slice(&src[pos..pos + len]);
            pos += len;
        }
    }
    pos as u64
}

/// Gathers the bytes of `src` selected by the projection within `[lo, hi]`
/// of the element's linear space (spanning however many aligned windows that
/// range covers) into `dst`. Returns the number of bytes gathered.
///
/// This is the compute-node side of the paper's write path: the
/// non-contiguous view data destined for one subfile is packed into a
/// contiguous message buffer.
pub fn gather(dst: &mut Vec<u8>, src: &[u8], lo: u64, hi: u64, proj: &Projection) -> u64 {
    let mut copied = 0u64;
    for seg in proj.segments_between(lo, hi) {
        dst.extend_from_slice(&src[seg.l() as usize..=seg.r() as usize]);
        copied += seg.len();
    }
    copied
}

/// Reverse of [`gather`]: the I/O-node side of the write path, distributing
/// a received contiguous buffer into the subfile positions selected by the
/// projection within `[lo, hi]`. Returns the number of bytes scattered.
///
/// # Panics
/// Panics if `src` holds fewer bytes than the selection requires.
pub fn scatter(dst: &mut [u8], src: &[u8], lo: u64, hi: u64, proj: &Projection) -> u64 {
    let mut pos = 0usize;
    for seg in proj.segments_between(lo, hi) {
        let len = seg.len() as usize;
        dst[seg.l() as usize..=seg.r() as usize].copy_from_slice(&src[pos..pos + len]);
        pos += len;
    }
    pos as u64
}

/// [`gather`] over a precompiled [`SegmentReplay`]: identical byte
/// semantics, but the window-0 segment list is reused instead of being
/// re-derived (and re-allocated) from the FALLS tree on every access.
pub fn gather_replay(
    dst: &mut Vec<u8>,
    src: &[u8],
    lo: u64,
    hi: u64,
    replay: &SegmentReplay,
) -> u64 {
    let mut copied = 0u64;
    replay.for_each_between(lo, hi, |seg| {
        dst.extend_from_slice(&src[seg.l() as usize..=seg.r() as usize]);
        copied += seg.len();
    });
    copied
}

/// [`scatter`] over a precompiled [`SegmentReplay`].
///
/// # Panics
/// Panics if `src` holds fewer bytes than the selection requires.
pub fn scatter_replay(dst: &mut [u8], src: &[u8], lo: u64, hi: u64, replay: &SegmentReplay) -> u64 {
    let mut pos = 0usize;
    replay.for_each_between(lo, hi, |seg| {
        let len = seg.len() as usize;
        dst[seg.l() as usize..=seg.r() as usize].copy_from_slice(&src[pos..pos + len]);
        pos += len;
    });
    pos as u64
}

/// The segments a gather/scatter over `[lo, hi]` would touch — exposed for
/// instrumentation (message sizing, fragmentation statistics).
#[must_use]
pub fn transfer_segments(proj: &Projection, lo: u64, hi: u64) -> Vec<LineSegment> {
    proj.segments_between(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use falls::{Falls, NestedFalls, NestedSet};

    fn fig2_set() -> NestedSet {
        NestedSet::singleton(
            NestedFalls::with_inner(
                Falls::new(0, 3, 8, 2).unwrap(),
                vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
            )
            .unwrap(),
        )
    }

    #[test]
    fn gather_set_picks_selected_bytes() {
        let src: Vec<u8> = (0..16).collect();
        let mut dst = Vec::new();
        let n = gather_set(&mut dst, &src, 0, 15, &fig2_set());
        assert_eq!(n, 4);
        assert_eq!(dst, vec![0, 2, 8, 10]);
    }

    #[test]
    fn gather_set_respects_limits() {
        let src: Vec<u8> = (0..16).collect();
        let mut dst = Vec::new();
        let n = gather_set(&mut dst, &src, 2, 9, &fig2_set());
        assert_eq!(n, 2);
        assert_eq!(dst, vec![2, 8]);
    }

    #[test]
    fn scatter_set_is_gather_inverse() {
        let set = fig2_set();
        let mut dst = vec![0xFFu8; 16];
        let payload = vec![10, 20, 30, 40];
        let n = scatter_set(&mut dst, &payload, 0, 15, &set);
        assert_eq!(n, 4);
        assert_eq!(dst[0], 10);
        assert_eq!(dst[2], 20);
        assert_eq!(dst[8], 30);
        assert_eq!(dst[10], 40);
        // Unselected bytes untouched.
        assert_eq!(dst[1], 0xFF);
        assert_eq!(dst[15], 0xFF);
        // Round trip.
        let mut back = Vec::new();
        gather_set(&mut back, &dst, 0, 15, &set);
        assert_eq!(back, payload);
    }

    #[test]
    fn projection_gather_scatter_round_trip() {
        // A fragmented projection: positions {0,1,4,5} per 8-byte window.
        let proj = Projection {
            set: NestedSet::new(vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())]).unwrap(),
            period: 8,
        };
        let src: Vec<u8> = (0..32).collect();
        let mut packed = Vec::new();
        let n = gather(&mut packed, &src, 0, 31, &proj);
        assert_eq!(n, 16);
        assert_eq!(&packed[..8], &[0, 1, 4, 5, 8, 9, 12, 13]);

        let mut out = vec![0u8; 32];
        let m = scatter(&mut out, &packed, 0, 31, &proj);
        assert_eq!(m, 16);
        for (i, &v) in out.iter().enumerate() {
            let selected = matches!(i % 8, 0 | 1 | 4 | 5);
            assert_eq!(v, if selected { i as u8 } else { 0 }, "byte {i}");
        }
    }

    #[test]
    fn partial_interval_gather() {
        let proj = Projection {
            set: NestedSet::new(vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())]).unwrap(),
            period: 8,
        };
        let src: Vec<u8> = (0..32).collect();
        let mut packed = Vec::new();
        let n = gather(&mut packed, &src, 5, 12, &proj);
        // Selected in [5,12]: 5, 8, 9, 12.
        assert_eq!(n, 4);
        assert_eq!(packed, vec![5, 8, 9, 12]);
        assert_eq!(transfer_segments(&proj, 5, 12).len(), 3);
    }
}
