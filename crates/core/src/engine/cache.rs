//! Bounded, sharded LRU cache used by the plan engine.
//!
//! Keys are small fingerprint structs; values are `Arc`-shared compiled
//! plans, so a cache hit is a pointer clone. The cache is sharded to keep
//! lock contention off the hot path and bounded so pathological workloads
//! (e.g. a fuzzer emitting one unique pattern per request) cannot grow
//! memory without limit; eviction removes the least recently used entry of
//! the shard under pressure.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit / miss / eviction counters of one plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh compile.
    pub misses: u64,
    /// Entries removed to stay within the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none ran).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

struct Shard<K, V> {
    entries: HashMap<K, Entry<V>>,
    tick: u64,
}

pub(crate) struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> ShardedLru<K, V> {
    pub(crate) fn new(shards: usize, capacity_per_shard: usize) -> Self {
        assert!(shards > 0 && capacity_per_shard > 0, "cache must hold something");
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { entries: HashMap::new(), tick: 0 }))
                .collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks `key` up, counting a hit or miss. Lock poisoning is recovered:
    /// the cache holds only derived data, so a panic mid-insert cannot leave
    /// an entry half-written.
    pub(crate) fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut shard = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` under `key`, evicting the shard's least recently used
    /// entry when the shard is full. Racing inserts of the same key are
    /// benign — last writer wins, both values are equivalent compiles.
    pub(crate) fn insert(&self, key: K, value: Arc<V>) {
        let mut shard = self.shard_of(&key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if shard.entries.len() >= self.capacity_per_shard && !shard.entries.contains_key(&key) {
            if let Some(lru) =
                shard.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                shard.entries.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(key, Entry { value, last_used: tick });
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_counting() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(1, 2);
        assert!(cache.get(&1).is_none());
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        assert_eq!(*cache.get(&1).unwrap(), 10);
        assert_eq!(*cache.get(&2).unwrap(), 20);
        // Shard full: inserting a third key evicts the LRU (key 1).
        cache.insert(3, Arc::new(30));
        assert!(cache.get(&1).is_none());
        assert_eq!(*cache.get(&3).unwrap(), 30);
        let s = cache.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(1, 2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        cache.insert(1, Arc::new(11));
        assert_eq!(*cache.get(&1).unwrap(), 11);
        assert_eq!(*cache.get(&2).unwrap(), 20);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn concurrent_get_insert_interleavings_stay_bounded_and_coherent() {
        // Loom substitute (see CI's nightly interleaving jobs): hammer one
        // small sharded cache from many threads with overlapping key
        // ranges so gets, inserts, same-key races, and evictions all
        // interleave. The invariants checked are the ones a lost-update
        // or broken-eviction bug would break: a get never returns a value
        // that was not inserted under that key, shards never exceed
        // capacity, and the counters stay consistent with the residency.
        let cache: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(4, 8));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..400u64 {
                        let key = (t * 13 + i * 7) % 48;
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(*v, key * 1000, "foreign value under key {key}");
                        } else {
                            cache.insert(key, Arc::new(key * 1000));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("stress thread");
        }
        let s = cache.stats();
        assert!(s.entries <= 4 * 8, "residency exceeds capacity: {s:?}");
        assert_eq!(s.hits + s.misses, 8 * 400, "every lookup counted: {s:?}");
        // Entries still resident must remain readable and correct.
        for key in 0..48u64 {
            if let Some(v) = cache.get(&key) {
                assert_eq!(*v, key * 1000);
            }
        }
    }

    #[test]
    fn hit_ratio_is_well_defined() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        let s = CacheStats { hits: 3, misses: 1, evictions: 0, entries: 1 };
        assert!((s.hit_ratio() - 0.75).abs() < f64::EPSILON);
    }
}
