//! Persistent tier of the plan cache: warm starts across processes.
//!
//! The in-memory LRU dies with the process, so every fresh `pf` run or
//! daemon restart pays the full `MAP_V∘MAP_S⁻¹` compile again even for
//! layouts it has served a thousand times. This module persists the
//! *symbolic* plans ([`ViewPlan`] / [`RedistributionPlan`]) to one
//! versioned, checksummed cache file keyed by the same canonical
//! fingerprint + displacement tuples the LRU uses — the fingerprints are
//! stable across processes (see `falls::canon`), and the compiled replay
//! tables are a deterministic function of the symbolic plan, so a
//! re-loaded entry reproduces the cold compile byte for byte.
//!
//! # File format (version 1)
//!
//! ```text
//! [magic "PFPC"][format u32][payload_len u64][crc32c u32][payload]
//! payload := entry_count u32, entry*
//! entry   := kind u8 (0 = view, 1 = redist), key, blob_len u32, blob
//! ```
//!
//! All integers little-endian. The CRC covers the payload only; a header
//! or checksum mismatch, a truncated file, or an undecodable blob never
//! surfaces as an error — the store degrades to a cold compile and bumps
//! `load_failures`. Blobs decode through the validating constructors
//! (`Falls::new`, `NestedFalls::with_inner`, `NestedSet::new`) with the
//! same depth/node budgets the wire codec enforces, so even a
//! checksum-colliding corruption cannot build an invalid FALLS tree.
//!
//! Rewrites are atomic: the whole image is written to a sibling temp file
//! and renamed over the old one, so a crashed writer leaves either the
//! previous complete image or a stale temp file, never a torn cache.

use super::{RedistKey, ViewKey};
use crate::plan::{CopyRun, PairPlan, RedistributionPlan};
use crate::redist::{Intersection, Projection, SubfileAccess, ViewPlan};
use falls::{Falls, NestedFalls, NestedSet};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const MAGIC: [u8; 4] = *b"PFPC";
/// Bumped whenever the payload layout changes; a mismatch is a stale
/// cache from another build and degrades to cold compiles.
const FORMAT: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8 + 4;

/// Decode budgets, mirroring the wire codec's: no cache file may make the
/// loader recurse unboundedly or allocate without limit.
const MAX_TREE_DEPTH: usize = 16;
const MAX_TREE_NODES: usize = 65_536;
/// Upper bound on decoded collection lengths (entries, subfiles, pairs,
/// runs) — far above anything a real plan produces, small enough that a
/// corrupt length cannot drive a huge allocation.
const MAX_ITEMS: usize = 1 << 20;

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli), table-driven. The implementation in `clusterfile`
// cannot be used here — the dependency points the other way — so the
// store carries its own copy of the standard algorithm.

fn crc32c_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82F6_3B78 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

fn crc32c(data: &[u8]) -> u32 {
    let table = crc32c_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian codec helpers

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked reader over a decoded payload. Every decode error is
/// `None` — the caller's answer to any malformation is the same (cold
/// compile), so the codec does not distinguish them.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        (n <= MAX_ITEMS).then_some(n)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// FALLS-tree codec

fn put_nested_falls(out: &mut Vec<u8>, nf: &NestedFalls) {
    let f = nf.falls();
    put_u64(out, f.l());
    put_u64(out, f.r());
    put_u64(out, f.stride());
    put_u64(out, f.count());
    put_u32(out, nf.inner().len() as u32);
    for child in nf.inner() {
        put_nested_falls(out, child);
    }
}

fn get_nested_falls(c: &mut Cursor<'_>, depth: usize, nodes: &mut usize) -> Option<NestedFalls> {
    if depth >= MAX_TREE_DEPTH {
        return None;
    }
    *nodes += 1;
    if *nodes > MAX_TREE_NODES {
        return None;
    }
    let (l, r, s, n) = (c.u64()?, c.u64()?, c.u64()?, c.u64()?);
    let falls = Falls::new(l, r, s, n).ok()?;
    let children = c.len()?;
    if children == 0 {
        return Some(NestedFalls::leaf(falls));
    }
    let mut inner = Vec::with_capacity(children.min(64));
    for _ in 0..children {
        inner.push(get_nested_falls(c, depth + 1, nodes)?);
    }
    NestedFalls::with_inner(falls, inner).ok()
}

fn put_set(out: &mut Vec<u8>, set: &NestedSet) {
    put_u32(out, set.families().len() as u32);
    for f in set.families() {
        put_nested_falls(out, f);
    }
}

fn get_set(c: &mut Cursor<'_>) -> Option<NestedSet> {
    let count = c.len()?;
    let mut nodes = 0usize;
    let mut families = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        families.push(get_nested_falls(c, 0, &mut nodes)?);
    }
    NestedSet::new(families).ok()
}

fn put_projection(out: &mut Vec<u8>, p: &Projection) {
    put_u64(out, p.period);
    put_set(out, &p.set);
}

fn get_projection(c: &mut Cursor<'_>) -> Option<Projection> {
    let period = c.u64()?;
    let set = get_set(c)?;
    Some(Projection { set, period })
}

// ---------------------------------------------------------------------------
// Plan codecs

fn encode_view_plan(plan: &ViewPlan) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, plan.per_subfile.len() as u32);
    for a in &plan.per_subfile {
        put_projection(&mut out, &a.proj_view);
        put_projection(&mut out, &a.proj_sub);
        out.push(u8::from(a.perfect_match));
    }
    out
}

fn decode_view_plan(blob: &[u8]) -> Option<ViewPlan> {
    let mut c = Cursor::new(blob);
    let count = c.len()?;
    let mut per_subfile = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let proj_view = get_projection(&mut c)?;
        let proj_sub = get_projection(&mut c)?;
        let perfect_match = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        per_subfile.push(SubfileAccess { proj_view, proj_sub, perfect_match });
    }
    c.done().then_some(ViewPlan { per_subfile })
}

fn encode_redist_plan(plan: &RedistributionPlan) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, plan.displacement);
    put_u64(&mut out, plan.period);
    put_u64(&mut out, plan.src_elements() as u64);
    put_u64(&mut out, plan.dst_elements() as u64);
    put_u32(&mut out, plan.pairs.len() as u32);
    for p in &plan.pairs {
        put_u64(&mut out, p.src_element as u64);
        put_u64(&mut out, p.dst_element as u64);
        put_u64(&mut out, p.intersection.displacement);
        put_u64(&mut out, p.intersection.period);
        put_set(&mut out, &p.intersection.set);
        put_projection(&mut out, &p.src_projection);
        put_projection(&mut out, &p.dst_projection);
        put_u64(&mut out, p.src_period);
        put_u64(&mut out, p.dst_period);
        put_u32(&mut out, p.runs.len() as u32);
        for r in &p.runs {
            put_u64(&mut out, r.file_rel);
            put_u64(&mut out, r.src_off);
            put_u64(&mut out, r.dst_off);
            put_u64(&mut out, r.len);
        }
    }
    out
}

fn decode_redist_plan(blob: &[u8]) -> Option<RedistributionPlan> {
    let mut c = Cursor::new(blob);
    let displacement = c.u64()?;
    let period = c.u64()?;
    let src_elements = usize::try_from(c.u64()?).ok().filter(|&n| n <= MAX_ITEMS)?;
    let dst_elements = usize::try_from(c.u64()?).ok().filter(|&n| n <= MAX_ITEMS)?;
    let pair_count = c.len()?;
    let mut pairs = Vec::with_capacity(pair_count.min(1024));
    for _ in 0..pair_count {
        let src_element = usize::try_from(c.u64()?).ok().filter(|&e| e < src_elements)?;
        let dst_element = usize::try_from(c.u64()?).ok().filter(|&e| e < dst_elements)?;
        let i_disp = c.u64()?;
        let i_period = c.u64()?;
        let set = get_set(&mut c)?;
        let intersection = Intersection { set, displacement: i_disp, period: i_period };
        let src_projection = get_projection(&mut c)?;
        let dst_projection = get_projection(&mut c)?;
        let src_period = c.u64()?;
        let dst_period = c.u64()?;
        let run_count = c.len()?;
        let mut runs = Vec::with_capacity(run_count.min(4096));
        for _ in 0..run_count {
            runs.push(CopyRun {
                file_rel: c.u64()?,
                src_off: c.u64()?,
                dst_off: c.u64()?,
                len: c.u64()?,
            });
        }
        pairs.push(PairPlan {
            src_element,
            dst_element,
            intersection,
            src_projection,
            dst_projection,
            runs,
            src_period,
            dst_period,
        });
    }
    if !c.done() {
        return None;
    }
    Some(RedistributionPlan::from_parts(displacement, period, pairs, src_elements, dst_elements))
}

// ---------------------------------------------------------------------------
// Keys

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StoreKey {
    View(ViewKey),
    Redist(RedistKey),
}

fn put_key(out: &mut Vec<u8>, key: &StoreKey) {
    match key {
        StoreKey::View(k) => {
            out.push(0);
            put_u64(out, k.view_fp);
            put_u64(out, k.phys_fp);
            put_u64(out, k.element as u64);
            put_u64(out, k.view_disp);
            put_u64(out, k.phys_disp);
        }
        StoreKey::Redist(k) => {
            out.push(1);
            put_u64(out, k.src_fp);
            put_u64(out, k.dst_fp);
            put_u64(out, k.src_disp);
            put_u64(out, k.dst_disp);
        }
    }
}

fn get_key(c: &mut Cursor<'_>) -> Option<StoreKey> {
    match c.u8()? {
        0 => Some(StoreKey::View(ViewKey {
            view_fp: c.u64()?,
            phys_fp: c.u64()?,
            element: usize::try_from(c.u64()?).ok()?,
            view_disp: c.u64()?,
            phys_disp: c.u64()?,
        })),
        1 => Some(StoreKey::Redist(RedistKey {
            src_fp: c.u64()?,
            dst_fp: c.u64()?,
            src_disp: c.u64()?,
            dst_disp: c.u64()?,
        })),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The store

/// Counters of the persistent cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Entries currently resident (loaded + inserted this process).
    pub entries: u64,
    /// Serialized size of the current image in bytes.
    pub bytes: u64,
    /// Lookups answered from the persisted tier.
    pub hits: u64,
    /// Lookups that fell through to a cold compile.
    pub misses: u64,
    /// Load-time rejections: missing/corrupt/stale file images or
    /// undecodable entries — each one a silent fall-back, never an error.
    pub load_failures: u64,
}

struct StoreState {
    entries: HashMap<StoreKey, Vec<u8>>,
    /// Serialized image size (file length after the last load/flush).
    bytes: u64,
}

/// The on-disk plan cache behind a [`PlanEngine`](super::PlanEngine).
pub(super) struct PlanStore {
    path: PathBuf,
    state: Mutex<StoreState>,
    hits: AtomicU64,
    misses: AtomicU64,
    load_failures: AtomicU64,
}

impl PlanStore {
    /// Opens (or lazily creates) the store at `path`. A missing file is a
    /// normal first run; anything unreadable or malformed counts one load
    /// failure and starts empty.
    pub(super) fn open(path: PathBuf) -> Self {
        let store = Self {
            path,
            state: Mutex::new(StoreState { entries: HashMap::new(), bytes: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
        };
        store.load();
        store
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn load(&self) {
        let image = match std::fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
            Err(_) => {
                self.load_failures.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let Some(entries) = parse_image(&image) else {
            self.load_failures.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut st = self.lock();
        st.entries = entries;
        st.bytes = image.len() as u64;
    }

    /// Looks a view plan up, decoding its blob. A present-but-undecodable
    /// entry counts as a load failure *and* a miss, and is dropped so it
    /// is re-persisted from the fresh compile.
    pub(super) fn get_view(&self, key: &ViewKey) -> Option<ViewPlan> {
        self.get(StoreKey::View(*key), decode_view_plan)
    }

    pub(super) fn get_redist(&self, key: &RedistKey) -> Option<RedistributionPlan> {
        self.get(StoreKey::Redist(*key), decode_redist_plan)
    }

    fn get<T>(&self, key: StoreKey, decode: fn(&[u8]) -> Option<T>) -> Option<T> {
        let blob = self.lock().entries.get(&key).cloned();
        let Some(blob) = blob else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match decode(&blob) {
            Some(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            None => {
                self.load_failures.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.lock().entries.remove(&key);
                None
            }
        }
    }

    pub(super) fn put_view(&self, key: &ViewKey, plan: &ViewPlan) {
        self.put(StoreKey::View(*key), encode_view_plan(plan));
    }

    pub(super) fn put_redist(&self, key: &RedistKey, plan: &RedistributionPlan) {
        self.put(StoreKey::Redist(*key), encode_redist_plan(plan));
    }

    /// Inserts and rewrites the image. A flush failure (read-only disk,
    /// missing directory) is swallowed: the entry still serves this
    /// process from memory, the next process just starts cold.
    fn put(&self, key: StoreKey, blob: Vec<u8>) {
        let mut st = self.lock();
        if st.entries.get(&key).is_some_and(|old| *old == blob) {
            return;
        }
        st.entries.insert(key, blob);
        let image = build_image(&st.entries);
        st.bytes = image.len() as u64;
        let _ = self.write_atomic(&image);
    }

    fn write_atomic(&self, image: &[u8]) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = self.path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, image)?;
        std::fs::rename(&tmp, &self.path)
    }

    /// Drops every persisted entry and deletes the backing file.
    pub(super) fn purge(&self) -> std::io::Result<()> {
        let mut st = self.lock();
        st.entries.clear();
        st.bytes = 0;
        match std::fs::remove_file(&self.path) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    pub(super) fn path(&self) -> &Path {
        &self.path
    }

    pub(super) fn stats(&self) -> PersistStats {
        let (entries, bytes) = {
            let st = self.lock();
            (st.entries.len() as u64, st.bytes)
        };
        PersistStats {
            entries,
            bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
        }
    }
}

/// Serializes the full image: header + checksummed payload.
fn build_image(entries: &HashMap<StoreKey, Vec<u8>>) -> Vec<u8> {
    // Deterministic entry order keeps repeated flushes byte-identical
    // (useful for tests and for rsync-style backup of the cache file).
    let mut keys: Vec<(Vec<u8>, &Vec<u8>)> = entries
        .iter()
        .map(|(k, blob)| {
            let mut kb = Vec::new();
            put_key(&mut kb, k);
            (kb, blob)
        })
        .collect();
    keys.sort_by(|a, b| a.0.cmp(&b.0));
    let mut payload = Vec::new();
    put_u32(&mut payload, keys.len() as u32);
    for (kb, blob) in keys {
        payload.extend_from_slice(&kb);
        put_u32(&mut payload, blob.len() as u32);
        payload.extend_from_slice(blob);
    }
    let mut image = Vec::with_capacity(HEADER_LEN + payload.len());
    image.extend_from_slice(&MAGIC);
    put_u32(&mut image, FORMAT);
    put_u64(&mut image, payload.len() as u64);
    put_u32(&mut image, crc32c(&payload));
    image.extend_from_slice(&payload);
    image
}

/// Parses a full image; `None` on any structural problem (bad magic,
/// format mismatch, truncation, checksum mismatch, malformed entries).
fn parse_image(image: &[u8]) -> Option<HashMap<StoreKey, Vec<u8>>> {
    if image.len() < HEADER_LEN || image[..4] != MAGIC {
        return None;
    }
    let mut h = Cursor::new(&image[4..HEADER_LEN]);
    let format = h.u32()?;
    let payload_len = usize::try_from(h.u64()?).ok()?;
    let crc = h.u32()?;
    if format != FORMAT {
        return None;
    }
    let payload = image.get(HEADER_LEN..)?;
    if payload.len() != payload_len || crc32c(payload) != crc {
        return None;
    }
    let mut c = Cursor::new(payload);
    let count = c.len()?;
    let mut entries = HashMap::with_capacity(count.min(MAX_ITEMS));
    for _ in 0..count {
        let key = get_key(&mut c)?;
        let blob_len = c.len()?;
        let blob = c.take(blob_len)?;
        entries.insert(key, blob.to_vec());
    }
    c.done().then_some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Partition, PartitionPattern};

    fn stripes(count: u64, width: u64, disp: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(
                        Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                    ))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(disp, pattern)
    }

    fn cyclic(count: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap()))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(0, pattern)
    }

    #[test]
    fn view_plan_codec_round_trips() {
        let plan = ViewPlan::compile(&stripes(4, 8, 0), 1, &cyclic(4)).unwrap();
        let blob = encode_view_plan(&plan);
        let back = decode_view_plan(&blob).expect("round trip");
        assert_eq!(encode_view_plan(&back), blob, "re-encoding is byte-identical");
        assert_eq!(back.per_subfile.len(), plan.per_subfile.len());
        for (a, b) in plan.per_subfile.iter().zip(&back.per_subfile) {
            assert_eq!(a.proj_view, b.proj_view);
            assert_eq!(a.proj_sub, b.proj_sub);
            assert_eq!(a.perfect_match, b.perfect_match);
        }
    }

    #[test]
    fn redist_plan_codec_round_trips() {
        let plan = RedistributionPlan::build(&stripes(3, 5, 2), &cyclic(4)).unwrap();
        let blob = encode_redist_plan(&plan);
        let back = decode_redist_plan(&blob).expect("round trip");
        assert_eq!(encode_redist_plan(&back), blob);
        assert_eq!(back.displacement, plan.displacement);
        assert_eq!(back.period, plan.period);
        assert_eq!(back.src_elements(), plan.src_elements());
        assert_eq!(back.dst_elements(), plan.dst_elements());
        assert_eq!(back.pairs.len(), plan.pairs.len());
        for (a, b) in plan.pairs.iter().zip(&back.pairs) {
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.src_period, b.src_period);
            assert_eq!(a.dst_period, b.dst_period);
        }
    }

    #[test]
    fn truncated_blob_is_rejected_not_panicking() {
        let plan = ViewPlan::compile(&stripes(2, 4, 0), 0, &cyclic(2)).unwrap();
        let blob = encode_view_plan(&plan);
        for cut in 0..blob.len() {
            assert!(decode_view_plan(&blob[..cut]).is_none(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn crc32c_matches_known_vector() {
        // RFC 3720 test vector: 32 zero bytes.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn image_survives_round_trip_and_rejects_corruption() {
        let plan = ViewPlan::compile(&stripes(2, 4, 0), 0, &cyclic(2)).unwrap();
        let key = StoreKey::View(ViewKey {
            view_fp: 1,
            phys_fp: 2,
            element: 0,
            view_disp: 0,
            phys_disp: 0,
        });
        let mut entries = HashMap::new();
        entries.insert(key, encode_view_plan(&plan));
        let image = build_image(&entries);
        assert_eq!(parse_image(&image).expect("parse").len(), 1);
        // Bit flip anywhere in the payload breaks the checksum.
        let mut flipped = image.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(parse_image(&flipped).is_none());
        // Truncation at every prefix is rejected.
        for cut in 0..image.len() {
            assert!(parse_image(&image[..cut]).is_none(), "cut at {cut}");
        }
        // A format bump is a stale cache.
        let mut stale = image;
        stale[4] ^= 0xFF;
        assert!(parse_image(&stale).is_none());
    }
}
