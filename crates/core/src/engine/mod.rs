//! The unified plan engine: compile once, cache, replay everywhere.
//!
//! Every consumer of view plans and redistribution plans — the simulated
//! Clusterfile, collective writes, on-the-fly relayout, and the networked
//! `Session` — compiles through this single layer. Patterns are reduced to
//! canonical form and fingerprinted (see [`falls::fingerprint_set`]); the
//! fingerprints key a bounded, sharded LRU cache of [`CompiledView`] /
//! [`CompiledPlan`] values shared via `Arc`, so re-setting a view over a
//! `(view pattern, physical pattern)` pair that was seen before costs a
//! hash lookup and a pointer clone instead of a full intersection +
//! projection + run computation.
//!
//! Invalidation needs no explicit hooks: partitions are immutable values,
//! and a cache key covers everything a compile reads (both patterns'
//! canonical structure, both displacements, and the element index for
//! views). Any change to a file's physical layout produces a different key;
//! stale entries simply age out of the LRU.

mod cache;
mod compiled;
mod persist;

pub use cache::CacheStats;
pub use compiled::{CompiledPlan, CompiledView, PairMeta, SegmentReplay};
pub use persist::PersistStats;

use crate::model::Partition;
use crate::plan::RedistributionPlan;
use crate::redist::ViewPlan;
use crate::Error;
use falls::{fingerprint_set, StructuralHasher};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Stable 64-bit structural fingerprint of a partition's pattern: element
/// count and each element's canonical nested-FALLS fingerprint, in element
/// order. The displacement is *not* mixed in — cache keys carry it
/// separately, as the ISSUE's `(src_fingerprint, dst_fingerprint,
/// displacements)` shape prescribes.
#[must_use]
pub fn fingerprint_pattern(partition: &Partition) -> u64 {
    let mut h = StructuralHasher::new();
    let elements = partition.pattern().elements();
    h.write_u64(elements.len() as u64);
    for set in elements {
        h.write_u64(fingerprint_set(set));
    }
    h.finish()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ViewKey {
    view_fp: u64,
    phys_fp: u64,
    element: usize,
    view_disp: u64,
    phys_disp: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RedistKey {
    src_fp: u64,
    dst_fp: u64,
    src_disp: u64,
    dst_disp: u64,
}

/// Counters of both engine caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// View-plan cache counters.
    pub views: CacheStats,
    /// Redistribution-plan cache counters.
    pub redists: CacheStats,
}

impl EngineStats {
    /// Total cache hits across both caches.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.views.hits + self.redists.hits
    }

    /// Total cache misses (fresh compiles) across both caches.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.views.misses + self.redists.misses
    }

    /// Total evictions across both caches.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.views.evictions + self.redists.evictions
    }

    /// Overall hit ratio (0 when no lookups ran).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

const SHARDS: usize = 8;
const CAPACITY_PER_SHARD: usize = 16;

/// The compile-once / cache / replay engine.
///
/// Most callers use the process-wide [`PlanEngine::global`] instance so the
/// cache is shared across files, sessions and transports; tests that need
/// isolated counters construct their own.
pub struct PlanEngine {
    views: cache::ShardedLru<ViewKey, CompiledView>,
    redists: cache::ShardedLru<RedistKey, CompiledPlan>,
    /// Optional on-disk tier consulted on LRU misses (DESIGN.md §18).
    persist: Option<persist::PlanStore>,
}

impl PlanEngine {
    /// A fresh engine with empty caches (8 shards × 16 entries per cache)
    /// and no persistent tier.
    #[must_use]
    pub fn new() -> Self {
        Self {
            views: cache::ShardedLru::new(SHARDS, CAPACITY_PER_SHARD),
            redists: cache::ShardedLru::new(SHARDS, CAPACITY_PER_SHARD),
            persist: None,
        }
    }

    /// A fresh engine whose misses consult — and whose compiles feed — the
    /// on-disk plan cache at `path`. A missing file is a normal first run;
    /// a corrupt or stale one degrades to cold compiles (never an error)
    /// and counts a load failure in [`PersistStats`].
    #[must_use]
    pub fn with_persist(path: PathBuf) -> Self {
        Self { persist: Some(persist::PlanStore::open(path)), ..Self::new() }
    }

    /// The process-wide shared engine. Set `PF_PLAN_CACHE=<path>` to back
    /// it with the persistent tier so a fresh process starts warm.
    pub fn global() -> &'static PlanEngine {
        static GLOBAL: OnceLock<PlanEngine> = OnceLock::new();
        GLOBAL.get_or_init(|| match std::env::var_os("PF_PLAN_CACHE") {
            Some(path) if !path.is_empty() => PlanEngine::with_persist(PathBuf::from(path)),
            _ => PlanEngine::new(),
        })
    }

    /// Compiles (or recalls) the access plan of `element` of `view` against
    /// `physical`. This is the engine's view-set entry point — the only
    /// place in the workspace that invokes [`ViewPlan::compile`].
    pub fn compile_view(
        &self,
        view: &Partition,
        element: usize,
        physical: &Partition,
    ) -> Result<Arc<CompiledView>, Error> {
        let key = ViewKey {
            view_fp: fingerprint_pattern(view),
            phys_fp: fingerprint_pattern(physical),
            element,
            view_disp: view.displacement(),
            phys_disp: physical.displacement(),
        };
        if let Some(hit) = self.views.get(&key) {
            return Ok(hit);
        }
        if let Some(plan) = self.persist.as_ref().and_then(|s| s.get_view(&key)) {
            let compiled = Arc::new(CompiledView::from_plan(plan));
            self.views.insert(key, Arc::clone(&compiled));
            return Ok(compiled);
        }
        let plan = ViewPlan::compile(view, element, physical)?;
        if let Some(store) = &self.persist {
            store.put_view(&key, &plan);
        }
        let compiled = Arc::new(CompiledView::from_plan(plan));
        self.views.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Compiles (or recalls) the redistribution plan from `src` to `dst`.
    /// The only place in the workspace that invokes
    /// [`RedistributionPlan::build`] on behalf of consumers.
    pub fn compile_redist(
        &self,
        src: &Partition,
        dst: &Partition,
    ) -> Result<Arc<CompiledPlan>, Error> {
        let key = RedistKey {
            src_fp: fingerprint_pattern(src),
            dst_fp: fingerprint_pattern(dst),
            src_disp: src.displacement(),
            dst_disp: dst.displacement(),
        };
        if let Some(hit) = self.redists.get(&key) {
            return Ok(hit);
        }
        if let Some(plan) = self.persist.as_ref().and_then(|s| s.get_redist(&key)) {
            let compiled = Arc::new(CompiledPlan::from_plan(plan));
            self.redists.insert(key, Arc::clone(&compiled));
            return Ok(compiled);
        }
        let plan = RedistributionPlan::build(src, dst)?;
        if let Some(store) = &self.persist {
            store.put_redist(&key, &plan);
        }
        let compiled = Arc::new(CompiledPlan::from_plan(plan));
        self.redists.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Current hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats { views: self.views.stats(), redists: self.redists.stats() }
    }

    /// Counters of the persistent tier, or `None` when the engine runs
    /// without one.
    #[must_use]
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.persist.as_ref().map(persist::PlanStore::stats)
    }

    /// The persistent tier's backing file, when one is configured.
    #[must_use]
    pub fn persist_path(&self) -> Option<&std::path::Path> {
        self.persist.as_ref().map(persist::PlanStore::path)
    }

    /// Drops every persisted entry and deletes the backing cache file.
    /// No-op `Ok` when the engine has no persistent tier.
    pub fn purge_persist(&self) -> std::io::Result<()> {
        match &self.persist {
            Some(store) => store.purge(),
            None => Ok(()),
        }
    }
}

impl Default for PlanEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartitionPattern;
    use falls::{Falls, NestedFalls, NestedSet};

    fn stripes(count: u64, width: u64, disp: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(
                        Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                    ))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(disp, pattern)
    }

    fn cyclic(count: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap()))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(0, pattern)
    }

    #[test]
    fn repeated_view_compile_hits_the_cache() {
        let engine = PlanEngine::new();
        let view = stripes(4, 8, 0);
        let phys = cyclic(4);
        let a = engine.compile_view(&view, 0, &phys).unwrap();
        let b = engine.compile_view(&view, 0, &phys).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second compile must be the cached Arc");
        let s = engine.stats();
        assert_eq!(s.views.hits, 1);
        assert_eq!(s.views.misses, 1);
    }

    #[test]
    fn different_elements_are_different_keys() {
        let engine = PlanEngine::new();
        let view = stripes(4, 8, 0);
        let phys = cyclic(4);
        let a = engine.compile_view(&view, 0, &phys).unwrap();
        let b = engine.compile_view(&view, 1, &phys).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(engine.stats().views.misses, 2);
    }

    #[test]
    fn displacement_is_part_of_the_key() {
        let engine = PlanEngine::new();
        let phys = stripes(2, 4, 0);
        let a = engine.compile_redist(&stripes(2, 4, 0), &phys).unwrap();
        let b = engine.compile_redist(&stripes(2, 4, 3), &phys).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(engine.stats().redists.misses, 2);
        assert_eq!(engine.stats().redists.hits, 0);
    }

    #[test]
    fn redist_cache_round_trips() {
        let engine = PlanEngine::new();
        let src = stripes(4, 8, 0);
        let dst = cyclic(4);
        let a = engine.compile_redist(&src, &dst).unwrap();
        let b = engine.compile_redist(&src, &dst).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Reversed direction is a different plan.
        let c = engine.compile_redist(&dst, &src).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn bad_element_index_is_an_error_and_not_cached() {
        let engine = PlanEngine::new();
        let p = stripes(2, 4, 0);
        assert!(engine.compile_view(&p, 7, &p).is_err());
        assert_eq!(engine.stats().views.entries, 0);
    }

    #[test]
    fn structurally_equal_patterns_share_a_plan() {
        // Two separately-constructed but identical partitions must hit.
        let engine = PlanEngine::new();
        let a = engine.compile_redist(&stripes(4, 8, 0), &cyclic(4)).unwrap();
        let b = engine.compile_redist(&stripes(4, 8, 0), &cyclic(4)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
