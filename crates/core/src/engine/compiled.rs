//! Compiled, replayable forms of view and redistribution plans.
//!
//! Symbolic plans ([`ViewPlan`], [`RedistributionPlan`]) describe *what*
//! bytes move; the compiled forms here lower them into flat run tables that
//! describe *how* to move them with zero per-access allocation. Compilation
//! happens once (and is cached by the [`engine`](crate::engine)); every
//! subsequent access replays precomputed offsets — the paper's amortization
//! of the view-setting cost `t_i` made concrete.

use crate::plan::{CopyRun, RedistributionPlan};
use crate::redist::{Projection, SubfileAccess, ViewPlan};
use falls::LineSegment;

/// Replay below this many bytes stays single-threaded: thread spawn and join
/// overhead would dominate the copy itself.
const PARALLEL_THRESHOLD_BYTES: u64 = 64 * 1024;

/// A projection lowered for repeated windowed replay.
///
/// [`Projection::segments_between`] re-derives the window-0 segment list
/// from the FALLS tree and materializes a `Vec` on every access; this type
/// derives that list once at compile time and streams clipped segments to a
/// callback per access, allocating nothing on the common path.
#[derive(Debug, Clone)]
pub struct SegmentReplay {
    base: Vec<LineSegment>,
    period: u64,
    min_pos: u64,
    max_pos: u64,
    /// Whether window k's segments all precede window k+1's, so streaming
    /// in (window, segment) order is already globally sorted. False only
    /// when window 0 spans more than one period (tree order diverging from
    /// byte order under a displacement mismatch).
    streamable: bool,
}

impl SegmentReplay {
    /// Lowers `proj` for replay.
    #[must_use]
    pub fn new(proj: &Projection) -> Self {
        let base = proj.set.absolute_segments();
        let (min_pos, max_pos) = match (base.first(), base.last()) {
            (Some(f), Some(l)) => (f.l(), l.r()),
            _ => (0, 0),
        };
        let streamable = base.is_empty() || max_pos - min_pos < proj.period;
        Self { base, period: proj.period.max(1), min_pos, max_pos, streamable }
    }

    /// Whether the projection selects no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Selected bytes per aligned window.
    #[must_use]
    pub fn bytes_per_period(&self) -> u64 {
        self.base.iter().map(LineSegment::len).sum()
    }

    /// Streams the projection's segments clipped to `[lo, hi]` (inclusive,
    /// element-linear), in increasing offset order, without allocating —
    /// except in the rare non-streamable window-overlap case, where the
    /// segments are collected and sorted first to keep the order contract of
    /// [`Projection::segments_between`].
    pub fn for_each_between(&self, lo: u64, hi: u64, mut f: impl FnMut(LineSegment)) {
        if self.is_empty() || lo > hi || self.min_pos > hi {
            return;
        }
        let k_lo = lo.saturating_sub(self.max_pos) / self.period;
        let k_hi = (hi - self.min_pos) / self.period;
        if self.streamable {
            for k in k_lo..=k_hi {
                let shift = k * self.period;
                for seg in &self.base {
                    let abs = seg.shift_up(shift).expect("fits in u64");
                    if let Some(clipped) = abs.clip(lo, hi) {
                        f(clipped);
                    }
                }
            }
            return;
        }
        let mut out = Vec::new();
        for k in k_lo..=k_hi {
            let shift = k * self.period;
            for seg in &self.base {
                let abs = seg.shift_up(shift).expect("fits in u64");
                if let Some(clipped) = abs.clip(lo, hi) {
                    out.push(clipped);
                }
            }
        }
        out.sort_unstable();
        for seg in out {
            f(seg);
        }
    }

    /// Number of projected bytes within `[lo, hi]`.
    #[must_use]
    pub fn bytes_between(&self, lo: u64, hi: u64) -> u64 {
        let mut total = 0;
        self.for_each_between(lo, hi, |seg| total += seg.len());
        total
    }

    /// Number of disjoint fragments within `[lo, hi]` (adjacent segments
    /// coalesce), mirroring [`Projection::fragments_between`].
    #[must_use]
    pub fn fragments_between(&self, lo: u64, hi: u64) -> usize {
        let mut count = 0usize;
        let mut prev: Option<LineSegment> = None;
        self.for_each_between(lo, hi, |seg| {
            match prev {
                Some(p) if p.abuts(&seg) => {}
                _ => count += 1,
            }
            prev = Some(seg);
        });
        count
    }
}

/// A view plan compiled for repeated access: the symbolic per-subfile
/// projections plus a [`SegmentReplay`] per subfile over the view-side
/// projection (the compute-side hot path).
#[derive(Debug, Clone)]
pub struct CompiledView {
    plan: ViewPlan,
    replay: Vec<SegmentReplay>,
}

impl CompiledView {
    pub(crate) fn from_plan(plan: ViewPlan) -> Self {
        let replay = plan.per_subfile.iter().map(|a| SegmentReplay::new(&a.proj_view)).collect();
        Self { plan, replay }
    }

    /// The underlying symbolic plan.
    #[must_use]
    pub fn plan(&self) -> &ViewPlan {
        &self.plan
    }

    /// Per-subfile access information, indexed by subfile.
    #[must_use]
    pub fn per_subfile(&self) -> &[SubfileAccess] {
        &self.plan.per_subfile
    }

    /// The access information of one subfile.
    #[must_use]
    pub fn access(&self, subfile: usize) -> &SubfileAccess {
        &self.plan.per_subfile[subfile]
    }

    /// The view-side replay table of one subfile.
    #[must_use]
    pub fn replay(&self, subfile: usize) -> &SegmentReplay {
        &self.replay[subfile]
    }

    /// Number of subfiles the view was compiled against.
    #[must_use]
    pub fn subfile_count(&self) -> usize {
        self.plan.per_subfile.len()
    }

    /// Number of subfiles the view shares data with.
    #[must_use]
    pub fn intersecting_subfiles(&self) -> usize {
        self.plan.intersecting_subfiles()
    }

    /// Total FALLS-tree nodes over all projections (simulator cost proxy).
    #[must_use]
    pub fn work_nodes(&self) -> usize {
        self.plan.work_nodes()
    }
}

/// Per-pair metadata of a [`CompiledPlan`]: which elements the pair
/// connects, its per-window element periods, and where its runs live in the
/// plan's flat run table.
#[derive(Debug, Clone)]
pub struct PairMeta {
    /// Source element index.
    pub src_element: usize,
    /// Destination element index.
    pub dst_element: usize,
    /// Source element-linear bytes per window.
    pub src_period: u64,
    /// Destination element-linear bytes per window.
    pub dst_period: u64,
    run_start: usize,
    run_end: usize,
}

/// A redistribution plan lowered into a flat struct-of-arrays run table.
///
/// All pairs' copy runs live in four parallel arrays (`file_rel`, `src_off`,
/// `dst_off`, `len`); [`CompiledPlan::apply`] replays them per aligned
/// window with zero allocation, and [`CompiledPlan::apply_parallel`] fans
/// independent destination elements out across scoped threads.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    plan: RedistributionPlan,
    pairs: Vec<PairMeta>,
    file_rel: Vec<u64>,
    src_off: Vec<u64>,
    dst_off: Vec<u64>,
    len: Vec<u64>,
}

impl CompiledPlan {
    pub(crate) fn from_plan(plan: RedistributionPlan) -> Self {
        let total_runs = plan.runs_per_period();
        let mut pairs = Vec::with_capacity(plan.pairs.len());
        let mut file_rel = Vec::with_capacity(total_runs);
        let mut src_off = Vec::with_capacity(total_runs);
        let mut dst_off = Vec::with_capacity(total_runs);
        let mut len = Vec::with_capacity(total_runs);
        for pair in &plan.pairs {
            let run_start = file_rel.len();
            for run in &pair.runs {
                file_rel.push(run.file_rel);
                src_off.push(run.src_off);
                dst_off.push(run.dst_off);
                len.push(run.len);
            }
            pairs.push(PairMeta {
                src_element: pair.src_element,
                dst_element: pair.dst_element,
                src_period: pair.src_period,
                dst_period: pair.dst_period,
                run_start,
                run_end: file_rel.len(),
            });
        }
        Self { plan, pairs, file_rel, src_off, dst_off, len }
    }

    /// The underlying symbolic plan (projections, intersections — used by
    /// matching-degree metrics and diagnostics).
    #[must_use]
    pub fn plan(&self) -> &RedistributionPlan {
        &self.plan
    }

    /// Aligned displacement.
    #[must_use]
    pub fn displacement(&self) -> u64 {
        self.plan.displacement
    }

    /// Aligned period.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.plan.period
    }

    /// Per-pair metadata, in pair order.
    #[must_use]
    pub fn pairs(&self) -> &[PairMeta] {
        &self.pairs
    }

    /// The window-0 copy runs of one pair, from the flat table.
    pub fn runs_of<'a>(&'a self, pair: &'a PairMeta) -> impl Iterator<Item = CopyRun> + 'a {
        (pair.run_start..pair.run_end).map(move |i| CopyRun {
            file_rel: self.file_rel[i],
            src_off: self.src_off[i],
            dst_off: self.dst_off[i],
            len: self.len[i],
        })
    }

    /// Total bytes moved per aligned period.
    #[must_use]
    pub fn bytes_per_period(&self) -> u64 {
        self.len.iter().sum()
    }

    /// Total copy runs per aligned period.
    #[must_use]
    pub fn runs_per_period(&self) -> usize {
        self.len.len()
    }

    /// Replays one destination element's pairs over all windows.
    fn replay_group(
        &self,
        group: &[usize],
        src_bufs: &[Vec<u8>],
        dst: &mut [u8],
        file_len: u64,
        windows: u64,
    ) -> u64 {
        let mut copied = 0u64;
        for k in 0..windows {
            let Some(window_base) = k
                .checked_mul(self.plan.period)
                .and_then(|off| self.plan.displacement.checked_add(off))
            else {
                break;
            };
            for &pi in group {
                let pair = &self.pairs[pi];
                let src = &src_bufs[pair.src_element];
                for i in pair.run_start..pair.run_end {
                    let abs = window_base + self.file_rel[i];
                    if abs >= file_len {
                        continue;
                    }
                    let len = self.len[i].min(file_len - abs) as usize;
                    let s = (self.src_off[i] + k * pair.src_period) as usize;
                    let d = (self.dst_off[i] + k * pair.dst_period) as usize;
                    dst[d..d + len].copy_from_slice(&src[s..s + len]);
                    copied += len as u64;
                }
            }
        }
        copied
    }

    /// Replays the plan over real buffers, moving every byte of
    /// `[displacement, file_len)` — byte-identical to
    /// [`RedistributionPlan::apply`], but driven by the flat run table.
    ///
    /// # Panics
    /// Panics if a buffer is shorter than the offsets the plan touches.
    pub fn apply(&self, src_bufs: &[Vec<u8>], dst_bufs: &mut [Vec<u8>], file_len: u64) -> u64 {
        assert!(src_bufs.len() >= self.plan.src_elements(), "missing source buffers");
        assert!(dst_bufs.len() >= self.plan.dst_elements(), "missing destination buffers");
        if file_len <= self.plan.displacement {
            return 0;
        }
        let windows = (file_len - self.plan.displacement).div_ceil(self.plan.period);
        let mut copied = 0u64;
        for k in 0..windows {
            let Some(window_base) = k
                .checked_mul(self.plan.period)
                .and_then(|off| self.plan.displacement.checked_add(off))
            else {
                break;
            };
            for pair in &self.pairs {
                let src = &src_bufs[pair.src_element];
                let dst = &mut dst_bufs[pair.dst_element];
                for i in pair.run_start..pair.run_end {
                    let abs = window_base + self.file_rel[i];
                    if abs >= file_len {
                        continue;
                    }
                    let len = self.len[i].min(file_len - abs) as usize;
                    let s = (self.src_off[i] + k * pair.src_period) as usize;
                    let d = (self.dst_off[i] + k * pair.dst_period) as usize;
                    dst[d..d + len].copy_from_slice(&src[s..s + len]);
                    copied += len as u64;
                }
            }
        }
        copied
    }

    /// Like [`CompiledPlan::apply`], but replays independent destination
    /// elements on a scoped thread pool. Pairs writing different destination
    /// elements touch disjoint buffers, so each destination's group runs on
    /// its own thread; small transfers fall back to the sequential path.
    ///
    /// # Panics
    /// Panics if a buffer is shorter than the offsets the plan touches.
    pub fn apply_parallel(
        &self,
        src_bufs: &[Vec<u8>],
        dst_bufs: &mut [Vec<u8>],
        file_len: u64,
    ) -> u64 {
        assert!(src_bufs.len() >= self.plan.src_elements(), "missing source buffers");
        assert!(dst_bufs.len() >= self.plan.dst_elements(), "missing destination buffers");
        if file_len <= self.plan.displacement {
            return 0;
        }
        let windows = (file_len - self.plan.displacement).div_ceil(self.plan.period);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.plan.dst_elements()];
        for (i, pair) in self.pairs.iter().enumerate() {
            groups[pair.dst_element].push(i);
        }
        let active = groups.iter().filter(|g| !g.is_empty()).count();
        let approx_bytes = self.bytes_per_period().saturating_mul(windows);
        if active <= 1 || approx_bytes < PARALLEL_THRESHOLD_BYTES {
            return self.apply(src_bufs, dst_bufs, file_len);
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(active);
            for (j, dst) in dst_bufs.iter_mut().enumerate().take(groups.len()) {
                let group = &groups[j];
                if group.is_empty() {
                    continue;
                }
                handles.push(
                    scope.spawn(move || self.replay_group(group, src_bufs, dst, file_len, windows)),
                );
            }
            handles.into_iter().map(|h| h.join().expect("replay thread panicked")).sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Partition, PartitionPattern};
    use falls::{Falls, NestedFalls, NestedSet};

    fn stripes(count: u64, width: u64, disp: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(
                        Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                    ))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(disp, pattern)
    }

    fn cyclic(count: u64, disp: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap()))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(disp, pattern)
    }

    fn bufs_for(p: &Partition, file_len: u64, fill: bool) -> Vec<Vec<u8>> {
        use crate::mapping::Mapper;
        (0..p.element_count())
            .map(|e| {
                let len = p.element_len(e, file_len).unwrap() as usize;
                if fill {
                    let m = Mapper::new(p, e);
                    (0..len as u64).map(|y| (m.unmap(y) * 31 % 251) as u8).collect()
                } else {
                    vec![0u8; len]
                }
            })
            .collect()
    }

    fn compiled(src: &Partition, dst: &Partition) -> CompiledPlan {
        CompiledPlan::from_plan(RedistributionPlan::build(src, dst).unwrap())
    }

    #[test]
    fn compiled_apply_matches_symbolic_apply() {
        for (src, dst, file_len) in [
            (stripes(4, 8, 0), cyclic(4, 0), 160u64),
            (stripes(2, 4, 0), cyclic(2, 0), 13),
            (stripes(2, 4, 3), cyclic(2, 3), 27),
            (stripes(3, 5, 0), cyclic(4, 0), 120),
        ] {
            let plan = RedistributionPlan::build(&src, &dst).unwrap();
            let cp = CompiledPlan::from_plan(plan.clone());
            let src_bufs = bufs_for(&src, file_len, true);
            let mut want = bufs_for(&dst, file_len, false);
            let mut got = bufs_for(&dst, file_len, false);
            let n_want = plan.apply(&src_bufs, &mut want, file_len);
            let n_got = cp.apply(&src_bufs, &mut got, file_len);
            assert_eq!(n_want, n_got);
            assert_eq!(want, got);
        }
    }

    #[test]
    fn parallel_apply_matches_sequential() {
        let src = stripes(4, 64, 0);
        let dst = cyclic(4, 0);
        let file_len = 4 * 64 * 300; // comfortably past the parallel threshold
        let cp = compiled(&src, &dst);
        let src_bufs = bufs_for(&src, file_len, true);
        let mut seq = bufs_for(&dst, file_len, false);
        let mut par = bufs_for(&dst, file_len, false);
        let n_seq = cp.apply(&src_bufs, &mut seq, file_len);
        let n_par = cp.apply_parallel(&src_bufs, &mut par, file_len);
        assert_eq!(n_seq, n_par);
        assert_eq!(seq, par);
    }

    #[test]
    fn small_parallel_apply_takes_sequential_path() {
        let src = stripes(2, 4, 0);
        let dst = cyclic(2, 0);
        let cp = compiled(&src, &dst);
        let src_bufs = bufs_for(&src, 16, true);
        let mut out = bufs_for(&dst, 16, false);
        assert_eq!(cp.apply_parallel(&src_bufs, &mut out, 16), 16);
    }

    #[test]
    fn run_table_round_trips_pairs() {
        let src = stripes(4, 8, 0);
        let dst = cyclic(4, 0);
        let plan = RedistributionPlan::build(&src, &dst).unwrap();
        let cp = CompiledPlan::from_plan(plan.clone());
        assert_eq!(cp.pairs().len(), plan.pairs.len());
        assert_eq!(cp.runs_per_period(), plan.runs_per_period());
        assert_eq!(cp.bytes_per_period(), plan.bytes_per_period());
        for (meta, pair) in cp.pairs().iter().zip(&plan.pairs) {
            assert_eq!(meta.src_element, pair.src_element);
            assert_eq!(meta.dst_element, pair.dst_element);
            let runs: Vec<CopyRun> = cp.runs_of(meta).collect();
            assert_eq!(runs, pair.runs);
        }
    }

    #[test]
    fn segment_replay_matches_segments_between() {
        use crate::redist::intersect_elements;
        let a = stripes(2, 8, 0);
        let b = cyclic(2, 0);
        let inter = intersect_elements(&a, 0, &b, 0).unwrap();
        let proj = Projection::compute(&inter, &a, 0);
        let replay = SegmentReplay::new(&proj);
        for (lo, hi) in [(0u64, 31u64), (3, 9), (5, 5), (7, 3), (100, 200)] {
            let mut got = Vec::new();
            replay.for_each_between(lo, hi, |s| got.push(s));
            assert_eq!(got, proj.segments_between(lo, hi), "[{lo}, {hi}]");
            assert_eq!(replay.bytes_between(lo, hi), proj.bytes_between(lo, hi));
            assert_eq!(replay.fragments_between(lo, hi), proj.fragments_between(lo, hi));
        }
    }

    #[test]
    fn empty_replay_is_empty() {
        let replay = SegmentReplay::new(&Projection::empty());
        assert!(replay.is_empty());
        let mut n = 0;
        replay.for_each_between(0, 100, |_| n += 1);
        assert_eq!(n, 0);
    }
}
