//! `parafile` — the parallel file model, mapping functions and data
//! redistribution algorithm of Isaila & Tichy, *"Mapping Functions and Data
//! Redistribution for Parallel Files"* (IPPS 2002).
//!
//! A parallel file is a linear sequence of bytes described by a
//! *displacement* and a *partitioning pattern*: a union of sets of nested
//! FALLS (see the [`falls`] crate), each set defining one partition element.
//! The same model describes **physical** partitions (subfiles stored on the
//! disks of I/O nodes) and **logical** partitions (views set by compute
//! processes).
//!
//! The crate provides:
//!
//! * [`model`] — [`PartitionPattern`] / [`Partition`] with full validation
//!   (elements tile a contiguous region without overlap);
//! * [`mapping`] — the `MAP`/`MAP⁻¹` mapping functions between file offsets
//!   and partition-element offsets, their *next*/*previous* rounding
//!   variants, and composition between two partitions;
//! * [`redist`] — `CUT-FALLS`, `INTERSECT-FALLS`, the nested-FALLS
//!   intersection algorithm with its PREPROCESS phase, intersection
//!   projections, and a byte-by-byte baseline for comparison;
//! * [`plan`] — redistribution plans: per-element-pair transfer schedules of
//!   maximal contiguous copy runs, applicable to real byte buffers;
//! * [`sg`] — the `GATHER`/`SCATTER` procedures copying between
//!   non-contiguous regions and contiguous buffers;
//! * [`matching`] — quantitative *matching degree* metrics between two
//!   partitions (the paper's §9 future work);
//! * [`ncube`] — nCube-style address-bit-permutation mappings, the related
//!   work our general mapping functions subsume.
//!
//! # Quickstart
//!
//! ```
//! use falls::{Falls, NestedFalls, NestedSet};
//! use parafile::model::{Partition, PartitionPattern};
//! use parafile::mapping::Mapper;
//!
//! // The paper's Figure 3: a file partitioned into three subfiles by the
//! // FALLS (0,1,6,1), (2,3,6,1) and (4,5,6,1); displacement 2.
//! let pattern = PartitionPattern::new(vec![
//!     NestedSet::singleton(NestedFalls::leaf(Falls::new(0, 1, 6, 1).unwrap())),
//!     NestedSet::singleton(NestedFalls::leaf(Falls::new(2, 3, 6, 1).unwrap())),
//!     NestedSet::singleton(NestedFalls::leaf(Falls::new(4, 5, 6, 1).unwrap())),
//! ]).unwrap();
//! let partition = Partition::new(2, pattern);
//!
//! // Byte 10 of the file falls on subfile 1, at subfile offset 2.
//! let mapper = Mapper::new(&partition, 1);
//! assert_eq!(mapper.map(10), Some(2));
//! assert_eq!(mapper.unmap(2), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod mapping;
pub mod matching;
pub mod model;
pub mod ncube;
pub mod plan;
pub mod redist;
pub mod sg;

pub use engine::{
    CompiledPlan, CompiledView, EngineStats, PersistStats, PlanEngine, SegmentReplay,
};
pub use mapping::Mapper;
pub use model::{Partition, PartitionPattern};
pub use plan::RedistributionPlan;
pub use redist::{cut_falls, intersect_falls, Intersection, Projection};

/// Errors produced by the parallel-file model and its algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Underlying FALLS representation error.
    Falls(falls::FallsError),
    /// The partitioning pattern's elements do not tile a contiguous region
    /// `[0, size)` exactly once.
    NonTilingPattern {
        /// Sum of element sizes.
        total: u64,
        /// Extent actually covered (one past the last covered byte), if any.
        covered: u64,
    },
    /// Partition elements overlap.
    OverlappingElements,
    /// A pattern with no elements or zero size.
    EmptyPattern,
    /// An element index out of range.
    NoSuchElement {
        /// Index requested.
        index: usize,
        /// Number of elements in the pattern.
        count: usize,
    },
    /// An offset below the partition displacement was used.
    BelowDisplacement {
        /// Offset requested.
        offset: u64,
        /// The partition displacement.
        displacement: u64,
    },
    /// The aligned period `lcm(SIZE(P₁), SIZE(P₂))` exceeds `u64::MAX`, so
    /// the two patterns cannot be intersected symbolically.
    PeriodOverflow {
        /// First pattern's size.
        size1: u64,
        /// Second pattern's size.
        size2: u64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Falls(e) => write!(f, "FALLS error: {e}"),
            Error::NonTilingPattern { total, covered } => write!(
                f,
                "partitioning pattern does not tile a contiguous region: \
                 element sizes sum to {total} but the union covers [0, {covered})"
            ),
            Error::OverlappingElements => write!(f, "partition elements overlap"),
            Error::EmptyPattern => write!(f, "partitioning pattern has no elements"),
            Error::NoSuchElement { index, count } => {
                write!(f, "partition element {index} out of range (pattern has {count})")
            }
            Error::BelowDisplacement { offset, displacement } => write!(
                f,
                "file offset {offset} lies below the partition displacement {displacement}"
            ),
            Error::PeriodOverflow { size1, size2 } => {
                write!(f, "aligned period lcm({size1}, {size2}) exceeds the 64-bit offset range")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Falls(e) => Some(e),
            _ => None,
        }
    }
}

impl From<falls::FallsError> for Error {
    fn from(e: falls::FallsError) -> Self {
        Error::Falls(e)
    }
}
