//! Redistribution plans: the full transfer schedule between two partitions
//! of the same file.
//!
//! For every pair of partition elements the plan stores the nested-FALLS
//! intersection, both projections, and a list of maximal *copy runs* —
//! stretches that are contiguous in the file, in the source element's linear
//! space, and in the destination element's linear space at once. Runs are
//! computed once per aligned period and replayed for every period, which is
//! exactly how the paper amortizes the view-setting cost over accesses.

use crate::model::Partition;
use crate::redist::{element_window, intersect_elements, Intersection, Projection};
use crate::Error;

/// One maximal copy run within the first aligned window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRun {
    /// File offset of the run relative to the window start.
    pub file_rel: u64,
    /// Source element-linear offset (window 0).
    pub src_off: u64,
    /// Destination element-linear offset (window 0).
    pub dst_off: u64,
    /// Run length in bytes.
    pub len: u64,
}

/// The transfer schedule between one source element and one destination
/// element.
#[derive(Debug, Clone)]
pub struct PairPlan {
    /// Source element index.
    pub src_element: usize,
    /// Destination element index.
    pub dst_element: usize,
    /// The elements' nested-FALLS intersection.
    pub intersection: Intersection,
    /// Intersection projected on the source element's linear space.
    pub src_projection: Projection,
    /// Intersection projected on the destination element's linear space.
    pub dst_projection: Projection,
    /// Copy runs within window 0, ordered by file offset.
    pub runs: Vec<CopyRun>,
    /// Source element-linear bytes per window.
    pub src_period: u64,
    /// Destination element-linear bytes per window.
    pub dst_period: u64,
}

impl PairPlan {
    /// Bytes this pair moves per aligned window.
    #[must_use]
    pub fn bytes_per_period(&self) -> u64 {
        self.runs.iter().map(|r| r.len).sum()
    }
}

/// A complete redistribution plan between two partitions of the same file.
#[derive(Debug, Clone)]
pub struct RedistributionPlan {
    /// Aligned displacement (`max` of the two partitions' displacements).
    pub displacement: u64,
    /// Aligned period (`lcm` of the two pattern sizes).
    pub period: u64,
    /// Non-empty element pairs.
    pub pairs: Vec<PairPlan>,
    src_elements: usize,
    dst_elements: usize,
}

impl RedistributionPlan {
    /// Computes the full plan between `src` and `dst`.
    ///
    /// This is the redistribution analogue of the paper's *view-set* phase:
    /// all intersections, projections and copy runs are computed here, and
    /// [`RedistributionPlan::apply`] only replays precomputed indices.
    pub fn build(src: &Partition, dst: &Partition) -> Result<Self, Error> {
        let mut pairs = Vec::new();
        let mut displacement = src.displacement().max(dst.displacement());
        let mut period = 0;
        for i in 0..src.element_count() {
            for j in 0..dst.element_count() {
                let intersection = intersect_elements(src, i, dst, j)?;
                displacement = intersection.displacement;
                period = intersection.period;
                if intersection.is_empty() {
                    continue;
                }
                let src_projection = Projection::compute(&intersection, src, i);
                let dst_projection = Projection::compute(&intersection, dst, j);
                let runs = build_runs(&intersection, src, i, dst, j);
                pairs.push(PairPlan {
                    src_element: i,
                    dst_element: j,
                    src_period: src_projection.period,
                    dst_period: dst_projection.period,
                    intersection,
                    src_projection,
                    dst_projection,
                    runs,
                });
            }
        }
        Ok(Self {
            displacement,
            period,
            pairs,
            src_elements: src.element_count(),
            dst_elements: dst.element_count(),
        })
    }

    /// Reassembles a plan from its stored parts (the persistent plan
    /// cache's decode path). The parts must come from a plan this build
    /// serialized; the decoder re-validates every FALLS tree on the way
    /// in, so a corrupt image cannot reach here.
    #[must_use]
    pub(crate) fn from_parts(
        displacement: u64,
        period: u64,
        pairs: Vec<PairPlan>,
        src_elements: usize,
        dst_elements: usize,
    ) -> Self {
        Self { displacement, period, pairs, src_elements, dst_elements }
    }

    /// Number of source partition elements the plan expects buffers for.
    #[must_use]
    pub fn src_elements(&self) -> usize {
        self.src_elements
    }

    /// Number of destination partition elements the plan expects buffers for.
    #[must_use]
    pub fn dst_elements(&self) -> usize {
        self.dst_elements
    }

    /// Total bytes moved per aligned period (equals the period when both
    /// partitions share the displacement).
    #[must_use]
    pub fn bytes_per_period(&self) -> u64 {
        self.pairs.iter().map(PairPlan::bytes_per_period).sum()
    }

    /// Total number of copy runs per aligned period — the fragmentation the
    /// matching degree of the two partitions induces.
    #[must_use]
    pub fn runs_per_period(&self) -> usize {
        self.pairs.iter().map(|p| p.runs.len()).sum()
    }

    /// Replays the plan over real buffers, moving every byte of
    /// `[displacement, file_len)`.
    ///
    /// `src_bufs[i]` holds source element `i`'s linear space; `dst_bufs[j]`
    /// receives destination element `j`'s. Each must be at least
    /// [`Partition::element_len`] bytes. Returns the number of bytes copied.
    ///
    /// # Panics
    /// Panics if a buffer is shorter than the offsets the plan touches.
    pub fn apply(&self, src_bufs: &[Vec<u8>], dst_bufs: &mut [Vec<u8>], file_len: u64) -> u64 {
        assert!(src_bufs.len() >= self.src_elements, "missing source buffers");
        assert!(dst_bufs.len() >= self.dst_elements, "missing destination buffers");
        let mut copied = 0u64;
        if file_len <= self.displacement {
            return 0;
        }
        let windows = (file_len - self.displacement).div_ceil(self.period);
        for k in 0..windows {
            // The last window can start near the top of the offset range;
            // checked arithmetic keeps a huge `file_len` from wrapping here.
            let Some(window_base) =
                k.checked_mul(self.period).and_then(|off| self.displacement.checked_add(off))
            else {
                break; // any further window would start past u64::MAX ≥ file_len
            };
            for pair in &self.pairs {
                let src = &src_bufs[pair.src_element];
                let dst = &mut dst_bufs[pair.dst_element];
                for run in &pair.runs {
                    let abs = window_base + run.file_rel;
                    if abs >= file_len {
                        continue;
                    }
                    let len = run.len.min(file_len - abs) as usize;
                    let s = (run.src_off + k * pair.src_period) as usize;
                    let d = (run.dst_off + k * pair.dst_period) as usize;
                    dst[d..d + len].copy_from_slice(&src[s..s + len]);
                    copied += len as u64;
                }
            }
        }
        copied
    }
}

/// Splits the intersection's file segments at every source- and
/// destination-element leaf boundary, producing runs that are affine in all
/// three spaces.
fn build_runs(
    intersection: &Intersection,
    src: &Partition,
    src_element: usize,
    dst: &Partition,
    dst_element: usize,
) -> Vec<CopyRun> {
    let sw = element_window(src, src_element, intersection.displacement, intersection.period);
    let dw = element_window(dst, dst_element, intersection.displacement, intersection.period);
    let mut runs = Vec::new();
    let (mut si, mut di) = (0usize, 0usize);
    for iseg in intersection.set.absolute_segments() {
        let mut pos = iseg.l();
        while pos <= iseg.r() {
            while si < sw.entries.len() && sw.entries[si].0.r() < pos {
                si += 1;
            }
            while di < dw.entries.len() && dw.entries[di].0.r() < pos {
                di += 1;
            }
            let (sseg, soff) = sw.entries.get(si).expect("intersection ⊆ source element");
            let (dseg, doff) = dw.entries.get(di).expect("intersection ⊆ destination element");
            debug_assert!(sseg.l() <= pos && dseg.l() <= pos);
            let end = iseg.r().min(sseg.r()).min(dseg.r());
            runs.push(CopyRun {
                file_rel: pos,
                src_off: soff + (pos - sseg.l()),
                dst_off: doff + (pos - dseg.l()),
                len: end - pos + 1,
            });
            pos = end + 1;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapper;
    use crate::model::PartitionPattern;
    use falls::{Falls, NestedFalls, NestedSet};

    fn stripes(count: u64, width: u64, disp: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(
                        Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                    ))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(disp, pattern)
    }

    fn cyclic(count: u64, disp: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap()))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(disp, pattern)
    }

    /// Fills element buffers so that each element byte holds (a hash of) the
    /// file offset it represents.
    fn fill(p: &Partition, file_len: u64) -> Vec<Vec<u8>> {
        (0..p.element_count())
            .map(|e| {
                let m = Mapper::new(p, e);
                let len = p.element_len(e, file_len).unwrap();
                (0..len).map(|y| (m.unmap(y) * 31 % 251) as u8).collect()
            })
            .collect()
    }

    fn check(p: &Partition, bufs: &[Vec<u8>], file_len: u64, from: u64) {
        for (e, buf) in bufs.iter().enumerate() {
            let m = Mapper::new(p, e);
            for (y, &v) in buf.iter().enumerate() {
                let x = m.unmap(y as u64);
                if x < from || x >= file_len {
                    continue;
                }
                assert_eq!(v, (x * 31 % 251) as u8, "element {e} offset {y} (file {x})");
            }
        }
    }

    #[test]
    fn stripes_to_cyclic_roundtrip() {
        let src = stripes(4, 8, 0);
        let dst = cyclic(4, 0);
        let file_len = 160u64; // 5 aligned periods
        let plan = RedistributionPlan::build(&src, &dst).unwrap();
        assert_eq!(plan.bytes_per_period(), plan.period);
        let src_bufs = fill(&src, file_len);
        let mut dst_bufs: Vec<Vec<u8>> =
            (0..4).map(|e| vec![0u8; dst.element_len(e, file_len).unwrap() as usize]).collect();
        let copied = plan.apply(&src_bufs, &mut dst_bufs, file_len);
        assert_eq!(copied, file_len);
        check(&dst, &dst_bufs, file_len, 0);
    }

    #[test]
    fn partial_tail_window() {
        let src = stripes(2, 4, 0);
        let dst = cyclic(2, 0);
        // file_len not a multiple of the period (8): a clipped tail window.
        let file_len = 13u64;
        let plan = RedistributionPlan::build(&src, &dst).unwrap();
        let src_bufs = fill(&src, file_len);
        let mut dst_bufs: Vec<Vec<u8>> =
            (0..2).map(|e| vec![0u8; dst.element_len(e, file_len).unwrap() as usize]).collect();
        let copied = plan.apply(&src_bufs, &mut dst_bufs, file_len);
        assert_eq!(copied, file_len);
        check(&dst, &dst_bufs, file_len, 0);
    }

    #[test]
    fn identical_partitions_single_run_per_element() {
        let p = stripes(4, 16, 0);
        let plan = RedistributionPlan::build(&p, &p).unwrap();
        assert_eq!(plan.pairs.len(), 4); // only diagonal pairs
        for pair in &plan.pairs {
            assert_eq!(pair.src_element, pair.dst_element);
            assert_eq!(pair.runs.len(), 1);
        }
        assert_eq!(plan.runs_per_period(), 4);
    }

    #[test]
    fn mismatched_partitions_fragment() {
        let plan = RedistributionPlan::build(&stripes(4, 8, 0), &cyclic(4, 0)).unwrap();
        // Every destination byte is its own run: 32 runs per 32-byte period.
        assert_eq!(plan.runs_per_period(), 32);
    }

    #[test]
    fn displacement_skips_prefix() {
        let src = stripes(2, 4, 3);
        let dst = cyclic(2, 3);
        let file_len = 27u64;
        let plan = RedistributionPlan::build(&src, &dst).unwrap();
        assert_eq!(plan.displacement, 3);
        let src_bufs = fill(&src, file_len);
        let mut dst_bufs: Vec<Vec<u8>> =
            (0..2).map(|e| vec![0u8; dst.element_len(e, file_len).unwrap() as usize]).collect();
        let copied = plan.apply(&src_bufs, &mut dst_bufs, file_len);
        assert_eq!(copied, file_len - 3);
        check(&dst, &dst_bufs, file_len, 3);
    }

    #[test]
    fn different_element_counts_and_periods() {
        let src = stripes(3, 5, 0); // period 15
        let dst = cyclic(4, 0); // period 4 → lcm 60
        let file_len = 120u64;
        let plan = RedistributionPlan::build(&src, &dst).unwrap();
        assert_eq!(plan.period, 60);
        let src_bufs = fill(&src, file_len);
        let mut dst_bufs: Vec<Vec<u8>> =
            (0..4).map(|e| vec![0u8; dst.element_len(e, file_len).unwrap() as usize]).collect();
        let copied = plan.apply(&src_bufs, &mut dst_bufs, file_len);
        assert_eq!(copied, file_len);
        check(&dst, &dst_bufs, file_len, 0);
    }

    #[test]
    fn zero_length_file_copies_nothing() {
        let plan = RedistributionPlan::build(&stripes(2, 4, 0), &cyclic(2, 0)).unwrap();
        let src_bufs = vec![Vec::new(), Vec::new()];
        let mut dst_bufs = vec![Vec::new(), Vec::new()];
        assert_eq!(plan.apply(&src_bufs, &mut dst_bufs, 0), 0);
    }
}
