//! Quantitative *matching degree* of two partitions — the paper's §9 future
//! work ("we are interested in finding a quantitative description of the
//! matching degree of two partitions").
//!
//! The metric is built from the redistribution plan between the partitions:
//! the more fragments the pairwise intersections produce per aligned period,
//! the worse the match. A perfect match (identical partitions) scores 1.0;
//! scores approach 0 as redistribution degenerates toward byte-granularity
//! traffic.

use crate::model::Partition;
use crate::plan::RedistributionPlan;
use crate::Error;

/// Matching statistics between two partitions of the same file.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingDegree {
    /// Non-empty (source element, destination element) pairs per period.
    pub active_pairs: usize,
    /// Total copy runs per aligned period.
    pub runs_per_period: usize,
    /// Bytes moved per aligned period.
    pub bytes_per_period: u64,
    /// Mean copy-run length in bytes.
    pub mean_run_len: f64,
    /// Intrinsic fragment count of the destination partition itself (its
    /// elements' segments per aligned period) — the best any source can do.
    pub intrinsic_runs: usize,
    /// `intrinsic_runs / runs_per_period` ∈ (0, 1]; 1.0 means the source
    /// already delivers data in exactly the destination's layout.
    pub degree: f64,
}

impl MatchingDegree {
    /// Computes the matching degree from `src` to `dst`.
    pub fn compute(src: &Partition, dst: &Partition) -> Result<Self, Error> {
        let plan = RedistributionPlan::build(src, dst)?;
        Ok(Self::from_plan(&plan, dst))
    }

    /// Computes the metric from an already-built plan (avoids re-running the
    /// intersections when the caller has one).
    #[must_use]
    pub fn from_plan(plan: &RedistributionPlan, dst: &Partition) -> Self {
        let runs_per_period = plan.runs_per_period().max(1);
        let bytes_per_period = plan.bytes_per_period();
        // Intrinsic fragmentation of the destination: its own elements'
        // segment counts, scaled to the aligned period.
        let psize = dst.pattern().size();
        let tiles = (plan.period / psize).max(1);
        let intrinsic: usize =
            dst.pattern().elements().iter().map(|e| e.absolute_segments().len()).sum::<usize>()
                * tiles as usize;
        let intrinsic = intrinsic.max(1);
        MatchingDegree {
            active_pairs: plan.pairs.len(),
            runs_per_period,
            bytes_per_period,
            mean_run_len: bytes_per_period as f64 / runs_per_period as f64,
            intrinsic_runs: intrinsic,
            degree: (intrinsic as f64 / runs_per_period as f64).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartitionPattern;
    use falls::{Falls, NestedFalls, NestedSet};

    fn stripes(count: u64, width: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(
                        Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                    ))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(0, pattern)
    }

    fn cyclic(count: u64) -> Partition {
        let pattern = PartitionPattern::new(
            (0..count)
                .map(|k| {
                    NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap()))
                })
                .collect(),
        )
        .unwrap();
        Partition::new(0, pattern)
    }

    #[test]
    fn identical_partitions_score_one() {
        let p = stripes(4, 16);
        let m = MatchingDegree::compute(&p, &p).unwrap();
        assert_eq!(m.degree, 1.0);
        assert_eq!(m.runs_per_period, 4);
        assert_eq!(m.active_pairs, 4);
        assert_eq!(m.mean_run_len, 16.0);
    }

    #[test]
    fn worst_case_scores_low() {
        let m = MatchingDegree::compute(&stripes(4, 8), &cyclic(4)).unwrap();
        // 32 single-byte runs against 4 intrinsic fragments (per 4-byte dst
        // pattern, scaled ×8 tiles → 32)... the destination itself is
        // byte-granular here, so compare against a block destination too.
        assert!(m.mean_run_len <= 1.0 + f64::EPSILON);
        let m2 = MatchingDegree::compute(&cyclic(4), &stripes(4, 8)).unwrap();
        assert!(m2.degree < 1.0);
        assert_eq!(m2.bytes_per_period, 32);
    }

    #[test]
    fn degree_orders_partition_pairs() {
        // Halved stripes are a better match for stripes than cyclic is.
        let dst = stripes(4, 8);
        let near = stripes(8, 4);
        let far = cyclic(4);
        let m_near = MatchingDegree::compute(&near, &dst).unwrap();
        let m_far = MatchingDegree::compute(&far, &dst).unwrap();
        assert!(m_near.degree > m_far.degree, "expected {} > {}", m_near.degree, m_far.degree);
    }
}
