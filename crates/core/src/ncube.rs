//! nCube-style mapping functions built from address bit permutations —
//! the related work ([5] in the paper) that our general mapping functions
//! subsume.
//!
//! The nCube parallel I/O system maps between a processor's view of a file
//! and the disks by permuting the bits of the byte address: some bits select
//! the disk, the rest the offset within the disk. The approach is elegant
//! but **only works when every dimension is a power of two**; the paper's
//! FALLS-based mappings are a strict superset. This module implements the
//! bit-permutation scheme so the equivalence (and its limits) can be tested
//! and benchmarked.

use crate::Error;
use falls::{Falls, NestedFalls, NestedSet};

/// A permutation of the low `width` address bits.
///
/// `perm[i] = j` sends source bit `i` to destination bit `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPermutation {
    perm: Vec<u32>,
}

impl BitPermutation {
    /// Builds a permutation; `perm` must be a permutation of `0..perm.len()`.
    pub fn new(perm: Vec<u32>) -> Result<Self, Error> {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            let idx = p as usize;
            if idx >= perm.len() || seen[idx] {
                return Err(Error::Falls(falls::FallsError::UnorderedSiblings));
            }
            seen[idx] = true;
        }
        Ok(Self { perm })
    }

    /// The identity permutation over `width` bits.
    #[must_use]
    pub fn identity(width: u32) -> Self {
        Self { perm: (0..width).collect() }
    }

    /// Number of bits the permutation acts on.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.perm.len() as u32
    }

    /// Applies the permutation to the low bits of `addr`.
    ///
    /// Bits at or above `width` must be zero.
    #[must_use]
    pub fn apply(&self, addr: u64) -> u64 {
        debug_assert!(addr < (1u64 << self.perm.len()), "address exceeds the permuted width");
        let mut out = 0u64;
        for (i, &j) in self.perm.iter().enumerate() {
            out |= ((addr >> i) & 1) << j;
        }
        out
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u32; self.perm.len()];
        for (i, &j) in self.perm.iter().enumerate() {
            inv[j as usize] = i as u32;
        }
        Self { perm: inv }
    }
}

/// An nCube-style disk mapping: the permuted address's top `disk_bits`
/// select the disk, the rest the offset within the disk's subfile.
#[derive(Debug, Clone)]
pub struct NcubeMapping {
    permutation: BitPermutation,
    disk_bits: u32,
}

impl NcubeMapping {
    /// A mapping over `width`-bit file offsets onto `2^disk_bits` disks.
    pub fn new(permutation: BitPermutation, disk_bits: u32) -> Result<Self, Error> {
        if disk_bits > permutation.width() {
            return Err(Error::Falls(falls::FallsError::ZeroCount));
        }
        Ok(Self { permutation, disk_bits })
    }

    /// The classic cyclic layout: the low `disk_bits` of the file offset
    /// select the disk (stripe unit = 1 byte « chosen by `unit_bits` »).
    ///
    /// With `unit_bits = u`, bits `u .. u+disk_bits` select the disk —
    /// a block-cyclic distribution with block `2^u` over `2^disk_bits`
    /// disks.
    pub fn block_cyclic(width: u32, disk_bits: u32, unit_bits: u32) -> Result<Self, Error> {
        if unit_bits + disk_bits > width {
            return Err(Error::Falls(falls::FallsError::ZeroCount));
        }
        // Move bits [unit_bits, unit_bits+disk_bits) to the top; shift the
        // remaining offset bits down.
        let mut perm = vec![0u32; width as usize];
        for i in 0..width {
            perm[i as usize] = if i < unit_bits {
                i
            } else if i < unit_bits + disk_bits {
                width - disk_bits + (i - unit_bits)
            } else {
                i - disk_bits
            };
        }
        Self::new(BitPermutation::new(perm)?, disk_bits)
    }

    /// Number of disks.
    #[must_use]
    pub fn disks(&self) -> u64 {
        1u64 << self.disk_bits
    }

    /// Maps a file offset to `(disk, offset within the disk's subfile)`.
    #[must_use]
    pub fn map(&self, addr: u64) -> (u64, u64) {
        let p = self.permutation.apply(addr);
        let off_bits = self.permutation.width() - self.disk_bits;
        (p >> off_bits, p & ((1u64 << off_bits) - 1))
    }

    /// Inverse mapping: `(disk, offset)` back to the file offset.
    #[must_use]
    pub fn unmap(&self, disk: u64, offset: u64) -> u64 {
        let off_bits = self.permutation.width() - self.disk_bits;
        self.permutation.inverse().apply((disk << off_bits) | offset)
    }

    /// The equivalent FALLS-based partitioning pattern, when the mapping is
    /// block-cyclic (each disk's bytes form a single FALLS). Returns `None`
    /// for permutations whose per-disk sets are not FALLS-expressible as a
    /// single family (our model still expresses them — as sets of FALLS —
    /// but this helper only handles the common stripe layouts).
    #[must_use]
    pub fn as_falls_pattern(&self) -> Option<Vec<NestedSet>> {
        let width = self.permutation.width();
        let total: u64 = 1u64 << width;
        let disks = self.disks();
        let per_disk = total / disks;
        // Detect a block-cyclic layout: disk of addr advances every `unit`
        // bytes, wrapping every `unit * disks`.
        let (d0, _) = self.map(0);
        let mut unit = None;
        for a in 1..total.min(1 << 20) {
            if self.map(a).0 != d0 {
                unit = Some(a);
                break;
            }
        }
        let unit = unit.unwrap_or(total);
        // Verify the layout and build the FALLS.
        let stride = unit * disks;
        let count = per_disk / unit;
        let mut sets = Vec::with_capacity(disks as usize);
        for d in 0..disks {
            let l = ((d + d0 * (disks - 1)) % disks) * unit; // candidate start
                                                             // Find this disk's first byte directly instead of guessing.
            let mut first = None;
            for a in (0..total).step_by(unit as usize) {
                if self.map(a).0 == d {
                    first = Some(a);
                    break;
                }
            }
            let l = first.unwrap_or(l);
            let f = Falls::new(l, l + unit - 1, stride, count).ok()?;
            // Validate against the bit mapping.
            for seg in f.segments().take(4) {
                if self.map(seg.l()).0 != d {
                    return None;
                }
            }
            sets.push(NestedSet::singleton(NestedFalls::leaf(f)));
        }
        Some(sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapper;
    use crate::model::{Partition, PartitionPattern};

    #[test]
    fn permutation_roundtrip() {
        let p = BitPermutation::new(vec![2, 0, 1, 3]).unwrap();
        let inv = p.inverse();
        for a in 0..16u64 {
            assert_eq!(inv.apply(p.apply(a)), a);
        }
    }

    #[test]
    fn invalid_permutation_rejected() {
        assert!(BitPermutation::new(vec![0, 0, 1]).is_err());
        assert!(BitPermutation::new(vec![0, 3]).is_err());
    }

    #[test]
    fn block_cyclic_mapping_shape() {
        // 64-byte file, 4 disks, 4-byte stripe unit.
        let m = NcubeMapping::block_cyclic(6, 2, 2).unwrap();
        assert_eq!(m.disks(), 4);
        assert_eq!(m.map(0), (0, 0));
        assert_eq!(m.map(3), (0, 3));
        assert_eq!(m.map(4), (1, 0));
        assert_eq!(m.map(16), (0, 4));
        for a in 0..64u64 {
            let (d, o) = m.map(a);
            assert_eq!(m.unmap(d, o), a);
        }
    }

    #[test]
    fn ncube_agrees_with_falls_mapping() {
        // The FALLS pattern equivalent to the bit-permutation layout must
        // produce identical (disk, offset) pairs through Mapper.
        let m = NcubeMapping::block_cyclic(6, 2, 2).unwrap();
        let sets = m.as_falls_pattern().expect("block-cyclic is FALLS-expressible");
        let pattern = PartitionPattern::new(sets).unwrap();
        let partition = Partition::new(0, pattern);
        for a in 0..64u64 {
            let (d, o) = m.map(a);
            let mapper = Mapper::new(&partition, d as usize);
            assert_eq!(mapper.map(a), Some(o), "addr {a}");
        }
    }

    #[test]
    fn falls_model_expresses_non_power_of_two() {
        // The superset claim: a 3-disk stripe (impossible for nCube) is
        // trivially a FALLS pattern.
        let sets: Vec<NestedSet> = (0..3)
            .map(|k| {
                NestedSet::singleton(NestedFalls::leaf(
                    Falls::new(5 * k, 5 * k + 4, 15, 1).unwrap(),
                ))
            })
            .collect();
        assert!(PartitionPattern::new(sets).is_ok());
    }
}
