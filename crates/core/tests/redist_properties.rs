//! Property tests for the redistribution machinery (§7): CUT-FALLS,
//! INTERSECT-FALLS, nested intersection, projections and plans.

use falls::testing::{random_falls, random_nested_set, Gen};
use falls::{Falls, NestedSet};
use parafile::model::{Partition, PartitionPattern};
use parafile::plan::RedistributionPlan;
use parafile::redist::{
    cut_falls, intersect_elements, intersect_falls, intersect_falls_merge, intersect_sets,
    Projection,
};
use parafile::{Mapper, PlanEngine};
use proptest::prelude::*;

/// Cap on brute-force byte enumeration. The strategies bound every span,
/// so a family bigger than this means a generator regression; failing fast
/// beats an O(bytes) hang in CI.
const BRUTE_CAP: u64 = 1 << 20;

/// `offsets().collect()` with the [`BRUTE_CAP`] guard.
fn enumerate(f: &Falls) -> Vec<u64> {
    assert!(f.size() <= BRUTE_CAP, "FALLS of {} bytes exceeds the brute-force cap", f.size());
    f.offsets().collect()
}

fn falls_bytes(fs: &[Falls]) -> Vec<u64> {
    let mut v: Vec<u64> = fs.iter().flat_map(enumerate).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn arb_falls() -> impl Strategy<Value = Falls> {
    any::<u64>().prop_map(|seed| random_falls(&mut Gen::new(seed), 256))
}

fn arb_set(span: u64) -> impl Strategy<Value = NestedSet> {
    any::<u64>().prop_map(move |seed| random_nested_set(&mut Gen::new(seed), span, 3))
}

fn arb_partition_at(span: u64, disp: std::ops::Range<u64>) -> impl Strategy<Value = Partition> {
    (any::<u64>(), disp).prop_filter_map("degenerate", move |(seed, disp)| {
        let set = random_nested_set(&mut Gen::new(seed), span, 3);
        let comp = set.complement(span);
        let sets: Vec<NestedSet> = [set, comp].into_iter().filter(|s| !s.is_empty()).collect();
        PartitionPattern::new(sets).ok().map(|p| Partition::new(disp, p))
    })
}

fn arb_partition(span: u64) -> impl Strategy<Value = Partition> {
    arb_partition_at(span, 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// CUT-FALLS = clip to [a,b] then rebase to a, for arbitrary families
    /// and limits.
    #[test]
    fn cut_is_clip_and_shift(f in arb_falls(), a in 0u64..300, len in 0u64..300) {
        let b = a + len;
        let want: Vec<u64> =
            enumerate(&f).into_iter().filter(|&x| a <= x && x <= b).map(|x| x - a).collect();
        prop_assert_eq!(falls_bytes(&cut_falls(&f, a, b)), want);
    }

    /// Cutting to the full extent is a pure rebase.
    #[test]
    fn cut_full_extent_rebases(f in arb_falls()) {
        let cut = cut_falls(&f, f.l(), f.extent_end());
        let want: Vec<u64> = enumerate(&f).into_iter().map(|x| x - f.l()).collect();
        prop_assert_eq!(falls_bytes(&cut), want);
    }

    /// INTERSECT-FALLS (periodic) equals the merge reference equals brute
    /// force set intersection.
    #[test]
    fn flat_intersection_correct(f1 in arb_falls(), f2 in arb_falls()) {
        let fast = falls_bytes(&intersect_falls(&f1, &f2));
        let slow = falls_bytes(&intersect_falls_merge(&f1, &f2));
        prop_assert_eq!(&fast, &slow);
        let s2: std::collections::HashSet<u64> = enumerate(&f2).into_iter().collect();
        let brute: Vec<u64> = enumerate(&f1).into_iter().filter(|x| s2.contains(x)).collect();
        prop_assert_eq!(fast, brute);
    }

    /// Flat intersection is commutative (as a byte set) and idempotent.
    #[test]
    fn flat_intersection_algebra(f1 in arb_falls(), f2 in arb_falls()) {
        prop_assert_eq!(
            falls_bytes(&intersect_falls(&f1, &f2)),
            falls_bytes(&intersect_falls(&f2, &f1))
        );
        prop_assert_eq!(
            falls_bytes(&intersect_falls(&f1, &f1)),
            enumerate(&f1)
        );
    }

    /// Nested intersection equals set intersection of the flattened offsets,
    /// commutes, and its size never exceeds either operand.
    #[test]
    fn nested_intersection_correct(a in arb_set(128), b in arb_set(128)) {
        let i = intersect_sets(&a, 128, &b, 128);
        let sb: std::collections::HashSet<u64> = b.absolute_offsets().into_iter().collect();
        let want: Vec<u64> =
            a.absolute_offsets().into_iter().filter(|x| sb.contains(x)).collect();
        prop_assert_eq!(i.absolute_offsets(), want);
        let j = intersect_sets(&b, 128, &a, 128);
        prop_assert_eq!(i.absolute_offsets(), j.absolute_offsets());
        prop_assert!(i.size() <= a.size().min(b.size()));
        // Intersecting with itself is the identity on bytes.
        let selfi = intersect_sets(&a, 128, &a, 128);
        prop_assert_eq!(selfi.absolute_offsets(), a.absolute_offsets());
    }

    /// Projections are bijective images: size matches the intersection, and
    /// every projected offset unmaps (through the element) to an
    /// intersection byte.
    #[test]
    fn projections_are_faithful(a in arb_partition(64), b in arb_partition(48)) {
        let inter = intersect_elements(&a, 0, &b, 0).unwrap();
        let proj_a = Projection::compute(&inter, &a, 0);
        prop_assert_eq!(proj_a.bytes_per_period(), inter.bytes_per_period());
        if inter.is_empty() {
            return Ok(());
        }
        let ma = Mapper::new(&a, 0);
        let inter_bytes: std::collections::HashSet<u64> = inter
            .set
            .absolute_offsets()
            .iter()
            .map(|x| x + inter.displacement)
            .collect();
        for pos in proj_a.set.absolute_offsets() {
            let file_byte = ma.unmap(pos);
            prop_assert!(
                inter_bytes.contains(&file_byte),
                "projected offset {} → file byte {} not in the intersection",
                pos,
                file_byte
            );
        }
    }

    /// The all-pairs intersection of two partitions tiles the aligned
    /// period exactly: sizes sum to the period, pieces are disjoint.
    #[test]
    fn pairwise_intersections_tile(a in arb_partition(36), b in arb_partition(24)) {
        let mut total = 0u64;
        let mut seen = std::collections::HashSet::new();
        let mut period = 0;
        for i in 0..a.element_count() {
            for j in 0..b.element_count() {
                let inter = intersect_elements(&a, i, &b, j).unwrap();
                period = inter.period;
                total += inter.bytes_per_period();
                for x in inter.set.absolute_offsets() {
                    prop_assert!(seen.insert(x), "byte {} in two pairs", x);
                }
            }
        }
        prop_assert_eq!(total, period);
    }

    /// Plans move every byte exactly once: runs are disjoint in file, source
    /// and destination spaces, and cover the whole period.
    #[test]
    fn plan_runs_partition_all_three_spaces(
        a in arb_partition_at(40, 0..1),
        b in arb_partition_at(30, 0..1),
    ) {
        let plan = RedistributionPlan::build(&a, &b).unwrap();
        prop_assert_eq!(plan.bytes_per_period(), plan.period);
        let mut file_seen = std::collections::HashSet::new();
        for pair in &plan.pairs {
            let mut src_seen = std::collections::HashSet::new();
            let mut dst_seen = std::collections::HashSet::new();
            for run in &pair.runs {
                for k in 0..run.len {
                    prop_assert!(file_seen.insert(run.file_rel + k), "file byte dup");
                    prop_assert!(src_seen.insert(run.src_off + k), "src offset dup");
                    prop_assert!(dst_seen.insert(run.dst_off + k), "dst offset dup");
                }
            }
        }
        prop_assert_eq!(file_seen.len() as u64, plan.period);
    }

    /// A cache-hit replay is byte-identical to a freshly built plan: the
    /// engine's cached `CompiledPlan` must move exactly the bytes that both
    /// a cold engine compile and the symbolic plan move.
    #[test]
    fn cache_hit_replay_matches_fresh_plan(
        a in arb_partition_at(40, 0..1),
        b in arb_partition_at(30, 0..1),
    ) {
        let engine = PlanEngine::new();
        let cold = engine.compile_redist(&a, &b).unwrap();
        let warm = engine.compile_redist(&a, &b).unwrap();
        prop_assert!(
            std::sync::Arc::ptr_eq(&cold, &warm),
            "second compile of the same pair must hit the cache"
        );
        prop_assert!(engine.stats().redists.hits >= 1);

        let fresh = RedistributionPlan::build(&a, &b).unwrap();
        let file_len = 3 * warm.period() + 7;
        let bufs = |p: &Partition, fill: bool| -> Vec<Vec<u8>> {
            (0..p.element_count())
                .map(|e| {
                    let len = p.element_len(e, file_len).unwrap() as usize;
                    if fill {
                        let m = Mapper::new(p, e);
                        (0..len as u64).map(|y| (m.unmap(y) * 31 % 251) as u8).collect()
                    } else {
                        vec![0u8; len]
                    }
                })
                .collect()
        };
        let src_bufs = bufs(&a, true);
        let mut want = bufs(&b, false);
        let mut cached = bufs(&b, false);
        let n_want = fresh.apply(&src_bufs, &mut want, file_len);
        let n_cached = warm.apply(&src_bufs, &mut cached, file_len);
        prop_assert_eq!(n_want, n_cached);
        prop_assert_eq!(&want, &cached);

        // And through the parallel path, from a second engine's cold entry.
        let cold2 = PlanEngine::new().compile_redist(&a, &b).unwrap();
        let mut par = bufs(&b, false);
        let n_par = cold2.apply_parallel(&src_bufs, &mut par, file_len);
        prop_assert_eq!(n_want, n_par);
        prop_assert_eq!(&want, &par);
    }
}

/// Regression: with interleaved sibling families and mismatched
/// displacements, a projection's window-0 offsets can span more than one
/// period; `segments_between` must still return globally sorted, disjoint
/// segments (found by an adversarial review probe).
#[test]
fn projection_segments_between_sorted_across_windows() {
    use falls::{Falls, NestedFalls, NestedSet};

    fn interleaved(span: u64, g: &mut Gen) -> Option<NestedSet> {
        // Two families whose blocks interleave across the span.
        let w = g.range(1, 3);
        let stride = 2 * w + g.range(0, 2);
        if stride > span {
            return None;
        }
        let n = (span - w) / stride + 1;
        let f1 = Falls::new(0, w - 1, stride, n).ok()?;
        let off = w + g.range(0, 1);
        if off + w > stride || off + (n - 1) * stride + w > span {
            return None;
        }
        let f2 = Falls::new(off, off + w - 1, stride, n).ok()?;
        NestedSet::new(vec![NestedFalls::leaf(f1), NestedFalls::leaf(f2)]).ok()
    }

    let mut g = Gen::new(0xD15C);
    let mut exercised = 0;
    for _ in 0..800 {
        let span1 = g.range(6, 28);
        let span2 = g.range(6, 28);
        let (d1, d2) = (g.below(11), g.below(11));
        let (Some(s1), Some(s2)) = (interleaved(span1, &mut g), interleaved(span2, &mut g)) else {
            continue;
        };
        let mk = |set: &NestedSet, span: u64, d: u64| -> Option<Partition> {
            let comp = set.complement(span);
            let sets: Vec<NestedSet> =
                [set.clone(), comp].into_iter().filter(|s| !s.is_empty()).collect();
            PartitionPattern::new(sets).ok().map(|p| Partition::new(d, p))
        };
        let (Some(pa), Some(pb)) = (mk(&s1, span1, d1), mk(&s2, span2, d2)) else {
            continue;
        };
        let inter = intersect_elements(&pa, 0, &pb, 0).unwrap();
        if inter.is_empty() {
            continue;
        }
        exercised += 1;
        for (p, e) in [(&pa, 0usize), (&pb, 0usize)] {
            let proj = Projection::compute(&inter, p, e);
            let lo = g.below(3 * proj.period.max(1));
            let hi = lo + g.below(3 * proj.period.max(1) + 1);
            let segs = proj.segments_between(lo, hi);
            for w in segs.windows(2) {
                assert!(
                    w[0].r() < w[1].l(),
                    "unsorted/overlapping projection segments: {segs:?} (set {}, period {})",
                    proj.set,
                    proj.period
                );
            }
        }
    }
    assert!(exercised > 50, "generator must exercise the scenario ({exercised})");
}
