//! The persistent plan-cache tier: warm starts, corruption fall-back, and
//! cross-process fingerprint stability (ISSUE 10).

use falls::{Falls, NestedFalls, NestedSet};
use parafile::model::{Partition, PartitionPattern};
use parafile::PlanEngine;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Env marker that switches the re-executed test binary into child mode.
const CHILD_ENV: &str = "PF_PERSIST_CACHE_CHILD";

fn stripes(count: u64, width: u64, disp: u64) -> Partition {
    let pattern = PartitionPattern::new(
        (0..count)
            .map(|k| {
                NestedSet::singleton(NestedFalls::leaf(
                    Falls::new(k * width, (k + 1) * width - 1, count * width, 1).unwrap(),
                ))
            })
            .collect(),
    )
    .unwrap();
    Partition::new(disp, pattern)
}

fn cyclic(count: u64) -> Partition {
    let pattern = PartitionPattern::new(
        (0..count)
            .map(|k| NestedSet::singleton(NestedFalls::leaf(Falls::new(k, k, count, 1).unwrap())))
            .collect(),
    )
    .unwrap();
    Partition::new(0, pattern)
}

/// A unique cache-file path under the system temp dir.
fn cache_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pf_plan_cache_{}_{tag}_{n}.bin", std::process::id()))
}

/// Deletes the cache file (and any leftover temp sibling), best effort.
fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(path.with_extension(format!("tmp.{}", std::process::id())));
}

/// A stable digest of the engine's replayed run tables for one workload:
/// every copy run of the redistribution plan plus every view-side
/// projection segment, FNV-1a folded. Two engines that replay
/// byte-identical tables produce the same digest.
fn workload_digest(engine: &PlanEngine) -> u64 {
    let src = stripes(4, 8, 0);
    let dst = cyclic(4);
    let view = stripes(4, 8, 0);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    let redist = engine.compile_redist(&src, &dst).expect("compile redist");
    fold(redist.displacement());
    fold(redist.period());
    for pair in redist.plan().pairs.iter() {
        fold(pair.src_element as u64);
        fold(pair.dst_element as u64);
        fold(pair.src_period);
        fold(pair.dst_period);
        for run in &pair.runs {
            fold(run.file_rel);
            fold(run.src_off);
            fold(run.dst_off);
            fold(run.len);
        }
    }
    let compiled = engine.compile_view(&view, 1, &dst).expect("compile view");
    for access in compiled.per_subfile() {
        fold(access.proj_view.period);
        fold(access.proj_sub.period);
        for seg in access.proj_sub.set.families().iter().flat_map(|f| f.absolute_segments()) {
            fold(seg.l());
            fold(seg.r());
        }
    }
    h
}

#[test]
fn warm_restart_hits_the_persisted_tier_with_identical_tables() {
    let path = cache_path("warm");
    // "Process 1": cold compiles, feeding the disk tier.
    let cold_digest = {
        let engine = PlanEngine::with_persist(path.clone());
        let digest = workload_digest(&engine);
        let stats = engine.persist_stats().expect("persist tier configured");
        assert_eq!(stats.hits, 0, "first run must be cold");
        assert_eq!(stats.misses, 2, "both compiles fell through to cold");
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes > 0);
        digest
    };
    // "Process 2": a fresh engine (empty LRU) over the same file.
    let engine = PlanEngine::with_persist(path.clone());
    let warm_digest = workload_digest(&engine);
    let stats = engine.persist_stats().expect("persist tier configured");
    assert_eq!(stats.hits, 2, "both compiles answered from disk: {stats:?}");
    assert_eq!(stats.load_failures, 0);
    assert_eq!(warm_digest, cold_digest, "replayed run tables must be byte-identical");
    cleanup(&path);
}

#[test]
fn truncated_cache_file_degrades_to_cold_with_a_counter_bump() {
    let path = cache_path("trunc");
    let clean = {
        let engine = PlanEngine::with_persist(path.clone());
        workload_digest(&engine)
    };
    let image = std::fs::read(&path).expect("cache file written");
    for cut in [0, 3, image.len() / 2, image.len() - 1] {
        std::fs::write(&path, &image[..cut]).expect("truncate");
        let engine = PlanEngine::with_persist(path.clone());
        let stats = engine.persist_stats().expect("persist tier configured");
        assert_eq!(stats.load_failures, 1, "cut at {cut} must count one load failure");
        assert_eq!(stats.entries, 0, "nothing salvaged from a torn image");
        // Compiles still work — cold — and reproduce the same tables.
        assert_eq!(workload_digest(&engine), clean, "cut at {cut}");
        assert_eq!(engine.persist_stats().unwrap().misses, 2);
    }
    cleanup(&path);
}

#[test]
fn bit_flipped_cache_file_is_rejected_by_the_checksum() {
    let path = cache_path("flip");
    let clean = {
        let engine = PlanEngine::with_persist(path.clone());
        workload_digest(&engine)
    };
    let image = std::fs::read(&path).expect("cache file written");
    // Flip one bit in every region: header, checksum, payload head, tail.
    for pos in [5, 17, 25, image.len() - 1] {
        let mut corrupt = image.clone();
        corrupt[pos] ^= 0x10;
        std::fs::write(&path, &corrupt).expect("corrupt");
        let engine = PlanEngine::with_persist(path.clone());
        let stats = engine.persist_stats().expect("persist tier configured");
        assert_eq!(stats.load_failures, 1, "flip at {pos} must count one load failure");
        assert_eq!(workload_digest(&engine), clean, "flip at {pos}");
    }
    cleanup(&path);
}

#[test]
fn version_mismatched_cache_file_is_stale_not_fatal() {
    let path = cache_path("ver");
    let clean = {
        let engine = PlanEngine::with_persist(path.clone());
        workload_digest(&engine)
    };
    let mut image = std::fs::read(&path).expect("cache file written");
    image[4] = image[4].wrapping_add(1); // format field, little-endian low byte
    std::fs::write(&path, &image).expect("stale");
    let engine = PlanEngine::with_persist(path.clone());
    let stats = engine.persist_stats().expect("persist tier configured");
    assert_eq!(stats.load_failures, 1);
    assert_eq!(stats.entries, 0);
    assert_eq!(workload_digest(&engine), clean);
    // The cold compiles re-persisted a current-format image: a third
    // engine starts warm again.
    let engine = PlanEngine::with_persist(path.clone());
    assert_eq!(workload_digest(&engine), clean);
    assert_eq!(engine.persist_stats().unwrap().hits, 2);
    cleanup(&path);
}

#[test]
fn purge_drops_the_disk_tier() {
    let path = cache_path("purge");
    let engine = PlanEngine::with_persist(path.clone());
    let _ = workload_digest(&engine);
    assert!(path.exists());
    engine.purge_persist().expect("purge");
    assert!(!path.exists(), "purge removes the backing file");
    assert_eq!(engine.persist_stats().unwrap().entries, 0);
    cleanup(&path);
}

/// Child half of the cross-process test: compiled in the same binary,
/// activated only when the parent re-executes it with [`CHILD_ENV`] set.
#[test]
fn persist_cache_cross_process_child() {
    let Some(path) = std::env::var_os(CHILD_ENV) else { return };
    let engine = PlanEngine::with_persist(PathBuf::from(path));
    let digest = workload_digest(&engine);
    let stats = engine.persist_stats().expect("persist tier configured");
    // The parent's compiles must be fingerprint hits over here.
    assert_eq!(stats.hits, 2, "child must start warm: {stats:?}");
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.load_failures, 0);
    println!("PERSIST_CHILD_OK digest={digest:016x}");
}

#[test]
fn cross_process_fingerprints_are_stable() {
    let path = cache_path("xproc");
    let parent_digest = {
        let engine = PlanEngine::with_persist(path.clone());
        workload_digest(&engine)
    };
    let out = std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .args(["persist_cache_cross_process_child", "--exact", "--nocapture"])
        .env(CHILD_ENV, &path)
        .output()
        .expect("spawn child test process");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child failed:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // libtest may glue its own "test ... " progress text onto the same
    // line, so match the marker as a substring, not a line prefix.
    let digest_hex = stdout
        .split("PERSIST_CHILD_OK digest=")
        .nth(1)
        .map(|rest| rest.split_whitespace().next().unwrap_or(""))
        .unwrap_or_else(|| panic!("child digest line missing in stdout:\n{stdout}"));
    assert_eq!(
        u64::from_str_radix(digest_hex, 16).expect("hex digest"),
        parent_digest,
        "replayed run tables must be byte-identical across processes"
    );
    cleanup(&path);
}
