//! Property tests for the mapping functions (§6): the algebraic laws MAP and
//! MAP⁻¹ must satisfy for arbitrary valid partitions.

use falls::testing::{random_nested_set, Gen};
use falls::NestedSet;
use parafile::mapping::{map_between, Mapper};
use parafile::model::{Partition, PartitionPattern};
use proptest::prelude::*;

/// A random valid partition: a random element plus its complement, at a
/// random displacement.
fn arb_partition(span: u64) -> impl Strategy<Value = Partition> {
    (any::<u64>(), 0u64..32).prop_filter_map("degenerate", move |(seed, disp)| {
        let set = random_nested_set(&mut Gen::new(seed), span, 3);
        let comp = set.complement(span);
        let sets: Vec<NestedSet> = [set, comp].into_iter().filter(|s| !s.is_empty()).collect();
        PartitionPattern::new(sets).ok().map(|p| Partition::new(disp, p))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// MAP⁻¹(MAP(x)) = x on every selected byte; MAP(MAP⁻¹(y)) = y on every
    /// element offset — §6.2's stated inverse property.
    #[test]
    fn map_unmap_inverse(p in arb_partition(64), tiles in 1u64..4) {
        for e in 0..p.element_count() {
            let m = Mapper::new(&p, e);
            let limit = p.displacement() + p.pattern().size() * tiles;
            for x in p.displacement()..limit {
                if let Some(y) = m.map(x) {
                    prop_assert_eq!(m.unmap(y), x, "element {} byte {}", e, x);
                }
            }
            let esize = m.element_size() * tiles;
            for y in 0..esize {
                let x = m.unmap(y);
                prop_assert_eq!(m.map(x), Some(y), "element {} offset {}", e, y);
            }
        }
    }

    /// Every byte at/past the displacement belongs to exactly one element,
    /// and owner_of agrees with the mappers.
    #[test]
    fn exclusive_ownership(p in arb_partition(48)) {
        let end = p.displacement() + 2 * p.pattern().size();
        for x in p.displacement()..end {
            let owners: Vec<usize> =
                (0..p.element_count()).filter(|&e| Mapper::new(&p, e).selects(x)).collect();
            prop_assert_eq!(owners.len(), 1, "byte {}", x);
            prop_assert_eq!(p.owner_of(x), Some(owners[0]));
        }
    }

    /// next_selected is the smallest selected byte ≥ x; prev_selected the
    /// largest ≤ x; both are fixed points on selected bytes.
    #[test]
    fn next_prev_laws(p in arb_partition(40), e_pick in any::<u32>()) {
        let e = e_pick as usize % p.element_count();
        let m = Mapper::new(&p, e);
        let end = p.displacement() + 2 * p.pattern().size();
        for x in 0..end {
            let next = m.next_selected(x);
            prop_assert!(next >= x.max(p.displacement()));
            prop_assert!(m.selects(next));
            // Nothing selected in (x, next).
            for z in x.max(p.displacement())..next {
                prop_assert!(!m.selects(z), "x={} z={} next={}", x, z, next);
            }
            if let Some(prev) = m.prev_selected(x) {
                prop_assert!(prev <= x);
                prop_assert!(m.selects(prev));
                for z in (prev + 1)..=x {
                    prop_assert!(!m.selects(z), "x={} z={} prev={}", x, z, prev);
                }
            } else {
                for z in p.displacement()..=x.min(end) {
                    prop_assert!(!m.selects(z), "no prev but {} selected", z);
                }
            }
            if m.selects(x) {
                prop_assert_eq!(m.next_selected(x), x);
                prop_assert_eq!(m.prev_selected(x), Some(x));
            }
        }
    }

    /// MAP is strictly increasing over an element's selected bytes when the
    /// element's families don't interleave (tree order = byte order) — true
    /// for complement-built partitions whose sets are compressed leaf runs.
    #[test]
    fn map_monotonic_on_leaf_sets(p in arb_partition(56)) {
        for e in 0..p.element_count() {
            let set = p.pattern().element(e).unwrap();
            // Only check when tree order equals sorted order.
            if set.tree_segments() != set.absolute_segments() {
                continue;
            }
            let m = Mapper::new(&p, e);
            let end = p.displacement() + 2 * p.pattern().size();
            let mut last = None;
            for x in p.displacement()..end {
                if let Some(y) = m.map(x) {
                    if let Some(prev) = last {
                        prop_assert!(y > prev, "byte {}: {} !> {}", x, y, prev);
                    }
                    last = Some(y);
                }
            }
        }
    }

    /// Composition: mapping an element onto itself is the identity, and
    /// mapping between two partitions agrees with the owner's offsets.
    #[test]
    fn composition_laws(a in arb_partition(36), b in arb_partition(27)) {
        let ma = Mapper::new(&a, 0);
        for y in 0..ma.element_size() * 2 {
            prop_assert_eq!(map_between(&ma, &ma, y), Some(y));
        }
        // Cross-partition: if defined, the result round-trips.
        for e in 0..b.element_count() {
            let mb = Mapper::new(&b, e);
            for y in 0..ma.element_size() * 2 {
                if let Some(z) = map_between(&ma, &mb, y) {
                    prop_assert_eq!(map_between(&mb, &ma, z), Some(y));
                }
            }
        }
    }

    /// element_len sums to the file length (minus the pre-displacement
    /// prefix) and matches the mapper's unmap range.
    #[test]
    fn element_len_partitions_file(p in arb_partition(44), file_len in 1u64..300) {
        let total: u64 = (0..p.element_count())
            .map(|e| p.element_len(e, file_len).unwrap())
            .sum();
        prop_assert_eq!(total, file_len.saturating_sub(p.displacement()));
        for e in 0..p.element_count() {
            let m = Mapper::new(&p, e);
            let len = p.element_len(e, file_len).unwrap();
            if len > 0 {
                prop_assert!(m.unmap(len - 1) < file_len);
            }
            prop_assert!(m.unmap(len) >= file_len);
        }
    }
}
