//! ASCII rendering of FALLS structures, reproducing the style of the paper's
//! Figures 1–4: a byte ruler with selected bytes marked.

use crate::{Falls, NestedSet, Offset};
use std::fmt::Write as _;

/// Renders a byte-index ruler `0 1 2 …` up to `len − 1`, each index padded
/// to the same width.
#[must_use]
pub fn render_ruler(len: u64) -> String {
    let width = cell_width(len);
    let mut out = String::new();
    for i in 0..len {
        let _ = write!(out, "{i:>width$} ");
    }
    out.trim_end().to_string()
}

fn cell_width(len: u64) -> usize {
    len.saturating_sub(1).max(1).to_string().len().max(2)
}

fn render_marks<F: Fn(Offset) -> bool>(len: u64, selected: F, mark: char) -> String {
    let width = cell_width(len);
    let mut out = String::new();
    for i in 0..len {
        let c = if selected(i) { mark } else { '.' };
        let cell: String = std::iter::repeat_n(c, width).collect();
        let _ = write!(out, "{cell} ");
    }
    out.trim_end().to_string()
}

/// Renders a single FALLS over a `len`-byte region: ruler plus a mark line,
/// e.g. Figure 1's `(3,5,6,5)` over 32 bytes.
#[must_use]
pub fn render_falls(falls: &Falls, len: u64) -> String {
    format!("{}\n{}", render_ruler(len), render_marks(len, |i| falls.contains(i), '#'))
}

/// Renders every partition element of `sets` over a `len`-byte region, one
/// mark line per element, labeled by its index — the style of Figure 3's
/// subfile diagram.
#[must_use]
pub fn render_nested_set(sets: &[NestedSet], len: u64) -> String {
    let mut out = render_ruler(len);
    for (idx, set) in sets.iter().enumerate() {
        let marks = render_marks(len, |i| set.contains(i), char::from(b'0' + (idx % 10) as u8));
        let _ = write!(out, "\n{marks}  <- element {idx}: {set}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Falls, NestedFalls, NestedSet};

    #[test]
    fn ruler_has_len_cells() {
        let r = render_ruler(8);
        assert_eq!(r.split_whitespace().count(), 8);
        assert!(r.starts_with(" 0"));
        assert!(r.ends_with('7'));
    }

    #[test]
    fn falls_marks_match_contains() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        let s = render_falls(&f, 32);
        let mark_line = s.lines().nth(1).unwrap();
        let cells: Vec<&str> = mark_line.split_whitespace().collect();
        assert_eq!(cells.len(), 32);
        for (i, cell) in cells.iter().enumerate() {
            let marked = cell.contains('#');
            assert_eq!(marked, f.contains(i as u64), "byte {i}");
        }
    }

    #[test]
    fn set_render_labels_elements() {
        let s0 = NestedSet::singleton(NestedFalls::leaf(Falls::new(0, 1, 6, 1).unwrap()));
        let s1 = NestedSet::singleton(NestedFalls::leaf(Falls::new(2, 3, 6, 1).unwrap()));
        let out = render_nested_set(&[s0, s1], 6);
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("element 0"));
        assert!(out.contains("element 1"));
    }
}
