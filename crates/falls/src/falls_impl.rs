use crate::{FallsError, LineSegment, Offset};
use std::fmt;

/// A FAmily of Line Segments: `n` equally sized, equally spaced line
/// segments. Segment `i` (for `i ∈ 0..n`) covers bytes
/// `[l + i·s, r + i·s]`.
///
/// `(l, r)` bound the first segment, `s` is the *stride* between the left
/// indices of consecutive segments and `n` the segment count. The bytes
/// between `l` and `r` form the FALLS's *block*.
///
/// Invariants enforced at construction:
/// * `l ≤ r`;
/// * `n ≥ 1`;
/// * if `n > 1` then `s ≥ r − l + 1` (segments don't overlap) — the paper's
///   figures always satisfy this, and the mapping functions rely on it;
/// * a single-segment family is normalized to stride `r − l + 1`, matching
///   the paper's convention that a line segment `(l, r)` is the FALLS
///   `(l, r, r − l + 1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Falls {
    l: Offset,
    r: Offset,
    s: u64,
    n: u64,
}

impl Falls {
    /// Creates a FALLS `(l, r, s, n)`, validating the invariants above.
    pub fn new(l: Offset, r: Offset, s: u64, n: u64) -> Result<Self, FallsError> {
        if l > r {
            return Err(FallsError::InvertedSegment { l, r });
        }
        if n == 0 {
            return Err(FallsError::ZeroCount);
        }
        let block_len = r - l + 1;
        if n == 1 {
            // Normalize: stride is meaningless for a single segment.
            return Ok(Self { l, r, s: block_len, n: 1 });
        }
        if s == 0 {
            return Err(FallsError::ZeroStride);
        }
        if s < block_len {
            return Err(FallsError::OverlappingBlocks { block_len, stride: s });
        }
        // The extent must be representable.
        l.checked_add((n - 1).checked_mul(s).ok_or(FallsError::Overflow)?)
            .and_then(|x| x.checked_add(block_len - 1))
            .ok_or(FallsError::Overflow)?;
        Ok(Self { l, r, s, n })
    }

    /// FALLS representation of a single line segment, `(l, r, r−l+1, 1)`.
    pub fn from_segment(seg: LineSegment) -> Self {
        Self { l: seg.l(), r: seg.r(), s: seg.len(), n: 1 }
    }

    /// Left index of the first segment.
    #[inline]
    #[must_use]
    pub fn l(&self) -> Offset {
        self.l
    }

    /// Right index of the first segment.
    #[inline]
    #[must_use]
    pub fn r(&self) -> Offset {
        self.r
    }

    /// Stride between consecutive segments.
    #[inline]
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.s
    }

    /// Number of segments in the family.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Bytes per segment (`r − l + 1`).
    #[inline]
    #[must_use]
    pub fn block_len(&self) -> u64 {
        self.r - self.l + 1
    }

    /// Total number of bytes covered: `n · block_len`.
    #[inline]
    #[must_use]
    pub fn size(&self) -> u64 {
        self.n * self.block_len()
    }

    /// Last byte index covered by the family: `r + (n−1)·s`.
    #[inline]
    #[must_use]
    pub fn extent_end(&self) -> Offset {
        self.r + (self.n - 1) * self.s
    }

    /// The `i`-th segment of the family, if `i < n`.
    #[must_use]
    pub fn segment(&self, i: u64) -> Option<LineSegment> {
        (i < self.n).then(|| {
            LineSegment::new(self.l + i * self.s, self.r + i * self.s)
                .expect("family segment is well-formed by construction")
        })
    }

    /// Iterator over all segments of the family, in increasing order.
    #[must_use]
    pub fn segments(&self) -> FallsSegments {
        FallsSegments { falls: *self, next: 0 }
    }

    /// Whether absolute byte `x` belongs to the family.
    #[must_use]
    pub fn contains(&self, x: Offset) -> bool {
        if x < self.l || x > self.extent_end() {
            return false;
        }
        let rel = x - self.l;
        rel % self.s <= self.r - self.l
    }

    /// Index of the segment whose *span* (segment plus the gap that follows
    /// it) contains relative offset `rel = x − l`; `None` past the extent.
    #[must_use]
    pub fn repetition_of(&self, x: Offset) -> Option<u64> {
        if x < self.l {
            return None;
        }
        let rep = (x - self.l) / self.s;
        (rep < self.n).then_some(rep)
    }

    /// Iterator over every byte offset covered by the family.
    pub fn offsets(&self) -> impl Iterator<Item = Offset> + '_ {
        self.segments().flat_map(|seg| seg.l()..=seg.r())
    }

    /// Returns a copy shifted up by `delta` bytes.
    #[must_use]
    pub fn shift_up(&self, delta: Offset) -> Option<Falls> {
        let l = self.l.checked_add(delta)?;
        let r = self.r.checked_add(delta)?;
        r.checked_add((self.n - 1) * self.s)?;
        Some(Falls { l, r, s: self.s, n: self.n })
    }

    /// Returns a copy shifted down by `delta` bytes (fails below zero).
    #[must_use]
    pub fn shift_down(&self, delta: Offset) -> Option<Falls> {
        if self.l < delta {
            return None;
        }
        Some(Falls { l: self.l - delta, r: self.r - delta, s: self.s, n: self.n })
    }

    /// Returns a copy with count replaced by `n` (validated).
    pub fn with_count(&self, n: u64) -> Result<Falls, FallsError> {
        Falls::new(self.l, self.r, self.s, n)
    }
}

impl fmt::Display for Falls {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.l, self.r, self.s, self.n)
    }
}

/// Iterator over the segments of a [`Falls`]; created by [`Falls::segments`].
#[derive(Debug, Clone)]
pub struct FallsSegments {
    falls: Falls,
    next: u64,
}

impl Iterator for FallsSegments {
    type Item = LineSegment;

    fn next(&mut self) -> Option<LineSegment> {
        let seg = self.falls.segment(self.next)?;
        self.next += 1;
        Some(seg)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.falls.n - self.next.min(self.falls.n)) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for FallsSegments {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1: FALLS (3,5,6,5) on a 32-byte file.
    #[test]
    fn figure1_falls() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        assert_eq!(f.block_len(), 3);
        assert_eq!(f.size(), 15);
        assert_eq!(f.extent_end(), 29);
        let segs: Vec<_> = f.segments().map(|s| s.bounds()).collect();
        assert_eq!(segs, vec![(3, 5), (9, 11), (15, 17), (21, 23), (27, 29)]);
    }

    #[test]
    fn invalid_families_rejected() {
        assert!(Falls::new(5, 3, 6, 1).is_err());
        assert!(Falls::new(0, 3, 6, 0).is_err());
        assert!(Falls::new(0, 3, 0, 2).is_err());
        // stride 3 < block length 4 → overlap
        assert!(Falls::new(0, 3, 3, 2).is_err());
        // touching blocks are fine
        assert!(Falls::new(0, 3, 4, 2).is_ok());
    }

    #[test]
    fn single_segment_normalizes_stride() {
        let f = Falls::new(10, 13, 999, 1).unwrap();
        assert_eq!(f.stride(), 4);
        let g = Falls::from_segment(LineSegment::new(10, 13).unwrap());
        assert_eq!(f, g);
    }

    #[test]
    fn contains_respects_gaps() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        for x in [3, 4, 5, 9, 11, 27, 29] {
            assert!(f.contains(x), "expected {x} in family");
        }
        for x in [0, 2, 6, 8, 12, 30, 31] {
            assert!(!f.contains(x), "expected {x} not in family");
        }
    }

    #[test]
    fn repetition_of_maps_spans() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        assert_eq!(f.repetition_of(2), None);
        assert_eq!(f.repetition_of(3), Some(0));
        assert_eq!(f.repetition_of(8), Some(0)); // in the gap after block 0
        assert_eq!(f.repetition_of(9), Some(1));
        assert_eq!(f.repetition_of(29), Some(4));
        assert_eq!(f.repetition_of(33), None);
    }

    #[test]
    fn offsets_match_segments() {
        let f = Falls::new(0, 1, 4, 3).unwrap();
        assert_eq!(f.offsets().collect::<Vec<_>>(), vec![0, 1, 4, 5, 8, 9]);
    }

    #[test]
    fn shift_round_trips() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        let up = f.shift_up(7).unwrap();
        assert_eq!(up.l(), 10);
        assert_eq!(up.shift_down(7).unwrap(), f);
        assert_eq!(f.shift_down(4), None);
    }

    #[test]
    fn overflow_is_detected() {
        assert!(matches!(
            Falls::new(u64::MAX - 2, u64::MAX - 1, u64::MAX / 2, 3),
            Err(FallsError::Overflow)
        ));
    }

    #[test]
    fn exact_size_iterator() {
        let f = Falls::new(0, 0, 2, 4).unwrap();
        let it = f.segments();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }
}
