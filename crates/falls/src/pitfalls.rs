use crate::{Falls, FallsError, NestedFalls, Offset};
use std::fmt;

/// A Processor Indexed Tagged FAmily of Line Segments.
///
/// `(l, r, s, n, d, p)` compactly represents `p` FALLS, one per processor:
/// processor `i` (for `i ∈ 0..p`) owns the FALLS
/// `(l + i·d, r + i·d, s, n)`. `d` is the inter-processor displacement.
///
/// PITFALLS are the compact form used for regular (HPF-style) distributions;
/// every PITFALLS expands to a plain set of FALLS, which is the form the
/// mapping and intersection algorithms operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pitfalls {
    l: Offset,
    r: Offset,
    s: u64,
    n: u64,
    d: u64,
    p: u64,
}

impl Pitfalls {
    /// Creates a PITFALLS, validating that each per-processor FALLS is valid.
    pub fn new(l: Offset, r: Offset, s: u64, n: u64, d: u64, p: u64) -> Result<Self, FallsError> {
        if p == 0 {
            return Err(FallsError::ZeroCount);
        }
        // Validate the last processor's family (largest offsets).
        let shift = (p - 1).checked_mul(d).ok_or(FallsError::Overflow)?;
        let ll = l.checked_add(shift).ok_or(FallsError::Overflow)?;
        let rr = r.checked_add(shift).ok_or(FallsError::Overflow)?;
        Falls::new(ll, rr, s, n)?;
        Falls::new(l, r, s, n)?;
        Ok(Self { l, r, s, n, d, p })
    }

    /// Number of processors.
    #[inline]
    #[must_use]
    pub fn processors(&self) -> u64 {
        self.p
    }

    /// Inter-processor displacement.
    #[inline]
    #[must_use]
    pub fn displacement(&self) -> u64 {
        self.d
    }

    /// The FALLS owned by processor `i`, if `i < p`.
    #[must_use]
    pub fn falls_of(&self, i: u64) -> Option<Falls> {
        (i < self.p).then(|| {
            Falls::new(self.l + i * self.d, self.r + i * self.d, self.s, self.n)
                .expect("validated at construction")
        })
    }

    /// Expands into the list of per-processor FALLS.
    #[must_use]
    pub fn expand(&self) -> Vec<Falls> {
        (0..self.p).map(|i| self.falls_of(i).expect("i < p")).collect()
    }
}

impl fmt::Display for Pitfalls {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {}; d={}, p={})", self.l, self.r, self.s, self.n, self.d, self.p)
    }
}

/// A nested PITFALLS: a PITFALLS whose per-processor blocks are subdivided by
/// inner nested PITFALLS (relative to each block's left index).
///
/// As the paper notes, "each nested PITFALLS is just a compact representation
/// of a set of nested FALLS"; [`NestedPitfalls::expand`] produces exactly
/// that set, one [`NestedFalls`] tree per processor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NestedPitfalls {
    pitfalls: Pitfalls,
    inner: Vec<NestedPitfalls>,
}

impl NestedPitfalls {
    /// A leaf nested PITFALLS.
    #[must_use]
    pub fn leaf(pitfalls: Pitfalls) -> Self {
        Self { pitfalls, inner: Vec::new() }
    }

    /// A nested PITFALLS with inner structure.
    ///
    /// The inner families subdivide each block; they are validated during
    /// [`NestedPitfalls::expand`], where per-processor trees are built.
    #[must_use]
    pub fn with_inner(pitfalls: Pitfalls, inner: Vec<NestedPitfalls>) -> Self {
        Self { pitfalls, inner }
    }

    /// The node's PITFALLS.
    #[inline]
    #[must_use]
    pub fn pitfalls(&self) -> &Pitfalls {
        &self.pitfalls
    }

    /// Inner nested PITFALLS.
    #[inline]
    #[must_use]
    pub fn inner(&self) -> &[NestedPitfalls] {
        &self.inner
    }

    /// Expands into one [`NestedFalls`] per *outer* processor index.
    ///
    /// Inner PITFALLS are expanded recursively; the inner processor
    /// dimension is flattened into the sibling list (processor-major order),
    /// which matches how multidimensional distributions compose: the outer
    /// dimension picks the tree, inner dimensions contribute siblings.
    pub fn expand(&self) -> Result<Vec<NestedFalls>, FallsError> {
        let mut out = Vec::with_capacity(self.pitfalls.p as usize);
        for i in 0..self.pitfalls.p {
            let falls = self.pitfalls.falls_of(i).expect("i < p");
            if self.inner.is_empty() {
                out.push(NestedFalls::leaf(falls));
            } else {
                let mut children = Vec::new();
                for ip in &self.inner {
                    children.extend(ip.expand()?);
                }
                children.sort_by_key(|c| c.falls().l());
                out.push(NestedFalls::with_inner(falls, children)?);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for NestedPitfalls {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_empty() {
            write!(f, "{}", self.pitfalls)
        } else {
            write!(f, "({}, {{", self.pitfalls)?;
            for (i, c) in self.inner.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "}})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3's three subfiles are the PITFALLS (0,1,6,1; d=2, p=3).
    #[test]
    fn figure3_as_pitfalls() {
        let p = Pitfalls::new(0, 1, 6, 1, 2, 3).unwrap();
        let expanded = p.expand();
        assert_eq!(expanded.len(), 3);
        assert_eq!(expanded[0], Falls::new(0, 1, 6, 1).unwrap());
        assert_eq!(expanded[1], Falls::new(2, 3, 6, 1).unwrap());
        assert_eq!(expanded[2], Falls::new(4, 5, 6, 1).unwrap());
    }

    #[test]
    fn invalid_pitfalls_rejected() {
        assert!(Pitfalls::new(0, 1, 6, 1, 2, 0).is_err());
        // processor 1's family would overlap itself (stride < block)
        assert!(Pitfalls::new(0, 3, 2, 2, 4, 2).is_err());
        assert!(Pitfalls::new(u64::MAX - 1, u64::MAX, 4, 1, u64::MAX, 2).is_err());
    }

    #[test]
    fn falls_of_out_of_range() {
        let p = Pitfalls::new(0, 1, 6, 1, 2, 3).unwrap();
        assert!(p.falls_of(3).is_none());
    }

    #[test]
    fn nested_expansion_builds_trees() {
        // Outer: (0,7,16,2; d=8, p=2) — two processors, two blocks each.
        // Inner: (0,1,4,2; d=2, p=1) — every block keeps bytes {0,1,4,5}.
        let outer = Pitfalls::new(0, 7, 16, 2, 8, 2).unwrap();
        let inner = NestedPitfalls::leaf(Pitfalls::new(0, 1, 4, 2, 2, 1).unwrap());
        let np = NestedPitfalls::with_inner(outer, vec![inner]);
        let trees = np.expand().unwrap();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].absolute_offsets(), vec![0, 1, 4, 5, 16, 17, 20, 21]);
        assert_eq!(trees[1].absolute_offsets(), vec![8, 9, 12, 13, 24, 25, 28, 29]);
    }

    #[test]
    fn nested_expansion_with_inner_processors() {
        // Inner PITFALLS with p=2 flattens to two sibling families per tree.
        let outer = Pitfalls::new(0, 7, 8, 1, 0, 1).unwrap();
        let inner = NestedPitfalls::leaf(Pitfalls::new(0, 0, 4, 2, 2, 2).unwrap());
        let np = NestedPitfalls::with_inner(outer, vec![inner]);
        let trees = np.expand().unwrap();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].absolute_offsets(), vec![0, 2, 4, 6]);
    }
}
