use crate::{Falls, LineSegment, NestedFalls, NestedSet};

/// Compresses a sorted list of disjoint line segments into a compact list of
/// FALLS.
///
/// Greedy run detection: consecutive segments with the same length and the
/// same left-to-left spacing are folded into one family. This is the
/// re-compaction step used after CUT-FALLS and after merge-based
/// intersection; on regular inputs it recovers the periodic structure (e.g.
/// cutting Figure 1's `(3,5,6,5)` to `[4,28]` yields
/// `{(0,1,2,1), (5,7,6,3), (23,24,2,1)}` exactly as in the paper).
///
/// The greedy choice starts a new run whenever length or spacing changes, so
/// the output is minimal for strictly periodic inputs and close to minimal
/// otherwise.
#[must_use]
pub fn compress_segments(segments: &[LineSegment]) -> Vec<Falls> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < segments.len() {
        let first = segments[i];
        let len = first.len();
        // Try to extend a run of equal-length, equally spaced segments.
        let mut n = 1u64;
        let mut stride = None;
        let mut j = i + 1;
        while j < segments.len() {
            let seg = segments[j];
            if seg.len() != len {
                break;
            }
            let gap = seg.l() - segments[j - 1].l();
            match stride {
                None => stride = Some(gap),
                Some(s) if s == gap => {}
                Some(_) => break,
            }
            n += 1;
            j += 1;
        }
        // A run of 2 equal-length segments is only worth folding if a third
        // won't immediately break the family apart badly; greedy is fine.
        let s = stride.unwrap_or(len);
        out.push(Falls::new(first.l(), first.r(), s, n).expect("disjoint sorted run is valid"));
        i = j;
    }
    out
}

/// Convenience: compress segments into a [`NestedSet`] of leaf families.
#[must_use]
pub fn segments_to_falls(segments: &[LineSegment]) -> NestedSet {
    let families = compress_segments(segments).into_iter().map(NestedFalls::leaf).collect();
    NestedSet::new(families).expect("compressed families are sorted and disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(l: u64, r: u64) -> LineSegment {
        LineSegment::new(l, r).unwrap()
    }

    #[test]
    fn empty_input() {
        assert!(compress_segments(&[]).is_empty());
    }

    #[test]
    fn single_segment() {
        let out = compress_segments(&[seg(3, 5)]);
        assert_eq!(out, vec![Falls::new(3, 5, 3, 1).unwrap()]);
    }

    #[test]
    fn periodic_run_folds_to_one_family() {
        let segs: Vec<_> = (0..5).map(|i| seg(3 + 6 * i, 5 + 6 * i)).collect();
        let out = compress_segments(&segs);
        assert_eq!(out, vec![Falls::new(3, 5, 6, 5).unwrap()]);
    }

    /// The paper's CUT-FALLS example output shape:
    /// {(0,1,2,1), (5,7,6,3), (23,24,2,1)}.
    #[test]
    fn cut_falls_example_shape() {
        let segs = vec![seg(0, 1), seg(5, 7), seg(11, 13), seg(17, 19), seg(23, 24)];
        let out = compress_segments(&segs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], Falls::new(0, 1, 2, 1).unwrap());
        assert_eq!(out[1], Falls::new(5, 7, 6, 3).unwrap());
        assert_eq!(out[2], Falls::new(23, 24, 2, 1).unwrap());
    }

    #[test]
    fn irregular_spacing_splits_runs() {
        let segs = vec![seg(0, 1), seg(4, 5), seg(10, 11)];
        let out = compress_segments(&segs);
        // spacing 4 then 6 — cannot be one family
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Falls::new(0, 1, 4, 2).unwrap());
        assert_eq!(out[1], Falls::new(10, 11, 2, 1).unwrap());
    }

    #[test]
    fn round_trip_preserves_offsets() {
        let segs = vec![seg(2, 3), seg(6, 7), seg(10, 11), seg(13, 20), seg(30, 31)];
        let set = segments_to_falls(&segs);
        let want: Vec<u64> = segs.iter().flat_map(LineSegment::offsets).collect();
        assert_eq!(set.absolute_offsets(), want);
    }
}
