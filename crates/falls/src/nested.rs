use crate::{Falls, FallsError, LineSegment, Offset};
use std::fmt;

/// A FALLS together with a set of inner nested FALLS that subdivide each of
/// its blocks.
///
/// The inner families are expressed *relative to the left index of the outer
/// FALLS* and must lie within `[0, block_len − 1]`. A nested FALLS is a tree:
/// each node holds a [`Falls`] and its children are the inner families. A
/// leaf (empty inner set) covers the whole of each of its blocks.
///
/// Example — the paper's Figure 2, `(0, 3, 8, 2, {(0, 0, 2, 2)})`, selects
/// bytes `{0, 2, 8, 10}` of a 16-byte region.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NestedFalls {
    falls: Falls,
    inner: Vec<NestedFalls>,
}

impl NestedFalls {
    /// A leaf node: a plain FALLS with no inner structure.
    #[must_use]
    pub fn leaf(falls: Falls) -> Self {
        Self { falls, inner: Vec::new() }
    }

    /// A nested FALLS with the given inner families.
    ///
    /// Validates that the inner families are sorted by left index, mutually
    /// disjoint, and fit inside the parent's block.
    pub fn with_inner(falls: Falls, inner: Vec<NestedFalls>) -> Result<Self, FallsError> {
        validate_siblings(&inner, falls.block_len())?;
        Ok(Self { falls, inner })
    }

    /// The node's own FALLS.
    #[inline]
    #[must_use]
    pub fn falls(&self) -> &Falls {
        &self.falls
    }

    /// The inner (children) families, relative to the block's left index.
    #[inline]
    #[must_use]
    pub fn inner(&self) -> &[NestedFalls] {
        &self.inner
    }

    /// Whether this node is a leaf.
    #[inline]
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of bytes selected by one block of this family (the paper's
    /// per-block size: `block_len` for a leaf, sum of inner sizes otherwise).
    #[must_use]
    pub fn block_size(&self) -> u64 {
        if self.inner.is_empty() {
            self.falls.block_len()
        } else {
            self.inner.iter().map(NestedFalls::size).sum()
        }
    }

    /// Total number of bytes selected: `n · block_size` (the paper's *SIZE*).
    #[must_use]
    pub fn size(&self) -> u64 {
        self.falls.count() * self.block_size()
    }

    /// Height of the FALLS tree: 1 for a leaf.
    #[must_use]
    pub fn height(&self) -> usize {
        1 + self.inner.iter().map(NestedFalls::height).max().unwrap_or(0)
    }

    /// Total number of nodes in the tree (for diagnostics / cost metrics).
    #[must_use]
    pub fn node_count(&self) -> usize {
        1 + self.inner.iter().map(NestedFalls::node_count).sum::<usize>()
    }

    /// Wraps the family in an outer FALLS covering exactly its extent once —
    /// used to equalize tree heights before intersection, as the paper's
    /// INTERSECT prescribes ("the height of the shorter tree can be
    /// transformed by adding outer FALLS").
    ///
    /// `span` is the length of the linear space the node lives in (the
    /// enclosing block length, or the partitioning-pattern size at top
    /// level); the added outer FALLS is `(0, span−1, span, 1)`.
    pub fn wrap_outer(self, span: u64) -> Result<NestedFalls, FallsError> {
        let outer = Falls::new(0, span - 1, span, 1)?;
        NestedFalls::with_inner(outer, vec![self])
    }

    /// Absolute segments selected by the family, sorted by byte offset and
    /// coalesced.
    ///
    /// Note: when sibling families interleave, sorted byte order differs from
    /// *tree order* (the order in which the linear space of a partition
    /// element is laid out, per the paper's MAP function); use
    /// [`NestedFalls::tree_segments`] for the latter.
    #[must_use]
    pub fn absolute_segments(&self) -> Vec<LineSegment> {
        crate::segment::normalize_segments(self.tree_segments())
    }

    /// Absolute segments in tree-traversal order: families in sibling order,
    /// repetitions in index order, children depth-first. This is the order
    /// that defines the linear address space of a subfile or view.
    #[must_use]
    pub fn tree_segments(&self) -> Vec<LineSegment> {
        let mut out = Vec::new();
        self.collect_segments(0, &mut out);
        out
    }

    pub(crate) fn collect_segments(&self, base: Offset, out: &mut Vec<LineSegment>) {
        for rep in 0..self.falls.count() {
            let block_base = base + self.falls.l() + rep * self.falls.stride();
            if self.inner.is_empty() {
                let seg = LineSegment::new(block_base, block_base + self.falls.block_len() - 1)
                    .expect("block segment is well-formed");
                out.push(seg);
            } else {
                for child in &self.inner {
                    child.collect_segments(block_base, out);
                }
            }
        }
    }

    /// Every byte offset selected by the family, in increasing order.
    #[must_use]
    pub fn absolute_offsets(&self) -> Vec<Offset> {
        self.absolute_segments().iter().flat_map(LineSegment::offsets).collect()
    }

    /// Last absolute byte index reachable by the family (its extent).
    #[must_use]
    pub fn extent_end(&self) -> Offset {
        // The tree's extent is bounded by the outermost FALLS's extent.
        self.falls.extent_end()
    }

    /// Shifts the whole tree up by `delta` (only the outermost FALLS moves;
    /// inner families are relative).
    #[must_use]
    pub fn shift_up(&self, delta: Offset) -> Option<NestedFalls> {
        Some(NestedFalls { falls: self.falls.shift_up(delta)?, inner: self.inner.clone() })
    }

    /// Shifts the whole tree down by `delta`.
    #[must_use]
    pub fn shift_down(&self, delta: Offset) -> Option<NestedFalls> {
        Some(NestedFalls { falls: self.falls.shift_down(delta)?, inner: self.inner.clone() })
    }

    /// Whether absolute byte `x` is selected by the family.
    #[must_use]
    pub fn contains(&self, x: Offset) -> bool {
        if x < self.falls.l() {
            return false;
        }
        let Some(rep) = self.falls.repetition_of(x) else { return false };
        let rel = x - self.falls.l() - rep * self.falls.stride();
        if rel >= self.falls.block_len() {
            return false; // in the gap between blocks
        }
        if self.inner.is_empty() {
            true
        } else {
            self.inner.iter().any(|c| c.contains(rel))
        }
    }
}

impl fmt::Display for NestedFalls {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_empty() {
            write!(f, "{}", self.falls)
        } else {
            write!(
                f,
                "({}, {}, {}, {}, {{",
                self.falls.l(),
                self.falls.r(),
                self.falls.stride(),
                self.falls.count()
            )?;
            for (i, c) in self.inner.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "}})")
        }
    }
}

/// Validates that sibling families are sorted by left index, mutually
/// disjoint, and (when `block_len` is finite) fit within the parent block.
///
/// Families may interleave (e.g. `(0,1,8,2)` and `(4,5,8,2)`), so after a
/// cheap fully-separated fast path, disjointness is checked exactly on the
/// flattened segments.
pub(crate) fn validate_siblings(
    siblings: &[NestedFalls],
    block_len: u64,
) -> Result<(), FallsError> {
    let mut prev_l: Option<Offset> = None;
    let mut prev_end: Option<Offset> = None;
    let mut separated = true;
    for nf in siblings {
        let end = nf.extent_end();
        if end >= block_len {
            return Err(FallsError::InnerOutOfBlock { inner_end: end, block_end: block_len - 1 });
        }
        if let Some(pl) = prev_l {
            if nf.falls.l() < pl {
                return Err(FallsError::UnorderedSiblings);
            }
        }
        if let Some(pe) = prev_end {
            if nf.falls.l() <= pe {
                separated = false;
            }
        }
        prev_l = Some(nf.falls.l());
        prev_end = Some(prev_end.unwrap_or(0).max(end));
    }
    if separated {
        return Ok(());
    }
    // Interleaved families: check exact disjointness on flattened segments.
    let mut segs = Vec::new();
    for nf in siblings {
        nf.collect_segments(0, &mut segs);
    }
    segs.sort_unstable();
    for w in segs.windows(2) {
        if w[1].l() <= w[0].r() {
            return Err(FallsError::UnorderedSiblings);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> NestedFalls {
        NestedFalls::with_inner(
            Falls::new(0, 3, 8, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
        )
        .unwrap()
    }

    /// The paper's Figure 2: (0,3,8,2,{(0,0,2,2)}), size 4, bytes {0,2,8,10}.
    #[test]
    fn figure2_nested_falls() {
        let nf = fig2();
        assert_eq!(nf.size(), 4);
        assert_eq!(nf.absolute_offsets(), vec![0, 2, 8, 10]);
        assert_eq!(nf.height(), 2);
        assert_eq!(nf.node_count(), 2);
    }

    #[test]
    fn leaf_size_is_falls_size() {
        let f = Falls::new(3, 5, 6, 5).unwrap();
        let nf = NestedFalls::leaf(f);
        assert_eq!(nf.size(), f.size());
        assert!(nf.is_leaf());
    }

    #[test]
    fn inner_must_fit_in_block() {
        // Block length 4, inner reaching relative index 4 → invalid.
        let res = NestedFalls::with_inner(
            Falls::new(0, 3, 8, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(4, 4, 5, 1).unwrap())],
        );
        assert!(matches!(res, Err(FallsError::InnerOutOfBlock { .. })));
    }

    #[test]
    fn siblings_must_be_sorted_and_disjoint() {
        let res = NestedFalls::with_inner(
            Falls::new(0, 7, 16, 2).unwrap(),
            vec![
                NestedFalls::leaf(Falls::new(4, 5, 6, 1).unwrap()),
                NestedFalls::leaf(Falls::new(0, 1, 2, 1).unwrap()),
            ],
        );
        assert!(matches!(res, Err(FallsError::UnorderedSiblings)));
    }

    #[test]
    fn contains_matches_offsets() {
        let nf = fig2();
        let selected = nf.absolute_offsets();
        for x in 0..16 {
            assert_eq!(nf.contains(x), selected.contains(&x), "byte {x}");
        }
    }

    #[test]
    fn three_level_nesting() {
        // Outer (0,15,32,2): blocks [0,15],[32,47].
        // Middle (0,7,8,2) inside: relative [0,7],[8,15].
        // Inner (1,2,4,2): relative {1,2,5,6} of each middle block.
        let inner = NestedFalls::leaf(Falls::new(1, 2, 4, 2).unwrap());
        let middle = NestedFalls::with_inner(Falls::new(0, 7, 8, 2).unwrap(), vec![inner]).unwrap();
        let outer =
            NestedFalls::with_inner(Falls::new(0, 15, 32, 2).unwrap(), vec![middle]).unwrap();
        assert_eq!(outer.height(), 3);
        assert_eq!(outer.size(), 16);
        let offs = outer.absolute_offsets();
        assert_eq!(offs.len(), 16);
        assert_eq!(&offs[..8], &[1, 2, 5, 6, 9, 10, 13, 14]);
        assert_eq!(&offs[8..], &[33, 34, 37, 38, 41, 42, 45, 46]);
    }

    #[test]
    fn wrap_outer_preserves_selection() {
        let nf = fig2();
        let offs = nf.absolute_offsets();
        let wrapped = nf.wrap_outer(16).unwrap();
        assert_eq!(wrapped.height(), 3);
        assert_eq!(wrapped.absolute_offsets(), offs);
        assert_eq!(wrapped.size(), 4);
    }

    #[test]
    fn display_round_trips_shape() {
        assert_eq!(fig2().to_string(), "(0, 3, 8, 2, {(0, 0, 2, 2)})");
        assert_eq!(NestedFalls::leaf(Falls::new(3, 5, 6, 5).unwrap()).to_string(), "(3, 5, 6, 5)");
    }
}
