//! Deterministic generators for FALLS structures, shared by tests, property
//! tests and benchmarks across the workspace.
//!
//! A tiny splitmix64 generator keeps this crate dependency-free while giving
//! reproducible streams from a seed; property-test crates layer their own
//! shrinking on top by driving the seed.

use crate::{Falls, NestedFalls, NestedSet};

/// Deterministic splitmix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Generates a random valid FALLS whose extent fits in `[0, span)`.
///
/// `span` must be at least 1.
pub fn random_falls(g: &mut Gen, span: u64) -> Falls {
    assert!(span >= 1);
    let l = g.below(span);
    let max_block = (span - 1 - l).min(span / 4 + 1);
    let extra = g.range(0, max_block);
    let r = (l + extra).min(span - 1);
    let block = r - l + 1;
    let remaining = span - 1 - r;
    // Choose a stride ≥ block and a count that keeps the extent inside span.
    let s = block + g.below(block.max(span / 8).max(1) + 1);
    let max_n = remaining.checked_div(s).map_or(1, |q| q + 1);
    let n = g.range(1, max_n.max(1));
    Falls::new(l, r, s, n).expect("generated family is valid")
}

/// Generates a random nested FALLS of at most `depth` levels whose extent
/// fits in `[0, span)`.
pub fn random_nested_falls(g: &mut Gen, span: u64, depth: usize) -> NestedFalls {
    let falls = random_falls(g, span);
    if depth <= 1 || falls.block_len() < 2 || g.chance(1, 3) {
        return NestedFalls::leaf(falls);
    }
    let inner = random_sibling_families(g, falls.block_len(), depth - 1, 2);
    NestedFalls::with_inner(falls, inner).expect("siblings generated disjoint")
}

/// Generates up to `max_count` sorted, disjoint sibling families within
/// `[0, span)`.
pub fn random_sibling_families(
    g: &mut Gen,
    span: u64,
    depth: usize,
    max_count: usize,
) -> Vec<NestedFalls> {
    let mut out = Vec::new();
    let mut lo = 0u64;
    for _ in 0..max_count {
        if lo >= span {
            break;
        }
        let sub_span = span - lo;
        if sub_span < 1 {
            break;
        }
        let f = random_nested_falls(g, sub_span, depth);
        let f = f.shift_up(lo).expect("shift within span");
        let end = f.extent_end();
        out.push(f);
        lo = end + 1 + g.below(sub_span.max(2) / 2 + 1);
        if g.chance(1, 3) {
            break;
        }
    }
    if out.is_empty() {
        out.push(NestedFalls::leaf(random_falls(g, span)));
        out.sort_by_key(|f| f.falls().l());
    }
    out
}

/// Generates a random non-empty [`NestedSet`] within `[0, span)`.
pub fn random_nested_set(g: &mut Gen, span: u64, depth: usize) -> NestedSet {
    NestedSet::new(random_sibling_families(g, span, depth, 3))
        .expect("generated siblings are sorted and disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = Gen::new(42);
        let mut b = Gen::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn random_falls_fit_span() {
        let mut g = Gen::new(7);
        for _ in 0..500 {
            let span = g.range(1, 256);
            let f = random_falls(&mut g, span);
            assert!(f.extent_end() < span, "family {f} exceeds span {span}");
        }
    }

    #[test]
    fn random_nested_sets_are_valid_and_fit() {
        let mut g = Gen::new(99);
        for _ in 0..200 {
            let span = g.range(4, 512);
            let set = random_nested_set(&mut g, span, 3);
            assert!(!set.is_empty());
            assert!(set.extent_end().unwrap() < span);
            // size must agree with flattened offsets
            assert_eq!(set.size(), set.absolute_offsets().len() as u64);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut g = Gen::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = g.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }
}
