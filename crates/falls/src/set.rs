use crate::nested::validate_siblings;
use crate::segment::normalize_segments;
use crate::{FallsError, LineSegment, NestedFalls, Offset};
use std::fmt;

/// An ordered set of sibling [`NestedFalls`] describing one partition
/// element (a subfile or a view) within a partitioning pattern.
///
/// The families must be sorted by left index and mutually disjoint. The
/// paper's *SIZE* of a set is the sum of the sizes of its elements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct NestedSet {
    families: Vec<NestedFalls>,
}

impl NestedSet {
    /// An empty set (selects no bytes).
    #[must_use]
    pub fn empty() -> Self {
        Self { families: Vec::new() }
    }

    /// Builds a set from sibling families, validating order and disjointness.
    pub fn new(families: Vec<NestedFalls>) -> Result<Self, FallsError> {
        // Top-level siblings live in the pattern's linear space; bound their
        // mutual order/disjointness but not their absolute extent.
        validate_siblings(&families, u64::MAX)?;
        Ok(Self { families })
    }

    /// A set holding a single family.
    #[must_use]
    pub fn singleton(family: NestedFalls) -> Self {
        Self { families: vec![family] }
    }

    /// The sibling families, sorted by left index.
    #[inline]
    #[must_use]
    pub fn families(&self) -> &[NestedFalls] {
        &self.families
    }

    /// Whether the set selects no bytes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Total number of bytes selected (the paper's *SIZE* of a set).
    #[must_use]
    pub fn size(&self) -> u64 {
        self.families.iter().map(NestedFalls::size).sum()
    }

    /// Maximum tree height over the set's families (0 for an empty set).
    #[must_use]
    pub fn height(&self) -> usize {
        self.families.iter().map(NestedFalls::height).max().unwrap_or(0)
    }

    /// Total node count over all trees.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.families.iter().map(NestedFalls::node_count).sum()
    }

    /// Last absolute byte index reachable by any family; `None` if empty.
    #[must_use]
    pub fn extent_end(&self) -> Option<Offset> {
        self.families.iter().map(NestedFalls::extent_end).max()
    }

    /// Absolute segments selected by the set, sorted, coalescing adjacent
    /// segments.
    #[must_use]
    pub fn absolute_segments(&self) -> Vec<LineSegment> {
        let mut out = Vec::new();
        for f in &self.families {
            f.collect_segments(0, &mut out);
        }
        normalize_segments(out)
    }

    /// Absolute segments in tree-traversal order (the order defining the
    /// element's linear address space); see [`NestedFalls::tree_segments`].
    #[must_use]
    pub fn tree_segments(&self) -> Vec<LineSegment> {
        let mut out = Vec::new();
        for f in &self.families {
            f.collect_segments(0, &mut out);
        }
        out
    }

    /// Every selected byte offset, in increasing order.
    #[must_use]
    pub fn absolute_offsets(&self) -> Vec<Offset> {
        self.absolute_segments().iter().flat_map(LineSegment::offsets).collect()
    }

    /// Whether byte `x` is selected.
    #[must_use]
    pub fn contains(&self, x: Offset) -> bool {
        self.families.iter().any(|f| f.contains(x))
    }

    /// Raises every tree to exactly `height` by wrapping in outer FALLS that
    /// span `span` bytes (the paper's height-equalization step before
    /// INTERSECT). Fails if any tree is already taller.
    pub fn equalized_to_height(&self, height: usize, span: u64) -> Result<NestedSet, FallsError> {
        let mut families = Vec::with_capacity(self.families.len());
        for f in &self.families {
            let mut cur = f.clone();
            let h = cur.height();
            assert!(h <= height, "cannot shrink a FALLS tree (height {h} > target {height})");
            for _ in h..height {
                cur = cur.wrap_outer(span)?;
            }
            families.push(cur);
        }
        // Wrapping puts every family at l = 0, so siblings now overlap as
        // trees; merge them under a single outer when more than one family
        // was wrapped.
        if families.len() > 1 && self.height() < height {
            // Re-wrap jointly instead: one outer FALLS containing all
            // original families as inner children at the correct depth.
            return self.wrap_jointly(height, span);
        }
        NestedSet::new(families)
    }

    /// Wraps the whole set under `height − self.height()` outer spanning
    /// FALLS, keeping the original families as siblings inside.
    fn wrap_jointly(&self, height: usize, span: u64) -> Result<NestedSet, FallsError> {
        let mut inner = self.families.clone();
        let mut h = self.height();
        while h < height {
            let outer = crate::Falls::new(0, span - 1, span, 1)?;
            inner = vec![NestedFalls::with_inner(outer, inner)?];
            h += 1;
        }
        NestedSet::new(inner)
    }

    /// The complement of the set within `[0, span)`: a set of leaf families
    /// selecting exactly the bytes this set does not.
    ///
    /// Useful for turning a single selection (a datatype, a view
    /// description) into a full partitioning pattern — the selection plus
    /// its complement tile the span exactly.
    ///
    /// # Panics
    /// Panics if the set extends beyond `span`.
    #[must_use]
    pub fn complement(&self, span: u64) -> NestedSet {
        if let Some(end) = self.extent_end() {
            assert!(end < span, "set extends to {end}, beyond span {span}");
        }
        let mut holes = Vec::new();
        let mut pos = 0u64;
        for seg in self.absolute_segments() {
            if seg.l() > pos {
                holes.push(LineSegment::new(pos, seg.l() - 1).expect("gap is well-formed"));
            }
            pos = seg.r() + 1;
        }
        if pos < span {
            holes.push(LineSegment::new(pos, span - 1).expect("tail is well-formed"));
        }
        crate::segments_to_falls(&holes)
    }

    /// Shifts every family up by `delta`.
    #[must_use]
    pub fn shift_up(&self, delta: Offset) -> Option<NestedSet> {
        let families =
            self.families.iter().map(|f| f.shift_up(delta)).collect::<Option<Vec<_>>>()?;
        Some(NestedSet { families })
    }
}

impl fmt::Display for NestedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fam) in self.families.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fam}")?;
        }
        write!(f, "}}")
    }
}

impl From<NestedFalls> for NestedSet {
    fn from(f: NestedFalls) -> Self {
        NestedSet::singleton(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Falls;

    fn leaf(l: u64, r: u64, s: u64, n: u64) -> NestedFalls {
        NestedFalls::leaf(Falls::new(l, r, s, n).unwrap())
    }

    #[test]
    fn size_sums_families() {
        let set = NestedSet::new(vec![leaf(0, 1, 6, 1), leaf(4, 5, 6, 1)]).unwrap();
        assert_eq!(set.size(), 4);
        assert_eq!(set.absolute_offsets(), vec![0, 1, 4, 5]);
    }

    #[test]
    fn rejects_overlapping_siblings() {
        assert!(NestedSet::new(vec![leaf(0, 4, 6, 1), leaf(2, 5, 6, 1)]).is_err());
        assert!(NestedSet::new(vec![leaf(4, 5, 6, 1), leaf(0, 1, 6, 1)]).is_err());
    }

    #[test]
    fn interleaved_families_are_valid_when_first_blocks_ordered() {
        // Two families whose *blocks* interleave: (0,1,8,2) and (4,5,8,2).
        // Their first segments are ordered and all segments are disjoint.
        let set = NestedSet::new(vec![leaf(0, 1, 8, 2), leaf(4, 5, 8, 2)]).unwrap();
        assert_eq!(set.absolute_offsets(), vec![0, 1, 4, 5, 8, 9, 12, 13]);
    }

    #[test]
    fn equalize_height_preserves_selection() {
        let set = NestedSet::new(vec![leaf(0, 1, 6, 1), leaf(4, 5, 6, 1)]).unwrap();
        let offs = set.absolute_offsets();
        let eq = set.equalized_to_height(3, 6).unwrap();
        assert_eq!(eq.height(), 3);
        assert_eq!(eq.absolute_offsets(), offs);
        assert_eq!(eq.size(), set.size());
    }

    #[test]
    fn equalize_noop_when_already_at_height() {
        let set = NestedSet::new(vec![leaf(0, 1, 6, 1)]).unwrap();
        let eq = set.equalized_to_height(1, 6).unwrap();
        assert_eq!(eq, set);
    }

    #[test]
    fn segments_coalesce() {
        let set = NestedSet::new(vec![leaf(0, 1, 6, 1), leaf(2, 3, 6, 1)]).unwrap();
        assert_eq!(set.absolute_segments(), vec![LineSegment::new(0, 3).unwrap()]);
    }

    #[test]
    fn complement_tiles_the_span() {
        let set = NestedSet::new(vec![leaf(0, 1, 8, 2), leaf(4, 5, 8, 2)]).unwrap();
        let comp = set.complement(16);
        assert_eq!(comp.absolute_offsets(), vec![2, 3, 6, 7, 10, 11, 14, 15]);
        assert_eq!(set.size() + comp.size(), 16);
        // Complement of everything is empty; of nothing is everything.
        let full = NestedSet::singleton(leaf(0, 15, 16, 1));
        assert!(full.complement(16).is_empty());
        assert_eq!(NestedSet::empty().complement(4).size(), 4);
    }

    #[test]
    #[should_panic(expected = "beyond span")]
    fn complement_checks_span() {
        let _ = NestedSet::singleton(leaf(0, 9, 10, 1)).complement(8);
    }

    #[test]
    fn extent_and_contains() {
        let set = NestedSet::new(vec![leaf(0, 1, 8, 2), leaf(4, 5, 8, 2)]).unwrap();
        assert_eq!(set.extent_end(), Some(13));
        assert!(set.contains(12));
        assert!(!set.contains(6));
        assert_eq!(NestedSet::empty().extent_end(), None);
    }
}
