use std::fmt;

/// Errors raised while constructing or validating FALLS-based structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FallsError {
    /// A line segment with `l > r`.
    InvertedSegment {
        /// Left index supplied.
        l: u64,
        /// Right index supplied.
        r: u64,
    },
    /// A FALLS whose count is zero.
    ZeroCount,
    /// A FALLS whose stride is zero while more than one segment is requested.
    ZeroStride,
    /// A FALLS with `n > 1` whose stride is smaller than its block length, so
    /// consecutive segments would overlap.
    OverlappingBlocks {
        /// Block length (`r − l + 1`).
        block_len: u64,
        /// Stride supplied.
        stride: u64,
    },
    /// An inner FALLS does not fit inside the block of its parent.
    InnerOutOfBlock {
        /// Extent (last covered relative index) of the inner family.
        inner_end: u64,
        /// Last valid relative index, i.e. parent block length − 1.
        block_end: u64,
    },
    /// Sibling families are not sorted by left index or overlap each other.
    UnorderedSiblings,
    /// Arithmetic overflow while computing extents or sizes.
    Overflow,
}

impl fmt::Display for FallsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallsError::InvertedSegment { l, r } => {
                write!(f, "line segment left index {l} exceeds right index {r}")
            }
            FallsError::ZeroCount => write!(f, "FALLS must contain at least one segment"),
            FallsError::ZeroStride => {
                write!(f, "FALLS with more than one segment must have a positive stride")
            }
            FallsError::OverlappingBlocks { block_len, stride } => write!(
                f,
                "stride {stride} smaller than block length {block_len}: segments overlap"
            ),
            FallsError::InnerOutOfBlock { inner_end, block_end } => write!(
                f,
                "inner FALLS extends to relative index {inner_end}, beyond the parent block end {block_end}"
            ),
            FallsError::UnorderedSiblings => {
                write!(f, "sibling FALLS must be sorted by left index and disjoint")
            }
            FallsError::Overflow => write!(f, "arithmetic overflow in FALLS computation"),
        }
    }
}

impl std::error::Error for FallsError {}
