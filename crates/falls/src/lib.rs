//! Data representation for parallel-file partitions: line segments, FALLS,
//! nested FALLS and PITFALLS.
//!
//! This crate implements the representation layer of Isaila & Tichy,
//! *"Mapping Functions and Data Redistribution for Parallel Files"*
//! (IPPS 2002), which itself extends the PITFALLS representation of
//! Ramaswamy & Banerjee (used in the PARADIGM compiler).
//!
//! # Concepts
//!
//! * [`LineSegment`] — a contiguous byte range `[l, r]` of a file.
//! * [`Falls`] — a *FAmily of Line Segments* `(l, r, s, n)`: `n` equally
//!   sized, equally spaced segments; segment `i` is `[l + i·s, r + i·s]`.
//! * [`NestedFalls`] — a FALLS together with a set of *inner* FALLS that
//!   subdivide each of its blocks. Inner indices are relative to the left
//!   index of the enclosing block. A nested FALLS is a tree.
//! * [`NestedSet`] — an ordered set of sibling [`NestedFalls`]; the unit in
//!   which partition elements (subfiles / views) are described.
//! * [`Pitfalls`] / [`NestedPitfalls`] — *Processor Indexed Tagged* families:
//!   a compact representation of `p` FALLS that differ only by a per-processor
//!   shift `d`.
//!
//! # Example — the paper's Figure 1 and Figure 2
//!
//! ```
//! use falls::{Falls, NestedFalls};
//!
//! // Figure 1: FALLS (3,5,6,5) — five 3-byte blocks, stride 6.
//! let f = Falls::new(3, 5, 6, 5).unwrap();
//! assert_eq!(f.size(), 15);
//! assert_eq!(f.segment(1).unwrap().bounds(), (9, 11));
//!
//! // Figure 2: nested FALLS (0,3,8,2, {(0,0,2,2)}) — size 4.
//! let nf = NestedFalls::with_inner(
//!     Falls::new(0, 3, 8, 2).unwrap(),
//!     vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
//! ).unwrap();
//! assert_eq!(nf.size(), 4);
//! assert_eq!(nf.absolute_offsets(), vec![0, 2, 8, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod compress;
mod error;
mod falls_impl;
mod nested;
mod pitfalls;
mod render;
mod segment;
mod set;

pub mod testing;

pub use canon::{
    canonicalize_nested, canonicalize_set, fingerprint_nested, fingerprint_set, StructuralHasher,
};
pub use compress::{compress_segments, segments_to_falls};
pub use error::FallsError;
pub use falls_impl::{Falls, FallsSegments};
pub use nested::NestedFalls;
pub use pitfalls::{NestedPitfalls, Pitfalls};
pub use render::{render_falls, render_nested_set, render_ruler};
pub use segment::LineSegment;
pub use set::NestedSet;

/// Byte offset / length type used throughout the workspace.
///
/// The paper models files as linear sequences of bytes; all indices are
/// non-negative, so an unsigned 64-bit offset covers any realistic file.
pub type Offset = u64;

/// Greatest common divisor (Euclid). `gcd(0, x) = x`.
#[must_use]
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple; `lcm(0, _) = 0`. Saturates to `u64::MAX` on
/// overflow — prefer [`checked_lcm`] anywhere a saturated period would be
/// silently wrong (intersection periods, audit checks).
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    checked_lcm(a, b).unwrap_or(u64::MAX)
}

/// Least common multiple that reports overflow: `Some(lcm)` when the result
/// is representable, `None` otherwise. `checked_lcm(0, _) = Some(0)`.
///
/// Pattern sizes are products of strides and counts, so two modest patterns
/// can already push `lcm(SIZE(P₁), SIZE(P₂))` past `u64::MAX`; every period
/// computation must go through here (or [`lcm`] where saturation is
/// acceptable) rather than multiplying raw.
#[must_use]
pub fn checked_lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b)
}

/// Size of a FALLS-shaped family — `count · block_len` — reporting overflow
/// instead of wrapping. For a [`Falls`] built through [`Falls::new`] the
/// product always fits (the constructor bounds the extent), but raw
/// `(l, r, s, n)` quadruples from specs or audits must use this.
#[must_use]
pub fn checked_size(count: u64, block_len: u64) -> Option<u64> {
    count.checked_mul(block_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(16, 8), 16);
        assert_eq!(lcm(7, 13), 91);
    }

    #[test]
    fn lcm_saturates_instead_of_overflowing() {
        assert_eq!(lcm(u64::MAX, u64::MAX - 1), u64::MAX);
    }

    #[test]
    fn checked_lcm_reports_overflow() {
        assert_eq!(checked_lcm(0, 5), Some(0));
        assert_eq!(checked_lcm(4, 6), Some(12));
        assert_eq!(checked_lcm(1 << 40, (1 << 40) + 1), None);
        assert_eq!(checked_lcm(u64::MAX, u64::MAX - 1), None);
        assert_eq!(checked_lcm(u64::MAX, u64::MAX), Some(u64::MAX));
    }

    #[test]
    fn checked_size_reports_overflow() {
        assert_eq!(checked_size(5, 3), Some(15));
        assert_eq!(checked_size(0, 3), Some(0));
        assert_eq!(checked_size(1 << 40, 1 << 40), None);
    }
}
