//! Canonical form and structural fingerprinting for nested-FALLS sets.
//!
//! Two syntactically different nested-FALLS trees can select the same bytes
//! in the same linear (tree) order — most commonly because intersection and
//! height-equalization wrap families in trivial `(0, span−1, span, 1)` outer
//! FALLS, or leave a full-block leaf child under a node that is already a
//! leaf in disguise. [`canonicalize_set`] removes that syntactic noise
//! without changing either the selected bytes or their tree order, and
//! [`fingerprint_set`] hashes the canonical structure into a stable 64-bit
//! value usable as a cheap cache key.
//!
//! The fingerprint is a pure function of the canonical structure: it never
//! reads addresses, never depends on allocation order, and is identical
//! across processes and runs — so it can key an on-disk or cross-node plan
//! cache as well as the in-process one.

use crate::nested::validate_siblings;
#[cfg(test)]
use crate::Falls;
use crate::{NestedFalls, NestedSet};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a hasher over little-endian `u64` words.
///
/// Deliberately not `std::hash::Hasher`: `DefaultHasher` is allowed to vary
/// between releases, while plan fingerprints must be stable enough to
/// compare across processes.
#[derive(Debug, Clone, Copy)]
pub struct StructuralHasher {
    state: u64,
}

impl StructuralHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Mixes one 64-bit word (as 8 little-endian bytes) into the state.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The accumulated 64-bit fingerprint.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StructuralHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Whether `nf` is a trivial wrapper: a single-repetition family starting at
/// relative offset 0 whose one block spans its whole extent — the shape
/// [`NestedFalls::wrap_outer`] adds for height equalization. Splicing its
/// children into its place preserves both the selected bytes and tree order.
fn is_trivial_wrapper(nf: &NestedFalls) -> bool {
    let f = nf.falls();
    !nf.is_leaf() && f.l() == 0 && f.count() == 1
}

/// Whether `nf` is a leaf-shaped child that covers its parent's whole block:
/// one repetition of a full-width block at relative offset 0 with no inner
/// structure. A parent whose only child has this shape is itself a leaf.
fn is_full_block_leaf(nf: &NestedFalls, block_len: u64) -> bool {
    let f = nf.falls();
    nf.is_leaf() && f.l() == 0 && f.count() == 1 && f.block_len() == block_len
}

/// Canonicalizes one nested-FALLS tree. Children are canonicalized first,
/// then two order-preserving rewrites are applied:
///
/// 1. a node whose only child is a full-block leaf becomes a leaf;
/// 2. a node whose only child is a trivial wrapper adopts that wrapper's
///    children (the wrapper's block starts at 0 and repeats once, so every
///    grandchild keeps its relative offsets).
#[must_use]
pub fn canonicalize_nested(nf: &NestedFalls) -> NestedFalls {
    let falls = *nf.falls();
    let mut inner: Vec<NestedFalls> = nf.inner().iter().map(canonicalize_nested).collect();
    // Rule 2 first: unwrapping can expose a full-block leaf for rule 1.
    while inner.len() == 1 && is_trivial_wrapper(&inner[0]) {
        let wrapper = inner.pop().expect("len checked");
        inner = wrapper.inner().to_vec();
    }
    if inner.len() == 1 && is_full_block_leaf(&inner[0], falls.block_len()) {
        inner.clear();
    }
    if inner.is_empty() {
        return NestedFalls::leaf(falls);
    }
    NestedFalls::with_inner(falls, inner)
        .expect("canonical rewrites preserve sibling order and bounds")
}

/// Canonicalizes a nested-FALLS set: every family is canonicalized, and
/// top-level trivial wrappers are spliced into the family list when the
/// result still validates as sibling families (interleavings that only the
/// wrapper kept sorted fall back to the wrapped form, so canonicalization is
/// total).
#[must_use]
pub fn canonicalize_set(set: &NestedSet) -> NestedSet {
    let mut families: Vec<NestedFalls> = Vec::with_capacity(set.families().len());
    for nf in set.families() {
        let c = canonicalize_nested(nf);
        if is_trivial_wrapper(&c) {
            families.extend(c.inner().iter().cloned());
        } else {
            families.push(c);
        }
    }
    if validate_siblings(&families, u64::MAX).is_ok() {
        if let Ok(s) = NestedSet::new(families) {
            return s;
        }
    }
    // Splicing broke sibling order — keep the per-family canonical forms.
    NestedSet::new(set.families().iter().map(canonicalize_nested).collect())
        .expect("per-family canonicalization keeps the original sibling structure")
}

fn hash_nested(h: &mut StructuralHasher, nf: &NestedFalls) {
    let f = nf.falls();
    h.write_u64(f.l());
    h.write_u64(f.block_len());
    h.write_u64(f.stride());
    h.write_u64(f.count());
    h.write_u64(nf.inner().len() as u64);
    for child in nf.inner() {
        hash_nested(h, child);
    }
}

/// Stable 64-bit structural fingerprint of one nested-FALLS tree, computed
/// over its canonical form.
#[must_use]
pub fn fingerprint_nested(nf: &NestedFalls) -> u64 {
    let c = canonicalize_nested(nf);
    let mut h = StructuralHasher::new();
    hash_nested(&mut h, &c);
    h.finish()
}

/// Stable 64-bit structural fingerprint of a nested-FALLS set, computed over
/// its canonical form. Equal sets (same bytes, same tree order, up to the
/// canonical rewrites) fingerprint equal; the converse holds modulo 64-bit
/// hash collisions, which a cache must tolerate by storing the key alongside.
#[must_use]
pub fn fingerprint_set(set: &NestedSet) -> u64 {
    let c = canonicalize_set(set);
    let mut h = StructuralHasher::new();
    h.write_u64(c.families().len() as u64);
    for nf in c.families() {
        hash_nested(&mut h, nf);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> NestedFalls {
        NestedFalls::with_inner(
            Falls::new(0, 3, 8, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 0, 2, 2).unwrap())],
        )
        .unwrap()
    }

    #[test]
    fn wrap_outer_canonicalizes_away() {
        let nf = fig2();
        let wrapped = nf.clone().wrap_outer(16).unwrap();
        let set = NestedSet::singleton(wrapped);
        let canon = canonicalize_set(&set);
        assert_eq!(canon, NestedSet::singleton(nf.clone()));
        assert_eq!(fingerprint_set(&set), fingerprint_set(&NestedSet::singleton(nf)));
    }

    #[test]
    fn double_wrap_canonicalizes_away() {
        let nf = fig2();
        let wrapped = nf.clone().wrap_outer(16).unwrap().wrap_outer(16).unwrap();
        assert_eq!(
            fingerprint_set(&NestedSet::singleton(wrapped)),
            fingerprint_set(&NestedSet::singleton(nf))
        );
    }

    #[test]
    fn full_block_leaf_child_collapses() {
        // (0,7,16,2,{(0,7,8,1)}) selects the same bytes in the same order as
        // the plain leaf (0,7,16,2).
        let outer = Falls::new(0, 7, 16, 2).unwrap();
        let noisy = NestedFalls::with_inner(
            outer,
            vec![NestedFalls::leaf(Falls::new(0, 7, 8, 1).unwrap())],
        )
        .unwrap();
        let canon = canonicalize_nested(&noisy);
        assert_eq!(canon, NestedFalls::leaf(outer));
    }

    #[test]
    fn canonicalization_preserves_tree_order_bytes() {
        let nf = fig2();
        let wrapped = nf.clone().wrap_outer(16).unwrap();
        assert_eq!(canonicalize_nested(&wrapped).tree_segments(), nf.tree_segments());
    }

    #[test]
    fn distinct_shapes_fingerprint_differently() {
        let a = NestedSet::singleton(NestedFalls::leaf(Falls::new(0, 3, 8, 2).unwrap()));
        let b = NestedSet::singleton(NestedFalls::leaf(Falls::new(0, 3, 8, 3).unwrap()));
        let c = NestedSet::singleton(NestedFalls::leaf(Falls::new(4, 7, 8, 2).unwrap()));
        assert_ne!(fingerprint_set(&a), fingerprint_set(&b));
        assert_ne!(fingerprint_set(&a), fingerprint_set(&c));
        assert_ne!(fingerprint_set(&b), fingerprint_set(&c));
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let s = NestedSet::singleton(fig2());
        assert_eq!(fingerprint_set(&s), fingerprint_set(&s));
    }

    #[test]
    fn interleaved_splice_falls_back_safely() {
        // A wrapper whose children interleave with a later top-level family:
        // splicing would break sibling ordering, so the set keeps the
        // wrapped family — and canonicalization must still terminate with an
        // equal-byte result.
        let child_a = NestedFalls::leaf(Falls::new(0, 0, 8, 2).unwrap());
        let child_b = NestedFalls::leaf(Falls::new(4, 4, 8, 2).unwrap());
        let wrapper =
            NestedFalls::with_inner(Falls::new(0, 15, 16, 1).unwrap(), vec![child_a, child_b])
                .unwrap();
        let tail = NestedFalls::leaf(Falls::new(2, 2, 8, 2).unwrap());
        let set = NestedSet::new(vec![wrapper, tail]).unwrap();
        let canon = canonicalize_set(&set);
        assert_eq!(canon.absolute_offsets(), set.absolute_offsets());
        assert_eq!(fingerprint_set(&canon), fingerprint_set(&set));
    }

    #[test]
    fn canonical_form_is_a_fixed_point() {
        let wrapped = NestedSet::singleton(fig2().wrap_outer(16).unwrap());
        let once = canonicalize_set(&wrapped);
        let twice = canonicalize_set(&once);
        assert_eq!(once, twice);
    }
}
