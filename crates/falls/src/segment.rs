use crate::{FallsError, Offset};
use std::fmt;

/// A contiguous portion of a file: the pair `(l, r)` of the paper, describing
/// bytes `l ..= r` (both inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineSegment {
    l: Offset,
    r: Offset,
}

impl LineSegment {
    /// Creates the segment `[l, r]`; fails if `l > r`.
    pub fn new(l: Offset, r: Offset) -> Result<Self, FallsError> {
        if l > r {
            return Err(FallsError::InvertedSegment { l, r });
        }
        Ok(Self { l, r })
    }

    /// Left (first) byte index.
    #[inline]
    #[must_use]
    pub fn l(&self) -> Offset {
        self.l
    }

    /// Right (last) byte index.
    #[inline]
    #[must_use]
    pub fn r(&self) -> Offset {
        self.r
    }

    /// `(l, r)` as a tuple.
    #[inline]
    #[must_use]
    pub fn bounds(&self) -> (Offset, Offset) {
        (self.l, self.r)
    }

    /// Number of bytes in the segment.
    #[inline]
    #[must_use]
    pub fn len(&self) -> u64 {
        self.r - self.l + 1
    }

    /// A segment always holds at least one byte; provided for clippy
    /// symmetry with [`LineSegment::len`].
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether byte `x` lies inside the segment.
    #[inline]
    #[must_use]
    pub fn contains(&self, x: Offset) -> bool {
        self.l <= x && x <= self.r
    }

    /// Intersection with another segment, if non-empty.
    #[must_use]
    pub fn intersect(&self, other: &LineSegment) -> Option<LineSegment> {
        let l = self.l.max(other.l);
        let r = self.r.min(other.r);
        (l <= r).then_some(LineSegment { l, r })
    }

    /// Clips the segment to `[lo, hi]`, if any byte survives.
    #[must_use]
    pub fn clip(&self, lo: Offset, hi: Offset) -> Option<LineSegment> {
        if lo > hi {
            return None;
        }
        self.intersect(&LineSegment { l: lo, r: hi })
    }

    /// Shifts the segment left by `delta` (used when re-expressing indices
    /// relative to a cut's inferior limit). Fails if the segment would cross
    /// below zero.
    #[must_use]
    pub fn shift_down(&self, delta: Offset) -> Option<LineSegment> {
        if self.l < delta {
            return None;
        }
        Some(LineSegment { l: self.l - delta, r: self.r - delta })
    }

    /// Shifts the segment right by `delta`.
    #[must_use]
    pub fn shift_up(&self, delta: Offset) -> Option<LineSegment> {
        let l = self.l.checked_add(delta)?;
        let r = self.r.checked_add(delta)?;
        Some(LineSegment { l, r })
    }

    /// Whether `other` begins exactly one byte after `self` ends, i.e. the
    /// two segments are adjacent and could be merged.
    #[inline]
    #[must_use]
    pub fn abuts(&self, other: &LineSegment) -> bool {
        self.r + 1 == other.l
    }

    /// Iterator over every byte offset in the segment.
    pub fn offsets(&self) -> impl Iterator<Item = Offset> + '_ {
        self.l..=self.r
    }
}

impl fmt::Display for LineSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.l, self.r)
    }
}

/// Merges a sorted list of disjoint-or-overlapping segments into a minimal
/// sorted disjoint list (coalescing adjacent and overlapping segments).
#[must_use]
pub(crate) fn normalize_segments(mut segs: Vec<LineSegment>) -> Vec<LineSegment> {
    segs.sort_unstable();
    let mut out: Vec<LineSegment> = Vec::with_capacity(segs.len());
    for s in segs {
        match out.last_mut() {
            Some(last) if s.l <= last.r.saturating_add(1) => {
                last.r = last.r.max(s.r);
            }
            _ => out.push(s),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let s = LineSegment::new(3, 5).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.bounds(), (3, 5));
        assert!(LineSegment::new(5, 3).is_err());
        assert_eq!(LineSegment::new(7, 7).unwrap().len(), 1);
    }

    #[test]
    fn contains_and_intersect() {
        let a = LineSegment::new(0, 7).unwrap();
        let b = LineSegment::new(4, 12).unwrap();
        assert!(a.contains(0) && a.contains(7) && !a.contains(8));
        assert_eq!(a.intersect(&b), Some(LineSegment::new(4, 7).unwrap()));
        let c = LineSegment::new(8, 9).unwrap();
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn clip_and_shift() {
        let s = LineSegment::new(3, 10).unwrap();
        assert_eq!(s.clip(5, 8), Some(LineSegment::new(5, 8).unwrap()));
        assert_eq!(s.clip(11, 20), None);
        assert_eq!(s.clip(20, 11), None);
        assert_eq!(s.shift_down(3), Some(LineSegment::new(0, 7).unwrap()));
        assert_eq!(s.shift_down(4), None);
        assert_eq!(s.shift_up(2), Some(LineSegment::new(5, 12).unwrap()));
    }

    #[test]
    fn abuts_detects_adjacency() {
        let a = LineSegment::new(0, 3).unwrap();
        let b = LineSegment::new(4, 6).unwrap();
        let c = LineSegment::new(5, 6).unwrap();
        assert!(a.abuts(&b));
        assert!(!a.abuts(&c));
        assert!(!b.abuts(&a));
    }

    #[test]
    fn normalize_merges_overlaps_and_adjacency() {
        let segs = vec![
            LineSegment::new(8, 9).unwrap(),
            LineSegment::new(0, 3).unwrap(),
            LineSegment::new(4, 6).unwrap(),
            LineSegment::new(5, 7).unwrap(),
        ];
        let norm = normalize_segments(segs);
        assert_eq!(norm, vec![LineSegment::new(0, 9).unwrap()]);
    }

    #[test]
    fn offsets_iterates_each_byte() {
        let s = LineSegment::new(2, 4).unwrap();
        assert_eq!(s.offsets().collect::<Vec<_>>(), vec![2, 3, 4]);
    }
}
