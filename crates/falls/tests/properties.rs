//! Property tests for the FALLS representation: structural invariants that
//! every operation must preserve.

use falls::testing::{random_nested_set, Gen};
use falls::{compress_segments, segments_to_falls, Falls, LineSegment, NestedFalls, NestedSet};
use proptest::prelude::*;

/// Cap on brute-force byte enumeration. Every strategy below bounds its
/// span, so a family bigger than this is a generator regression; failing
/// fast beats an O(bytes) hang in CI.
const BRUTE_CAP: u64 = 1 << 20;

/// `offsets().collect()` with the [`BRUTE_CAP`] guard.
fn enumerate(f: &Falls) -> Vec<u64> {
    assert!(f.size() <= BRUTE_CAP, "FALLS of {} bytes exceeds the brute-force cap", f.size());
    f.offsets().collect()
}

/// Strategy for a valid FALLS inside a span.
fn arb_falls(span: u64) -> impl Strategy<Value = Falls> {
    (0..span, 1u64..=span / 4 + 1, 0u64..span, 1u64..=span).prop_map(
        move |(l, block, extra_stride, want_n)| {
            let l = l.min(span - 1);
            let r = (l + block - 1).min(span - 1);
            let s = (r - l + 1) + extra_stride % (span / 4 + 1);
            let max_n = (span - 1 - r) / s + 1;
            Falls::new(l, r, s, want_n.clamp(1, max_n)).expect("constructed within bounds")
        },
    )
}

/// Strategy for a random nested set driven through the deterministic
/// generator (seeded, so failures reproduce).
fn arb_set(span: u64) -> impl Strategy<Value = NestedSet> {
    any::<u64>().prop_map(move |seed| random_nested_set(&mut Gen::new(seed), span, 3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SIZE(f) equals the number of offsets the family enumerates.
    #[test]
    fn size_equals_offset_count(f in arb_falls(512)) {
        prop_assert_eq!(f.size(), enumerate(&f).len() as u64);
    }

    /// contains(x) agrees with offset enumeration over the whole extent.
    #[test]
    fn contains_agrees_with_offsets(f in arb_falls(128)) {
        let offs: std::collections::HashSet<u64> = enumerate(&f).into_iter().collect();
        for x in 0..=f.extent_end() + 2 {
            prop_assert_eq!(f.contains(x), offs.contains(&x), "byte {}", x);
        }
    }

    /// Segment enumeration is sorted, disjoint, and each has block length.
    #[test]
    fn segments_are_canonical(f in arb_falls(512)) {
        let segs: Vec<LineSegment> = f.segments().collect();
        prop_assert_eq!(segs.len() as u64, f.count());
        for w in segs.windows(2) {
            prop_assert!(w[0].r() < w[1].l());
            prop_assert_eq!(w[1].l() - w[0].l(), f.stride());
        }
        for s in &segs {
            prop_assert_eq!(s.len(), f.block_len());
        }
    }

    /// Compression round-trips segment lists exactly.
    #[test]
    fn compress_round_trip(set in arb_set(256)) {
        let segs = set.absolute_segments();
        let compressed = compress_segments(&segs);
        let mut back: Vec<u64> = compressed.iter().flat_map(enumerate).collect();
        back.sort_unstable();
        prop_assert_eq!(back, set.absolute_offsets());
    }

    /// Compression is at least as compact as the raw segment list.
    #[test]
    fn compress_never_expands(set in arb_set(256)) {
        let segs = set.absolute_segments();
        prop_assert!(compress_segments(&segs).len() <= segs.len().max(1));
    }

    /// Set size equals the flattened byte count, and contains() matches.
    #[test]
    fn set_size_and_contains(set in arb_set(200)) {
        let offs = set.absolute_offsets();
        prop_assert_eq!(set.size(), offs.len() as u64);
        let lookup: std::collections::HashSet<u64> = offs.iter().copied().collect();
        for x in 0..200 {
            prop_assert_eq!(set.contains(x), lookup.contains(&x), "byte {}", x);
        }
    }

    /// Shifting up then down is the identity.
    #[test]
    fn shift_round_trip(set in arb_set(128), delta in 0u64..1000) {
        let shifted = set.shift_up(delta).expect("fits");
        let back = shifted.shift_up(0).unwrap();
        prop_assert_eq!(&back, &shifted);
        let down: Vec<u64> = shifted.absolute_offsets().iter().map(|x| x - delta).collect();
        prop_assert_eq!(down, set.absolute_offsets());
    }

    /// complement() tiles the span exactly: disjoint union = [0, span).
    #[test]
    fn complement_partitions_span(set in arb_set(160)) {
        let comp = set.complement(160);
        prop_assert_eq!(set.size() + comp.size(), 160);
        for x in 0..160 {
            prop_assert!(set.contains(x) ^ comp.contains(x), "byte {}", x);
        }
    }

    /// Height equalization preserves the byte selection and reaches the
    /// target height.
    #[test]
    fn equalization_preserves_selection(set in arb_set(96), extra in 1usize..3) {
        let target = set.height() + extra;
        let eq = set.equalized_to_height(target, 96).expect("wrap within span");
        prop_assert_eq!(eq.height(), target);
        prop_assert_eq!(eq.absolute_offsets(), set.absolute_offsets());
    }

    /// segments_to_falls builds a valid set selecting the same bytes.
    #[test]
    fn segments_to_falls_round_trip(raw in proptest::collection::vec((0u64..300, 1u64..9), 0..24)) {
        // Build sorted disjoint segments from raw (start, len) pairs.
        let mut pos = 0u64;
        let mut segs = Vec::new();
        for (gap, len) in raw {
            let l = pos + gap % 17 + 1;
            let r = l + len - 1;
            segs.push(LineSegment::new(l, r).unwrap());
            pos = r + 1;
        }
        let set = segments_to_falls(&segs);
        let want: Vec<u64> = segs.iter().flat_map(LineSegment::offsets).collect();
        prop_assert_eq!(set.absolute_offsets(), want);
    }

    /// Tree order and sorted order select identical byte sets.
    #[test]
    fn tree_and_sorted_orders_agree(set in arb_set(256)) {
        let mut tree: Vec<u64> = set
            .tree_segments()
            .iter()
            .flat_map(LineSegment::offsets)
            .collect();
        tree.sort_unstable();
        prop_assert_eq!(tree, set.absolute_offsets());
    }
}

/// Nested FALLS display strings parse back structurally (spot form).
#[test]
fn display_forms_are_stable() {
    let nf = NestedFalls::with_inner(
        Falls::new(0, 7, 16, 2).unwrap(),
        vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())],
    )
    .unwrap();
    assert_eq!(nf.to_string(), "(0, 7, 16, 2, {(0, 1, 4, 2)})");
}
