//! Bounded model of the per-node circuit breaker and hedged reads.
//!
//! `net::Session` guards every node with a [`BreakerCore`]-driven
//! breaker (DESIGN.md §16): `threshold` consecutive failures trip it
//! Open, requests are shed until `open_ms` elapses, then exactly one
//! half-open probe decides between re-closing and re-tripping. Hedged
//! reads ride on top: a tail-slow replica's read is duplicated to a
//! second copy after a delay, the first valid answer wins, and the
//! loser's outcome is still drained into the breaker. This module embeds
//! the *same* [`BreakerCore`] automaton the session ships in a small
//! abstract world — one node whose health the scenario scripts, an
//! abstract millisecond clock advanced in explicit ticks, and (for the
//! hedge scenario) an asynchronous in-flight request whose reply races a
//! hedge — and explores every interleaving, checking on every reachable
//! state:
//!
//! * **fail-fast** — an Open breaker never admits a non-probe request,
//!   and never grants the probe before its backoff window elapses;
//! * **single-probe** — while a half-open probe is outstanding, every
//!   further request is shed (at most one probe in flight);
//! * **spurious-trip** — the breaker never leaves Closed without
//!   `threshold` observed failures;
//! * **bounded recovery** — once the node is healthy again, some
//!   reachable interleaving re-closes the breaker (checked as
//!   reachability over the exhausted state space, so a breaker stuck
//!   Open — the [`Mutations::stuck_open`] knob — is caught);
//! * **hedge delivery** — a hedged logical read settles every slot it
//!   opened (no parked straggler leaks a probe outcome) and delivers
//!   exactly one result to the caller.
//!
//! The [`Mutations::stuck_open`] knob re-introduces the bug the
//! bounded-recovery invariant exists to exclude: an Open breaker that
//! never grants its half-open probe, shedding a healthy node forever.

use std::collections::{HashSet, VecDeque};

use parafile_net::{Admission, BreakerCore, BreakerState};

use crate::{Exploration, Limits, Mutations, Violation};

/// Failures before the modeled breaker trips (small enough that the
/// trip is reachable within the request budget).
const THRESHOLD: u32 = 2;
/// Abstract milliseconds the breaker stays Open before a probe.
const OPEN_MS: u64 = 100;
/// Abstract milliseconds per clock tick (two ticks elapse the window).
const TICK_MS: u64 = 60;

// ---------------------------------------------------------------------------
// Scenarios

/// One bounded breaker world to explore.
#[derive(Debug, Clone, Copy)]
pub struct BreakerScenario {
    /// Scenario name for reports.
    pub name: &'static str,
    /// Whether the node answers successfully at the start.
    pub node_up: bool,
    /// Whether a recovery transition (node comes back) is available.
    pub can_recover: bool,
    /// Whether requests are asynchronous reads that may hedge to a
    /// second replica while the primary dawdles.
    pub hedged: bool,
    /// Logical requests the client issues.
    pub requests: u8,
    /// Clock ticks available to elapse breaker backoff.
    pub ticks: u8,
    /// The exploration must reach a state where a tripped breaker
    /// re-closed after the node recovered.
    pub expect_reclose: bool,
}

/// The standard breaker battery: a clean run that must never trip, the
/// trip→backoff→probe→re-close cycle, and hedged reads against a slow
/// (but healthy) primary.
#[must_use]
pub fn breaker_scenarios() -> Vec<BreakerScenario> {
    vec![
        BreakerScenario {
            name: "breaker-clean",
            node_up: true,
            can_recover: false,
            hedged: false,
            requests: 4,
            ticks: 2,
            expect_reclose: false,
        },
        BreakerScenario {
            name: "breaker-trip-recover",
            node_up: false,
            can_recover: true,
            hedged: false,
            requests: 6,
            ticks: 4,
            expect_reclose: true,
        },
        BreakerScenario {
            name: "breaker-hedge",
            node_up: true,
            can_recover: false,
            hedged: true,
            requests: 2,
            ticks: 2,
            expect_reclose: false,
        },
    ]
}

// ---------------------------------------------------------------------------
// The abstract world

/// One reachable global state: the shipped breaker automaton, the
/// abstract clock, the node's scripted health, and the client's
/// in-flight bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct World {
    /// The session's per-node breaker — the production automaton itself.
    breaker: BreakerCore,
    now_ms: u64,
    node_up: bool,
    /// Remaining node-recovery firings (0 or 1).
    recoveries_left: u8,
    requests_left: u8,
    ticks_left: u8,
    /// A request is outstanding on the primary (hedged world only).
    primary_pending: bool,
    /// The outstanding primary request is the half-open probe.
    pending_is_probe: bool,
    /// The duplicate read is outstanding on the second copy.
    hedge_pending: bool,
    /// The current logical read already delivered a result.
    got_result: bool,
    /// Failures the node actually produced (audits spurious trips).
    failures_seen: u32,
    /// The breaker has been Open at least once.
    opened_once: bool,
    /// `now_ms` when the breaker last tripped (audits early probes).
    tripped_at_ms: u64,
    /// A tripped breaker re-closed while the node was healthy.
    reclosed: bool,
    /// A transition observed the automaton misbehave.
    bug: Option<&'static str>,
}

impl World {
    fn init(sc: &BreakerScenario) -> Self {
        Self {
            breaker: BreakerCore::new(THRESHOLD, OPEN_MS),
            now_ms: 0,
            node_up: sc.node_up,
            recoveries_left: u8::from(sc.can_recover),
            requests_left: sc.requests,
            ticks_left: sc.ticks,
            primary_pending: false,
            pending_is_probe: false,
            hedge_pending: false,
            got_result: false,
            failures_seen: 0,
            opened_once: false,
            tripped_at_ms: 0,
            reclosed: false,
            bug: None,
        }
    }

    fn in_flight(&self) -> bool {
        self.primary_pending || self.hedge_pending
    }

    fn terminal(&self) -> bool {
        self.requests_left == 0 && !self.in_flight()
    }

    /// Feeds one observed outcome into the breaker, maintaining the
    /// audit counters the invariants read.
    fn settle(&mut self, ok: bool) {
        let was_open_or_half =
            matches!(self.breaker.state(), BreakerState::Open | BreakerState::HalfOpen);
        if ok {
            self.breaker.record_success();
            if self.opened_once && was_open_or_half && self.node_up {
                self.reclosed = true;
            }
        } else {
            self.failures_seen = self.failures_seen.saturating_add(1);
            self.breaker.record_failure(self.now_ms);
            if self.breaker.state() == BreakerState::Open {
                self.opened_once = true;
                self.tripped_at_ms = self.now_ms;
            }
        }
    }
}

/// Asks the (possibly mutated) breaker for admission. The stuck-open
/// mutation is the bug under test: an Open breaker that never grants
/// its half-open probe, so a recovered node is shed forever.
fn admit(w: &mut World, mu: &Mutations) -> Admission {
    if mu.stuck_open && w.breaker.state() == BreakerState::Open {
        return Admission::Shed;
    }
    let state_before = w.breaker.state();
    let decision = w.breaker.admit(w.now_ms);
    match (state_before, decision) {
        (BreakerState::Open, Admission::Allow) => {
            w.bug = Some("fail-fast violated: open breaker admitted a non-probe request");
        }
        (BreakerState::Open, Admission::Probe)
            if w.now_ms.saturating_sub(w.tripped_at_ms) < OPEN_MS =>
        {
            w.bug = Some("fail-fast violated: probe granted before the backoff window elapsed");
        }
        (BreakerState::Closed, Admission::Shed) => {
            w.bug = Some("closed breaker shed a request");
        }
        _ => {}
    }
    decision
}

// ---------------------------------------------------------------------------
// Transitions

fn successors(w: &World, sc: &BreakerScenario, mu: &Mutations) -> Vec<World> {
    let mut out = Vec::new();
    issue(w, sc, mu, &mut out);
    if sc.hedged {
        hedge(w, &mut out);
        primary_replies(w, &mut out);
        secondary_replies(w, &mut out);
        complete(w, &mut out);
    }
    tick(w, &mut out);
    recover(w, &mut out);
    out
}

/// The client issues the next logical request through the breaker. In
/// the synchronous worlds the outcome settles immediately from the
/// node's health; in the hedged world the request goes in flight and
/// its reply races the hedge.
fn issue(w: &World, sc: &BreakerScenario, mu: &Mutations, out: &mut Vec<World>) {
    if w.requests_left == 0 || w.in_flight() {
        return;
    }
    let mut n = *w;
    let decision = admit(&mut n, mu);
    if sc.hedged {
        match decision {
            Admission::Allow | Admission::Probe => {
                n.primary_pending = true;
                n.pending_is_probe = decision == Admission::Probe;
                n.got_result = false;
            }
            Admission::Shed => {
                // Failover: the read is served by another copy at once.
                n.requests_left -= 1;
            }
        }
    } else {
        match decision {
            Admission::Allow | Admission::Probe => n.settle(n.node_up),
            Admission::Shed => {}
        }
        n.requests_left -= 1;
    }
    out.push(n);
}

/// After the hedge delay the session duplicates the outstanding read to
/// a second copy (stamped data makes the duplicate safe).
fn hedge(w: &World, out: &mut Vec<World>) {
    if !w.primary_pending || w.hedge_pending || w.got_result {
        return;
    }
    let mut n = *w;
    n.hedge_pending = true;
    out.push(n);
}

/// The slow-but-healthy primary finally answers. Whether or not the
/// hedge already won, the outcome is recorded on the breaker — a parked
/// straggler must never leak a probe slot.
fn primary_replies(w: &World, out: &mut Vec<World>) {
    if !w.primary_pending {
        return;
    }
    let mut n = *w;
    n.primary_pending = false;
    n.pending_is_probe = false;
    n.settle(n.node_up);
    if !n.got_result && n.node_up {
        n.got_result = true;
    }
    out.push(n);
}

/// The hedge target answers; the client takes the first valid result
/// and treats the other reply as a straggler.
fn secondary_replies(w: &World, out: &mut Vec<World>) {
    if !w.hedge_pending {
        return;
    }
    let mut n = *w;
    n.hedge_pending = false;
    if !n.got_result {
        n.got_result = true;
    }
    out.push(n);
}

/// The logical read completes once a result is in hand and every slot
/// it opened has settled.
fn complete(w: &World, out: &mut Vec<World>) {
    if !w.got_result || w.in_flight() || w.requests_left == 0 {
        return;
    }
    let mut n = *w;
    n.requests_left -= 1;
    n.got_result = false;
    out.push(n);
}

/// The abstract clock advances one tick (elapses breaker backoff).
fn tick(w: &World, out: &mut Vec<World>) {
    if w.ticks_left == 0 {
        return;
    }
    let mut n = *w;
    n.ticks_left -= 1;
    n.now_ms += TICK_MS;
    out.push(n);
}

/// The scripted node comes back to health.
fn recover(w: &World, out: &mut Vec<World>) {
    if w.node_up || w.recoveries_left == 0 {
        return;
    }
    let mut n = *w;
    n.recoveries_left -= 1;
    n.node_up = true;
    out.push(n);
}

// ---------------------------------------------------------------------------
// Invariants

fn check_invariants(w: &World) -> Option<&'static str> {
    if let Some(bug) = w.bug {
        return Some(bug);
    }
    if w.breaker.state() != BreakerState::Closed && w.failures_seen < THRESHOLD {
        return Some("spurious trip: breaker left Closed below the failure threshold");
    }
    if w.primary_pending && w.pending_is_probe {
        // While the half-open probe is outstanding, a second request
        // must be shed — probe the automaton on a copy.
        let mut probe_check = w.breaker;
        if probe_check.admit(w.now_ms) != Admission::Shed {
            return Some("single-probe violated: a second request was admitted mid-probe");
        }
    }
    if w.terminal() && w.got_result {
        return Some("hedge delivery violated: a result outlived its logical read");
    }
    None
}

// ---------------------------------------------------------------------------
// The explorer

/// Exhaustively explores one breaker scenario breadth-first.
///
/// Unlike [`crate::explore`], the verdict has a reachability half: after
/// the frontier empties, a scenario with `expect_reclose` must have
/// visited at least one state where the tripped breaker re-closed on the
/// recovered node. A breaker stuck Open fails *that* check — no single
/// state is wrong, the whole reachable space is missing recovery.
#[must_use]
pub fn explore_breaker(sc: &BreakerScenario, mu: &Mutations, limits: &Limits) -> Exploration {
    let init = World::init(sc);
    let mut seen: HashSet<World> = HashSet::new();
    seen.insert(init);
    let mut frontier: VecDeque<(World, u32)> = VecDeque::new();
    frontier.push_back((init, 0));
    let mut states: u64 = 0;
    let mut reached_reclose = false;
    let mut done = Exploration { scenario: sc.name, states: 0, truncated: false, violation: None };
    while let Some((w, depth)) = frontier.pop_front() {
        states += 1;
        done.states = states;
        if states > limits.max_states {
            done.truncated = true;
            return done;
        }
        if let Some(invariant) = check_invariants(&w) {
            done.violation = Some(Violation { invariant, depth, state: format!("{w:?}") });
            return done;
        }
        reached_reclose |= w.reclosed;
        if depth >= limits.max_depth {
            continue;
        }
        let succ = successors(&w, sc, mu);
        if succ.is_empty() && !w.terminal() {
            done.violation = Some(Violation {
                invariant: "stuck: non-terminal breaker state with no enabled transition",
                depth,
                state: format!("{w:?}"),
            });
            return done;
        }
        for s in succ {
            if seen.insert(s) {
                frontier.push_back((s, depth + 1));
            }
        }
    }
    if sc.expect_reclose && !reached_reclose {
        done.violation = Some(Violation {
            invariant:
                "bounded recovery violated: no reachable state re-closes the breaker after the node recovers",
            depth: 0,
            state: format!("explored {states} states without a re-close"),
        });
    }
    done
}

/// Runs every breaker scenario under `mu`, stopping at the first
/// violation. Returns all per-scenario results produced so far.
#[must_use]
pub fn check_breakers(mu: &Mutations, limits: &Limits) -> Vec<Exploration> {
    let mut results = Vec::new();
    for sc in breaker_scenarios() {
        let r = explore_breaker(&sc, mu, limits);
        let stop = r.violation.is_some() || r.truncated;
        results.push(r);
        if stop {
            break;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_breaker_model_is_violation_free() {
        for sc in breaker_scenarios() {
            let r = explore_breaker(&sc, &Mutations::none(), &Limits::default());
            assert!(!r.truncated, "{}: exploration truncated at {} states", sc.name, r.states);
            assert!(r.violation.is_none(), "{}: unexpected violation {:?}", sc.name, r.violation);
            assert!(r.states > 3, "{}: suspiciously small state space ({})", sc.name, r.states);
        }
    }

    #[test]
    fn breaker_exploration_is_deterministic() {
        for sc in breaker_scenarios() {
            let a = explore_breaker(&sc, &Mutations::none(), &Limits::default());
            let b = explore_breaker(&sc, &Mutations::none(), &Limits::default());
            assert_eq!(a.states, b.states, "{}: state count must be reproducible", sc.name);
        }
    }

    #[test]
    fn stuck_open_mutation_is_caught() {
        let mu = Mutations { stuck_open: true, ..Mutations::none() };
        let results = check_breakers(&mu, &Limits::default());
        let hit = results.iter().find_map(|r| r.violation.as_ref());
        let v = hit.expect("stuck-open must violate an invariant");
        assert!(v.invariant.contains("bounded recovery"), "caught as {:?}", v.invariant);
    }

    #[test]
    fn trip_recover_scenario_actually_trips() {
        // The clean trip-recover run must pass *because* recovery is
        // reachable, not because the breaker never opened: with the
        // recovery transition removed the same world must fail the
        // reachability half of the verdict.
        let sc = BreakerScenario {
            can_recover: false,
            ..breaker_scenarios()
                .into_iter()
                .find(|s| s.name == "breaker-trip-recover")
                .expect("scenario exists")
        };
        let r = explore_breaker(&sc, &Mutations::none(), &Limits::default());
        let v = r.violation.expect("a never-recovering node cannot re-close the breaker");
        assert!(v.invariant.contains("bounded recovery"), "caught as {:?}", v.invariant);
    }

    #[test]
    fn hedged_world_reaches_completion_without_leaking_probes() {
        // The hedge scenario must exhaust cleanly: every interleaving of
        // primary reply, hedge reply, and straggler drain settles, and
        // the single-probe invariant holds throughout.
        let sc = breaker_scenarios()
            .into_iter()
            .find(|s| s.name == "breaker-hedge")
            .expect("scenario exists");
        let r = explore_breaker(&sc, &Mutations::none(), &Limits::default());
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(!r.truncated);
    }
}
