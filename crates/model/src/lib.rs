//! Bounded exhaustive model checking for the parafile wire protocol.
//!
//! The daemon/client pair in `parafile-net` drives its wire behavior
//! through the typed automata in [`parafile_net::proto`] — version
//! negotiation, the chunk in-flight window, and the server's chunk-stream
//! discipline. This crate closes the loop: it embeds those *same* automata
//! in a small abstract world (one client, one daemon, two FIFO message
//! queues) and explores every interleaving of sends, receives, daemon
//! steps, and injected faults up to a bounded depth, checking the
//! protocol's safety invariants on every reachable state:
//!
//! * **exactly-once** — a stamped logical write is applied fresh at most
//!   once, across retries, daemon crashes, and journal recovery;
//! * **write-before-ack** — a fresh `WriteOk` is never on the wire (or
//!   consumed) unless the stamped journal intent is durable;
//! * **chunk window** — the client never exceeds `CHUNK_WINDOW` frames in
//!   flight;
//! * **fallback safety** — no chunk frame is ever emitted below protocol
//!   v3, and a v3 client completes against a v2-capped daemon;
//! * **liveness (bounded)** — no reachable non-terminal state is stuck.
//!
//! Faults are not invented here: each scenario perturbs the interleaving
//! with one of the six [`parafile_net::fault`] families
//! (`drop`/`truncate`/`flush`/`kill`/`torn`/`delay`), mapped through
//! [`Perturbation::from_plan`] so the checked fault menu is exactly the
//! chaos-proxy menu.
//!
//! The explorer is deterministic: breadth-first over a `HashSet` seen-set,
//! so the explored-state count is reproducible run to run and is reported
//! in CI against a budget. Mutations ([`Mutations`]) re-introduce the
//! bugs the invariants exist to exclude (ack-before-journal, missing
//! dedup, ignored window, ack-below-quorum, stuck-open) and the test
//! suite proves each one is caught.
//!
//! The [`quorum`] module extends the battery with a replicated-store
//! world: quorum writes over `R = 2` copies with a replica-crash
//! perturbation, checking per-replica exactly-once, journal-before-ack,
//! and quorum accounting (success implies every replica acked or is
//! recorded dirty). The [`breaker`] module embeds the session's
//! [`parafile_net::BreakerCore`] automaton and checks fail-fast
//! shedding, the single half-open probe, bounded recovery, and hedged
//! duplicate delivery. [`check_everything`] runs all three batteries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod quorum;

pub use breaker::{breaker_scenarios, check_breakers, explore_breaker, BreakerScenario};
pub use quorum::{check_quorum, explore_quorum, quorum_scenarios, QuorumScenario};

use std::collections::{HashSet, VecDeque};

use parafile_net::proto::{version_admitted, StreamProgress};
use parafile_net::{ChunkHeader, ChunkSender, FaultPlan, Negotiation, WriteStream};

/// Bytes per modeled chunk (the concrete value is irrelevant to the
/// invariants; it only has to make the stream arithmetic non-trivial).
const CHUNK_LEN: u64 = 4;
/// The modeled session id (non-zero = stamped, like a real v2+ session).
const SESSION: u64 = 7;
/// The modeled sequence number of the single logical write.
const SEQ: u64 = 1;

// ---------------------------------------------------------------------------
// Fault perturbations

/// One of the six `net::fault` families, reduced to its effect on the
/// abstract world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Perturbation {
    /// Sever the connection: both queues drain to the floor, the client
    /// retries.
    Drop,
    /// Truncate a frame mid-payload then sever — indistinguishable from
    /// [`Perturbation::Drop`] at this abstraction level (the wire codec's
    /// handling of the torn frame itself is fuzzed separately), kept as
    /// its own scenario so every family has a named run.
    Truncate,
    /// The daemon answers the next write-class frame with a transient
    /// internal error instead of serving it (the `flush` family's
    /// fail-then-recover shape).
    Flush,
    /// Kill the daemon: volatile state (dedup window, in-progress stream)
    /// is lost, the journal survives, a restart recovers from it.
    Kill,
    /// Crash mid-apply *after* the journal append of the current frame —
    /// the torn-subfile scenario the write-ahead journal heals.
    Torn,
    /// A frame is held back by injected latency: nothing is lost or
    /// corrupted, the node is merely late. In the FIFO wire world a
    /// delayed frame is indistinguishable from the scheduling stalls the
    /// explorer already interleaves, so the perturbation is a budgeted
    /// no-op here; its behavioral bite (timeouts feeding the breaker,
    /// hedged reads racing the straggler) is checked by the [`breaker`]
    /// battery.
    Delay,
}

impl Perturbation {
    /// Maps a concrete chaos-proxy [`FaultPlan`] onto its abstract
    /// perturbation, so model scenarios are seeded from the same six
    /// fault families the integration chaos tests use.
    #[must_use]
    pub fn from_plan(plan: &FaultPlan) -> Option<Self> {
        if plan.torn_write.is_some() {
            Some(Self::Torn)
        } else if plan.kill_after_frames.is_some() {
            Some(Self::Kill)
        } else if plan.fail_flush > 0 {
            Some(Self::Flush)
        } else if plan.truncate.is_some() {
            Some(Self::Truncate)
        } else if plan.drop_after_frames.is_some() {
            Some(Self::Drop)
        } else if plan.delay.is_some() {
            Some(Self::Delay)
        } else {
            None
        }
    }

    /// Parses a chaos spec (`drop:1`, `torn:9`, a bare seed, ...) into a
    /// perturbation via [`FaultPlan::parse`].
    pub fn from_spec(spec: &str) -> Result<Option<Self>, String> {
        Ok(Self::from_plan(&FaultPlan::parse(spec)?))
    }
}

// ---------------------------------------------------------------------------
// Seeded mutations

/// Deliberately re-introduced protocol bugs.
///
/// Each knob disables one safeguard in the modeled daemon or client; the
/// checker must report a violated invariant for every knob (that is the
/// mutation-coverage proof that the invariants actually bite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mutations {
    /// The daemon enqueues a fresh `WriteOk` without first making the
    /// stamped journal intent durable.
    pub ack_before_journal: bool,
    /// The daemon skips the `(session, seq)` dedup lookup, so a retried
    /// write is applied again.
    pub skip_dedup: bool,
    /// The client bypasses the [`ChunkSender`] window guard and keeps
    /// sending while the window is full.
    pub ignore_window: bool,
    /// The replicated session reports success the moment any single
    /// replica acks, without recording the missing replicas as dirty
    /// (checked by the [`quorum`] world, not the wire world).
    pub ack_below_quorum: bool,
    /// An Open circuit breaker never grants its half-open probe, so a
    /// recovered node is shed forever (checked by the [`breaker`]
    /// world's bounded-recovery verdict).
    pub stuck_open: bool,
}

impl Mutations {
    /// No mutations: the shipped protocol.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Looks up a mutation knob by its CLI name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        let mut m = Self::none();
        match name {
            "ack-before-journal" => m.ack_before_journal = true,
            "skip-dedup" => m.skip_dedup = true,
            "ignore-window" => m.ignore_window = true,
            "ack-below-quorum" => m.ack_below_quorum = true,
            "stuck-open" => m.stuck_open = true,
            other => {
                return Err(format!(
                    "unknown mutation {other:?} (expected ack-before-journal, skip-dedup, ignore-window, ack-below-quorum, or stuck-open)"
                ))
            }
        }
        Ok(m)
    }

    /// Every mutation knob with its CLI name.
    #[must_use]
    pub fn all_named() -> Vec<(&'static str, Self)> {
        vec![
            ("ack-before-journal", Self { ack_before_journal: true, ..Self::none() }),
            ("skip-dedup", Self { skip_dedup: true, ..Self::none() }),
            ("ignore-window", Self { ignore_window: true, ..Self::none() }),
            ("ack-below-quorum", Self { ack_below_quorum: true, ..Self::none() }),
            ("stuck-open", Self { stuck_open: true, ..Self::none() }),
        ]
    }
}

// ---------------------------------------------------------------------------
// Scenarios

/// One bounded world to explore: a client shape, a daemon version cap,
/// and at most one fault perturbation.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name for reports.
    pub name: &'static str,
    /// Whether the client attempts the chunked (v3) write path.
    pub chunked: bool,
    /// Number of chunks in the modeled stream (chunked scenarios).
    pub n_chunks: u64,
    /// Client in-flight window.
    pub window: u64,
    /// Highest protocol version the daemon admits.
    pub server_max_version: u8,
    /// Client retry attempts before giving up.
    pub attempts: u8,
    /// The fault family perturbing this scenario, if any.
    pub perturbation: Option<Perturbation>,
}

/// The standard scenario battery: clean runs, every fault family against
/// the chunked path, and the v3→v2 fallback with and without faults.
///
/// Fault scenarios are derived from real chaos specs via
/// [`Perturbation::from_spec`], so this list cannot drift from the
/// `net::fault` families.
#[must_use]
pub fn standard_scenarios() -> Vec<Scenario> {
    let base = Scenario {
        name: "",
        chunked: true,
        n_chunks: 3,
        window: 2,
        server_max_version: 3,
        attempts: 3,
        perturbation: None,
    };
    let fault = |name, spec: &str| Scenario {
        name,
        perturbation: Perturbation::from_spec(spec).expect("static chaos spec parses"),
        ..base.clone()
    };
    vec![
        Scenario { name: "v3-mono-clean", chunked: false, ..base.clone() },
        Scenario { name: "v3-chunk-clean", ..base.clone() },
        fault("v3-chunk-drop", "drop:1"),
        fault("v3-chunk-truncate", "truncate:1"),
        fault("v3-chunk-flush", "flush:1"),
        fault("v3-chunk-kill", "kill:1"),
        fault("v3-chunk-torn", "torn:1"),
        fault("v3-chunk-delay", "delay:1"),
        Scenario { name: "v2-fallback-clean", server_max_version: 2, ..base.clone() },
        Scenario {
            name: "v2-fallback-drop",
            server_max_version: 2,
            perturbation: Perturbation::from_spec("drop:1").expect("static chaos spec parses"),
            ..base.clone()
        },
        Scenario {
            name: "v3-mono-kill",
            chunked: false,
            perturbation: Perturbation::from_spec("kill:1").expect("static chaos spec parses"),
            ..base
        },
    ]
}

// ---------------------------------------------------------------------------
// The abstract world

/// A wire message in flight on one of the two FIFO queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Msg {
    /// Client capability probe.
    Ping { version: u8 },
    /// Daemon probe answer (carries `max_chunk` on the real wire).
    Pong,
    /// Monolithic stamped write.
    Write { version: u8 },
    /// One chunk of a v3 streamed write.
    WriteChunk { version: u8, h: ChunkHeader },
    /// Ack for a non-final chunk.
    ChunkOk,
    /// Final ack for the logical write.
    WriteOk { replayed: bool },
    /// The daemon rejected the frame's protocol version.
    ErrUnsupportedVersion,
    /// A transient daemon-side failure (the `flush` fault family).
    ErrTransient,
}

/// Client control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Deciding how to issue the write (probe or monolithic).
    Start,
    /// Probe sent, waiting for `Pong` (or a version rejection).
    AwaitPong,
    /// Chunk stream in progress, driven by the [`ChunkSender`] window.
    Streaming,
    /// Monolithic write sent, waiting for `WriteOk`.
    AwaitWriteOk,
    /// Terminal: the logical write was acknowledged.
    Done,
    /// Terminal: retries exhausted.
    Failed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Client {
    neg: Negotiation,
    phase: Phase,
    sender: Option<ChunkSender>,
    attempts_left: u8,
    got_fresh_ack: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Server {
    alive: bool,
    /// Flush-family perturbation armed: fail the next write-class frame.
    fail_next: bool,
    stream: Option<WriteStream>,
    /// The in-progress chunk stream hit the dedup window at start.
    replaying: bool,
    /// Volatile `(session, seq)` dedup window holds our stamp.
    dedup_has_stamp: bool,
    /// Durable journal: chunk intent records appended (survives kills).
    journal_chunks: u8,
    /// Durable journal: the stamped (final) intent record is present.
    journal_stamped: bool,
    /// Times the logical write was applied fresh (the exactly-once
    /// counter).
    applied_fresh: u8,
    /// The daemon rejected a frame the verified client produced.
    protocol_error: bool,
}

/// One reachable global state: client, daemon, the two FIFO queues, and
/// the remaining fault budget.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct World {
    client: Client,
    server: Server,
    c2s: VecDeque<Msg>,
    s2c: VecDeque<Msg>,
    fault_budget: u8,
}

impl World {
    fn init(sc: &Scenario) -> Self {
        Self {
            client: Client {
                neg: Negotiation::new(),
                phase: Phase::Start,
                sender: None,
                attempts_left: sc.attempts.max(1),
                got_fresh_ack: false,
            },
            server: Server {
                alive: true,
                fail_next: false,
                stream: None,
                replaying: false,
                dedup_has_stamp: false,
                journal_chunks: 0,
                journal_stamped: false,
                applied_fresh: 0,
                protocol_error: false,
            },
            c2s: VecDeque::new(),
            s2c: VecDeque::new(),
            fault_budget: 0,
        }
    }

    fn terminal(&self) -> bool {
        matches!(self.client.phase, Phase::Done | Phase::Failed)
    }

    /// The connection died (fault or daemon crash): in-flight frames are
    /// gone, the daemon's per-connection stream state is gone, and the
    /// client either retries the logical write or gives up.
    fn sever_and_retry(&mut self) {
        self.c2s.clear();
        self.s2c.clear();
        self.server.stream = None;
        self.server.replaying = false;
        let c = &mut self.client;
        c.sender = None;
        if matches!(c.phase, Phase::Done | Phase::Failed) {
            return;
        }
        if c.attempts_left <= 1 {
            c.attempts_left = 0;
            c.phase = Phase::Failed;
        } else {
            c.attempts_left -= 1;
            c.phase = Phase::Start;
        }
    }
}

fn chunk_header(sc: &Scenario, index: u64, last: bool) -> ChunkHeader {
    let total = sc.n_chunks * CHUNK_LEN;
    ChunkHeader {
        file: 1,
        compute: 0,
        l_s: 0,
        r_s: total - 1,
        session: SESSION,
        seq: SEQ,
        offset: index * CHUNK_LEN,
        total,
        last,
        len: CHUNK_LEN,
    }
}

// ---------------------------------------------------------------------------
// Transitions

/// Every successor of `w` under the scenario's enabled transitions.
fn successors(w: &World, sc: &Scenario, mu: &Mutations) -> Vec<World> {
    let mut out = Vec::new();
    client_send(w, sc, mu, &mut out);
    client_recv(w, sc, &mut out);
    server_step(w, sc, mu, &mut out);
    if !w.server.alive {
        out.push(server_restart(w));
    }
    fault_steps(w, sc, mu, &mut out);
    out
}

/// Client-initiated sends (only while the daemon accepts connections).
fn client_send(w: &World, sc: &Scenario, mu: &Mutations, out: &mut Vec<World>) {
    if !w.server.alive {
        return;
    }
    match w.client.phase {
        Phase::Start => {
            let mut n = w.clone();
            let version = n.client.neg.version();
            if sc.chunked && n.client.neg.supports_chunking() {
                n.c2s.push_back(Msg::Ping { version });
                n.client.phase = Phase::AwaitPong;
            } else {
                n.c2s.push_back(Msg::Write { version });
                n.client.phase = Phase::AwaitWriteOk;
            }
            out.push(n);
        }
        Phase::Streaming => {
            let Some(sender) = w.client.sender else { return };
            // The mutated client barges past the window guard: anything
            // unsent is fair game even with the window full.
            let plan = sender.next_to_send().or_else(|| {
                (mu.ignore_window && !sender.all_sent())
                    .then_some(parafile_net::proto::ChunkPlan { index: sender.sent(), last: false })
            });
            if let Some(plan) = plan {
                let mut n = w.clone();
                let sender = n.client.sender.as_mut().expect("checked above");
                let h = chunk_header(sc, plan.index, plan.last);
                n.c2s.push_back(Msg::WriteChunk { version: n.client.neg.version(), h });
                sender.record_send();
                out.push(n);
            }
        }
        _ => {}
    }
}

/// Client consumes the head of the daemon→client queue.
fn client_recv(w: &World, sc: &Scenario, out: &mut Vec<World>) {
    let Some(&msg) = w.s2c.front() else { return };
    let mut n = w.clone();
    n.s2c.pop_front();
    match msg {
        Msg::Pong => {
            if matches!(n.client.phase, Phase::AwaitPong) {
                // The real client computes n_chunks from the peer's
                // max_chunk; the scenario fixes the stream shape.
                n.client.sender = Some(ChunkSender::new(sc.n_chunks, sc.window));
                n.client.phase = Phase::Streaming;
            }
            out.push(n);
        }
        Msg::ErrUnsupportedVersion => {
            // Step the ladder down and reissue; at the floor the write
            // fails outright. The daemon's per-connection state is gone
            // either way (the real client reopens the request).
            n.c2s.clear();
            n.server.stream = None;
            n.server.replaying = false;
            n.client.sender = None;
            if n.client.neg.downgrade() {
                n.client.phase = Phase::Start;
            } else {
                n.client.phase = Phase::Failed;
            }
            out.push(n);
        }
        Msg::ChunkOk => {
            if let Some(sender) = n.client.sender.as_mut() {
                if sender.record_ack().is_err() {
                    // A spurious ack is unreachable from the verified
                    // daemon; surface it as a daemon-side protocol error
                    // so the invariant pass reports it.
                    n.server.protocol_error = true;
                }
            }
            out.push(n);
        }
        Msg::WriteOk { replayed } => {
            n.client.phase = Phase::Done;
            n.client.sender = None;
            if !replayed {
                n.client.got_fresh_ack = true;
            }
            out.push(n);
        }
        Msg::ErrTransient => {
            n.sever_and_retry();
            out.push(n);
        }
        Msg::Ping { .. } | Msg::Write { .. } | Msg::WriteChunk { .. } => {
            // Malformed direction; unreachable by construction.
            n.server.protocol_error = true;
            out.push(n);
        }
    }
}

/// Daemon consumes the head of the client→daemon queue.
fn server_step(w: &World, sc: &Scenario, mu: &Mutations, out: &mut Vec<World>) {
    if !w.server.alive {
        return;
    }
    let Some(&msg) = w.c2s.front() else { return };
    let mut n = w.clone();
    n.c2s.pop_front();
    match msg {
        Msg::Ping { version } => {
            if version_admitted(version, sc.server_max_version) {
                n.s2c.push_back(Msg::Pong);
            } else {
                n.s2c.push_back(Msg::ErrUnsupportedVersion);
            }
        }
        Msg::Write { version } => {
            if !version_admitted(version, sc.server_max_version) {
                n.s2c.push_back(Msg::ErrUnsupportedVersion);
            } else if n.server.fail_next {
                n.server.fail_next = false;
                n.s2c.push_back(Msg::ErrTransient);
            } else if !mu.skip_dedup && n.server.dedup_has_stamp {
                n.s2c.push_back(Msg::WriteOk { replayed: true });
            } else {
                apply_fresh_final(&mut n.server, mu);
                n.s2c.push_back(Msg::WriteOk { replayed: false });
            }
        }
        Msg::WriteChunk { version, h } => {
            if !version_admitted(version, sc.server_max_version) {
                n.server.stream = None;
                n.s2c.push_back(Msg::ErrUnsupportedVersion);
            } else if n.server.fail_next {
                n.server.fail_next = false;
                n.server.stream = None;
                n.s2c.push_back(Msg::ErrTransient);
            } else {
                if h.offset == 0 {
                    n.server.replaying = !mu.skip_dedup && n.server.dedup_has_stamp;
                    n.server.stream = Some(WriteStream::start(&h));
                } else if n.server.stream.is_none() {
                    // The trailing tail of a stream the daemon already
                    // aborted (e.g. a transient error answered while
                    // more chunks were pipelined in flight). The real
                    // daemon answers `Malformed`; the client abandons
                    // the connection and retries. Benign.
                    n.s2c.push_back(Msg::ErrTransient);
                    out.push(n);
                    return;
                } else if !n.server.stream.as_ref().is_some_and(|ws| ws.continues(&h)) {
                    // A gap or identity mismatch within a live stream:
                    // the verified client cannot produce one, so the
                    // invariant pass flags the run instead of silently
                    // replying Malformed.
                    n.server.stream = None;
                    n.server.protocol_error = true;
                    out.push(n);
                    return;
                }
                let Some(ws) = n.server.stream.as_mut() else {
                    n.server.protocol_error = true;
                    out.push(n);
                    return;
                };
                match ws.accept(&h) {
                    Err(_) => {
                        n.server.stream = None;
                        n.server.protocol_error = true;
                    }
                    Ok(StreamProgress::Middle) => {
                        if !n.server.replaying {
                            n.server.journal_chunks = n.server.journal_chunks.saturating_add(1);
                        }
                        n.s2c.push_back(Msg::ChunkOk);
                    }
                    Ok(StreamProgress::Final) => {
                        if n.server.replaying {
                            n.s2c.push_back(Msg::WriteOk { replayed: true });
                        } else {
                            n.server.journal_chunks = n.server.journal_chunks.saturating_add(1);
                            apply_fresh_final(&mut n.server, mu);
                            n.s2c.push_back(Msg::WriteOk { replayed: false });
                        }
                        n.server.stream = None;
                        n.server.replaying = false;
                    }
                }
            }
        }
        _ => {
            n.server.protocol_error = true;
        }
    }
    out.push(n);
}

/// The fresh-apply commit point: journal the stamped intent (unless the
/// ack-before-journal mutation removes the append), apply, remember the
/// stamp in the dedup window.
fn apply_fresh_final(s: &mut Server, mu: &Mutations) {
    if !mu.ack_before_journal {
        s.journal_stamped = true;
    }
    s.applied_fresh = s.applied_fresh.saturating_add(1);
    s.dedup_has_stamp = true;
}

/// Restart a killed daemon: volatile state is rebuilt from the durable
/// journal — recovery replays stamped intents into the dedup window.
fn server_restart(w: &World) -> World {
    let mut n = w.clone();
    n.server.alive = true;
    n.server.fail_next = false;
    n.server.stream = None;
    n.server.replaying = false;
    n.server.dedup_has_stamp = n.server.journal_stamped;
    n
}

/// Fault transitions: at most one firing per run (`fault_budget`), gated
/// on states where the family can physically occur.
fn fault_steps(w: &World, sc: &Scenario, mu: &Mutations, out: &mut Vec<World>) {
    let Some(p) = sc.perturbation else { return };
    if w.fault_budget == 0 || w.terminal() {
        return;
    }
    match p {
        Perturbation::Drop | Perturbation::Truncate => {
            let mut n = w.clone();
            n.fault_budget -= 1;
            n.sever_and_retry();
            out.push(n);
        }
        Perturbation::Flush => {
            if w.server.alive && !w.server.fail_next {
                let mut n = w.clone();
                n.fault_budget -= 1;
                n.server.fail_next = true;
                out.push(n);
            }
        }
        Perturbation::Kill => {
            if w.server.alive {
                let mut n = w.clone();
                n.fault_budget -= 1;
                n.server.alive = false;
                n.server.fail_next = false;
                n.server.stream = None;
                n.server.replaying = false;
                // The dedup window is volatile; the journal is not.
                n.server.dedup_has_stamp = false;
                n.sever_and_retry();
                out.push(n);
            }
        }
        Perturbation::Delay => {
            // Latency neither loses nor corrupts anything; the FIFO
            // queues already model a frame sitting unconsumed for any
            // number of steps. Consuming the budget keeps the scenario
            // named and proves the run terminates with a dawdling peer.
            let mut n = w.clone();
            n.fault_budget -= 1;
            out.push(n);
        }
        Perturbation::Torn => {
            // Crash mid-apply: the head frame's journal append lands,
            // the scatter is cut short, no ack is ever produced.
            if !w.server.alive {
                return;
            }
            let fresh_write = match w.c2s.front() {
                Some(Msg::Write { .. }) => {
                    (mu.skip_dedup || !w.server.dedup_has_stamp).then_some(true)
                }
                Some(Msg::WriteChunk { h, .. }) if h.offset == 0 => {
                    (mu.skip_dedup || !w.server.dedup_has_stamp).then_some(h.last)
                }
                _ => None,
            };
            let Some(last) = fresh_write else { return };
            let mut n = w.clone();
            n.fault_budget -= 1;
            n.c2s.pop_front();
            n.server.journal_chunks = n.server.journal_chunks.saturating_add(1);
            if last && !mu.ack_before_journal {
                // The stamped intent is durable: recovery will complete
                // the apply, so exactly-once accounting counts it now.
                n.server.journal_stamped = true;
                n.server.applied_fresh = n.server.applied_fresh.saturating_add(1);
            }
            n.server.alive = false;
            n.server.fail_next = false;
            n.server.stream = None;
            n.server.replaying = false;
            n.server.dedup_has_stamp = false;
            n.sever_and_retry();
            out.push(n);
        }
    }
}

// ---------------------------------------------------------------------------
// Invariants

fn check_invariants(w: &World) -> Option<&'static str> {
    if let Some(sender) = &w.client.sender {
        if !sender.within_window() {
            return Some("chunk window exceeded: more frames in flight than CHUNK_WINDOW");
        }
    }
    if w.server.applied_fresh > 1 {
        return Some("exactly-once violated: stamped write applied fresh more than once");
    }
    let fresh_ack_visible = w.client.got_fresh_ack
        || w.s2c.iter().any(|m| matches!(m, Msg::WriteOk { replayed: false }));
    if fresh_ack_visible && !w.server.journal_stamped {
        return Some("write-before-ack violated: fresh WriteOk without a durable journal intent");
    }
    if w.c2s.iter().any(|m| matches!(m, Msg::WriteChunk { version, .. } if *version < 3)) {
        return Some("fallback safety violated: chunk frame emitted below protocol v3");
    }
    if w.server.protocol_error {
        return Some("daemon rejected a frame produced by the verified client");
    }
    if matches!(w.client.phase, Phase::Done) && w.server.applied_fresh == 0 {
        return Some("completed session whose write was never applied");
    }
    None
}

// ---------------------------------------------------------------------------
// The explorer

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum interleaving depth (transitions from the initial state).
    pub max_depth: u32,
    /// Maximum unique states to explore before declaring the run
    /// truncated.
    pub max_states: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Self { max_depth: 64, max_states: 200_000 }
    }
}

/// A violated invariant, with the offending reachable state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// BFS depth at which the state was reached.
    pub depth: u32,
    /// Debug rendering of the violating state.
    pub state: String,
}

/// The result of exhausting (or truncating) one scenario's state space.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Scenario name.
    pub scenario: &'static str,
    /// Unique states explored.
    pub states: u64,
    /// The state budget was exhausted before the frontier emptied.
    pub truncated: bool,
    /// First invariant violation found, if any.
    pub violation: Option<Violation>,
}

/// Exhaustively explores one scenario breadth-first.
///
/// Deterministic: the seen-set is keyed on the full `World` value, and
/// the reported state count is independent of hasher seeding (it counts
/// set insertions, not iteration order).
#[must_use]
pub fn explore(sc: &Scenario, mu: &Mutations, limits: &Limits) -> Exploration {
    let mut init = World::init(sc);
    init.fault_budget = u8::from(sc.perturbation.is_some());
    let mut seen: HashSet<World> = HashSet::new();
    seen.insert(init.clone());
    let mut frontier: VecDeque<(World, u32)> = VecDeque::new();
    frontier.push_back((init, 0));
    let mut states: u64 = 0;
    let mut done = Exploration { scenario: sc.name, states: 0, truncated: false, violation: None };
    while let Some((w, depth)) = frontier.pop_front() {
        states += 1;
        done.states = states;
        if states > limits.max_states {
            done.truncated = true;
            return done;
        }
        if let Some(invariant) = check_invariants(&w) {
            done.violation = Some(Violation { invariant, depth, state: format!("{w:?}") });
            return done;
        }
        if depth >= limits.max_depth {
            continue;
        }
        let succ = successors(&w, sc, mu);
        if succ.is_empty() && !w.terminal() {
            done.violation = Some(Violation {
                invariant: "stuck: non-terminal state with no enabled transition",
                depth,
                state: format!("{w:?}"),
            });
            return done;
        }
        for s in succ {
            if seen.insert(s.clone()) {
                frontier.push_back((s, depth + 1));
            }
        }
    }
    done
}

/// Runs every standard scenario under `mu`, stopping at the first
/// violation. Returns all per-scenario results produced so far.
#[must_use]
pub fn check_all(mu: &Mutations, limits: &Limits) -> Vec<Exploration> {
    let mut results = Vec::new();
    for sc in standard_scenarios() {
        let r = explore(&sc, mu, limits);
        let stop = r.violation.is_some() || r.truncated;
        results.push(r);
        if stop {
            break;
        }
    }
    results
}

/// Runs the wire-protocol battery, the replicated-store quorum battery
/// ([`quorum::check_quorum`]), and the circuit-breaker battery
/// ([`breaker::check_breakers`]), stopping at the first violation
/// across all three. This is what `pf-model` and CI execute, so every
/// mutation knob — including the quorum-only `ack-below-quorum` and the
/// breaker-only `stuck-open` — is covered by one entry point.
#[must_use]
pub fn check_everything(mu: &Mutations, limits: &Limits) -> Vec<Exploration> {
    let mut results = check_all(mu, limits);
    let stopped = |rs: &[Exploration]| rs.iter().any(|r| r.violation.is_some() || r.truncated);
    if !stopped(&results) {
        results.extend(check_quorum(mu, limits));
    }
    if !stopped(&results) {
        results.extend(check_breakers(mu, limits));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_model_is_violation_free() {
        for sc in standard_scenarios() {
            let r = explore(&sc, &Mutations::none(), &Limits::default());
            assert!(!r.truncated, "{}: exploration truncated at {} states", sc.name, r.states);
            assert!(r.violation.is_none(), "{}: unexpected violation {:?}", sc.name, r.violation);
            assert!(r.states > 3, "{}: suspiciously small state space ({})", sc.name, r.states);
        }
    }

    #[test]
    fn exploration_is_deterministic() {
        for sc in standard_scenarios() {
            let a = explore(&sc, &Mutations::none(), &Limits::default());
            let b = explore(&sc, &Mutations::none(), &Limits::default());
            assert_eq!(a.states, b.states, "{}: state count must be reproducible", sc.name);
        }
    }

    #[test]
    fn ack_before_journal_mutation_is_caught() {
        let mu = Mutations { ack_before_journal: true, ..Mutations::none() };
        let results = check_all(&mu, &Limits::default());
        let hit = results.iter().find_map(|r| r.violation.as_ref());
        let v = hit.expect("ack-before-journal must violate an invariant");
        assert!(v.invariant.contains("write-before-ack"), "caught as {:?}", v.invariant);
    }

    #[test]
    fn skip_dedup_mutation_is_caught() {
        let mu = Mutations { skip_dedup: true, ..Mutations::none() };
        let results = check_all(&mu, &Limits::default());
        let hit = results.iter().find_map(|r| r.violation.as_ref());
        let v = hit.expect("skip-dedup must violate an invariant");
        assert!(v.invariant.contains("exactly-once"), "caught as {:?}", v.invariant);
    }

    #[test]
    fn ignore_window_mutation_is_caught() {
        let mu = Mutations { ignore_window: true, ..Mutations::none() };
        let results = check_all(&mu, &Limits::default());
        let hit = results.iter().find_map(|r| r.violation.as_ref());
        let v = hit.expect("ignore-window must violate an invariant");
        assert!(v.invariant.contains("chunk window"), "caught as {:?}", v.invariant);
    }

    #[test]
    fn every_named_mutation_is_caught() {
        for (name, mu) in Mutations::all_named() {
            let results = check_everything(&mu, &Limits::default());
            assert!(
                results.iter().any(|r| r.violation.is_some()),
                "mutation {name} slipped through the invariant net"
            );
            assert_eq!(Mutations::from_name(name).expect("name round-trips"), mu);
        }
    }

    #[test]
    fn perturbations_cover_every_fault_family() {
        let specs = ["drop:1", "truncate:1", "flush:1", "kill:1", "torn:1", "delay:1"];
        let expect = [
            Perturbation::Drop,
            Perturbation::Truncate,
            Perturbation::Flush,
            Perturbation::Kill,
            Perturbation::Torn,
            Perturbation::Delay,
        ];
        for (spec, want) in specs.iter().zip(expect) {
            let got = Perturbation::from_spec(spec).expect("spec parses");
            assert_eq!(got, Some(want), "spec {spec}");
        }
        // Seeded plans always land in exactly one family.
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(seed);
            assert!(Perturbation::from_plan(&plan).is_some(), "seed {seed} maps to a family");
        }
    }

    #[test]
    fn fallback_scenario_completes_at_v2_without_chunks() {
        // The v2-capped daemon forces the ladder down; the clean fallback
        // run must terminate violation-free, which (per the fallback
        // invariant) proves no chunk frame was emitted below v3.
        let sc = standard_scenarios()
            .into_iter()
            .find(|s| s.name == "v2-fallback-clean")
            .expect("scenario exists");
        let r = explore(&sc, &Mutations::none(), &Limits::default());
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(!r.truncated);
    }
}
