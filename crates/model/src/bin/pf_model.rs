//! `pf-model` — run the bounded protocol model checker.
//!
//! Exit codes: `0` every scenario explored violation-free within budget;
//! `1` an invariant violation was found (expected under `--mutate`);
//! `2` the state budget was exceeded or the arguments were invalid.

use std::process::ExitCode;

use parafile_model::{
    breaker_scenarios, check_everything, quorum_scenarios, standard_scenarios, Limits, Mutations,
};

const USAGE: &str = "\
usage: pf-model [options]
  --mutate <knob>   seed a deliberate protocol bug and expect it caught
                    (ack-before-journal | skip-dedup | ignore-window |
                     ack-below-quorum | stuck-open)
  --budget <N>      total explored-state budget across scenarios
  --depth <D>       maximum interleaving depth per scenario
  --list            list scenarios and exit
  -h, --help        show this help";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut mutations = Mutations::none();
    let mut mutated = false;
    let mut budget: u64 = 500_000;
    let mut limits = Limits::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mutate" => {
                let name = it.next().ok_or("--mutate needs a knob name")?;
                mutations = Mutations::from_name(name)?;
                mutated = true;
            }
            "--budget" => {
                let n = it.next().ok_or("--budget needs a number")?;
                budget = n.parse().map_err(|_| format!("bad budget: {n:?}"))?;
            }
            "--depth" => {
                let d = it.next().ok_or("--depth needs a number")?;
                limits.max_depth = d.parse().map_err(|_| format!("bad depth: {d:?}"))?;
            }
            "--list" => {
                for sc in standard_scenarios() {
                    println!(
                        "{:<20} chunked={} n_chunks={} window={} server_max=v{} fault={:?}",
                        sc.name,
                        sc.chunked,
                        sc.n_chunks,
                        sc.window,
                        sc.server_max_version,
                        sc.perturbation
                    );
                }
                for sc in quorum_scenarios() {
                    println!(
                        "{:<20} replicated crash_rank={:?} duplicate={}",
                        sc.name, sc.crash_rank, sc.duplicate
                    );
                }
                for sc in breaker_scenarios() {
                    println!(
                        "{:<20} breaker node_up={} recover={} hedged={} requests={}",
                        sc.name, sc.node_up, sc.can_recover, sc.hedged, sc.requests
                    );
                }
                return Ok(ExitCode::SUCCESS);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }

    // The per-scenario cap is the whole remaining budget; the total is
    // enforced across scenarios below.
    limits.max_states = budget;
    println!(
        "pf-model: exploring {} scenarios (budget {budget} states, depth {}){}",
        standard_scenarios().len() + quorum_scenarios().len() + breaker_scenarios().len(),
        limits.max_depth,
        if mutated { " [mutated]" } else { "" },
    );

    let results = check_everything(&mutations, &limits);
    let mut total: u64 = 0;
    let mut violated = false;
    let mut truncated = false;
    for r in &results {
        total += r.states;
        let status = if let Some(v) = &r.violation {
            violated = true;
            format!("VIOLATION: {}", v.invariant)
        } else if r.truncated {
            truncated = true;
            "BUDGET EXCEEDED".to_string()
        } else {
            "ok".to_string()
        };
        println!("  {:<20} {:>8} states   {status}", r.scenario, r.states);
        if let Some(v) = &r.violation {
            println!("    at depth {}: {}", v.depth, v.state);
        }
        if total > budget {
            truncated = true;
            break;
        }
    }
    println!("total explored states: {total} (budget {budget})");

    if violated {
        println!("model check FAILED: reachable invariant violation");
        return Ok(ExitCode::from(1));
    }
    if truncated {
        println!("model check INCONCLUSIVE: state budget exceeded");
        return Ok(ExitCode::from(2));
    }
    println!("model check passed: all scenarios exhausted, no violations");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pf-model: {msg}");
            ExitCode::from(2)
        }
    }
}
