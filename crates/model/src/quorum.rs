//! Bounded model of the replicated-store quorum write.
//!
//! `net::Session::write` fans one stamped segment out to all `R` copies
//! of a subfile, acks the caller at `W = write_quorum(R)` (clamped to
//! the copies actually reachable), and records every copy that did not
//! ack as *dirty* so the scrub loop can re-clone it later. This module
//! explores that protocol exhaustively for the smallest interesting
//! world — `R = 2`, one client, two replica daemons, per-replica FIFO
//! queues — under a replica-crash perturbation and a duplicate-delivery
//! perturbation, checking on every reachable state:
//!
//! * **exactly-once per replica** — each copy applies the stamped write
//!   fresh at most once, even when the segment is delivered twice;
//! * **journal-before-ack** — a replica never has a fresh `WriteOk` on
//!   the wire (or consumed) without its stamped journal intent durable;
//! * **quorum accounting** — when the session reports success, every
//!   replica either acked the write or is recorded dirty (so scrub can
//!   find it), and at least one replica acked.
//!
//! The [`Mutations::ack_below_quorum`] knob re-introduces the bug the
//! third invariant exists to exclude: the session declares success the
//! moment *any* ack lands, without recording the missing replicas as
//! dirty — silently dropping redundancy. The test suite proves the
//! checker catches it.

use std::collections::{HashSet, VecDeque};

use parafile_replica::write_quorum;

use crate::{Exploration, Limits, Mutations, Violation};

/// Replica count for the modeled file (the smallest R where quorum,
/// dirty accounting, and crash degradation are all distinguishable).
const R: usize = 2;

// ---------------------------------------------------------------------------
// Scenarios

/// One bounded quorum world to explore.
#[derive(Debug, Clone, Copy)]
pub struct QuorumScenario {
    /// Scenario name for reports.
    pub name: &'static str,
    /// Rank of the replica the perturbation may kill mid-write, if any.
    pub crash_rank: Option<usize>,
    /// Whether the perturbation may deliver one segment twice (the
    /// retry-after-transient shape dedup exists for).
    pub duplicate: bool,
}

/// The standard quorum battery: a clean run, a crash of either rank,
/// duplicate delivery, and crash combined with duplicate delivery.
#[must_use]
pub fn quorum_scenarios() -> Vec<QuorumScenario> {
    vec![
        QuorumScenario { name: "quorum-clean", crash_rank: None, duplicate: false },
        QuorumScenario { name: "quorum-crash-r0", crash_rank: Some(0), duplicate: false },
        QuorumScenario { name: "quorum-crash-r1", crash_rank: Some(1), duplicate: false },
        QuorumScenario { name: "quorum-duplicate", crash_rank: None, duplicate: true },
        QuorumScenario { name: "quorum-crash-dup", crash_rank: Some(1), duplicate: true },
    ]
}

// ---------------------------------------------------------------------------
// The abstract world

/// A frame in flight on one replica's queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Msg {
    /// The stamped segment write for this copy.
    Write,
    /// The replica's ack.
    WriteOk { replayed: bool },
}

/// One replica daemon: durable journal, volatile dedup window, and the
/// exactly-once counter the invariants audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Replica {
    alive: bool,
    /// Durable: the stamped intent record is journaled (survives kills).
    journal_stamped: bool,
    /// Volatile: the `(session, seq)` dedup window holds our stamp.
    dedup_has_stamp: bool,
    /// Times this copy applied the stamped write fresh.
    applied_fresh: u8,
}

/// Session-side control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Fan the stamped segment out to every replica.
    Start,
    /// Waiting for acks / failure evidence.
    Collecting,
    /// Terminal: the session reported success to the caller.
    Done,
    /// Terminal: no replica acked; the write failed outright.
    Failed,
}

/// One reachable global state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct World {
    phase: Phase,
    /// Ack received from rank r (fresh or replayed).
    acked: [bool; R],
    /// Rank r recorded in the session's dirty set for scrub.
    dirty: [bool; R],
    /// Rank r consumed a *fresh* ack (for journal-before-ack).
    got_fresh_ack: [bool; R],
    replicas: [Replica; R],
    c2s: [VecDeque<Msg>; R],
    s2c: [VecDeque<Msg>; R],
    /// Remaining crash firings (0 or 1).
    crash_budget: u8,
    /// Remaining duplicate-delivery firings (0 or 1).
    dup_budget: u8,
}

impl World {
    fn init(sc: &QuorumScenario) -> Self {
        Self {
            phase: Phase::Start,
            acked: [false; R],
            dirty: [false; R],
            got_fresh_ack: [false; R],
            replicas: [Replica {
                alive: true,
                journal_stamped: false,
                dedup_has_stamp: false,
                applied_fresh: 0,
            }; R],
            c2s: [VecDeque::new(), VecDeque::new()],
            s2c: [VecDeque::new(), VecDeque::new()],
            crash_budget: u8::from(sc.crash_rank.is_some()),
            dup_budget: u8::from(sc.duplicate),
        }
    }

    fn terminal(&self) -> bool {
        matches!(self.phase, Phase::Done | Phase::Failed)
    }

    fn settled(&self, r: usize) -> bool {
        self.acked[r] || self.dirty[r]
    }
}

// ---------------------------------------------------------------------------
// Transitions

fn successors(w: &World, sc: &QuorumScenario, mu: &Mutations) -> Vec<World> {
    let mut out = Vec::new();
    client_send(w, &mut out);
    for r in 0..R {
        client_recv(w, r, &mut out);
        replica_step(w, r, mu, &mut out);
        client_observe_dead(w, r, &mut out);
    }
    client_complete(w, mu, &mut out);
    perturb(w, sc, &mut out);
    out
}

/// Fan-out: one stamped write per rank. A rank that is already dead at
/// send time fails immediately and is recorded dirty (the session sees
/// the worker channel closed).
fn client_send(w: &World, out: &mut Vec<World>) {
    if !matches!(w.phase, Phase::Start) {
        return;
    }
    let mut n = w.clone();
    for r in 0..R {
        if n.replicas[r].alive {
            n.c2s[r].push_back(Msg::Write);
        } else {
            n.dirty[r] = true;
        }
    }
    n.phase = Phase::Collecting;
    out.push(n);
}

/// Duplicate delivery aside, a live replica serves the head of its
/// queue: journal the stamped intent, apply, remember the stamp, ack —
/// or short-circuit to a replayed ack when the dedup window already
/// holds the stamp.
fn replica_step(w: &World, r: usize, mu: &Mutations, out: &mut Vec<World>) {
    if !w.replicas[r].alive {
        return;
    }
    let Some(&msg) = w.c2s[r].front() else { return };
    let mut n = w.clone();
    n.c2s[r].pop_front();
    match msg {
        Msg::Write => {
            let rep = &mut n.replicas[r];
            if !mu.skip_dedup && rep.dedup_has_stamp {
                n.s2c[r].push_back(Msg::WriteOk { replayed: true });
            } else {
                if !mu.ack_before_journal {
                    rep.journal_stamped = true;
                }
                rep.applied_fresh = rep.applied_fresh.saturating_add(1);
                rep.dedup_has_stamp = true;
                n.s2c[r].push_back(Msg::WriteOk { replayed: false });
            }
        }
        Msg::WriteOk { .. } => unreachable!("acks travel s2c only"),
    }
    out.push(n);
}

/// The session consumes rank r's ack.
fn client_recv(w: &World, r: usize, out: &mut Vec<World>) {
    let Some(&msg) = w.s2c[r].front() else { return };
    let mut n = w.clone();
    n.s2c[r].pop_front();
    match msg {
        Msg::WriteOk { replayed } => {
            n.acked[r] = true;
            if !replayed {
                n.got_fresh_ack[r] = true;
            }
        }
        Msg::Write => unreachable!("writes travel c2s only"),
    }
    out.push(n);
}

/// The session notices a dead, unsettled replica (worker channel
/// disconnect) and records it dirty for scrub.
fn client_observe_dead(w: &World, r: usize, out: &mut Vec<World>) {
    if w.terminal() || w.replicas[r].alive || w.settled(r) {
        return;
    }
    let mut n = w.clone();
    n.dirty[r] = true;
    out.push(n);
}

/// Completion: the healthy session returns success only once every
/// replica is settled (acked or dirty) and at least one acked — i.e. it
/// blocks until quorum-or-evidence, never silently dropping a copy. The
/// mutated session returns the moment any ack lands.
fn client_complete(w: &World, mu: &Mutations, out: &mut Vec<World>) {
    if !matches!(w.phase, Phase::Collecting) {
        return;
    }
    let acks = w.acked.iter().filter(|a| **a).count();
    let all_settled = (0..R).all(|r| w.settled(r));
    if all_settled && acks == 0 {
        let mut n = w.clone();
        n.phase = Phase::Failed;
        out.push(n);
        return;
    }
    let live_targets = R - w.dirty.iter().filter(|d| **d).count();
    let needed = write_quorum(R).min(live_targets).max(1);
    let healthy_done = all_settled && acks >= needed;
    let mutated_done = mu.ack_below_quorum && acks >= 1;
    if healthy_done || mutated_done {
        let mut n = w.clone();
        n.phase = Phase::Done;
        out.push(n);
    }
}

/// Fault transitions: kill the scenario's crash rank (volatile state
/// lost, journal survives, queues drain to the floor), or deliver one
/// extra copy of a segment already accepted (the retry-after-transient
/// shape the dedup window absorbs).
fn perturb(w: &World, sc: &QuorumScenario, out: &mut Vec<World>) {
    if w.terminal() {
        return;
    }
    if let Some(r) = sc.crash_rank {
        if w.crash_budget > 0 && w.replicas[r].alive {
            let mut n = w.clone();
            n.crash_budget -= 1;
            n.replicas[r].alive = false;
            n.replicas[r].dedup_has_stamp = false;
            n.c2s[r].clear();
            n.s2c[r].clear();
            out.push(n);
        }
    }
    if sc.duplicate && w.dup_budget > 0 {
        for r in 0..R {
            if w.replicas[r].alive && w.replicas[r].dedup_has_stamp {
                let mut n = w.clone();
                n.dup_budget -= 1;
                n.c2s[r].push_back(Msg::Write);
                out.push(n);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Invariants

fn check_invariants(w: &World) -> Option<&'static str> {
    for r in 0..R {
        if w.replicas[r].applied_fresh > 1 {
            return Some("exactly-once violated: a replica applied the stamped write fresh twice");
        }
        let fresh_ack_visible = w.got_fresh_ack[r]
            || w.s2c[r].iter().any(|m| matches!(m, Msg::WriteOk { replayed: false }));
        if fresh_ack_visible && !w.replicas[r].journal_stamped {
            return Some(
                "journal-before-ack violated: fresh WriteOk from a replica without a durable intent",
            );
        }
    }
    if matches!(w.phase, Phase::Done) {
        if !w.acked.iter().any(|a| *a) {
            return Some("quorum accounting violated: success reported with zero replica acks");
        }
        if (0..R).any(|r| !w.settled(r)) {
            return Some(
                "quorum accounting violated: success reported with a replica neither acked nor dirty",
            );
        }
    }
    None
}

// ---------------------------------------------------------------------------
// The explorer

/// Exhaustively explores one quorum scenario breadth-first.
///
/// Deterministic for the same reason as [`crate::explore`]: the state
/// count tallies seen-set insertions, not iteration order.
#[must_use]
pub fn explore_quorum(sc: &QuorumScenario, mu: &Mutations, limits: &Limits) -> Exploration {
    let init = World::init(sc);
    let mut seen: HashSet<World> = HashSet::new();
    seen.insert(init.clone());
    let mut frontier: VecDeque<(World, u32)> = VecDeque::new();
    frontier.push_back((init, 0));
    let mut states: u64 = 0;
    let mut done = Exploration { scenario: sc.name, states: 0, truncated: false, violation: None };
    while let Some((w, depth)) = frontier.pop_front() {
        states += 1;
        done.states = states;
        if states > limits.max_states {
            done.truncated = true;
            return done;
        }
        if let Some(invariant) = check_invariants(&w) {
            done.violation = Some(Violation { invariant, depth, state: format!("{w:?}") });
            return done;
        }
        if depth >= limits.max_depth {
            continue;
        }
        let succ = successors(&w, sc, mu);
        if succ.is_empty() && !w.terminal() {
            done.violation = Some(Violation {
                invariant: "stuck: non-terminal quorum state with no enabled transition",
                depth,
                state: format!("{w:?}"),
            });
            return done;
        }
        for s in succ {
            if seen.insert(s.clone()) {
                frontier.push_back((s, depth + 1));
            }
        }
    }
    done
}

/// Runs every quorum scenario under `mu`, stopping at the first
/// violation. Returns all per-scenario results produced so far.
#[must_use]
pub fn check_quorum(mu: &Mutations, limits: &Limits) -> Vec<Exploration> {
    let mut results = Vec::new();
    for sc in quorum_scenarios() {
        let r = explore_quorum(&sc, mu, limits);
        let stop = r.violation.is_some() || r.truncated;
        results.push(r);
        if stop {
            break;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_quorum_model_is_violation_free() {
        for sc in quorum_scenarios() {
            let r = explore_quorum(&sc, &Mutations::none(), &Limits::default());
            assert!(!r.truncated, "{}: exploration truncated at {} states", sc.name, r.states);
            assert!(r.violation.is_none(), "{}: unexpected violation {:?}", sc.name, r.violation);
            assert!(r.states > 3, "{}: suspiciously small state space ({})", sc.name, r.states);
        }
    }

    #[test]
    fn quorum_exploration_is_deterministic() {
        for sc in quorum_scenarios() {
            let a = explore_quorum(&sc, &Mutations::none(), &Limits::default());
            let b = explore_quorum(&sc, &Mutations::none(), &Limits::default());
            assert_eq!(a.states, b.states, "{}: state count must be reproducible", sc.name);
        }
    }

    #[test]
    fn ack_below_quorum_mutation_is_caught() {
        let mu = Mutations { ack_below_quorum: true, ..Mutations::none() };
        let results = check_quorum(&mu, &Limits::default());
        let hit = results.iter().find_map(|r| r.violation.as_ref());
        let v = hit.expect("ack-below-quorum must violate an invariant");
        assert!(v.invariant.contains("quorum accounting"), "caught as {:?}", v.invariant);
    }

    #[test]
    fn skip_dedup_is_caught_in_the_replicated_world() {
        // Duplicate delivery with the dedup window disabled applies the
        // stamped write twice on one replica.
        let mu = Mutations { skip_dedup: true, ..Mutations::none() };
        let sc = quorum_scenarios()
            .into_iter()
            .find(|s| s.name == "quorum-duplicate")
            .expect("scenario exists");
        let r = explore_quorum(&sc, &mu, &Limits::default());
        let v = r.violation.expect("skip-dedup must violate exactly-once");
        assert!(v.invariant.contains("exactly-once"), "caught as {:?}", v.invariant);
    }

    #[test]
    fn ack_before_journal_is_caught_in_the_replicated_world() {
        let mu = Mutations { ack_before_journal: true, ..Mutations::none() };
        let results = check_quorum(&mu, &Limits::default());
        let hit = results.iter().find_map(|r| r.violation.as_ref());
        let v = hit.expect("ack-before-journal must violate an invariant");
        assert!(v.invariant.contains("journal-before-ack"), "caught as {:?}", v.invariant);
    }

    #[test]
    fn crash_scenarios_degrade_but_stay_accounted() {
        // A permanent replica crash must still let the clean model reach
        // Done (degraded, with the dead copy dirty) without violating
        // quorum accounting — that is exactly the chaos-gate shape.
        for name in ["quorum-crash-r0", "quorum-crash-r1", "quorum-crash-dup"] {
            let sc =
                quorum_scenarios().into_iter().find(|s| s.name == name).expect("scenario exists");
            let r = explore_quorum(&sc, &Mutations::none(), &Limits::default());
            assert!(r.violation.is_none(), "{name}: {:?}", r.violation);
            assert!(!r.truncated, "{name}: truncated");
        }
    }

    #[test]
    fn quorum_width_matches_the_replica_crate() {
        // The modeled ack threshold is the crate's write_quorum, not a
        // hand-copied constant.
        assert_eq!(write_quorum(R), 2);
    }
}
