//! Structured findings: codes, severities, spans into the FALLS tree, and
//! the report aggregating them.

use jsonlite::{obj, Json, ToJson};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The pattern is structurally usable but pathological.
    Warning,
    /// The pattern violates a model invariant and must not be used.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable diagnostic codes, one per detectable defect class.
///
/// The `PA00x` range covers single-family invariants, `PA01x` nesting and
/// element structure, `PA02x` tiling of the whole pattern, and `PA03x`
/// pathologies (period blow-up, degenerate fragmentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// PA001 — a segment with `l > r`.
    InvertedSegment,
    /// PA002 — a family with `n = 0`, which selects nothing.
    ZeroCount,
    /// PA003 — a multi-segment family with stride 0 (no progress).
    ZeroStride,
    /// PA004 — a multi-segment family whose stride is smaller than its
    /// block, so consecutive segments overlap.
    OverlappingBlocks,
    /// PA005 — an extent or size computation exceeds the 64-bit offset
    /// range.
    Overflow,
    /// PA010 — an inner family reaches past its parent's block.
    InnerEscape,
    /// PA011 — sibling families not sorted by left index.
    UnorderedSiblings,
    /// PA012 — sibling families overlap.
    SiblingOverlap,
    /// PA013 — an element (or the whole pattern) that selects no bytes.
    EmptyElement,
    /// PA020 — the elements leave a hole inside `[0, size)`.
    Gap,
    /// PA021 — two elements claim the same byte.
    ElementOverlap,
    /// PA030 — the pattern period (or an aligned period of a pair) exceeds
    /// the configured budget; exhaustive tiling verification is skipped.
    PeriodBudget,
    /// PA031 — every segment of a non-trivial pattern is a single byte:
    /// worst-case fragmentation for gather/scatter.
    OneByteSegments,
    /// PA032 — the aligned period `lcm(SIZE(P₁), SIZE(P₂))` of a pattern
    /// pair overflows, so the pair cannot be redistributed symbolically.
    PeriodOverflow,
    /// PA040 — `.unwrap()`/`.expect(` on a daemon/session/journal hot
    /// path, where a panic severs connections or wedges a worker.
    UnwrapOnHotPath,
    /// PA041 — `panic!`/`unreachable!`/`todo!`/`unimplemented!` on a hot
    /// path; hot paths must answer typed errors instead of aborting.
    PanicOnHotPath,
    /// PA042 — an unbounded `mpsc::channel` where worker queues are
    /// required to be bounded (`sync_channel`) for back-pressure.
    UnboundedChannel,
    /// PA043 — a lock acquired out of the canonical order
    /// (`files < store < journal < dedup`) while a later-ranked guard is
    /// held — the deadlock-freedom discipline of the daemon.
    LockOrderViolation,
    /// PA044 — a public function returning a value (other than
    /// `Result`/`Option`, which the compiler already tracks) without
    /// `#[must_use]` in a file where coverage is required.
    MissingMustUse,
    /// PA045 — a `pa:allow(...)` waiver comment that suppressed nothing;
    /// stale waivers hide future regressions.
    StaleWaiver,
    /// PA046 — a blocking call (`std::thread::sleep`, a blocking
    /// `std::net` connect/accept, or a read-timeout dial) inside the
    /// reactor or a reactor-driven state machine, where one blocked
    /// thread stalls every multiplexed connection behind it.
    BlockingInReactor,
}

impl Code {
    /// The stable `PAxxx` identifier.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::InvertedSegment => "PA001",
            Code::ZeroCount => "PA002",
            Code::ZeroStride => "PA003",
            Code::OverlappingBlocks => "PA004",
            Code::Overflow => "PA005",
            Code::InnerEscape => "PA010",
            Code::UnorderedSiblings => "PA011",
            Code::SiblingOverlap => "PA012",
            Code::EmptyElement => "PA013",
            Code::Gap => "PA020",
            Code::ElementOverlap => "PA021",
            Code::PeriodBudget => "PA030",
            Code::OneByteSegments => "PA031",
            Code::PeriodOverflow => "PA032",
            Code::UnwrapOnHotPath => "PA040",
            Code::PanicOnHotPath => "PA041",
            Code::UnboundedChannel => "PA042",
            Code::LockOrderViolation => "PA043",
            Code::MissingMustUse => "PA044",
            Code::StaleWaiver => "PA045",
            Code::BlockingInReactor => "PA046",
        }
    }

    /// The severity this code always carries.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Code::PeriodBudget | Code::OneByteSegments | Code::StaleWaiver => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A position inside a partitioning pattern: which element, and the path of
/// sibling indices from the element's top-level families down the nesting
/// tree.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Element index, when the finding concerns one element.
    pub element: Option<usize>,
    /// Sibling index at each nesting depth, outermost first.
    pub path: Vec<usize>,
}

impl Span {
    /// The whole pattern.
    #[must_use]
    pub fn pattern() -> Self {
        Self::default()
    }

    /// A whole element.
    #[must_use]
    pub fn element(e: usize) -> Self {
        Self { element: Some(e), path: Vec::new() }
    }

    /// A family inside an element, addressed by its nesting path.
    #[must_use]
    pub fn family(e: usize, path: Vec<usize>) -> Self {
        Self { element: Some(e), path }
    }

    /// Extends the path one level deeper.
    #[must_use]
    pub fn child(&self, idx: usize) -> Self {
        let mut path = self.path.clone();
        path.push(idx);
        Self { element: self.element, path }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.element {
            None => f.write_str("pattern"),
            Some(e) => {
                write!(f, "element {e}")?;
                for (depth, idx) in self.path.iter().enumerate() {
                    if depth == 0 {
                        write!(f, ", family {idx}")?;
                    } else {
                        write!(f, " › inner {idx}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// One finding: a code, its severity, where in the tree it sits, and a
/// human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable defect class.
    pub code: Code,
    /// Error or warning (always `code.severity()`).
    pub severity: Severity,
    /// Where in the pattern the defect sits.
    pub span: Span,
    /// Human-readable message with the offending numbers.
    pub message: String,
}

impl Diagnostic {
    /// Builds a finding; severity is derived from the code.
    #[must_use]
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Self { code, severity: code.severity(), span, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] at {}: {}", self.severity, self.code, self.span, self.message)
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        obj![
            ("code", self.code.as_str()),
            ("severity", self.severity.to_string().as_str()),
            ("span", self.span.to_string().as_str()),
            ("message", self.message.as_str())
        ]
    }
}

/// Every finding of one audit run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// All findings, in discovery order (structural before tiling before
    /// pathology).
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// No findings at all — errors or warnings.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of errors.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warnings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether a given code fired.
    #[must_use]
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    pub(crate) fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }
}

impl ToJson for AuditReport {
    fn to_json(&self) -> Json {
        obj![
            ("errors", self.error_count()),
            ("warnings", self.warning_count()),
            ("diagnostics", self.diagnostics.clone())
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::InvertedSegment,
            Code::ZeroCount,
            Code::ZeroStride,
            Code::OverlappingBlocks,
            Code::Overflow,
            Code::InnerEscape,
            Code::UnorderedSiblings,
            Code::SiblingOverlap,
            Code::EmptyElement,
            Code::Gap,
            Code::ElementOverlap,
            Code::PeriodBudget,
            Code::OneByteSegments,
            Code::PeriodOverflow,
            Code::UnwrapOnHotPath,
            Code::PanicOnHotPath,
            Code::UnboundedChannel,
            Code::LockOrderViolation,
            Code::MissingMustUse,
            Code::StaleWaiver,
            Code::BlockingInReactor,
        ];
        let mut strs: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), all.len());
        for c in all {
            assert!(c.as_str().starts_with("PA"));
        }
    }

    #[test]
    fn spans_render_paths() {
        assert_eq!(Span::pattern().to_string(), "pattern");
        assert_eq!(Span::element(2).to_string(), "element 2");
        assert_eq!(Span::family(1, vec![0, 3]).to_string(), "element 1, family 0 › inner 3");
        assert_eq!(Span::element(0).child(4).to_string(), "element 0, family 4");
    }

    #[test]
    fn report_counts_and_json() {
        let mut r = AuditReport::default();
        assert!(r.is_clean());
        r.push(Diagnostic::new(Code::Gap, Span::pattern(), "hole at 3"));
        r.push(Diagnostic::new(Code::PeriodBudget, Span::pattern(), "big"));
        assert!(!r.is_clean());
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_code(Code::Gap));
        assert!(!r.has_code(Code::Overflow));
        let json = r.to_json();
        assert_eq!(json.get("errors").and_then(|v| v.as_u64()), Some(1));
        let diags = json.get("diagnostics").and_then(|v| v.as_array()).unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].get("code").and_then(|v| v.as_str()), Some("PA020"));
    }
}
