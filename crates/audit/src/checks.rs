//! The analyzer: structural, tiling and pathology checks over one pattern
//! period.
//!
//! The audit runs in three phases:
//!
//! 1. **Structural** — every family in every element is checked for the
//!    single-FALLS invariants (PA001–PA005), nesting containment (PA010),
//!    sibling order (PA011) and element non-emptiness (PA013). All
//!    arithmetic is checked; anything that would exceed the 64-bit offset
//!    range is reported as PA005 instead of wrapping.
//! 2. **Tiling** — only when phase 1 found no errors. The pattern's
//!    segments are enumerated symbolically over a *single period* (never
//!    byte-by-byte) and verified to cover `[0, SIZE)` exactly: holes are
//!    PA020, double-claimed bytes are PA012 (within one element) or PA021
//!    (across elements).
//! 3. **Pathology** — warnings for patterns that are technically valid but
//!    operationally hostile: a period beyond the configured budget (PA030,
//!    which also skips phase 2) and full single-byte fragmentation (PA031).
//!
//! Segment enumeration is bounded by the period budget: every segment holds
//! at least one byte, so a pattern of size `SIZE` has at most `SIZE`
//! segments and phase 2 touches at most `period_budget` of them.

use crate::diag::{AuditReport, Code, Diagnostic, Span};
use crate::raw::{RawElement, RawFalls, RawPattern};
use falls::{checked_lcm, checked_size};

/// Default period budget: patterns whose period exceeds this many bytes get
/// a PA030 warning instead of exhaustive tiling verification.
pub const DEFAULT_PERIOD_BUDGET: u64 = 1 << 22;

/// Tunable limits for an audit run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Largest pattern period (in bytes) for which tiling is verified by
    /// segment enumeration. Also bounds the aligned period of a pair.
    pub period_budget: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self { period_budget: DEFAULT_PERIOD_BUDGET }
    }
}

impl AuditConfig {
    /// A config with an explicit period budget.
    #[must_use]
    pub fn with_budget(period_budget: u64) -> Self {
        Self { period_budget }
    }
}

/// What the structural pass learns about one family (sizes and extents are
/// exact, computed with checked arithmetic).
struct Shape {
    /// Bytes selected by the family (SIZE).
    size: u64,
    /// Last offset reachable by the family, relative to its parent's block
    /// start.
    extent_end: u64,
}

/// Audits a single pattern: structure, tiling and pathologies.
#[must_use]
pub fn audit_pattern(pattern: &RawPattern, cfg: &AuditConfig) -> AuditReport {
    let mut report = AuditReport::default();
    if pattern.elements.is_empty() {
        report.push(Diagnostic::new(
            Code::EmptyElement,
            Span::pattern(),
            "pattern has no elements",
        ));
        return report;
    }

    let mut sizes = Vec::with_capacity(pattern.elements.len());
    for (e, elem) in pattern.elements.iter().enumerate() {
        sizes.push(check_element(elem, e, &mut report));
    }
    if report.has_errors() {
        // Sizes or bounds are unreliable; tiling verification would either
        // repeat the structural findings or overflow.
        return report;
    }

    let mut total = 0u64;
    for size in &sizes {
        let size = size.expect("no errors implies every element size is known");
        total = match total.checked_add(size) {
            Some(t) => t,
            None => {
                report.push(Diagnostic::new(
                    Code::Overflow,
                    Span::pattern(),
                    "sum of element sizes exceeds the 64-bit offset range",
                ));
                return report;
            }
        };
    }

    if total > cfg.period_budget {
        report.push(Diagnostic::new(
            Code::PeriodBudget,
            Span::pattern(),
            format!(
                "pattern period is {total} bytes, over the {} byte budget; \
                 tiling not verified",
                cfg.period_budget
            ),
        ));
        return report;
    }

    check_tiling(pattern, total, &mut report);
    report
}

/// Audits the *pair-level* properties of two patterns: whether their aligned
/// period `lcm(SIZE(P1), SIZE(P2))` is representable (PA032) and within the
/// budget (PA030). Each pattern should additionally be audited on its own
/// with [`audit_pattern`].
#[must_use]
pub fn audit_pair(p1: &RawPattern, p2: &RawPattern, cfg: &AuditConfig) -> AuditReport {
    let mut report = AuditReport::default();
    let (Some(size1), Some(size2)) = (quiet_size(p1), quiet_size(p2)) else {
        report.push(Diagnostic::new(
            Code::Overflow,
            Span::pattern(),
            "a pattern size is not computable; audit each pattern individually",
        ));
        return report;
    };
    match checked_lcm(size1, size2) {
        None => report.push(Diagnostic::new(
            Code::PeriodOverflow,
            Span::pattern(),
            format!(
                "aligned period lcm({size1}, {size2}) exceeds the 64-bit \
                 offset range"
            ),
        )),
        Some(period) if period > cfg.period_budget => report.push(Diagnostic::new(
            Code::PeriodBudget,
            Span::pattern(),
            format!(
                "aligned period lcm({size1}, {size2}) = {period} bytes, over \
                 the {} byte budget",
                cfg.period_budget
            ),
        )),
        Some(_) => {}
    }
    report
}

/// Pattern size without emitting diagnostics; `None` when the structure is
/// broken or the size overflows.
fn quiet_size(pattern: &RawPattern) -> Option<u64> {
    let mut scratch = AuditReport::default();
    let mut total = 0u64;
    for (e, elem) in pattern.elements.iter().enumerate() {
        total = total.checked_add(check_element(elem, e, &mut scratch)?)?;
    }
    if scratch.has_errors() {
        return None;
    }
    Some(total)
}

/// Structural pass over one element. Returns the element size when every
/// family checks out, `None` otherwise (a diagnostic has been pushed).
fn check_element(elem: &RawElement, e: usize, report: &mut AuditReport) -> Option<u64> {
    let span = Span::element(e);
    if elem.families.is_empty() {
        report.push(Diagnostic::new(
            Code::EmptyElement,
            span,
            "element has no families (selects no bytes)",
        ));
        return None;
    }
    check_sibling_order(&elem.families, &span, report);
    let mut total = 0u64;
    let mut ok = true;
    for (i, fam) in elem.families.iter().enumerate() {
        match check_family(fam, &span.child(i), report) {
            Some(shape) => match total.checked_add(shape.size) {
                Some(t) => total = t,
                None => {
                    report.push(Diagnostic::new(
                        Code::Overflow,
                        Span::element(e),
                        "sum of family sizes exceeds the 64-bit offset range",
                    ));
                    ok = false;
                }
            },
            None => ok = false,
        }
    }
    ok.then_some(total)
}

/// PA011: siblings at any level must be sorted by left index.
fn check_sibling_order(siblings: &[RawFalls], parent: &Span, report: &mut AuditReport) {
    for (i, pair) in siblings.windows(2).enumerate() {
        if pair[1].l < pair[0].l {
            report.push(Diagnostic::new(
                Code::UnorderedSiblings,
                parent.child(i + 1),
                format!(
                    "sibling starts at {} but the previous sibling starts at \
                     {}",
                    pair[1].l, pair[0].l
                ),
            ));
        }
    }
}

/// Structural pass over one family (recursing into inner families).
///
/// Returns the family's shape when it is well-formed; `None` when any check
/// failed (every `None` path pushes at least one error diagnostic).
fn check_family(f: &RawFalls, span: &Span, report: &mut AuditReport) -> Option<Shape> {
    let mut ok = true;

    let block = match f.block_len() {
        Some(b) => Some(b),
        None => {
            if f.l > f.r {
                report.push(Diagnostic::new(
                    Code::InvertedSegment,
                    span.clone(),
                    format!("segment has l = {} > r = {}", f.l, f.r),
                ));
            } else {
                report.push(Diagnostic::new(
                    Code::Overflow,
                    span.clone(),
                    "block length r − l + 1 exceeds the 64-bit offset range",
                ));
            }
            ok = false;
            None
        }
    };

    if f.n == 0 {
        report.push(Diagnostic::new(
            Code::ZeroCount,
            span.clone(),
            "family has n = 0 segments (selects nothing)",
        ));
        ok = false;
    }

    if f.n > 1 {
        if f.s == 0 {
            report.push(Diagnostic::new(
                Code::ZeroStride,
                span.clone(),
                format!("family repeats {} segments with stride 0", f.n),
            ));
            ok = false;
        } else if let Some(b) = block {
            if f.s < b {
                report.push(Diagnostic::new(
                    Code::OverlappingBlocks,
                    span.clone(),
                    format!(
                        "stride {} is smaller than the block length {}, so \
                         consecutive segments overlap",
                        f.s, b
                    ),
                ));
                ok = false;
            }
        }
    }

    // Children first: their shapes feed the containment check and the size.
    check_sibling_order(&f.inner, span, report);
    let mut shapes = Vec::with_capacity(f.inner.len());
    for (i, child) in f.inner.iter().enumerate() {
        shapes.push(check_family(child, &span.child(i), report));
    }

    if let Some(b) = block {
        for (i, shape) in shapes.iter().enumerate() {
            if let Some(shape) = shape {
                if shape.extent_end >= b {
                    report.push(Diagnostic::new(
                        Code::InnerEscape,
                        span.child(i),
                        format!(
                            "inner family reaches offset {} but the parent \
                             block ends at {}",
                            shape.extent_end,
                            b - 1
                        ),
                    ));
                    ok = false;
                }
            } else {
                ok = false;
            }
        }
    } else {
        ok = false;
    }

    if !ok {
        return None;
    }
    let block = block.expect("ok implies the block length is known");

    // Bytes per block: the block itself for a leaf, the inner selection for
    // a nested family.
    let per_block = if f.inner.is_empty() {
        block
    } else {
        let mut sum = 0u64;
        for shape in shapes.iter().flatten() {
            sum = match sum.checked_add(shape.size) {
                Some(s) => s,
                None => {
                    report.push(Diagnostic::new(
                        Code::Overflow,
                        span.clone(),
                        "sum of inner sizes exceeds the 64-bit offset range",
                    ));
                    return None;
                }
            };
        }
        sum
    };

    let Some(size) = checked_size(f.n, per_block) else {
        report.push(Diagnostic::new(
            Code::Overflow,
            span.clone(),
            format!("family size {} × {per_block} exceeds the 64-bit offset range", f.n),
        ));
        return None;
    };

    // Last reachable offset: l + (n − 1)·s + block − 1. n ≥ 1 here.
    let extent_end = (f.n - 1)
        .checked_mul(f.s)
        .and_then(|span_off| f.l.checked_add(span_off))
        .and_then(|last_l| last_l.checked_add(block - 1));
    let Some(extent_end) = extent_end else {
        report.push(Diagnostic::new(
            Code::Overflow,
            span.clone(),
            format!(
                "family extent {} + {}·{} + {} − 1 exceeds the 64-bit offset \
                 range",
                f.l,
                f.n - 1,
                f.s,
                block
            ),
        ));
        return None;
    };

    Some(Shape { size, extent_end })
}

/// One enumerated segment, tagged with the element that claims it.
struct TaggedSegment {
    l: u64,
    r: u64,
    element: usize,
}

/// Phase 2 + 3: enumerate every segment of one period and verify exact
/// coverage of `[0, total)`; then scan for single-byte fragmentation.
///
/// Only called after the structural pass found no errors, so all offsets are
/// known to fit in `u64` and plain arithmetic is safe.
fn check_tiling(pattern: &RawPattern, total: u64, report: &mut AuditReport) {
    let mut segs: Vec<TaggedSegment> = Vec::new();
    for (e, elem) in pattern.elements.iter().enumerate() {
        for fam in &elem.families {
            collect_segments(fam, 0, e, &mut segs);
        }
    }
    segs.sort_unstable_by_key(|s| (s.l, s.r));

    let mut expect = 0u64;
    let mut prev_element = usize::MAX;
    for seg in &segs {
        if seg.l > expect {
            report.push(Diagnostic::new(
                Code::Gap,
                Span::pattern(),
                format!("no element covers bytes [{}, {}]", expect, seg.l - 1),
            ));
            break;
        }
        if seg.l < expect {
            // `seg` re-claims bytes already covered by the previous segment.
            let (code, span) = if seg.element == prev_element {
                (Code::SiblingOverlap, Span::element(seg.element))
            } else {
                (Code::ElementOverlap, Span::pattern())
            };
            report.push(Diagnostic::new(
                code,
                span,
                format!(
                    "byte {} is claimed twice (elements {} and {})",
                    seg.l, prev_element, seg.element
                ),
            ));
            break;
        }
        expect = seg.r + 1;
        prev_element = seg.element;
    }
    if !report.has_errors() && expect != total {
        report.push(Diagnostic::new(
            Code::Gap,
            Span::pattern(),
            if expect < total {
                format!("no element covers bytes [{expect}, {}]", total - 1)
            } else {
                format!(
                    "coverage reaches byte {} but the pattern period is only \
                     {total} bytes",
                    expect - 1
                )
            },
        ));
    }

    // PA031: maximal fragmentation. Only meaningful for patterns with
    // enough segments that per-segment overhead dominates.
    const FRAGMENTATION_FLOOR: usize = 16;
    if segs.len() >= FRAGMENTATION_FLOOR && segs.iter().all(|s| s.l == s.r) {
        report.push(Diagnostic::new(
            Code::OneByteSegments,
            Span::pattern(),
            format!(
                "all {} segments of the period are single bytes — worst-case \
                 fragmentation for gather/scatter",
                segs.len()
            ),
        ));
    }
}

/// Enumerates the absolute segments of `f` (repetition by repetition,
/// recursing into inner families) into `out`.
fn collect_segments(f: &RawFalls, base: u64, element: usize, out: &mut Vec<TaggedSegment>) {
    let block = f.r - f.l + 1;
    for k in 0..f.n {
        let start = base + f.l + k * f.s;
        if f.inner.is_empty() {
            out.push(TaggedSegment { l: start, r: start + block - 1, element });
        } else {
            for child in &f.inner {
                collect_segments(child, start, element, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(elements: Vec<RawElement>) -> RawPattern {
        RawPattern::new(elements)
    }

    fn elem(families: Vec<RawFalls>) -> RawElement {
        RawElement::new(families)
    }

    /// Figure 3 of the paper: three 2-byte blocks tiling a 6-byte period.
    fn figure3() -> RawPattern {
        pattern(vec![
            elem(vec![RawFalls::leaf(0, 1, 6, 1)]),
            elem(vec![RawFalls::leaf(2, 3, 6, 1)]),
            elem(vec![RawFalls::leaf(4, 5, 6, 1)]),
        ])
    }

    fn cfg() -> AuditConfig {
        AuditConfig::default()
    }

    #[test]
    fn figure3_audits_clean() {
        let report = audit_pattern(&figure3(), &cfg());
        assert!(report.is_clean(), "unexpected diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn nested_interleaved_pattern_audits_clean() {
        // Two elements with interleaved multi-segment families over [0, 16).
        let p = pattern(vec![
            elem(vec![RawFalls::leaf(0, 1, 8, 2), RawFalls::leaf(6, 7, 8, 2)]),
            elem(vec![RawFalls::leaf(2, 3, 8, 2), RawFalls::leaf(4, 5, 8, 2)]),
        ]);
        assert!(audit_pattern(&p, &cfg()).is_clean());
    }

    #[test]
    fn nested_family_audits_clean() {
        // Figure 2's nested family (0,3,8,2,{(0,0,2,2)}) plus its complement
        // segments, tiling [0, 16).
        let p = pattern(vec![
            elem(vec![RawFalls::nested(0, 3, 8, 2, vec![RawFalls::leaf(0, 0, 2, 2)])]),
            elem(vec![RawFalls::leaf(1, 1, 8, 2), RawFalls::leaf(3, 7, 8, 2)]),
        ]);
        let report = audit_pattern(&p, &cfg());
        assert!(report.is_clean(), "unexpected diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn inverted_segment_is_pa001() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(5, 3, 6, 1)])]);
        let report = audit_pattern(&p, &cfg());
        assert!(report.has_code(Code::InvertedSegment));
        assert!(report.has_errors());
    }

    #[test]
    fn zero_count_is_pa002() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(0, 1, 6, 0)])]);
        assert!(audit_pattern(&p, &cfg()).has_code(Code::ZeroCount));
    }

    #[test]
    fn zero_stride_is_pa003() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(0, 1, 0, 3)])]);
        assert!(audit_pattern(&p, &cfg()).has_code(Code::ZeroStride));
    }

    #[test]
    fn short_stride_is_pa004() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(0, 3, 2, 2)])]);
        assert!(audit_pattern(&p, &cfg()).has_code(Code::OverlappingBlocks));
    }

    #[test]
    fn extent_overflow_is_pa005() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(u64::MAX - 1, u64::MAX, 4, 2)])]);
        assert!(audit_pattern(&p, &cfg()).has_code(Code::Overflow));
    }

    #[test]
    fn inner_escape_is_pa010() {
        // Parent block is 4 bytes; the inner family reaches offset 5.
        let p = pattern(vec![elem(vec![RawFalls::nested(
            0,
            3,
            8,
            2,
            vec![RawFalls::leaf(2, 5, 6, 1)],
        )])]);
        assert!(audit_pattern(&p, &cfg()).has_code(Code::InnerEscape));
    }

    #[test]
    fn unordered_siblings_is_pa011() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(4, 5, 8, 1), RawFalls::leaf(0, 1, 8, 1)])]);
        assert!(audit_pattern(&p, &cfg()).has_code(Code::UnorderedSiblings));
    }

    #[test]
    fn sibling_overlap_is_pa012() {
        // Interleaved families whose segments collide at byte 3 with no gap
        // before the collision, so the overlap is the first anomaly seen.
        let p = pattern(vec![elem(vec![RawFalls::leaf(0, 3, 8, 2), RawFalls::leaf(3, 6, 8, 2)])]);
        let report = audit_pattern(&p, &cfg());
        assert!(report.has_code(Code::SiblingOverlap), "{:?}", report.diagnostics);
    }

    #[test]
    fn empty_element_is_pa013() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(0, 1, 2, 1)]), elem(vec![])]);
        assert!(audit_pattern(&p, &cfg()).has_code(Code::EmptyElement));
        assert!(audit_pattern(&pattern(vec![]), &cfg()).has_code(Code::EmptyElement));
    }

    #[test]
    fn gap_is_pa020() {
        let p = pattern(vec![
            elem(vec![RawFalls::leaf(0, 1, 6, 1)]),
            elem(vec![RawFalls::leaf(4, 5, 6, 1)]),
        ]);
        let report = audit_pattern(&p, &cfg());
        assert!(report.has_code(Code::Gap), "{:?}", report.diagnostics);
    }

    #[test]
    fn pattern_not_starting_at_zero_is_pa020() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(1, 2, 2, 1)])]);
        assert!(audit_pattern(&p, &cfg()).has_code(Code::Gap));
    }

    #[test]
    fn element_overlap_is_pa021() {
        let p = pattern(vec![
            elem(vec![RawFalls::leaf(0, 3, 6, 1)]),
            elem(vec![RawFalls::leaf(2, 5, 6, 1)]),
        ]);
        let report = audit_pattern(&p, &cfg());
        assert!(report.has_code(Code::ElementOverlap), "{:?}", report.diagnostics);
    }

    #[test]
    fn period_over_budget_is_pa030_warning() {
        let p = pattern(vec![elem(vec![RawFalls::leaf(0, 1023, 1024, 1)])]);
        let report = audit_pattern(&p, &AuditConfig::with_budget(512));
        assert!(report.has_code(Code::PeriodBudget));
        assert!(!report.has_errors());
        // The same pattern under the default budget is clean.
        assert!(audit_pattern(&p, &cfg()).is_clean());
    }

    #[test]
    fn one_byte_segments_is_pa031_warning() {
        // Two perfectly interleaved single-byte combs: valid tiling of
        // [0, 16) out of 16 one-byte segments.
        let p = pattern(vec![
            elem(vec![RawFalls::leaf(0, 0, 2, 8)]),
            elem(vec![RawFalls::leaf(1, 1, 2, 8)]),
        ]);
        let report = audit_pattern(&p, &cfg());
        assert!(report.has_code(Code::OneByteSegments), "{:?}", report.diagnostics);
        assert!(!report.has_errors());
    }

    #[test]
    fn small_one_byte_patterns_not_flagged() {
        // Figure 3 scaled down: few segments, no fragmentation warning.
        let p = pattern(vec![
            elem(vec![RawFalls::leaf(0, 0, 2, 1)]),
            elem(vec![RawFalls::leaf(1, 1, 2, 1)]),
        ]);
        assert!(audit_pattern(&p, &cfg()).is_clean());
    }

    #[test]
    fn pair_period_overflow_is_pa032() {
        let big1 = 1u64 << 63;
        let big2 = (1u64 << 63) - 1;
        let p1 = pattern(vec![elem(vec![RawFalls::leaf(0, big1 - 1, big1, 1)])]);
        let p2 = pattern(vec![elem(vec![RawFalls::leaf(0, big2 - 1, big2, 1)])]);
        let report = audit_pair(&p1, &p2, &cfg());
        assert!(report.has_code(Code::PeriodOverflow), "{:?}", report.diagnostics);
    }

    #[test]
    fn pair_period_over_budget_warns() {
        let p1 = pattern(vec![elem(vec![RawFalls::leaf(0, 1023, 1024, 1)])]);
        let p2 = pattern(vec![elem(vec![RawFalls::leaf(0, 1024, 1025, 1)])]);
        let report = audit_pair(&p1, &p2, &AuditConfig::with_budget(1 << 16));
        assert!(report.has_code(Code::PeriodBudget));
        assert!(!report.has_errors());
    }

    #[test]
    fn pair_of_matching_patterns_is_clean() {
        assert!(audit_pair(&figure3(), &figure3(), &cfg()).is_clean());
    }

    #[test]
    fn structural_errors_suppress_tiling_noise() {
        // A broken family: only the structural diagnostic fires, not a
        // cascade of gap/overlap findings derived from garbage sizes.
        let p = pattern(vec![elem(vec![RawFalls::leaf(0, 1, 0, 3)])]);
        let report = audit_pattern(&p, &cfg());
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.has_code(Code::ZeroStride));
    }
}
