//! Source-level lints (`PA040`–`PA059` range) over the workspace's own
//! hot-path code.
//!
//! The FALLS checks audit *data* (partitioning patterns); this pass
//! audits the *code* that serves them, enforcing the daemon's coding
//! discipline:
//!
//! * **PA040/PA041** — no `.unwrap()`/`.expect(`/`panic!`-family macros
//!   on daemon, session, or journal hot paths: a panic there severs
//!   every connection on the thread or wedges a worker, so hot paths
//!   must return typed errors.
//! * **PA042** — worker queues use bounded `sync_channel`s only, so a
//!   stalled daemon back-pressures the submitter instead of buffering
//!   without limit.
//! * **PA043** — locks are acquired in the canonical global order
//!   `files < store < journal < sums < dedup`; a later-ranked guard held
//!   while an earlier-ranked lock is taken is a deadlock seed.
//! * **PA044** — `#[must_use]` coverage in designated API files for
//!   public functions whose ignored return value would be a silent bug
//!   (`Result`/`Option` returns pass inherently — the compiler already
//!   tracks those).
//! * **PA045** — a `// pa:allow(PAxxx)` waiver that suppresses nothing
//!   is stale and warns, so waivers cannot silently outlive the code
//!   they excused.
//! * **PA046** — no blocking calls (`thread::sleep`, blocking `std::net`
//!   connects, read/write-timeout dials) inside the reactor or
//!   reactor-driven state machines: the event loop multiplexes every
//!   connection over a few threads, so one blocked thread stalls them
//!   all. Deliberate off-loop blocking (e.g. a connect helper thread)
//!   carries a `pa:allow(PA046)` waiver.
//!
//! The pass is deliberately token-level (comments and string literals
//! are stripped, `#[cfg(test)]` modules are skipped), not a full parse:
//! it is a discipline lint with a waiver escape hatch, not a type
//! system. Findings carry `file:line` in their message and anchor their
//! [`Span`] at the whole pattern.

use crate::diag::{AuditReport, Code, Diagnostic, Span};

/// Which files each source lint applies to and the canonical lock order.
///
/// Paths are matched by suffix (`path.ends_with`), so callers can pass
/// absolute or repo-relative paths interchangeably.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Files on the daemon/session/journal hot path: PA040/PA041 apply.
    pub hot_paths: Vec<String>,
    /// Files whose worker queues must be bounded: PA042 applies.
    pub bounded_only: Vec<String>,
    /// Lock-rank names, earliest (outermost) first: PA043 applies to any
    /// file that acquires two of them.
    pub lock_order: Vec<String>,
    /// Files requiring `#[must_use]` coverage: PA044 applies.
    pub must_use_files: Vec<String>,
    /// Reactor and reactor-driven state-machine files: PA046 bans
    /// blocking calls (`thread::sleep`, blocking `std::net` connects,
    /// read/write-timeout dials) that would stall the event loop.
    pub reactor_files: Vec<String>,
}

impl SourceConfig {
    /// The workspace's canonical configuration: the daemon/session/client
    /// request paths, the write-ahead journal, and the replication layer
    /// (replica placement math, per-segment checksum map) are hot,
    /// session worker queues are bounded-only, the daemon's lock
    /// order is `files < store < journal < sums < dedup`, and the
    /// reactor, mux transport, and reactor daemon are blocking-free.
    #[must_use]
    pub fn parafile_defaults() -> Self {
        let own = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect();
        Self {
            hot_paths: own(&[
                "net/src/server.rs",
                "net/src/session.rs",
                "net/src/client.rs",
                "net/src/proto.rs",
                "clusterfile/src/journal.rs",
                "clusterfile/src/checksum.rs",
                "replica/src/lib.rs",
            ]),
            bounded_only: own(&["net/src/session.rs"]),
            lock_order: own(&["files", "store", "journal", "sums", "dedup"]),
            must_use_files: own(&["net/src/proto.rs", "replica/src/lib.rs"]),
            reactor_files: own(&[
                "net/src/reactor/mod.rs",
                "net/src/reactor/sys.rs",
                "net/src/reactor/wheel.rs",
                "net/src/mux.rs",
                "net/src/server/reactor_daemon.rs",
            ]),
        }
    }

    fn applies(list: &[String], path: &str) -> bool {
        list.iter().any(|s| path.ends_with(s.as_str()))
    }
}

/// One raw finding before waiver filtering.
struct Finding {
    line: usize,
    code: Code,
    message: String,
}

/// A `// pa:allow(PAxxx)` waiver comment.
struct Waiver {
    line: usize,
    code_str: String,
    used: bool,
}

/// Strips line comments and the contents of string/char literals so
/// token matching cannot fire inside prose. Literal delimiters are kept,
/// their contents replaced by spaces.
fn strip_line(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            if c == '\\' {
                out.push(' ');
                if chars.next().is_some() {
                    out.push(' ');
                }
            } else if c == '"' {
                in_string = false;
                out.push('"');
            } else {
                out.push(' ');
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            '\'' => {
                // A char literal ('x', '\n', '\''); lifetimes ('a) have no
                // closing quote nearby and pass through untouched.
                let rest: String = chars.clone().take(3).collect();
                if let Some(close) = rest.find('\'') {
                    out.push('\'');
                    for _ in 0..close {
                        chars.next();
                        out.push(' ');
                    }
                    chars.next();
                    out.push('\'');
                } else {
                    out.push('\'');
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// Marks every line inside a `#[cfg(test)]` module (brace-balanced from
/// the module's opening line).
fn test_region(lines: &[String]) -> Vec<bool> {
    let mut excluded = vec![false; lines.len()];
    let mut pending_cfg = false;
    let mut depth_in_tests: Option<i64> = None;
    for (i, line) in lines.iter().enumerate() {
        if let Some(depth) = depth_in_tests.as_mut() {
            excluded[i] = true;
            *depth += brace_delta(line);
            if *depth <= 0 {
                depth_in_tests = None;
            }
            continue;
        }
        if line.contains("#[cfg(test)]") {
            pending_cfg = true;
            continue;
        }
        if pending_cfg {
            if line.trim().is_empty() || line.trim_start().starts_with("#[") {
                continue;
            }
            if line.contains("mod ") {
                excluded[i] = true;
                let d = brace_delta(line);
                if d > 0 {
                    depth_in_tests = Some(d);
                }
            }
            pending_cfg = false;
        }
    }
    excluded
}

fn brace_delta(line: &str) -> i64 {
    let mut d = 0i64;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Whether `needle` occurs in `hay` bounded by non-identifier characters.
fn word_match(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !hay[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = after;
    }
    None
}

/// Lints one source file, returning every finding as a structured report.
///
/// `path` is used for file matching (which lints apply) and in messages;
/// `text` is the file contents.
#[must_use]
pub fn audit_source(path: &str, text: &str, cfg: &SourceConfig) -> AuditReport {
    let raw_lines: Vec<&str> = text.lines().collect();
    let lines: Vec<String> = raw_lines.iter().map(|l| strip_line(l)).collect();
    let excluded = test_region(&lines);

    let mut findings: Vec<Finding> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();

    // Collect waivers from the raw text (they live in comments).
    for (i, raw) in raw_lines.iter().enumerate() {
        let mut rest = *raw;
        while let Some(at) = rest.find("pa:allow(") {
            let tail = &rest[at + "pa:allow(".len()..];
            if let Some(close) = tail.find(')') {
                waivers.push(Waiver {
                    line: i + 1,
                    code_str: tail[..close].trim().to_string(),
                    used: false,
                });
                rest = &tail[close..];
            } else {
                break;
            }
        }
    }

    let hot = SourceConfig::applies(&cfg.hot_paths, path);
    let bounded = SourceConfig::applies(&cfg.bounded_only, path);
    let must_use = SourceConfig::applies(&cfg.must_use_files, path);
    let reactor = SourceConfig::applies(&cfg.reactor_files, path);

    // Held lock guards: (brace depth at acquisition, rank, binding name).
    let mut held: Vec<(i64, usize, String)> = Vec::new();
    let mut depth = 0i64;

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        if excluded[i] {
            depth += brace_delta(line);
            continue;
        }
        if hot {
            for needle in [".unwrap()", ".expect("] {
                if line.contains(needle) {
                    findings.push(Finding {
                        line: lineno,
                        code: Code::UnwrapOnHotPath,
                        message: format!(
                            "{path}:{lineno}: `{needle}` on a hot path; return a typed error instead"
                        ),
                    });
                }
            }
            for needle in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
                if line.contains(needle) {
                    findings.push(Finding {
                        line: lineno,
                        code: Code::PanicOnHotPath,
                        message: format!(
                            "{path}:{lineno}: `{needle}..)` on a hot path; answer a typed error instead of aborting"
                        ),
                    });
                }
            }
        }
        if reactor {
            for needle in [
                "thread::sleep",
                "TcpStream::connect",
                "UnixStream::connect",
                "NetStream::connect",
                ".set_read_timeout(",
                ".set_write_timeout(",
            ] {
                if line.contains(needle) {
                    findings.push(Finding {
                        line: lineno,
                        code: Code::BlockingInReactor,
                        message: format!(
                            "{path}:{lineno}: blocking `{needle}` inside reactor-driven code; \
                             one blocked thread stalls every connection multiplexed behind it"
                        ),
                    });
                }
            }
        }
        if bounded && line.contains("mpsc::channel") {
            findings.push(Finding {
                line: lineno,
                code: Code::UnboundedChannel,
                message: format!(
                    "{path}:{lineno}: unbounded `mpsc::channel`; worker queues must use a bounded `sync_channel`"
                ),
            });
        }

        // Lock-order discipline: detect ranked acquisitions.
        if let Some(rank) = acquisition_rank(line, &cfg.lock_order) {
            if let Some((_, held_rank, held_name)) =
                held.iter().filter(|(_, r, _)| *r > rank).max_by_key(|(_, r, _)| *r)
            {
                findings.push(Finding {
                    line: lineno,
                    code: Code::LockOrderViolation,
                    message: format!(
                        "{path}:{lineno}: acquires `{}` while holding `{held_name}` (`{}`); canonical order is {}",
                        cfg.lock_order[rank],
                        cfg.lock_order[*held_rank],
                        cfg.lock_order.join(" < "),
                    ),
                });
            }
            // Only a `let` binding keeps the guard alive past the line.
            let trimmed = line.trim_start();
            if let Some(binding) = trimmed.strip_prefix("let ") {
                let name = binding
                    .trim_start_matches("mut ")
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<String>();
                held.push((depth, rank, name));
            }
        }
        // Explicit drops release a named guard early.
        if let Some(at) = line.find("drop(") {
            let name: String = line[at + "drop(".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            held.retain(|(_, _, n)| *n != name);
        }
        depth += brace_delta(line);
        held.retain(|(d, _, _)| *d <= depth);

        // #[must_use] coverage for value-returning public APIs.
        if must_use {
            let trimmed = line.trim_start();
            if trimmed.starts_with("pub fn ") {
                if let Some(arrow) = trimmed.find("-> ") {
                    let ret = trimmed[arrow + 3..].trim().trim_end_matches('{').trim();
                    let exempt = ret.is_empty()
                        || ret.starts_with("()")
                        || ret.contains("Result")
                        || ret.contains("Option");
                    if !exempt && !has_must_use_above(&lines, i) {
                        findings.push(Finding {
                            line: lineno,
                            code: Code::MissingMustUse,
                            message: format!(
                                "{path}:{lineno}: public fn returning `{ret}` without `#[must_use]`"
                            ),
                        });
                    }
                }
            }
        }
    }

    // Apply waivers: a waiver suppresses matching findings on its own
    // line or the line below it.
    let mut report = AuditReport::default();
    for f in findings {
        let mut suppressed = false;
        for w in &mut waivers {
            if w.code_str == f.code.as_str() && (w.line == f.line || w.line + 1 == f.line) {
                w.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            report.push(Diagnostic::new(f.code, Span::pattern(), f.message));
        }
    }
    for w in &waivers {
        if !w.used {
            report.push(Diagnostic::new(
                Code::StaleWaiver,
                Span::pattern(),
                format!(
                    "{path}:{}: waiver `pa:allow({})` suppressed nothing; remove it",
                    w.line, w.code_str
                ),
            ));
        }
    }
    report
}

/// If `line` acquires a ranked lock, returns the rank. An acquisition is
/// one of the poison-recovering helpers (`lock(&…)`, `read(&…)`,
/// `write(&…)`) or a bare `.lock()`/`.read()`/`.write()` call naming one
/// of the ranked resources.
fn acquisition_rank(line: &str, order: &[String]) -> Option<usize> {
    const PATTERNS: [&str; 6] = ["lock(&", "read(&", "write(&", ".lock()", ".read()", ".write()"];
    if !PATTERNS.iter().any(|p| line.contains(p)) {
        return None;
    }
    // The ranked name must appear on the line as a standalone identifier
    // (field or binding); the highest-ranked name present wins, which is
    // the one the guard protects in `let store = lock(&slot.store);`.
    order
        .iter()
        .enumerate()
        .filter(|(_, name)| word_match(line, name).is_some())
        .map(|(rank, _)| rank)
        .max()
}

/// Whether an attribute block immediately above line `i` carries
/// `#[must_use]` (doc comments and other attributes may interleave).
fn has_must_use_above(lines: &[String], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim_start();
        if t.starts_with("#[") || t.starts_with("///") || t.is_empty() {
            if t.contains("#[must_use]") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SourceConfig {
        SourceConfig::parafile_defaults()
    }

    fn run(path: &str, text: &str) -> AuditReport {
        audit_source(path, text, &cfg())
    }

    #[test]
    fn pa040_fires_on_hot_path_unwrap_and_passes_when_typed() {
        let fire = run("crates/net/src/server.rs", "fn f() { x.unwrap(); y.expect(\"boom\"); }\n");
        assert_eq!(
            fire.diagnostics.iter().filter(|d| d.code == Code::UnwrapOnHotPath).count(),
            2,
            "{:?}",
            fire.diagnostics
        );
        let pass = run(
            "crates/net/src/server.rs",
            "fn f() -> Result<(), E> { let v = x.ok_or(E::Bad)?; Ok(v) }\n",
        );
        assert!(!pass.has_code(Code::UnwrapOnHotPath), "{:?}", pass.diagnostics);
        // Not a hot-path file: the same text passes.
        let elsewhere = run("crates/tools/src/bin/pf.rs", "fn f() { x.unwrap(); }\n");
        assert!(!elsewhere.has_code(Code::UnwrapOnHotPath));
    }

    #[test]
    fn pa040_ignores_tests_strings_and_comments() {
        let text = "\
fn f() {
    let s = \"call .unwrap() later\"; // never .unwrap() here
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
";
        let r = run("crates/net/src/server.rs", text);
        assert!(!r.has_code(Code::UnwrapOnHotPath), "{:?}", r.diagnostics);
    }

    #[test]
    fn replica_hot_paths_inherit_unwrap_and_lock_order_checks() {
        // The replication layer is hot-path code: PA040 applies to the
        // replica crate and the checksum map.
        for path in ["crates/replica/src/lib.rs", "crates/clusterfile/src/checksum.rs"] {
            let r = run(path, "fn f() { x.unwrap(); }\n");
            assert!(r.has_code(Code::UnwrapOnHotPath), "{path}: {:?}", r.diagnostics);
        }
        // The checksum map's `sums` lock ranks between `journal` and
        // `dedup` in the canonical order.
        let inverted = "\
fn f(slot: &Slot) {
    let mut sums = lock(&slot.sums);
    let mut journal = lock(&slot.journal);
}
";
        let r = run("crates/net/src/server.rs", inverted);
        assert!(r.has_code(Code::LockOrderViolation), "{:?}", r.diagnostics);
        let ordered = "\
fn f(slot: &Slot) {
    let mut journal = lock(&slot.journal);
    let mut sums = lock(&slot.sums);
    let hit = lock(&slot.dedup).contains(stamp);
}
";
        let r = run("crates/net/src/server.rs", ordered);
        assert!(!r.has_code(Code::LockOrderViolation), "{:?}", r.diagnostics);
    }

    #[test]
    fn pa041_fires_on_panic_family_and_passes_on_typed_errors() {
        let fire =
            run("crates/net/src/session.rs", "fn f() { unreachable!(\"dispatched on opcode\") }\n");
        assert!(fire.has_code(Code::PanicOnHotPath), "{:?}", fire.diagnostics);
        let pass = run("crates/net/src/session.rs", "fn f() -> E { E::Internal }\n");
        assert!(!pass.has_code(Code::PanicOnHotPath));
    }

    #[test]
    fn pa042_fires_on_unbounded_channel_and_passes_on_sync_channel() {
        let fire = run("crates/net/src/session.rs", "let (tx, rx) = mpsc::channel::<Job>();\n");
        assert!(fire.has_code(Code::UnboundedChannel), "{:?}", fire.diagnostics);
        let pass = run(
            "crates/net/src/session.rs",
            "let (tx, rx) = mpsc::sync_channel::<Job>(WORKER_QUEUE_DEPTH);\n",
        );
        assert!(!pass.has_code(Code::UnboundedChannel), "{:?}", pass.diagnostics);
    }

    #[test]
    fn pa043_fires_on_inverted_lock_order_and_passes_in_order() {
        let fire = "\
fn f(slot: &Slot) {
    let mut journal = lock(&slot.journal);
    let mut store = lock(&slot.store);
}
";
        let r = run("crates/net/src/server.rs", fire);
        assert!(r.has_code(Code::LockOrderViolation), "{:?}", r.diagnostics);
        let pass = "\
fn f(slot: &Slot) {
    let mut store = lock(&slot.store);
    {
        let mut journal = lock(&slot.journal);
    }
    let hit = lock(&slot.dedup).contains(stamp);
}
";
        let r = run("crates/net/src/server.rs", pass);
        assert!(!r.has_code(Code::LockOrderViolation), "{:?}", r.diagnostics);
    }

    #[test]
    fn pa043_releases_guards_at_scope_end_and_on_drop() {
        let text = "\
fn f(slot: &Slot) {
    {
        let mut journal = lock(&slot.journal);
    }
    let mut store = lock(&slot.store);
    let mut dedup = lock(&slot.dedup);
    drop(dedup);
    let mut journal = lock(&slot.journal);
}
";
        let r = run("crates/net/src/server.rs", text);
        assert!(!r.has_code(Code::LockOrderViolation), "{:?}", r.diagnostics);
    }

    #[test]
    fn pa044_fires_without_must_use_and_passes_with_it() {
        let fire = "pub fn version(&self) -> u8 {\n    self.version\n}\n";
        let r = run("crates/net/src/proto.rs", fire);
        assert!(r.has_code(Code::MissingMustUse), "{:?}", r.diagnostics);
        let pass = "#[must_use]\npub fn version(&self) -> u8 {\n    self.version\n}\n";
        let r = run("crates/net/src/proto.rs", pass);
        assert!(!r.has_code(Code::MissingMustUse), "{:?}", r.diagnostics);
        // Result/Option returns pass inherently (the compiler tracks them,
        // and clippy rejects the doubled attribute).
        let result = "pub fn accept(&mut self) -> Result<Progress, Violation> {\n";
        let r = run("crates/net/src/proto.rs", result);
        assert!(!r.has_code(Code::MissingMustUse), "{:?}", r.diagnostics);
    }

    #[test]
    fn pa046_fires_on_blocking_calls_in_reactor_files_only() {
        for needle in
            ["std::thread::sleep(d);", "let s = TcpStream::connect(a);", "s.set_read_timeout(t);"]
        {
            let fire = run("crates/net/src/mux.rs", &format!("fn f() {{ {needle} }}\n"));
            assert!(fire.has_code(Code::BlockingInReactor), "{needle}: {:?}", fire.diagnostics);
        }
        // The same tokens outside the reactor file set are fine: the
        // legacy thread-per-connection client blocks by design.
        let elsewhere = run("crates/net/src/client.rs", "fn f() { thread::sleep(d); }\n");
        assert!(!elsewhere.has_code(Code::BlockingInReactor), "{:?}", elsewhere.diagnostics);
        // Test modules inside reactor files are exempt.
        let tests = run(
            "crates/net/src/reactor/mod.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::sleep(d); }\n}\n",
        );
        assert!(!tests.has_code(Code::BlockingInReactor), "{:?}", tests.diagnostics);
        // A deliberate off-loop blocking call is waivable.
        let waived = run(
            "crates/net/src/mux.rs",
            "fn f() {\n    // pa:allow(PA046)\n    let s = NetStream::connect(&addr);\n}\n",
        );
        assert!(!waived.has_code(Code::BlockingInReactor), "{:?}", waived.diagnostics);
        assert!(!waived.has_code(Code::StaleWaiver), "{:?}", waived.diagnostics);
    }

    #[test]
    fn pa045_warns_on_stale_waiver_and_working_waivers_suppress() {
        // A waiver above a real finding suppresses it and is not stale.
        let good = "\
fn f() {
    // pa:allow(PA040)
    x.unwrap();
}
";
        let r = run("crates/net/src/server.rs", good);
        assert!(!r.has_code(Code::UnwrapOnHotPath), "{:?}", r.diagnostics);
        assert!(!r.has_code(Code::StaleWaiver), "{:?}", r.diagnostics);
        // A waiver with nothing to excuse warns.
        let stale = "fn f() {\n    // pa:allow(PA040)\n    let x = 1;\n}\n";
        let r = run("crates/net/src/server.rs", stale);
        assert!(r.has_code(Code::StaleWaiver), "{:?}", r.diagnostics);
        assert_eq!(r.error_count(), 0, "stale waivers warn, not error");
    }

    #[test]
    fn string_and_char_stripping_keeps_columns_honest() {
        assert_eq!(strip_line("let s = \"panic!(\"; x"), "let s = \"       \"; x");
        assert_eq!(strip_line("a // b"), "a ");
        assert_eq!(strip_line("let c = '\"'; x.unwrap()"), "let c = ' '; x.unwrap()");
    }
}
