//! `parafile-audit` — a static verifier for partitioning patterns.
//!
//! The paper's machinery (mapping functions, INTERSECT, redistribution
//! plans) is only correct for patterns that satisfy the model invariants:
//! every FALLS well-formed, inner families contained in their parent's
//! block, siblings ordered and disjoint, and the elements tiling exactly
//! one period `[0, SIZE)`. The library constructors enforce those
//! invariants by rejecting bad input outright — useful in production,
//! but opaque: callers learn *that* a pattern is broken, not *what* is
//! broken or *where*.
//!
//! This crate re-checks the invariants symbolically over a single pattern
//! period and reports every violation as a structured [`Diagnostic`] with a
//! stable code (`PA001`–`PA032`), a severity, a [`Span`] addressing the
//! offending element/family, and a message carrying the offending numbers.
//! It also flags patterns that are valid but pathological: periods beyond a
//! configurable budget (which would blow up aligned-period computations)
//! and maximal single-byte fragmentation.
//!
//! The analyzer consumes [`RawFalls`]/[`RawElement`]/[`RawPattern`] trees
//! that mirror the validated types field-for-field but carry no invariants,
//! so deliberately broken structures (e.g. in mutation tests) can be
//! expressed. Validated [`Partition`]s convert losslessly via
//! [`RawPattern::from_partition`] or the [`audit_partition`] convenience.
//!
//! ```
//! use parafile_audit::{audit_pattern, AuditConfig, Code, RawElement, RawFalls, RawPattern};
//!
//! // Two elements that leave bytes [2, 3] uncovered.
//! let broken = RawPattern::new(vec![
//!     RawElement::new(vec![RawFalls::leaf(0, 1, 6, 1)]),
//!     RawElement::new(vec![RawFalls::leaf(4, 5, 6, 1)]),
//! ]);
//! let report = audit_pattern(&broken, &AuditConfig::default());
//! assert!(report.has_code(Code::Gap));
//! ```

mod checks;
mod diag;
mod raw;
mod source;

pub use checks::{audit_pair, audit_pattern, AuditConfig, DEFAULT_PERIOD_BUDGET};
pub use diag::{AuditReport, Code, Diagnostic, Severity, Span};
pub use raw::{RawElement, RawFalls, RawPattern};
pub use source::{audit_source, SourceConfig};

use parafile::model::Partition;

/// Audits a validated [`Partition`] (convenience wrapper around
/// [`RawPattern::from_partition`] + [`audit_pattern`]).
///
/// A validated partition should always pass the structural and tiling
/// checks; this entry point exists to surface *pathology* warnings (PA030,
/// PA031) and as a defense-in-depth cross-check of the constructors.
#[must_use]
pub fn audit_partition(partition: &Partition, cfg: &AuditConfig) -> AuditReport {
    audit_pattern(&RawPattern::from_partition(partition), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use falls::{Falls, NestedFalls, NestedSet};
    use parafile::model::PartitionPattern;

    #[test]
    fn validated_partition_audits_clean() {
        let pattern = PartitionPattern::new(vec![
            NestedSet::singleton(NestedFalls::leaf(Falls::new(0, 1, 6, 1).unwrap())),
            NestedSet::singleton(NestedFalls::leaf(Falls::new(2, 5, 6, 1).unwrap())),
        ])
        .unwrap();
        let partition = Partition::new(4, pattern);
        let report = audit_partition(&partition, &AuditConfig::default());
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }
}
