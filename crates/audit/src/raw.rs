//! Unvalidated pattern trees — the analyzer's input language.
//!
//! The `falls` and `parafile` constructors reject malformed structures
//! outright, which is the right behavior for production code but useless
//! for an auditor: there would be nothing left to diagnose. The raw types
//! here mirror `Falls`/`NestedSet`/`PartitionPattern` field-for-field with
//! no invariants, so any structure — including deliberately broken ones in
//! mutation tests — can be expressed and analyzed.

use falls::{NestedFalls, NestedSet};
use parafile::model::{Partition, PartitionPattern};

/// An unvalidated `(l, r, s, n)` family with optional inner families
/// (relative to the block start, like [`NestedFalls`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFalls {
    /// Left index of the first segment.
    pub l: u64,
    /// Right index of the first segment.
    pub r: u64,
    /// Stride between consecutive segments.
    pub s: u64,
    /// Segment count.
    pub n: u64,
    /// Inner families; empty means a leaf.
    pub inner: Vec<RawFalls>,
}

impl RawFalls {
    /// A leaf family.
    #[must_use]
    pub fn leaf(l: u64, r: u64, s: u64, n: u64) -> Self {
        Self { l, r, s, n, inner: Vec::new() }
    }

    /// A nested family.
    #[must_use]
    pub fn nested(l: u64, r: u64, s: u64, n: u64, inner: Vec<RawFalls>) -> Self {
        Self { l, r, s, n, inner }
    }

    /// Lossless conversion from a validated [`NestedFalls`].
    #[must_use]
    pub fn from_nested(nf: &NestedFalls) -> Self {
        let f = nf.falls();
        Self {
            l: f.l(),
            r: f.r(),
            s: f.stride(),
            n: f.count(),
            inner: nf.inner().iter().map(RawFalls::from_nested).collect(),
        }
    }

    /// Block length `r − l + 1`; `None` when the segment is inverted.
    #[must_use]
    pub fn block_len(&self) -> Option<u64> {
        if self.l > self.r {
            return None;
        }
        // l ≤ r < 2^64 so the +1 can only overflow for the full-range block.
        (self.r - self.l).checked_add(1)
    }
}

/// One unvalidated partition element: its sibling families.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawElement {
    /// Top-level families of the element, expected sorted and disjoint.
    pub families: Vec<RawFalls>,
}

impl RawElement {
    /// Wraps a list of families.
    #[must_use]
    pub fn new(families: Vec<RawFalls>) -> Self {
        Self { families }
    }

    /// Lossless conversion from a validated [`NestedSet`].
    #[must_use]
    pub fn from_set(set: &NestedSet) -> Self {
        Self { families: set.families().iter().map(RawFalls::from_nested).collect() }
    }
}

/// An unvalidated partitioning pattern with its displacement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawPattern {
    /// Absolute displacement of the tiling.
    pub displacement: u64,
    /// One entry per partition element.
    pub elements: Vec<RawElement>,
}

impl RawPattern {
    /// Wraps a list of elements at displacement 0.
    #[must_use]
    pub fn new(elements: Vec<RawElement>) -> Self {
        Self { displacement: 0, elements }
    }

    /// Lossless conversion from a validated [`PartitionPattern`].
    #[must_use]
    pub fn from_pattern(pattern: &PartitionPattern) -> Self {
        Self {
            displacement: 0,
            elements: pattern.elements().iter().map(RawElement::from_set).collect(),
        }
    }

    /// Lossless conversion from a validated [`Partition`].
    #[must_use]
    pub fn from_partition(partition: &Partition) -> Self {
        Self {
            displacement: partition.displacement(),
            elements: partition.pattern().elements().iter().map(RawElement::from_set).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falls::Falls;

    #[test]
    fn conversion_mirrors_the_tree() {
        let nf = NestedFalls::with_inner(
            Falls::new(0, 7, 16, 2).unwrap(),
            vec![NestedFalls::leaf(Falls::new(0, 1, 4, 2).unwrap())],
        )
        .unwrap();
        let raw = RawFalls::from_nested(&nf);
        assert_eq!(raw.l, 0);
        assert_eq!(raw.r, 7);
        assert_eq!(raw.s, 16);
        assert_eq!(raw.n, 2);
        assert_eq!(raw.inner.len(), 1);
        assert_eq!(raw.inner[0], RawFalls::leaf(0, 1, 4, 2));
        assert_eq!(raw.block_len(), Some(8));
    }

    #[test]
    fn inverted_block_has_no_length() {
        assert_eq!(RawFalls::leaf(5, 3, 6, 1).block_len(), None);
        assert_eq!(RawFalls::leaf(0, u64::MAX, 1, 1).block_len(), None);
        assert_eq!(RawFalls::leaf(1, u64::MAX, 1, 1).block_len(), Some(u64::MAX));
    }

    #[test]
    fn raw_pattern_from_partition_keeps_displacement() {
        let pattern = PartitionPattern::new(vec![
            NestedSet::singleton(NestedFalls::leaf(Falls::new(0, 1, 6, 1).unwrap())),
            NestedSet::singleton(NestedFalls::leaf(Falls::new(2, 5, 6, 1).unwrap())),
        ])
        .unwrap();
        let p = Partition::new(7, pattern);
        let raw = RawPattern::from_partition(&p);
        assert_eq!(raw.displacement, 7);
        assert_eq!(raw.elements.len(), 2);
        // Falls normalizes the stride of an n = 1 family to its block length.
        assert_eq!(raw.elements[1].families[0], RawFalls::leaf(2, 5, 4, 1));
    }
}
