//! Every partition the paper's experiment builds must audit clean: the
//! matrix layouts at all swept sizes, and the (logical, physical) pairs the
//! redistribution uses.

use arraydist::matrix::MatrixLayout;
use parafile_audit::{audit_pair, audit_partition, AuditConfig, RawPattern};

/// The paper sweeps 256–2048; 2048² bytes sits exactly at the default
/// period budget, so the largest size still gets full tiling verification.
const PAPER_DIMS: [u64; 4] = [256, 512, 1024, 2048];

#[test]
fn paper_layouts_audit_clean() {
    let cfg = AuditConfig::default();
    for dim in PAPER_DIMS {
        for layout in MatrixLayout::all() {
            let part = layout.partition(dim, dim, 1, 4);
            let report = audit_partition(&part, &cfg);
            assert!(
                report.is_clean(),
                "{dim}×{dim} layout {} produced {:?}",
                layout.label(),
                report.diagnostics
            );
        }
    }
}

#[test]
fn paper_redistribution_pairs_audit_clean() {
    let cfg = AuditConfig::default();
    for dim in PAPER_DIMS {
        let logical =
            RawPattern::from_partition(&MatrixLayout::RowBlocks.partition(dim, dim, 1, 4));
        for layout in MatrixLayout::all() {
            let physical = RawPattern::from_partition(&layout.partition(dim, dim, 1, 4));
            let report = audit_pair(&logical, &physical, &cfg);
            assert!(
                report.is_clean(),
                "pair r/{} at {dim} produced {:?}",
                layout.label(),
                report.diagnostics
            );
        }
    }
}

#[test]
fn larger_processor_counts_audit_clean() {
    let cfg = AuditConfig::default();
    for procs in [4, 16, 64] {
        for layout in MatrixLayout::all() {
            let part = layout.partition(256, 256, 1, procs);
            let report = audit_partition(&part, &cfg);
            assert!(
                report.is_clean(),
                "p={procs} layout {} produced {:?}",
                layout.label(),
                report.diagnostics
            );
        }
    }
}
