//! Property-based mutation testing of the analyzer: random *valid* patterns
//! audit without errors, and every class of deliberate corruption is caught
//! with its expected diagnostic code.
//!
//! The base patterns come from `falls::testing`: a random nested set plus
//! its complement always tiles `[0, span)` exactly, so the validated
//! constructors accept it and the analyzer must too. Each mutation then
//! breaks exactly one invariant on the raw tree — something the validated
//! types cannot even express — and the test asserts the matching code.

use falls::testing::{random_nested_set, Gen};
use parafile::model::PartitionPattern;
use parafile_audit::{audit_pair, audit_pattern, AuditConfig, Code, RawFalls, RawPattern};
use proptest::prelude::*;

/// A random valid pattern tiling `[0, span)`: a random nested set plus its
/// complement (validated through `PartitionPattern` to keep the generator
/// honest).
fn random_pattern(seed: u64, span: u64) -> RawPattern {
    let mut g = Gen::new(seed);
    let set = random_nested_set(&mut g, span, 3);
    let comp = set.complement(span);
    let mut elements = vec![set];
    if !comp.is_empty() {
        elements.push(comp);
    }
    let pattern = PartitionPattern::new(elements).expect("set + complement tile the span");
    RawPattern::from_pattern(&pattern)
}

fn cfg() -> AuditConfig {
    AuditConfig::default()
}

/// Picks a (element, family) position to mutate, seed-derived.
fn pick_family(p: &RawPattern, seed: u64) -> (usize, usize) {
    let mut g = Gen::new(seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let e = g.below(p.elements.len() as u64) as usize;
    let f = g.below(p.elements[e].families.len() as u64) as usize;
    (e, f)
}

proptest! {
    /// Soundness: the analyzer never flags an error on a pattern the
    /// validated constructors accepted.
    #[test]
    fn valid_patterns_audit_without_errors(seed in any::<u64>(), span in 8u64..200) {
        let p = random_pattern(seed, span);
        let report = audit_pattern(&p, &cfg());
        prop_assert!(!report.has_errors(), "false positives: {:?}", report.diagnostics);
    }

    /// Duplicating a whole element claims every one of its bytes twice.
    #[test]
    fn duplicated_element_is_pa021(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        p.elements.push(p.elements[0].clone());
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::ElementOverlap), "{:?}", report.diagnostics);
    }

    /// Duplicating one family inside an element makes two *siblings* claim
    /// the same bytes.
    #[test]
    fn duplicated_family_is_pa012(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        let (e, f) = pick_family(&p, seed);
        let copy = p.elements[e].families[f].clone();
        // Insert adjacent to the original so sibling order stays intact and
        // the overlap is the only defect.
        p.elements[e].families.insert(f + 1, copy);
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::SiblingOverlap), "{:?}", report.diagnostics);
    }

    /// Appending an element one byte past the period leaves a hole at
    /// `span` (removal-based gap injection is unsound: the audit derives
    /// the period from the surviving sizes, so removing a contiguous
    /// suffix element can leave a smaller but still perfect tiling).
    #[test]
    fn displaced_element_is_pa020(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        p.elements.push(parafile_audit::RawElement::new(vec![RawFalls::leaf(
            span + 1,
            span + 2,
            2,
            1,
        )]));
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::Gap), "{:?}", report.diagnostics);
    }

    /// Grafting an inner family that reaches past its parent's block.
    #[test]
    fn inner_escape_is_pa010(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        let (e, f) = pick_family(&p, seed);
        let fam = &mut p.elements[e].families[f];
        let block = fam.block_len().expect("valid family has a block length");
        // Two blocks of `block` bytes inside a parent block of `block`
        // bytes: the second repetition escapes.
        fam.inner = vec![RawFalls::leaf(0, block - 1, block, 2)];
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::InnerEscape), "{:?}", report.diagnostics);
    }

    /// Forcing a zero stride on a multi-segment family.
    #[test]
    fn zero_stride_is_pa003(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        let (e, f) = pick_family(&p, seed);
        let fam = &mut p.elements[e].families[f];
        fam.s = 0;
        fam.n = fam.n.max(2);
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::ZeroStride), "{:?}", report.diagnostics);
    }

    /// Zeroing a family's count.
    #[test]
    fn zero_count_is_pa002(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        let (e, f) = pick_family(&p, seed);
        p.elements[e].families[f].n = 0;
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::ZeroCount), "{:?}", report.diagnostics);
    }

    /// Inverting a segment (l > r).
    #[test]
    fn inverted_segment_is_pa001(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        let (e, f) = pick_family(&p, seed);
        let fam = &mut p.elements[e].families[f];
        fam.l = fam.r + 1;
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::InvertedSegment), "{:?}", report.diagnostics);
    }

    /// Blowing the extent past the 64-bit offset range.
    #[test]
    fn extent_overflow_is_pa005(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        let (e, f) = pick_family(&p, seed);
        let fam = &mut p.elements[e].families[f];
        fam.s = u64::MAX;
        fam.n = fam.n.max(3);
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::Overflow), "{:?}", report.diagnostics);
    }

    /// Swapping two sibling families breaks the sort order.
    #[test]
    fn swapped_families_is_pa011(seed in any::<u64>(), span in 8u64..200) {
        let mut p = random_pattern(seed, span);
        let e = p
            .elements
            .iter()
            .position(|el| el.families.len() >= 2);
        prop_assume!(e.is_some());
        let e = e.expect("just checked");
        p.elements[e].families.swap(0, 1);
        let report = audit_pattern(&p, &cfg());
        prop_assert!(report.has_code(Code::UnorderedSiblings), "{:?}", report.diagnostics);
    }

    /// A budget below the period turns tiling verification into a PA030
    /// warning — never an error.
    #[test]
    fn tight_budget_is_pa030(seed in any::<u64>(), span in 8u64..200) {
        let p = random_pattern(seed, span);
        let report = audit_pattern(&p, &AuditConfig::with_budget(span - 1));
        prop_assert!(report.has_code(Code::PeriodBudget), "{:?}", report.diagnostics);
        prop_assert!(!report.has_errors());
    }

    /// Pair-level check: a pattern paired with itself is always clean (the
    /// aligned period equals the pattern period).
    #[test]
    fn self_pair_audits_clean(seed in any::<u64>(), span in 8u64..200) {
        let p = random_pattern(seed, span);
        let report = audit_pair(&p, &p, &cfg());
        prop_assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }
}
