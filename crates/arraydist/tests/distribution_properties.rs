//! Property tests for HPF distributions and datatype lowering.

use arraydist::datatype::Datatype;
use arraydist::dist::{ArrayDistribution, DimDist};
use arraydist::grid::ProcGrid;
use proptest::prelude::*;

fn arb_dim_dist() -> impl Strategy<Value = DimDist> {
    prop_oneof![
        Just(DimDist::Block),
        Just(DimDist::Cyclic),
        (1u64..5).prop_map(DimDist::BlockCyclic),
    ]
}

/// A random 1–3 dimensional distribution whose grid never exceeds the
/// extents (so every processor owns something).
fn arb_distribution() -> impl Strategy<Value = ArrayDistribution> {
    (1usize..=3).prop_flat_map(|ndims| {
        (
            proptest::collection::vec(1u64..12, ndims),
            proptest::collection::vec(arb_dim_dist(), ndims),
            proptest::collection::vec(1u64..4, ndims),
            1u64..5,
        )
            .prop_filter_map("empty processor", |(shape, dists, grid, elem)| {
                // Clamp grids so no processor is left without data under
                // BLOCK (ceil-division can starve the last processors).
                let grid: Vec<u64> = grid.iter().zip(&shape).map(|(&g, &n)| g.min(n)).collect();
                for ((&g, &n), d) in grid.iter().zip(&shape).zip(&dists) {
                    let ok = match d {
                        DimDist::Block => {
                            let b = n.div_ceil(g);
                            (g - 1) * b < n
                        }
                        DimDist::Cyclic => g <= n,
                        DimDist::BlockCyclic(b) => (g - 1) * b < n,
                        DimDist::Collapsed => g == 1,
                    };
                    if !ok {
                        return None;
                    }
                }
                Some(ArrayDistribution::new(shape, elem, dists, ProcGrid::new(grid)))
            })
    })
}

fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = (1u64..9).prop_map(Datatype::Elementary);
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (1u64..5, inner.clone())
                .prop_map(|(count, child)| Datatype::Contiguous { count, child: Box::new(child) }),
            (1u64..4, 1u64..4, 0u64..4, inner.clone()).prop_map(
                |(count, blocklen, extra, child)| Datatype::Vector {
                    count,
                    blocklen,
                    stride: blocklen + extra,
                    child: Box::new(child)
                }
            ),
            (proptest::collection::vec((0u64..4, 1u64..4), 1..4), inner).prop_map(
                |(raw, child)| {
                    // Make displacements strictly increasing and disjoint.
                    let mut blocks = Vec::new();
                    let mut pos = 0u64;
                    for (gap, len) in raw {
                        let d = pos + gap;
                        blocks.push((d, len));
                        pos = d + len;
                    }
                    Datatype::Indexed { blocks, child: Box::new(child) }
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every distribution partitions the array exactly: the pattern
    /// validates (tiling + disjointness) and sizes sum to the array bytes.
    #[test]
    fn distributions_tile_exactly(d in arb_distribution()) {
        let sets = d.element_sets().unwrap();
        let total: u64 = sets.iter().map(|s| s.size()).sum();
        prop_assert_eq!(total, d.total_bytes());
        let _ = d.pattern(); // panics if not a valid tiling
    }

    /// Ownership from the FALLS pattern matches direct index arithmetic.
    #[test]
    fn ownership_matches_arithmetic(d in arb_distribution()) {
        let part = d.partition(0);
        let shape = d.shape().to_vec();
        let grid = d.grid().extents().to_vec();
        // Walk a bounded number of element coordinates.
        let total_elems: u64 = shape.iter().product();
        for idx in 0..total_elems.min(500) {
            // Decompose idx into coordinates (row-major).
            let mut rest = idx;
            let mut coord = vec![0u64; shape.len()];
            for (i, &n) in shape.iter().enumerate().rev() {
                coord[i] = rest % n;
                rest /= n;
            }
            prop_assert_eq!(rest, 0);
            // Expected owner per dimension — recompute from the definition.
            // (Requires knowing the dists; re-derive via owner_of on bytes.)
            let byte = idx; // elem_size scales uniformly; check first byte
            let owner = part.owner_of(byte * elem_size_of(&d));
            prop_assert!(owner.is_some(), "byte {} unowned", byte);
            let rank = owner.unwrap() as u64;
            prop_assert!(rank < grid.iter().product::<u64>());
        }
    }

    /// Datatype laws: size ≤ extent; lowering selects exactly `size` bytes
    /// within the extent; dense types are fully contiguous.
    #[test]
    fn datatype_lowering_laws(d in arb_datatype()) {
        prop_assert!(d.size() <= d.extent());
        let set = d.to_nested().unwrap();
        prop_assert_eq!(set.size(), d.size());
        if let Some(end) = set.extent_end() {
            prop_assert!(end < d.extent());
        }
        if d.is_dense() {
            let segs = set.absolute_segments();
            prop_assert_eq!(segs.len(), 1);
            prop_assert_eq!(segs[0].len(), d.extent());
        }
        // View sets tile the extent.
        let (sel, comp) = d.as_view_sets().unwrap();
        let comp_size = comp.map(|c| c.size()).unwrap_or(0);
        prop_assert_eq!(sel.size() + comp_size, d.extent());
    }

    /// Contiguous-of-dense flattening: contiguous(count, dense) selects
    /// count · extent bytes in one segment.
    #[test]
    fn contiguous_flattening(count in 1u64..6, n in 1u64..9) {
        let d = Datatype::Contiguous { count, child: Box::new(Datatype::Elementary(n)) };
        let set = d.to_nested().unwrap();
        prop_assert_eq!(set.absolute_segments().len(), 1);
        prop_assert_eq!(set.size(), count * n);
    }
}

fn elem_size_of(d: &ArrayDistribution) -> u64 {
    d.total_bytes() / d.shape().iter().product::<u64>()
}
