//! MPI-style derived datatypes lowered to nested FALLS.
//!
//! §3 of the paper notes that nested FALLS "can represent arbitrary
//! distributions of data. For instance, MPI data types can be built on top
//! of them." This module provides the classic MPI type constructors —
//! contiguous, vector, and indexed — and lowers each to the nested FALLS
//! selecting its bytes within one type extent, so datatypes can be used
//! directly as views.

use falls::{Falls, FallsError, LineSegment, NestedFalls, NestedSet};

/// An MPI-like derived datatype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datatype {
    /// An elementary type of `n` contiguous bytes (e.g. `MPI_DOUBLE` = 8).
    Elementary(u64),
    /// `count` repetitions of the child type, back to back.
    Contiguous {
        /// Number of repetitions.
        count: u64,
        /// Repeated type.
        child: Box<Datatype>,
    },
    /// `count` blocks of `blocklen` children, spaced `stride` children apart
    /// (strides measured in child extents, as in `MPI_Type_vector`).
    Vector {
        /// Number of blocks.
        count: u64,
        /// Children per block.
        blocklen: u64,
        /// Distance between block starts, in child extents.
        stride: u64,
        /// Element type.
        child: Box<Datatype>,
    },
    /// Blocks at explicit displacements (in child extents), as in
    /// `MPI_Type_indexed`. Displacements must be increasing and blocks
    /// non-overlapping.
    Indexed {
        /// `(displacement, blocklen)` pairs, in child extents.
        blocks: Vec<(u64, u64)>,
        /// Element type.
        child: Box<Datatype>,
    },
    /// An n-dimensional subarray of a row-major array, as in
    /// `MPI_Type_create_subarray`: the extent spans the full array, the
    /// selection is the hyper-rectangle `starts[d] .. starts[d]+sub[d]`
    /// along every dimension.
    Subarray {
        /// Full array extents (in child elements), outermost first.
        shape: Vec<u64>,
        /// Subarray origin per dimension.
        starts: Vec<u64>,
        /// Subarray extents per dimension.
        sub: Vec<u64>,
        /// Element type.
        child: Box<Datatype>,
    },
}

impl Datatype {
    /// A single byte.
    #[must_use]
    pub fn byte() -> Self {
        Datatype::Elementary(1)
    }

    /// The *extent* of the type: the span from its first to one past its
    /// last byte (including holes).
    #[must_use]
    pub fn extent(&self) -> u64 {
        match self {
            Datatype::Elementary(n) => *n,
            Datatype::Contiguous { count, child } => count * child.extent(),
            Datatype::Vector { count, blocklen, stride, child } => {
                if *count == 0 {
                    0
                } else {
                    ((count - 1) * stride + blocklen) * child.extent()
                }
            }
            Datatype::Indexed { blocks, child } => {
                blocks.iter().map(|(d, l)| (d + l) * child.extent()).max().unwrap_or(0)
            }
            Datatype::Subarray { shape, child, .. } => {
                shape.iter().product::<u64>() * child.extent()
            }
        }
    }

    /// The *size* of the type: the number of bytes it actually selects.
    #[must_use]
    pub fn size(&self) -> u64 {
        match self {
            Datatype::Elementary(n) => *n,
            Datatype::Contiguous { count, child } => count * child.size(),
            Datatype::Vector { count, blocklen, child, .. } => count * blocklen * child.size(),
            Datatype::Indexed { blocks, child } => {
                blocks.iter().map(|(_, l)| l * child.size()).sum()
            }
            Datatype::Subarray { sub, child, .. } => sub.iter().product::<u64>() * child.size(),
        }
    }

    /// Whether the type selects every byte of its extent.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        self.size() == self.extent()
    }

    /// Lowers the type to the nested FALLS selecting its bytes within one
    /// extent.
    pub fn to_nested(&self) -> Result<NestedSet, FallsError> {
        let families = self.families()?;
        NestedSet::new(families)
    }

    fn families(&self) -> Result<Vec<NestedFalls>, FallsError> {
        match self {
            Datatype::Elementary(n) => Ok(vec![NestedFalls::leaf(Falls::new(0, n - 1, *n, 1)?)]),
            Datatype::Contiguous { count, child } => {
                if child.is_dense() {
                    let total = count * child.extent();
                    return Ok(vec![NestedFalls::leaf(Falls::new(0, total - 1, total, 1)?)]);
                }
                let ce = child.extent();
                let outer = Falls::new(0, ce - 1, ce, *count)?;
                Ok(vec![NestedFalls::with_inner(outer, child.families()?)?])
            }
            Datatype::Vector { count, blocklen, stride, child } => {
                let ce = child.extent();
                let block_bytes = blocklen * ce;
                let outer = Falls::new(0, block_bytes - 1, stride * ce, *count)?;
                if child.is_dense() {
                    return Ok(vec![NestedFalls::leaf(outer)]);
                }
                let rep = Falls::new(0, ce - 1, ce, *blocklen)?;
                let inner = if *blocklen == 1 {
                    child.families()?
                } else {
                    vec![NestedFalls::with_inner(rep, child.families()?)?]
                };
                Ok(vec![NestedFalls::with_inner(outer, inner)?])
            }
            Datatype::Indexed { blocks, child } => {
                let ce = child.extent();
                let mut out = Vec::with_capacity(blocks.len());
                let mut prev_end = 0u64;
                for &(disp, len) in blocks {
                    assert!(len > 0, "indexed blocks must be non-empty");
                    let start = disp * ce;
                    assert!(
                        out.is_empty() || start >= prev_end,
                        "indexed displacements must be increasing and non-overlapping"
                    );
                    prev_end = (disp + len) * ce;
                    let outer = Falls::new(start, prev_end - 1, prev_end - start, 1)?;
                    if child.is_dense() {
                        out.push(NestedFalls::leaf(outer));
                    } else {
                        let rep = Falls::new(0, ce - 1, ce, len)?;
                        let inner = if len == 1 {
                            child.families()?
                        } else {
                            vec![NestedFalls::with_inner(rep, child.families()?)?]
                        };
                        out.push(NestedFalls::with_inner(outer, inner)?);
                    }
                }
                Ok(out)
            }
            Datatype::Subarray { shape, starts, sub, child } => {
                assert_eq!(shape.len(), starts.len(), "one start per dimension");
                assert_eq!(shape.len(), sub.len(), "one extent per dimension");
                assert!(!shape.is_empty(), "subarrays need at least one dimension");
                for d in 0..shape.len() {
                    assert!(sub[d] >= 1, "dimension {d}: empty subarray extent");
                    assert!(
                        starts[d] + sub[d] <= shape[d],
                        "dimension {d}: subarray exceeds the array"
                    );
                }
                Ok(vec![subarray_dim(shape, starts, sub, child, 0)?])
            }
        }
    }

    /// The byte segments one instance of the type selects (reference
    /// semantics used by the tests).
    #[must_use]
    pub fn segments(&self) -> Vec<LineSegment> {
        self.to_nested().map(|s| s.absolute_segments()).unwrap_or_default()
    }

    /// Builds a partitioning element set that tiles a file as repeated
    /// instances of this datatype plus an (optional) complement element —
    /// the "set a view via a datatype" convenience. Returns `(selected,
    /// complement)` sets over one extent.
    pub fn as_view_sets(&self) -> Result<(NestedSet, Option<NestedSet>), FallsError> {
        let selected = self.to_nested()?;
        let complement = selected.complement(self.extent());
        let complement = (!complement.is_empty()).then_some(complement);
        Ok((selected, complement))
    }
}

/// Builds the nested FALLS for dimension `d` of a subarray selection.
fn subarray_dim(
    shape: &[u64],
    starts: &[u64],
    sub: &[u64],
    child: &Datatype,
    d: usize,
) -> Result<NestedFalls, FallsError> {
    let ce = child.extent();
    let unit: u64 = shape[d + 1..].iter().product::<u64>() * ce;
    let run = sub[d];
    let lo = starts[d];
    let outer = Falls::new(lo * unit, (lo + run) * unit - 1, shape[d] * unit, 1)?;
    let deeper_full = (d + 1..shape.len()).all(|k| starts[k] == 0 && sub[k] == shape[k]);
    if deeper_full && child.is_dense() {
        return Ok(NestedFalls::leaf(outer));
    }
    let inner_child = if d + 1 < shape.len() {
        vec![subarray_dim(shape, starts, sub, child, d + 1)?]
    } else {
        child.families()?
    };
    let inner = if run == 1 {
        inner_child
    } else {
        vec![NestedFalls::with_inner(Falls::new(0, unit - 1, unit, run)?, inner_child)?]
    };
    NestedFalls::with_inner(outer, inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementary_and_contiguous() {
        let d = Datatype::Contiguous { count: 3, child: Box::new(Datatype::Elementary(4)) };
        assert_eq!(d.extent(), 12);
        assert_eq!(d.size(), 12);
        assert!(d.is_dense());
        let set = d.to_nested().unwrap();
        assert_eq!(set.absolute_offsets(), (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn vector_matches_mpi_semantics() {
        // MPI_Type_vector(count=3, blocklen=2, stride=4) over 8-byte doubles.
        let d = Datatype::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
            child: Box::new(Datatype::Elementary(8)),
        };
        assert_eq!(d.extent(), (2 * 4 + 2) * 8);
        assert_eq!(d.size(), 3 * 2 * 8);
        let segs = d.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].bounds(), (0, 15));
        assert_eq!(segs[1].bounds(), (32, 47));
        assert_eq!(segs[2].bounds(), (64, 79));
    }

    #[test]
    fn nested_vector_of_vectors() {
        // A column of a 4×4 byte matrix: vector(4, 1, 4, byte)...
        let col = Datatype::Vector {
            count: 4,
            blocklen: 1,
            stride: 4,
            child: Box::new(Datatype::byte()),
        };
        // ...then every other such column-extent: vector(2, 1, 2, col).
        let cols =
            Datatype::Vector { count: 2, blocklen: 1, stride: 2, child: Box::new(col.clone()) };
        assert_eq!(col.to_nested().unwrap().absolute_offsets(), vec![0, 4, 8, 12]);
        let offs = cols.to_nested().unwrap().absolute_offsets();
        // Second instance starts at 1 column extent (13 bytes) × 2 = 26.
        assert_eq!(offs, vec![0, 4, 8, 12, 26, 30, 34, 38]);
    }

    #[test]
    fn indexed_blocks() {
        let d = Datatype::Indexed {
            blocks: vec![(0, 2), (5, 1), (8, 3)],
            child: Box::new(Datatype::Elementary(2)),
        };
        assert_eq!(d.extent(), 22);
        assert_eq!(d.size(), 12);
        let offs = d.to_nested().unwrap().absolute_offsets();
        let want: Vec<u64> = (0..4).chain(10..12).chain(16..22).collect();
        assert_eq!(offs, want);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn indexed_overlap_rejected() {
        let d =
            Datatype::Indexed { blocks: vec![(0, 3), (2, 2)], child: Box::new(Datatype::byte()) };
        let _ = d.to_nested();
    }

    #[test]
    fn view_sets_tile_the_extent() {
        use parafile::model::PartitionPattern;
        let d = Datatype::Vector {
            count: 2,
            blocklen: 1,
            stride: 2,
            child: Box::new(Datatype::Elementary(3)),
        };
        let (sel, comp) = d.as_view_sets().unwrap();
        let pattern = PartitionPattern::new(vec![sel, comp.expect("vector has holes")]).unwrap();
        assert_eq!(pattern.size(), d.extent());
    }

    #[test]
    fn subarray_2d() {
        // 4×6 byte array; subarray starts (1,2), extents (2,3).
        let d = Datatype::Subarray {
            shape: vec![4, 6],
            starts: vec![1, 2],
            sub: vec![2, 3],
            child: Box::new(Datatype::byte()),
        };
        assert_eq!(d.extent(), 24);
        assert_eq!(d.size(), 6);
        let want: Vec<u64> = (1..3).flat_map(|r| (2..5).map(move |c| r * 6 + c)).collect();
        assert_eq!(d.to_nested().unwrap().absolute_offsets(), want);
    }

    #[test]
    fn subarray_full_is_dense() {
        let d = Datatype::Subarray {
            shape: vec![3, 5],
            starts: vec![0, 0],
            sub: vec![3, 5],
            child: Box::new(Datatype::Elementary(4)),
        };
        assert!(d.is_dense());
        let segs = d.to_nested().unwrap().absolute_segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 60);
    }

    #[test]
    fn subarray_3d_with_wide_elements() {
        // 2×3×4 array of 2-byte elements; select plane 1, rows 0..2, cols 1..3.
        let d = Datatype::Subarray {
            shape: vec![2, 3, 4],
            starts: vec![1, 0, 1],
            sub: vec![1, 2, 2],
            child: Box::new(Datatype::Elementary(2)),
        };
        assert_eq!(d.extent(), 48);
        assert_eq!(d.size(), 8);
        let want: Vec<u64> = (0..2)
            .flat_map(|r| {
                (1..3).flat_map(move |c| {
                    let elem = (3 + r) * 4 + c;
                    (elem * 2)..(elem * 2 + 2)
                })
            })
            .collect();
        assert_eq!(d.to_nested().unwrap().absolute_offsets(), want);
    }

    #[test]
    fn subarray_with_sparse_child() {
        // Each element is 3 bytes of which only {0, 2} are selected.
        let sparse_elem = Datatype::Vector {
            count: 2,
            blocklen: 1,
            stride: 2,
            child: Box::new(Datatype::byte()),
        };
        assert_eq!(sparse_elem.extent(), 3);
        // A 1-d array of 3 such elements, selecting the middle one.
        let d = Datatype::Subarray {
            shape: vec![3],
            starts: vec![1],
            sub: vec![1],
            child: Box::new(sparse_elem),
        };
        assert_eq!(d.to_nested().unwrap().absolute_offsets(), vec![3, 5]);
        // And selecting the last two elements.
        let d2 = Datatype::Subarray {
            shape: vec![3],
            starts: vec![1],
            sub: vec![2],
            child: Box::new(Datatype::Vector {
                count: 2,
                blocklen: 1,
                stride: 2,
                child: Box::new(Datatype::byte()),
            }),
        };
        assert_eq!(d2.to_nested().unwrap().absolute_offsets(), vec![3, 5, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "exceeds the array")]
    fn subarray_bounds_checked() {
        let d = Datatype::Subarray {
            shape: vec![4],
            starts: vec![3],
            sub: vec![2],
            child: Box::new(Datatype::byte()),
        };
        let _ = d.to_nested();
    }

    #[test]
    fn sparse_contiguous_nests() {
        // contiguous(2, vector(...)): child sparse → outer keeps nesting.
        let inner = Datatype::Vector {
            count: 2,
            blocklen: 1,
            stride: 2,
            child: Box::new(Datatype::byte()),
        };
        let d = Datatype::Contiguous { count: 2, child: Box::new(inner) };
        // inner extent 3, selects {0, 2} → instances at 0 and 3.
        assert_eq!(d.to_nested().unwrap().absolute_offsets(), vec![0, 2, 3, 5]);
        assert_eq!(d.size(), 4);
        assert_eq!(d.extent(), 6);
    }
}
