//! HPF-style array distributions lowered to nested FALLS.

use crate::grid::ProcGrid;
use falls::{Falls, FallsError, NestedFalls, NestedSet};
use parafile::model::{Partition, PartitionPattern};

/// Distribution of one array dimension over one grid dimension, following
/// High-Performance Fortran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimDist {
    /// `BLOCK`: contiguous chunks of `ceil(N/P)` indices per processor.
    Block,
    /// `CYCLIC`: index `i` belongs to processor `i mod P`.
    Cyclic,
    /// `CYCLIC(b)`: blocks of `b` indices dealt round-robin.
    BlockCyclic(u64),
    /// `*` (collapsed): the dimension is not distributed.
    Collapsed,
}

impl DimDist {
    /// Index-space FALLS owned by processor `p` of `procs` along a dimension
    /// of `extent` indices. Empty when the processor owns nothing.
    fn index_families(self, extent: u64, p: u64, procs: u64) -> Result<Vec<Falls>, FallsError> {
        debug_assert!(p < procs);
        match self {
            DimDist::Collapsed => {
                assert_eq!(procs, 1, "collapsed dimensions cannot be distributed");
                Ok(vec![Falls::new(0, extent - 1, extent, 1)?])
            }
            DimDist::Block => {
                let b = extent.div_ceil(procs);
                let lo = (p * b).min(extent);
                let hi = ((p + 1) * b).min(extent);
                if lo >= hi {
                    return Ok(Vec::new());
                }
                Ok(vec![Falls::new(lo, hi - 1, hi - lo, 1)?])
            }
            DimDist::Cyclic => {
                if p >= extent {
                    return Ok(Vec::new());
                }
                let count = (extent - 1 - p) / procs + 1;
                Ok(vec![Falls::new(p, p, procs, count)?])
            }
            DimDist::BlockCyclic(b) => {
                assert!(b > 0, "CYCLIC(b) needs a positive block");
                let stride = procs * b;
                let first = p * b;
                if first >= extent {
                    return Ok(Vec::new());
                }
                // Number of blocks that start before the dimension ends.
                let blocks = (extent - 1 - first) / stride + 1;
                let last_start = first + (blocks - 1) * stride;
                let last_end = (last_start + b).min(extent);
                let mut out = Vec::new();
                if last_end - last_start == b {
                    // All blocks full.
                    out.push(Falls::new(first, first + b - 1, stride, blocks)?);
                } else {
                    if blocks > 1 {
                        out.push(Falls::new(first, first + b - 1, stride, blocks - 1)?);
                    }
                    out.push(Falls::new(last_start, last_end - 1, b, 1)?);
                }
                Ok(out)
            }
        }
    }
}

/// A distribution of a row-major multidimensional array of elements over a
/// Cartesian processor grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDistribution {
    shape: Vec<u64>,
    elem_size: u64,
    dists: Vec<DimDist>,
    grid: ProcGrid,
}

impl ArrayDistribution {
    /// Creates a distribution.
    ///
    /// `shape` gives the array extents in elements (row-major, outermost
    /// first); `dists` and `grid` must have the same rank as `shape`, and
    /// collapsed dimensions must map to grid extent 1.
    ///
    /// # Panics
    /// Panics on rank mismatch, zero extents, or a distributed collapsed
    /// dimension.
    #[must_use]
    pub fn new(shape: Vec<u64>, elem_size: u64, dists: Vec<DimDist>, grid: ProcGrid) -> Self {
        assert!(!shape.is_empty(), "arrays need at least one dimension");
        assert!(shape.iter().all(|&n| n > 0), "array extents must be positive");
        assert!(elem_size > 0, "element size must be positive");
        assert_eq!(shape.len(), dists.len(), "one distribution per dimension");
        assert_eq!(shape.len(), grid.ndims(), "grid rank must match array rank");
        for (d, (&dist, &g)) in dists.iter().zip(grid.extents()).enumerate() {
            if matches!(dist, DimDist::Collapsed) {
                assert_eq!(g, 1, "dimension {d} is collapsed but grid extent is {g}");
            }
        }
        Self { shape, elem_size, dists, grid }
    }

    /// Array extents in elements.
    #[must_use]
    pub fn shape(&self) -> &[u64] {
        &self.shape
    }

    /// The processor grid.
    #[must_use]
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Total array size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.shape.iter().product::<u64>() * self.elem_size
    }

    /// Bytes of one slice at dimension `d`: the row-major size of all inner
    /// dimensions times the element size.
    fn unit(&self, d: usize) -> u64 {
        self.shape[d + 1..].iter().product::<u64>() * self.elem_size
    }

    /// The nested FALLS describing the bytes owned by the processor at grid
    /// `coord`, relative to the start of the array.
    pub fn element_set(&self, coord: &[u64]) -> Result<NestedSet, FallsError> {
        let families = self.build_dim(0, coord)?;
        NestedSet::new(families)
    }

    /// From dimension `d` inward: the sibling families selecting `coord`'s
    /// share of one dim-`d` slice group.
    fn build_dim(&self, d: usize, coord: &[u64]) -> Result<Vec<NestedFalls>, FallsError> {
        let u = self.unit(d);
        let idx_fams =
            self.dists[d].index_families(self.shape[d], coord[d], self.grid.extents()[d])?;
        // When every deeper dimension is fully owned, a run of consecutive
        // indices is one contiguous byte range — no inner structure needed.
        let deeper_full = self.fully_owned_from(d + 1, coord);
        let mut out = Vec::with_capacity(idx_fams.len());
        for f in idx_fams {
            let run = f.block_len(); // consecutive indices per repetition
            let outer = Falls::new(f.l() * u, (f.r() + 1) * u - 1, f.stride() * u, f.count())?;
            if deeper_full {
                out.push(NestedFalls::leaf(outer));
            } else {
                let child = self.build_dim(d + 1, coord)?;
                let inner = if run == 1 {
                    child
                } else {
                    // Repeat the inner selection for each index in the run.
                    vec![NestedFalls::with_inner(Falls::new(0, u - 1, u, run)?, child)?]
                };
                out.push(NestedFalls::with_inner(outer, inner)?);
            }
        }
        Ok(out)
    }

    /// Whether the processor owns every byte of dimensions `d..`.
    fn fully_owned_from(&self, d: usize, _coord: &[u64]) -> bool {
        (d..self.shape.len()).all(|k| self.grid.extents()[k] == 1)
    }

    /// One [`NestedSet`] per processor, in grid rank order.
    pub fn element_sets(&self) -> Result<Vec<NestedSet>, FallsError> {
        self.grid.coords().map(|c| self.element_set(&c)).collect()
    }

    /// The compact PITFALLS describing dimension `d`'s distribution across
    /// its grid dimension, in byte units (one FALLS per processor along the
    /// dimension, all sharing the same geometry shifted by a per-processor
    /// displacement).
    ///
    /// Returns `None` for distributions whose per-processor families are not
    /// uniform (`BLOCK` with a ragged tail, `CYCLIC(b)` with a partial last
    /// block) — those need the general per-processor form from
    /// [`ArrayDistribution::element_sets`]. This is exactly the paper's
    /// point that a nested PITFALLS is "just a compact representation of a
    /// set of nested FALLS" for *regular* distributions.
    #[must_use]
    pub fn dim_pitfalls(&self, d: usize) -> Option<falls::Pitfalls> {
        let u = self.unit(d);
        let extent = self.shape[d];
        let procs = self.grid.extents()[d];
        match self.dists[d] {
            DimDist::Collapsed => falls::Pitfalls::new(0, extent * u - 1, extent * u, 1, 0, 1).ok(),
            DimDist::Block => {
                let b = extent.div_ceil(procs);
                // Uniform only when the blocks divide evenly.
                (extent % procs == 0 || procs == 1).then(|| {
                    falls::Pitfalls::new(0, b * u - 1, b * u, 1, b * u, procs)
                        .expect("even blocks are valid")
                })
            }
            DimDist::Cyclic => {
                // Uniform only when every processor gets the same count.
                (extent % procs == 0).then(|| {
                    falls::Pitfalls::new(0, u - 1, procs * u, extent / procs, u, procs)
                        .expect("even cyclic is valid")
                })
            }
            DimDist::BlockCyclic(b) => {
                let per_cycle = procs * b;
                (extent % per_cycle == 0).then(|| {
                    falls::Pitfalls::new(
                        0,
                        b * u - 1,
                        per_cycle * u,
                        extent / per_cycle,
                        b * u,
                        procs,
                    )
                    .expect("even block-cyclic is valid")
                })
            }
        }
    }

    /// The partitioning pattern distributing the whole array: pattern size
    /// equals the array's byte size, one element per processor.
    ///
    /// # Panics
    /// Panics if some processor owns no data (e.g. more processors than
    /// blocks) — such grids cannot form a valid partition element.
    #[must_use]
    pub fn pattern(&self) -> PartitionPattern {
        let sets = self.element_sets().expect("distribution families are valid");
        PartitionPattern::new(sets).expect("HPF distributions tile the array exactly")
    }

    /// The full partition at a file displacement.
    #[must_use]
    pub fn partition(&self, displacement: u64) -> Partition {
        Partition::new(displacement, self.pattern())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offsets(set: &NestedSet) -> Vec<u64> {
        set.absolute_offsets()
    }

    #[test]
    fn block_1d() {
        let d = ArrayDistribution::new(vec![10], 1, vec![DimDist::Block], ProcGrid::new(vec![3]));
        // ceil(10/3) = 4: procs own [0,4), [4,8), [8,10).
        let sets = d.element_sets().unwrap();
        assert_eq!(offsets(&sets[0]), (0..4).collect::<Vec<_>>());
        assert_eq!(offsets(&sets[1]), (4..8).collect::<Vec<_>>());
        assert_eq!(offsets(&sets[2]), (8..10).collect::<Vec<_>>());
        let _ = d.pattern(); // validates tiling
    }

    #[test]
    fn cyclic_1d_with_elem_size() {
        let d = ArrayDistribution::new(vec![6], 4, vec![DimDist::Cyclic], ProcGrid::new(vec![2]));
        let sets = d.element_sets().unwrap();
        assert_eq!(offsets(&sets[0]), vec![0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19]);
        assert_eq!(offsets(&sets[1]), vec![4, 5, 6, 7, 12, 13, 14, 15, 20, 21, 22, 23]);
    }

    #[test]
    fn block_cyclic_1d_partial_tail() {
        let d = ArrayDistribution::new(
            vec![10],
            1,
            vec![DimDist::BlockCyclic(3)],
            ProcGrid::new(vec![2]),
        );
        let sets = d.element_sets().unwrap();
        // blocks: p0 [0,3) [6,9); p1 [3,6) [9,10) (partial).
        assert_eq!(offsets(&sets[0]), vec![0, 1, 2, 6, 7, 8]);
        assert_eq!(offsets(&sets[1]), vec![3, 4, 5, 9]);
        let _ = d.pattern(); // validates tiling
    }

    #[test]
    fn row_blocks_2d() {
        // 4×4 matrix, 2 procs on rows: each owns 2 contiguous rows.
        let d = ArrayDistribution::new(
            vec![4, 4],
            1,
            vec![DimDist::Block, DimDist::Collapsed],
            ProcGrid::new(vec![2, 1]),
        );
        let sets = d.element_sets().unwrap();
        assert_eq!(offsets(&sets[0]), (0..8).collect::<Vec<_>>());
        assert_eq!(offsets(&sets[1]), (8..16).collect::<Vec<_>>());
        // Contiguous ownership flattens to a leaf.
        assert!(sets[0].families()[0].is_leaf());
    }

    #[test]
    fn column_blocks_2d() {
        let d = ArrayDistribution::new(
            vec![4, 4],
            1,
            vec![DimDist::Collapsed, DimDist::Block],
            ProcGrid::new(vec![1, 2]),
        );
        let sets = d.element_sets().unwrap();
        assert_eq!(offsets(&sets[0]), vec![0, 1, 4, 5, 8, 9, 12, 13]);
        assert_eq!(offsets(&sets[1]), vec![2, 3, 6, 7, 10, 11, 14, 15]);
    }

    #[test]
    fn square_blocks_2d() {
        // 4×4 over a 2×2 grid: quadrants.
        let d = ArrayDistribution::new(
            vec![4, 4],
            1,
            vec![DimDist::Block, DimDist::Block],
            ProcGrid::new(vec![2, 2]),
        );
        let sets = d.element_sets().unwrap();
        assert_eq!(offsets(&sets[0]), vec![0, 1, 4, 5]); // top-left
        assert_eq!(offsets(&sets[1]), vec![2, 3, 6, 7]); // top-right
        assert_eq!(offsets(&sets[2]), vec![8, 9, 12, 13]); // bottom-left
        assert_eq!(offsets(&sets[3]), vec![10, 11, 14, 15]); // bottom-right
        let _ = d.pattern(); // validates tiling
    }

    #[test]
    fn three_dimensional_mixed() {
        let d = ArrayDistribution::new(
            vec![2, 4, 3],
            2,
            vec![DimDist::Block, DimDist::Cyclic, DimDist::Collapsed],
            ProcGrid::new(vec![2, 2, 1]),
        );
        let sets = d.element_sets().unwrap();
        assert_eq!(sets.len(), 4);
        // Exact tiling of the 2·4·3·2 = 48 bytes.
        let total: u64 = sets.iter().map(NestedSet::size).sum();
        assert_eq!(total, 48);
        let _ = d.pattern(); // validates tiling
                             // Proc (0,0,0): plane 0, rows {0,2}, all cols → bytes [0,6) ∪ [12,18).
        let want: Vec<u64> = (0..6).chain(12..18).collect();
        assert_eq!(offsets(&sets[0]), want);
    }

    #[test]
    fn uneven_block_distribution_tiles() {
        // 5 rows over 2 procs: ceil = 3 → 3 + 2 rows.
        let d = ArrayDistribution::new(
            vec![5, 3],
            1,
            vec![DimDist::Block, DimDist::Collapsed],
            ProcGrid::new(vec![2, 1]),
        );
        let sets = d.element_sets().unwrap();
        assert_eq!(sets[0].size(), 9);
        assert_eq!(sets[1].size(), 6);
        let _ = d.pattern(); // validates tiling
    }

    #[test]
    fn cyclic_both_dims() {
        let d = ArrayDistribution::new(
            vec![4, 4],
            1,
            vec![DimDist::Cyclic, DimDist::Cyclic],
            ProcGrid::new(vec![2, 2]),
        );
        let sets = d.element_sets().unwrap();
        assert_eq!(offsets(&sets[0]), vec![0, 2, 8, 10]);
        assert_eq!(offsets(&sets[3]), vec![5, 7, 13, 15]);
        let _ = d.pattern(); // validates tiling
    }

    #[test]
    fn pitfalls_compact_form_matches_expansion() {
        // 1-d distributions where the compact PITFALLS exists: expanding it
        // must reproduce exactly the per-processor element sets.
        let cases = [
            (DimDist::Block, 12u64, 3u64),
            (DimDist::Cyclic, 12, 4),
            (DimDist::BlockCyclic(2), 16, 4),
            (DimDist::Collapsed, 9, 1),
        ];
        for (dist, extent, procs) in cases {
            let d = ArrayDistribution::new(vec![extent], 2, vec![dist], ProcGrid::new(vec![procs]));
            let compact = d.dim_pitfalls(0).unwrap_or_else(|| panic!("{dist:?} compact"));
            let expanded = compact.expand();
            let sets = d.element_sets().unwrap();
            assert_eq!(expanded.len() as u64, procs);
            for (p, set) in sets.iter().enumerate() {
                assert_eq!(
                    expanded[p].offsets().collect::<Vec<_>>(),
                    set.absolute_offsets(),
                    "{dist:?} proc {p}"
                );
            }
        }
    }

    #[test]
    fn pitfalls_unavailable_for_ragged_distributions() {
        // 10 indices over 3 BLOCK processors: ragged tail → no compact form.
        let d = ArrayDistribution::new(vec![10], 1, vec![DimDist::Block], ProcGrid::new(vec![3]));
        assert!(d.dim_pitfalls(0).is_none());
        let d = ArrayDistribution::new(
            vec![10],
            1,
            vec![DimDist::BlockCyclic(3)],
            ProcGrid::new(vec![2]),
        );
        assert!(d.dim_pitfalls(0).is_none());
    }

    #[test]
    fn pattern_matches_mapper_ownership() {
        use parafile::Mapper;
        let d = ArrayDistribution::new(
            vec![6, 6],
            1,
            vec![DimDist::BlockCyclic(2), DimDist::Cyclic],
            ProcGrid::new(vec![2, 3]),
        );
        let part = d.partition(0);
        // Reference ownership: compute (row, col) → proc directly.
        for row in 0..6u64 {
            for col in 0..6u64 {
                let pr = (row / 2) % 2;
                let pc = col % 3;
                let rank = (pr * 3 + pc) as usize;
                let byte = row * 6 + col;
                assert_eq!(part.owner_of(byte), Some(rank), "byte {byte}");
                let m = Mapper::new(&part, rank);
                assert!(m.selects(byte));
            }
        }
    }
}
