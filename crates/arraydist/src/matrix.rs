//! The matrix partitions used by the paper's evaluation (§8.2): an N×N byte
//! matrix physically partitioned over `p` I/O nodes as square blocks (`b`),
//! blocks of columns (`c`) or blocks of rows (`r`), and logically partitioned
//! among compute processors in blocks of rows.

use crate::dist::{ArrayDistribution, DimDist};
use crate::grid::ProcGrid;
use parafile::model::Partition;

/// The three physical layouts of the paper's experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixLayout {
    /// Square blocks (`b` in the tables): a √p × √p grid of tiles.
    SquareBlocks,
    /// Blocks of columns (`c`).
    ColumnBlocks,
    /// Blocks of rows (`r`).
    RowBlocks,
}

impl MatrixLayout {
    /// Short label used in the paper's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MatrixLayout::SquareBlocks => "b",
            MatrixLayout::ColumnBlocks => "c",
            MatrixLayout::RowBlocks => "r",
        }
    }

    /// The distribution of an `rows × cols` element matrix over `p`
    /// processors in this layout.
    ///
    /// # Panics
    /// For [`MatrixLayout::SquareBlocks`], `p` must be a perfect square.
    #[must_use]
    pub fn distribution(self, rows: u64, cols: u64, elem_size: u64, p: u64) -> ArrayDistribution {
        match self {
            MatrixLayout::SquareBlocks => {
                let q = integer_sqrt(p);
                assert_eq!(q * q, p, "square-block layout needs a square processor count");
                ArrayDistribution::new(
                    vec![rows, cols],
                    elem_size,
                    vec![DimDist::Block, DimDist::Block],
                    ProcGrid::new(vec![q, q]),
                )
            }
            MatrixLayout::ColumnBlocks => ArrayDistribution::new(
                vec![rows, cols],
                elem_size,
                vec![DimDist::Collapsed, DimDist::Block],
                ProcGrid::new(vec![1, p]),
            ),
            MatrixLayout::RowBlocks => ArrayDistribution::new(
                vec![rows, cols],
                elem_size,
                vec![DimDist::Block, DimDist::Collapsed],
                ProcGrid::new(vec![p, 1]),
            ),
        }
    }

    /// The partition of the matrix file in this layout (displacement 0).
    #[must_use]
    pub fn partition(self, rows: u64, cols: u64, elem_size: u64, p: u64) -> Partition {
        self.distribution(rows, cols, elem_size, p).partition(0)
    }

    /// All three layouts, in the order the paper's tables list them
    /// (`c`, `b`, `r`).
    #[must_use]
    pub fn all() -> [MatrixLayout; 3] {
        [MatrixLayout::ColumnBlocks, MatrixLayout::SquareBlocks, MatrixLayout::RowBlocks]
    }
}

/// Integer square root by Newton's method.
#[must_use]
pub fn integer_sqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_sqrt_exact_and_floor() {
        assert_eq!(integer_sqrt(0), 0);
        assert_eq!(integer_sqrt(1), 1);
        assert_eq!(integer_sqrt(4), 2);
        assert_eq!(integer_sqrt(15), 3);
        assert_eq!(integer_sqrt(16), 4);
        assert_eq!(integer_sqrt(1 << 40), 1 << 20);
    }

    #[test]
    fn layouts_partition_a_matrix() {
        for layout in MatrixLayout::all() {
            let part = layout.partition(8, 8, 1, 4);
            assert_eq!(part.element_count(), 4);
            assert_eq!(part.pattern().size(), 64);
        }
    }

    #[test]
    fn row_blocks_are_contiguous() {
        let part = MatrixLayout::RowBlocks.partition(8, 8, 1, 4);
        for e in 0..4u64 {
            let set = part.pattern().element(e as usize).unwrap();
            let segs = set.absolute_segments();
            assert_eq!(segs.len(), 1, "row block {e} must be one segment");
            assert_eq!(segs[0].l(), e * 16);
        }
    }

    #[test]
    fn column_blocks_fragment_per_row() {
        let part = MatrixLayout::ColumnBlocks.partition(8, 8, 1, 4);
        let set = part.pattern().element(0).unwrap();
        // One 2-byte fragment per row.
        assert_eq!(set.absolute_segments().len(), 8);
    }

    #[test]
    fn square_blocks_fragment_per_tile_row() {
        let part = MatrixLayout::SquareBlocks.partition(8, 8, 1, 4);
        let set = part.pattern().element(0).unwrap();
        // Top-left tile: 4 rows × 4 bytes.
        assert_eq!(set.absolute_segments().len(), 4);
        assert_eq!(set.size(), 16);
    }

    #[test]
    #[should_panic(expected = "square processor count")]
    fn square_blocks_reject_non_square_p() {
        let _ = MatrixLayout::SquareBlocks.partition(8, 8, 1, 6);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(MatrixLayout::SquareBlocks.label(), "b");
        assert_eq!(MatrixLayout::ColumnBlocks.label(), "c");
        assert_eq!(MatrixLayout::RowBlocks.label(), "r");
    }
}
