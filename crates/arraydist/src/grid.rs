//! Cartesian processor grids.

/// A Cartesian grid of processors, one extent per array dimension.
///
/// Processor ranks are row-major over the grid coordinates, matching the
/// usual MPI Cartesian communicator convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcGrid {
    extents: Vec<u64>,
}

impl ProcGrid {
    /// Creates a grid; every extent must be positive.
    ///
    /// # Panics
    /// Panics if any extent is zero or the grid is empty.
    #[must_use]
    pub fn new(extents: Vec<u64>) -> Self {
        assert!(!extents.is_empty(), "grid needs at least one dimension");
        assert!(extents.iter().all(|&e| e > 0), "grid extents must be positive");
        Self { extents }
    }

    /// Grid extents per dimension.
    #[must_use]
    pub fn extents(&self) -> &[u64] {
        &self.extents
    }

    /// Number of dimensions.
    #[must_use]
    pub fn ndims(&self) -> usize {
        self.extents.len()
    }

    /// Total number of processors.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.extents.iter().product()
    }

    /// Grids are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row-major rank of a coordinate.
    ///
    /// # Panics
    /// Panics if the coordinate is out of range.
    #[must_use]
    pub fn rank_of(&self, coord: &[u64]) -> u64 {
        assert_eq!(coord.len(), self.extents.len());
        let mut rank = 0u64;
        for (c, e) in coord.iter().zip(&self.extents) {
            assert!(c < e, "coordinate {c} out of range (extent {e})");
            rank = rank * e + c;
        }
        rank
    }

    /// Coordinate of a row-major rank.
    #[must_use]
    pub fn coord_of(&self, rank: u64) -> Vec<u64> {
        assert!(rank < self.len(), "rank {rank} out of range");
        let mut coord = vec![0u64; self.extents.len()];
        let mut rest = rank;
        for (i, &e) in self.extents.iter().enumerate().rev() {
            coord[i] = rest % e;
            rest /= e;
        }
        coord
    }

    /// Iterator over all coordinates in rank order.
    pub fn coords(&self) -> impl Iterator<Item = Vec<u64>> + '_ {
        (0..self.len()).map(|r| self.coord_of(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let g = ProcGrid::new(vec![2, 3, 4]);
        assert_eq!(g.len(), 24);
        for r in 0..24 {
            assert_eq!(g.rank_of(&g.coord_of(r)), r);
        }
    }

    #[test]
    fn row_major_order() {
        let g = ProcGrid::new(vec![2, 3]);
        assert_eq!(g.coord_of(0), vec![0, 0]);
        assert_eq!(g.coord_of(1), vec![0, 1]);
        assert_eq!(g.coord_of(3), vec![1, 0]);
        assert_eq!(g.coords().count(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_of_checks_bounds() {
        let _ = ProcGrid::new(vec![2, 2]).rank_of(&[2, 0]);
    }
}
