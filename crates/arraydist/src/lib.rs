//! Multidimensional array distributions over nested FALLS.
//!
//! Parallel I/O workload studies (cited in §1 of the paper) find that the
//! dominant data structures of parallel scientific applications are
//! multidimensional arrays, distributed HPF-style (BLOCK / CYCLIC /
//! CYCLIC(b)) across processors and disks. This crate builds the nested
//! FALLS describing each processor's share of a row-major array, producing
//! [`parafile`] partitioning patterns directly — "support for any
//! High-Performance-Fortran-style BLOCK and CYCLIC based data distribution
//! on disk and in memory is a straightforward application of our approach"
//! (§3).
//!
//! It also provides:
//!
//! * [`matrix`] — the three physical matrix layouts of the paper's
//!   evaluation (§8.2): row blocks, column blocks and square blocks;
//! * [`datatype`] — MPI-style derived datatypes (contiguous / vector /
//!   indexed) lowered to nested FALLS, demonstrating §3's claim that "MPI
//!   data types can be built on top of them".

//! # Example
//!
//! ```
//! use arraydist::{ArrayDistribution, DimDist, ProcGrid};
//!
//! // An 8×8 byte matrix, BLOCK rows × CYCLIC columns over a 2×2 grid.
//! let dist = ArrayDistribution::new(
//!     vec![8, 8],
//!     1,
//!     vec![DimDist::Block, DimDist::Cyclic],
//!     ProcGrid::new(vec![2, 2]),
//! );
//! let partition = dist.partition(0);
//! // Byte (row 1, col 3) belongs to grid coordinate (0, 1) = rank 1.
//! assert_eq!(partition.owner_of(1 * 8 + 3), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datatype;
pub mod dist;
pub mod grid;
pub mod matrix;

pub use datatype::Datatype;
pub use dist::{ArrayDistribution, DimDist};
pub use grid::ProcGrid;
