//! **Ablation A**: segment-based redistribution (the paper's contribution)
//! against the byte-by-byte baseline it argues against (one MAP^-1/MAP
//! composition per byte).

use arraydist::matrix::MatrixLayout;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parafile::model::Partition;
use parafile::plan::RedistributionPlan;
use parafile::redist::redistribute_bytewise;
use std::hint::black_box;

fn buffers(p: &Partition, file_len: u64, fill: u8) -> Vec<Vec<u8>> {
    (0..p.element_count())
        .map(|e| vec![fill; p.element_len(e, file_len).unwrap() as usize])
        .collect()
}

fn bench_redistribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("redistribute");
    for n in [64u64, 256] {
        let file_len = n * n;
        let src = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        let dst = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
        let src_bufs = buffers(&src, file_len, 0xA5);
        group.throughput(Throughput::Bytes(file_len));

        group.bench_with_input(BenchmarkId::new("plan_apply", n), &n, |b, _| {
            let plan = RedistributionPlan::build(&src, &dst).unwrap();
            let mut dst_bufs = buffers(&dst, file_len, 0);
            b.iter(|| black_box(plan.apply(black_box(&src_bufs), &mut dst_bufs, file_len)))
        });
        group.bench_with_input(BenchmarkId::new("plan_build_and_apply", n), &n, |b, _| {
            let mut dst_bufs = buffers(&dst, file_len, 0);
            b.iter(|| {
                let plan = RedistributionPlan::build(black_box(&src), black_box(&dst)).unwrap();
                black_box(plan.apply(&src_bufs, &mut dst_bufs, file_len))
            })
        });
        group.bench_with_input(BenchmarkId::new("bytewise_baseline", n), &n, |b, _| {
            let mut dst_bufs = buffers(&dst, file_len, 0);
            b.iter(|| {
                black_box(redistribute_bytewise(
                    black_box(&src),
                    black_box(&dst),
                    &src_bufs,
                    &mut dst_bufs,
                    file_len,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_redistribution
}
criterion_main!(benches);
