//! **Ablation B**: the paper's periodic `INTERSECT-FALLS` against the
//! merge-based reference, plus the full nested intersection on the paper's
//! matrix layouts.

use arraydist::matrix::MatrixLayout;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use falls::Falls;
use parafile::redist::{intersect_elements, intersect_falls, intersect_falls_merge};
use std::hint::black_box;

/// Flat FALLS pairs with growing segment counts: the periodic algorithm's
/// cost depends on the period structure, the merge reference on the segment
/// counts.
fn bench_flat(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_falls");
    for n in [16u64, 256, 4096] {
        // Interleaved families: strides 6 and 10 → period 30.
        let f1 = Falls::new(1, 2, 6, n).unwrap();
        let f2 = Falls::new(0, 3, 10, (n * 6) / 10 + 1).unwrap();
        group.bench_with_input(BenchmarkId::new("periodic", n), &n, |b, _| {
            b.iter(|| black_box(intersect_falls(black_box(&f1), black_box(&f2))))
        });
        group.bench_with_input(BenchmarkId::new("merge", n), &n, |b, _| {
            b.iter(|| black_box(intersect_falls_merge(black_box(&f1), black_box(&f2))))
        });
    }
    group.finish();
}

/// Nested intersection cost for the paper's three physical layouts against
/// a row-block view (the `t_i` column of Table 1 is 4x this plus the
/// projections).
fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_elements");
    for n in [256u64, 1024] {
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        for layout in MatrixLayout::all() {
            let physical = layout.partition(n, n, 1, 4);
            group.bench_function(BenchmarkId::new(layout.label(), n), |b| {
                b.iter(|| {
                    black_box(
                        intersect_elements(black_box(&logical), 0, black_box(&physical), 0)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_flat, bench_nested
}
criterion_main!(benches);
