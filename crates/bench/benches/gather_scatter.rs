//! Gather/scatter throughput as a function of fragmentation — the mechanism
//! behind Table 1's t_g and Table 2's t_s columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use falls::{Falls, NestedFalls, NestedSet};
use parafile::redist::Projection;
use parafile::sg::{gather, scatter};
use std::hint::black_box;

/// A projection selecting half of every `2*frag`-byte window, in `frag`-byte
/// pieces: total selected bytes stay constant while fragment size varies.
fn half_projection(frag: u64, period: u64) -> Projection {
    Projection {
        set: NestedSet::singleton(NestedFalls::leaf(
            Falls::new(0, frag - 1, 2 * frag, period / (2 * frag)).unwrap(),
        )),
        period,
    }
}

fn bench_gather_scatter(c: &mut Criterion) {
    let total: u64 = 1 << 20; // 1 MiB region, 512 KiB selected
    let src = vec![0xABu8; total as usize];
    let mut dst_region = vec![0u8; total as usize];
    let mut group = c.benchmark_group("gather_scatter");
    group.throughput(Throughput::Bytes(total / 2));
    for frag in [16u64, 256, 4096, 65536] {
        let proj = half_projection(frag, total);
        group.bench_with_input(BenchmarkId::new("gather", frag), &frag, |b, _| {
            let mut out = Vec::with_capacity((total / 2) as usize);
            b.iter(|| {
                out.clear();
                black_box(gather(&mut out, black_box(&src), 0, total - 1, &proj))
            })
        });
        let packed = vec![0xCDu8; (total / 2) as usize];
        group.bench_with_input(BenchmarkId::new("scatter", frag), &frag, |b, _| {
            b.iter(|| black_box(scatter(&mut dst_region, black_box(&packed), 0, total - 1, &proj)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_gather_scatter
}
criterion_main!(benches);
