//! End-to-end Clusterfile write cost (view set + concurrent full-view
//! writes) per physical layout — the full pipeline behind Tables 1 and 2.

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, PaperScenario, WritePolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parafile::Mapper;
use std::hint::black_box;

fn bench_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_scenario");
    for layout in MatrixLayout::all() {
        group.bench_function(BenchmarkId::new("n256", layout.label()), |b| {
            b.iter(|| {
                let mut s = PaperScenario::paper(256, layout, false);
                s.repetitions = 1;
                black_box(s.run())
            })
        });
    }
    group.finish();
}

fn bench_view_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_view");
    let n = 512u64;
    for layout in MatrixLayout::all() {
        group.bench_function(BenchmarkId::new("n512", layout.label()), |b| {
            let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
            b.iter(|| {
                let mut fs =
                    Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
                let physical = layout.partition(n, n, 1, 4);
                let file = fs.create_file(physical, n * n);
                black_box(fs.set_view(0, file, &logical, 0))
            })
        });
    }
    group.finish();
}

fn bench_single_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_write");
    let n = 512u64;
    for layout in MatrixLayout::all() {
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        let mut fs =
            Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
        let physical = layout.partition(n, n, 1, 4);
        let file = fs.create_file(physical, n * n);
        fs.set_view(0, file, &logical, 0);
        let m = Mapper::new(&logical, 0);
        let len = logical.element_len(0, n * n).unwrap();
        let data: Vec<u8> = (0..len).map(|y| (m.unmap(y) % 251) as u8).collect();
        group.bench_function(BenchmarkId::new("n512", layout.label()), |b| {
            b.iter(|| black_box(fs.write(0, file, 0, len - 1, &data)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scenario, bench_view_set, bench_single_write
}
criterion_main!(benches);
