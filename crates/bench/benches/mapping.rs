//! Mapping-function throughput: MAP / MAP^-1 / next-byte rounding across the
//! paper's layouts, and the nCube bit-permutation baseline our general
//! mappings subsume.

use arraydist::matrix::MatrixLayout;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parafile::mapping::{map_between, Mapper};
use parafile::ncube::NcubeMapping;
use std::hint::black_box;

fn bench_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("map");
    let n = 1024u64;
    for layout in MatrixLayout::all() {
        let part = layout.partition(n, n, 1, 4);
        let mapper = Mapper::new(&part, 0);
        group.bench_function(BenchmarkId::new("map", layout.label()), |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = (x + 4097) % (n * n);
                black_box(mapper.map(black_box(x)))
            })
        });
        group.bench_function(BenchmarkId::new("unmap", layout.label()), |b| {
            let size = part.element_len(0, n * n).unwrap();
            let mut y = 0u64;
            b.iter(|| {
                y = (y + 4097) % size;
                black_box(mapper.unmap(black_box(y)))
            })
        });
        group.bench_function(BenchmarkId::new("map_next", layout.label()), |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = (x + 4097) % (n * n);
                black_box(mapper.map_next(black_box(x)))
            })
        });
    }
    group.finish();
}

fn bench_compose(c: &mut Criterion) {
    let n = 1024u64;
    let rows = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    let cols = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
    let mv = Mapper::new(&rows, 0);
    let ms = Mapper::new(&cols, 0);
    c.bench_function("map_between_row_col", |b| {
        let size = rows.element_len(0, n * n).unwrap();
        let mut y = 0u64;
        b.iter(|| {
            y = (y + 257) % size;
            black_box(map_between(black_box(&mv), black_box(&ms), black_box(y)))
        })
    });
}

/// The nCube bit-permutation mapping against the equivalent FALLS mapping:
/// the specialized power-of-two scheme is faster per lookup, the FALLS
/// mapping is general.
fn bench_ncube(c: &mut Criterion) {
    let mut group = c.benchmark_group("ncube_vs_falls");
    let m = NcubeMapping::block_cyclic(20, 2, 6).unwrap(); // 1 MiB file, 4 disks, 64 B units
    let sets = m.as_falls_pattern().expect("block-cyclic expressible");
    let pattern = parafile::model::PartitionPattern::new(sets).unwrap();
    let part = parafile::model::Partition::new(0, pattern);
    let mapper = Mapper::new(&part, 1);
    group.bench_function("bit_permutation", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 4097) % (1 << 20);
            black_box(m.map(black_box(x)))
        })
    });
    group.bench_function("falls_mapper", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 4097) % (1 << 20);
            black_box(mapper.map(black_box(x)))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_map, bench_compose, bench_ncube
}
criterion_main!(benches);
