//! **Ablation F** (extension): inbound-link hotspots under the sequential
//! per-subfile write loop.
//!
//! Every compute node's write loop visits subfiles in the same order
//! (0, 1, 2, …), so in round j all writers hit I/O node j at once. With
//! receive-link contention modeled, that hotspot serializes the round;
//! staggering each writer's start subfile (writer c starts at subfile c)
//! spreads the load. This run measures both orders, with contention on and
//! off.
//!
//! ```text
//! cargo run -p pf-bench --release --bin hotspot [--sizes 512,1024]
//! ```

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, WritePolicy};
use jsonlite::{obj, Json, ToJson};
use parafile::Mapper;
use pf_bench::{dump_json, TableArgs};

struct Row {
    size: u64,
    contention: bool,
    staggered: bool,
    t_w_us: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("contention", self.contention),
            ("staggered", self.staggered),
            ("t_w_us", self.t_w_us)
        ]
    }
}

fn run(n: u64, contention: bool, staggered: bool) -> f64 {
    let mut hardware = clustersim::ClusterConfig::paper_testbed(8);
    hardware.network.rx_contention = contention;
    let mut fs = Clusterfile::new(ClusterfileConfig {
        compute_nodes: 4,
        io_nodes: 4,
        hardware,
        write_policy: WritePolicy::BufferCache,
        stagger_writes: staggered,
    });
    // Column blocks: every writer touches every I/O node each round.
    let file = fs.create_file(MatrixLayout::ColumnBlocks.partition(n, n, 1, 4), n * n);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    for c in 0..4usize {
        fs.set_view(c, file, &logical, c);
    }
    let ops: Vec<(usize, u64, u64, Vec<u8>)> = (0..4usize)
        .map(|c| {
            let m = Mapper::new(&logical, c);
            let len = logical.element_len(c, n * n).expect("view element exists");
            let data: Vec<u8> = (0..len).map(|y| (m.unmap(y) % 251) as u8).collect();
            (c, 0, len - 1, data)
        })
        .collect();
    let t = fs.write_group(file, &ops);
    t.iter().map(|w| w.t_w_sim_ns).max().expect("at least one writer") as f64 / 1e3
}

fn main() {
    let mut args = TableArgs::parse();
    if args.sizes == pf_bench::PAPER_SIZES.to_vec() {
        args.sizes = vec![512, 1024, 2048];
    }
    println!("write-loop hotspots: fixed vs staggered subfile order (t_w µs, simulated)\n");
    println!(
        "{:>5} {:>12} {:>11} {:>11} {:>9}",
        "size", "contention", "fixed", "staggered", "gain"
    );
    let mut rows = Vec::new();
    for &n in &args.sizes {
        for contention in [false, true] {
            let fixed = run(n, contention, false);
            let staggered = run(n, contention, true);
            println!(
                "{:>5} {:>12} {:>11.1} {:>11.1} {:>8.2}×",
                n,
                contention,
                fixed,
                staggered,
                fixed / staggered
            );
            rows.push(Row { size: n, contention, staggered: false, t_w_us: fixed });
            rows.push(Row { size: n, contention, staggered: true, t_w_us: staggered });
        }
        println!();
    }
    // Claim: staggering only matters when the inbound link is the
    // bottleneck.
    let gain_at = |n: u64, cont: bool| {
        let f = rows
            .iter()
            .find(|r| r.size == n && r.contention == cont && !r.staggered)
            .expect("swept row exists")
            .t_w_us;
        let s = rows
            .iter()
            .find(|r| r.size == n && r.contention == cont && r.staggered)
            .expect("swept row exists")
            .t_w_us;
        f / s
    };
    let biggest = *args.sizes.last().expect("size sweep is non-empty");
    println!(
        "[{}] staggering helps under contention at {biggest} ({:.2}×) and is ~neutral without ({:.2}×)",
        if gain_at(biggest, true) > gain_at(biggest, false) { "ok" } else { "FAIL" },
        gain_at(biggest, true),
        gain_at(biggest, false)
    );
    match dump_json("hotspot", &rows) {
        Ok(path) => println!("\nresults written to {}", path.display()),
        Err(e) => eprintln!("could not persist results: {e}"),
    }
}
