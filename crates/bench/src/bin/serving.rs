//! Serving-tier benchmark: warm-start, pooled sessions, tenant fairness.
//!
//! Three phases, one JSON report (`bench_results/serving.json`):
//!
//! 1. **Warm start** — a "fresh process" (new [`PlanEngine`] backed by the
//!    on-disk plan cache) compiles a view-set workload cold, then a second
//!    fresh engine on the same cache file repeats it warm. The speedup is
//!    the restart win the persistent tier buys; CI gates it at ≥5×.
//! 2. **Session pool** — the same create/view/write/read round is run by
//!    per-session (dedicated mux) connections and by pooled leases on one
//!    shared driver, over thousands of logical sessions. Reported: startup
//!    p50/p99 for both paths and whether the bytes are identical (they
//!    must be — the pool changes socket ownership, never payloads).
//! 3. **Fairness** — one reactor daemon, several tenants, one of them hot
//!    (many more client threads). Per-tenant throughput is measured with
//!    deficit-round-robin dispatch on and off; CI gates the fair max/min
//!    ratio at ≤2× while the FIFO run demonstrates starvation.
//!
//! ```text
//! cargo run -p pf-bench --release --bin serving \
//!     [--sessions 1000] [--window-ms 400] [--hot 8]
//! ```

use arraydist::matrix::MatrixLayout;
use clusterfile::StorageBackend;
use jsonlite::{obj, Json, ToJson};
use parafile::PlanEngine;
use parafile_net::session::{spawn_loopback, BatchWrite, Session};
use parafile_net::{pool_stats, serve, DaemonConfig};
use pf_bench::dump_json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tenants in the fairness phase; tenant 1 is the hot neighbor.
const TENANTS: u32 = 4;
/// Client threads per well-behaved tenant.
const BASE_CLIENTS: usize = 3;
/// Logical writes pipelined per batch (keeps every tenant's queue deep
/// enough that DRR arbitration, not client round-trips, sets the ratio).
const BATCH: usize = 128;

struct Args {
    sessions: usize,
    window_ms: u64,
    hot: usize,
    /// Fail unless warm restart is at least this many times faster.
    gate_warm: Option<f64>,
    /// Fail unless the DRR per-tenant max/min ratio is at most this.
    gate_fair: Option<f64>,
}

fn parse_args() -> Args {
    let mut out = Args { sessions: 1000, window_ms: 400, hot: 8, gate_warm: None, gate_fair: None };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let grab = |i: usize| -> u64 {
            args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{} needs a numeric value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--sessions" => {
                out.sessions = grab(i) as usize;
                i += 2;
            }
            "--window-ms" => {
                out.window_ms = grab(i);
                i += 2;
            }
            "--hot" => {
                out.hot = grab(i) as usize;
                i += 2;
            }
            "--gate-warm" => {
                out.gate_warm = Some(grab(i) as f64);
                i += 2;
            }
            "--gate-fair" => {
                out.gate_fair = Some(grab(i) as f64);
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    out
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

// ---------------------------------------------------------------- phase 1

/// Every logical×physical layout pair of the paper's 4-node machine at a
/// few sizes — the view-set a serving daemon compiles on startup.
fn compile_workload(engine: &PlanEngine) -> u64 {
    let mut plans = 0u64;
    for &n in &[128u64, 256, 512] {
        for logical in MatrixLayout::all() {
            for physical in MatrixLayout::all() {
                let lp = logical.partition(n, n, 1, 4);
                let pp = physical.partition(n, n, 1, 4);
                for e in 0..4 {
                    engine.compile_view(&lp, e, &pp).expect("view compiles");
                    plans += 1;
                }
            }
        }
    }
    plans
}

fn warm_start_phase() -> (Json, f64) {
    let path =
        std::env::temp_dir().join(format!("pf-serving-bench-{}.plancache", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Cold: a fresh process with an empty cache file compiles everything.
    let cold_engine = PlanEngine::with_persist(path.clone());
    let t = Instant::now();
    let plans = compile_workload(&cold_engine);
    let cold_us = t.elapsed().as_secs_f64() * 1e6;
    drop(cold_engine);

    // Warm: a restarted process re-opens the same file; its in-memory LRU
    // is empty, so every plan below is served by the persisted tier.
    let warm_engine = PlanEngine::with_persist(path.clone());
    let t = Instant::now();
    compile_workload(&warm_engine);
    let warm_us = t.elapsed().as_secs_f64() * 1e6;
    let stats = warm_engine.persist_stats().expect("persist tier present");
    let _ = std::fs::remove_file(&path);

    let speedup = cold_us / warm_us.max(1.0);
    println!(
        "warm start: {plans} plans, cold {:.0} µs, warm {:.0} µs, speedup {speedup:.1}×",
        cold_us, warm_us
    );
    let row = obj![
        ("plans", plans),
        ("cold_us", cold_us),
        ("warm_us", warm_us),
        ("speedup", speedup),
        ("persist_entries", stats.entries),
        ("persist_bytes", stats.bytes),
        ("persist_hits", stats.hits),
        ("persist_misses", stats.misses),
        ("persist_load_failures", stats.load_failures)
    ];
    (row, speedup)
}

// ---------------------------------------------------------------- phase 2

/// One logical session's whole life: connect, create a small file, set a
/// view, write it, read it back. Returns (latency µs, bytes read).
fn session_round(session: &mut Session, file: u64, pattern: &[u8]) -> Vec<u8> {
    let physical = MatrixLayout::ColumnBlocks.partition(8, 8, 1, 2);
    let logical = MatrixLayout::RowBlocks.partition(8, 8, 1, 2);
    session.create_file(file, physical, 64).expect("create file");
    session.set_view(0, file, &logical, 0).expect("set view");
    session.write(0, file, 0, 31, pattern).expect("write");
    session.read(0, file, 0, 31).expect("read")
}

fn pool_phase(sessions: usize) -> Json {
    let (mut daemons, addrs) =
        spawn_loopback(2, StorageBackend::Memory).expect("spawn loopback daemons");
    let pattern: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(3) ^ 0x5A).collect();

    // Baseline: every logical session is a full dedicated connection set
    // (own mux driver, own socket per node), created and dropped in turn.
    let mut dedicated_us = Vec::with_capacity(sessions);
    let mut identical = true;
    for i in 0..sessions {
        let t = Instant::now();
        let mut s = Session::connect(&addrs);
        let got = session_round(&mut s, 10_000 + i as u64, &pattern);
        drop(s);
        dedicated_us.push(t.elapsed().as_secs_f64() * 1e6);
        identical &= got == pattern;
    }

    // Pooled: the same rounds over leases on one shared warm driver. All
    // sessions are held live at once — that is the serving-tier shape the
    // pool exists for (thousands of logical sessions, one driver).
    let mut pooled_us = Vec::with_capacity(sessions);
    let mut live: Vec<Session> = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let t = Instant::now();
        let mut s = Session::connect_pooled(&addrs);
        let got = session_round(&mut s, 100_000 + i as u64, &pattern);
        pooled_us.push(t.elapsed().as_secs_f64() * 1e6);
        identical &= got == pattern;
        live.push(s);
    }
    let (drivers, leases) = pool_stats();
    live.clear();

    dedicated_us.sort_by(|a, b| a.total_cmp(b));
    pooled_us.sort_by(|a, b| a.total_cmp(b));
    let row = obj![
        ("sessions", sessions as u64),
        ("identical", identical),
        ("dedicated_p50_us", percentile(&dedicated_us, 0.50)),
        ("dedicated_p99_us", percentile(&dedicated_us, 0.99)),
        ("pooled_p50_us", percentile(&pooled_us, 0.50)),
        ("pooled_p99_us", percentile(&pooled_us, 0.99)),
        ("pool_drivers", drivers as u64),
        ("pool_peak_leases", leases as u64)
    ];
    println!(
        "pool: {sessions} sessions, dedicated p50/p99 {:.0}/{:.0} µs, \
         pooled p50/p99 {:.0}/{:.0} µs, identical={identical}, {drivers} driver(s)",
        percentile(&dedicated_us, 0.50),
        percentile(&dedicated_us, 0.99),
        percentile(&pooled_us, 0.50),
        percentile(&pooled_us, 0.99),
    );
    for d in &mut daemons {
        d.stop();
    }
    assert!(identical, "pooled sessions must be byte-identical to dedicated ones");
    row
}

// ---------------------------------------------------------------- phase 3

/// Runs the hot-neighbor workload against one reactor daemon and returns
/// completed writes per tenant. `fair` toggles DRR dispatch.
fn fairness_run(window: Duration, hot: usize, fair: bool) -> Vec<u64> {
    let config = DaemonConfig {
        backend: StorageBackend::Memory,
        workers: 2,
        fair,
        ..DaemonConfig::default()
    };
    let mut daemon = serve("127.0.0.1:0", config).expect("spawn reactor daemon");
    let addrs = vec![daemon.addr().to_string()];

    let stop = Arc::new(AtomicBool::new(false));
    let counters: Vec<Arc<AtomicU64>> = (0..TENANTS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut threads = Vec::new();
    let mut next_file = 1u64;
    for tenant in 1..=TENANTS {
        let clients = if tenant == 1 { hot } else { BASE_CLIENTS };
        for _ in 0..clients {
            let addrs = addrs.clone();
            let stop = Arc::clone(&stop);
            let count = Arc::clone(&counters[(tenant - 1) as usize]);
            let file = next_file;
            next_file += 1;
            threads.push(std::thread::spawn(move || {
                let physical = MatrixLayout::ColumnBlocks.partition(8, 8, 1, 1);
                let logical = MatrixLayout::RowBlocks.partition(8, 8, 1, 1);
                let mut s = Session::connect(&addrs).with_tenant(tenant);
                s.create_file(file, physical, 64).expect("create file");
                s.set_view(0, file, &logical, 0).expect("set view");
                let data = [tenant as u8; 32];
                let ops: Vec<BatchWrite<'_>> =
                    (0..BATCH).map(|_| BatchWrite { lo_v: 0, hi_v: 31, data: &data }).collect();
                while !stop.load(Ordering::Relaxed) {
                    // Shed/degraded batches count only their applied ops;
                    // errors cost the window time instead.
                    if let Ok(reports) = s.write_batch(0, file, &ops) {
                        count.fetch_add(reports.len() as u64, Ordering::Relaxed);
                    }
                }
            }));
        }
    }
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        let _ = t.join();
    }
    daemon.stop();
    counters.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

fn ratio(per_tenant: &[u64]) -> f64 {
    let max = per_tenant.iter().copied().max().unwrap_or(0) as f64;
    let min = per_tenant.iter().copied().min().unwrap_or(0).max(1) as f64;
    max / min
}

fn fairness_phase(window: Duration, hot: usize) -> (Json, f64) {
    let fair = fairness_run(window, hot, true);
    let fifo = fairness_run(window, hot, false);
    let fair_ratio = ratio(&fair);
    let fifo_ratio = ratio(&fifo);
    println!(
        "fairness: drr per-tenant {fair:?} (max/min {fair_ratio:.2}), \
         fifo per-tenant {fifo:?} (max/min {fifo_ratio:.2})"
    );
    let as_json = |v: &[u64]| Json::Array(v.iter().map(|&n| n.to_json()).collect());
    let row = obj![
        ("tenants", u64::from(TENANTS)),
        ("hot_clients", hot as u64),
        ("base_clients", BASE_CLIENTS as u64),
        ("batch", BATCH as u64),
        ("window_ms", window.as_millis() as u64),
        ("fair_per_tenant_ops", as_json(&fair)),
        ("fair_ratio", fair_ratio),
        ("fifo_per_tenant_ops", as_json(&fifo)),
        ("fifo_ratio", fifo_ratio)
    ];
    (row, fair_ratio)
}

fn main() {
    let args = parse_args();
    println!(
        "serving tier: {} sessions, {} ms fairness window, {} hot clients\n",
        args.sessions, args.window_ms, args.hot
    );
    let (warm_start, speedup) = warm_start_phase();
    let pool = pool_phase(args.sessions);
    let (fairness, fair_ratio) = fairness_phase(Duration::from_millis(args.window_ms), args.hot);
    let report = obj![("warm_start", warm_start), ("pool", pool), ("fairness", fairness)];
    let path = dump_json("serving", &report).expect("write bench_results/serving.json");
    println!("\nwrote {}", path.display());
    if let Some(gate) = args.gate_warm {
        assert!(
            speedup >= gate,
            "GATE: warm restart speedup {speedup:.1}× is below the required {gate:.1}×"
        );
        println!("gate ok: warm restart {speedup:.1}× ≥ {gate:.1}×");
    }
    if let Some(gate) = args.gate_fair {
        assert!(
            fair_ratio <= gate,
            "GATE: DRR per-tenant max/min ratio {fair_ratio:.2} exceeds {gate:.2}"
        );
        println!("gate ok: DRR per-tenant ratio {fair_ratio:.2} ≤ {gate:.2}");
    }
}
