//! **Ablation D** — the paper's amortization claim: "the overhead associated
//! with the mapping functions and redistribution is to be primarily paid at
//! view setting ... and can be amortized over several accesses."
//!
//! Writes the same view k times for growing k and reports the view-set cost
//! share of the total, plus the per-write overheads, for the worst-matching
//! layout (column blocks under a row-block view).
//!
//! ```text
//! cargo run -p pf-bench --release --bin amortization [--sizes 512]
//! ```

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, WritePolicy};
use jsonlite::{obj, Json, ToJson};
use parafile::Mapper;
use pf_bench::{dump_json, TableArgs};

struct Row {
    size: u64,
    writes: usize,
    t_i_us: f64,
    mean_t_m_us: f64,
    mean_t_g_us: f64,
    mean_t_w_us: f64,
    view_set_share: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("writes", self.writes),
            ("t_i_us", self.t_i_us),
            ("mean_t_m_us", self.mean_t_m_us),
            ("mean_t_g_us", self.mean_t_g_us),
            ("mean_t_w_us", self.mean_t_w_us),
            ("view_set_share", self.view_set_share)
        ]
    }
}

fn main() {
    let mut args = TableArgs::parse();
    if args.sizes == pf_bench::PAPER_SIZES.to_vec() {
        args.sizes = vec![512];
    }
    let mut rows = Vec::new();
    for &n in &args.sizes {
        println!("matrix {n}×{n}, physical = column blocks, logical = row blocks");
        println!(
            "{:>4} {:>12} {:>10} {:>10} {:>12} {:>18}",
            "k", "t_i µs", "t_m µs", "t_g µs", "t_w µs", "view-set share %"
        );
        for k in [1usize, 2, 4, 8, 16, 32] {
            let mut fs =
                Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
            let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, 4);
            let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
            let file = fs.create_file(physical, n * n);
            let t = fs.set_view(0, file, &logical, 0);
            let t_i_us = t.t_i.as_secs_f64() * 1e6;

            let m = Mapper::new(&logical, 0);
            let len = logical.element_len(0, n * n).expect("element 0 exists");
            let data: Vec<u8> = (0..len).map(|y| (m.unmap(y) % 251) as u8).collect();
            let mut t_m = 0.0;
            let mut t_g = 0.0;
            let mut t_w = 0.0;
            for _ in 0..k {
                let w = fs.write(0, file, 0, len - 1, &data);
                t_m += w.t_m.as_secs_f64() * 1e6;
                t_g += w.t_g.as_secs_f64() * 1e6;
                t_w += w.t_w_sim_ns as f64 / 1e3;
            }
            let kk = k as f64;
            // Share of the *algorithmic* overhead (t_i vs per-write t_m+t_g)
            // paid up front — the quantity the paper's claim is about.
            let share = t_i_us / (t_i_us + t_m + t_g) * 100.0;
            println!(
                "{:>4} {:>12.1} {:>10.3} {:>10.1} {:>12.1} {:>18.1}",
                k,
                t_i_us,
                t_m / kk,
                t_g / kk,
                t_w / kk,
                share
            );
            rows.push(Row {
                size: n,
                writes: k,
                t_i_us,
                mean_t_m_us: t_m / kk,
                mean_t_g_us: t_g / kk,
                mean_t_w_us: t_w / kk,
                view_set_share: share,
            });
        }
        println!();
    }

    // Claim check: the view-set share of the mapping overhead must fall as
    // accesses accumulate (amortization), and per-write t_m must stay tiny.
    let first = rows.first().expect("at least one row");
    let last = rows.last().expect("at least one row");
    println!(
        "[{}] view-set share falls with k ({:.1}% at k={} → {:.1}% at k={})",
        if last.view_set_share < first.view_set_share { "ok" } else { "FAIL" },
        first.view_set_share,
        first.writes,
        last.view_set_share,
        last.writes
    );
    println!(
        "[{}] per-write extremity mapping stays below 100 µs ({:.3} µs)",
        if last.mean_t_m_us < 100.0 { "ok" } else { "FAIL" },
        last.mean_t_m_us
    );

    match dump_json("amortization", &rows) {
        Ok(path) => println!("\nresults written to {}", path.display()),
        Err(e) => eprintln!("could not persist results: {e}"),
    }
}
