//! **Ablation C** — the paper's §9 future work: a quantitative *matching
//! degree* between two partitions, correlated with measured redistribution
//! cost.
//!
//! Sweeps pairs of partitions of an N×N matrix (the three paper layouts
//! plus cyclic variants at several granularities), computes the matching
//! degree, and measures the real wall-clock of applying the redistribution
//! plan. A useful metric must order the pairs the same way the measured
//! costs do; the run reports the rank correlation.
//!
//! ```text
//! cargo run -p pf-bench --release --bin matching_sweep [--sizes 256,512]
//! ```

use arraydist::dist::{ArrayDistribution, DimDist};
use arraydist::grid::ProcGrid;
use arraydist::matrix::MatrixLayout;
use jsonlite::{obj, Json, ToJson};
use parafile::matching::MatchingDegree;
use parafile::model::Partition;
use parafile::plan::RedistributionPlan;
use pf_bench::{dump_json, TableArgs};
use std::time::Instant;

struct Row {
    size: u64,
    src: String,
    dst: String,
    degree: f64,
    mean_run_len: f64,
    runs_per_period: usize,
    plan_us: f64,
    apply_us: f64,
    bytes: u64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("src", self.src.as_str()),
            ("dst", self.dst.as_str()),
            ("degree", self.degree),
            ("mean_run_len", self.mean_run_len),
            ("runs_per_period", self.runs_per_period),
            ("plan_us", self.plan_us),
            ("apply_us", self.apply_us),
            ("bytes", self.bytes)
        ]
    }
}

fn layouts(n: u64) -> Vec<(String, Partition)> {
    let mut out = vec![
        ("rows".to_string(), MatrixLayout::RowBlocks.partition(n, n, 1, 4)),
        ("cols".to_string(), MatrixLayout::ColumnBlocks.partition(n, n, 1, 4)),
        ("blocks".to_string(), MatrixLayout::SquareBlocks.partition(n, n, 1, 4)),
    ];
    for b in [1u64, 8, 64] {
        let d = ArrayDistribution::new(
            vec![n, n],
            1,
            vec![DimDist::BlockCyclic(b), DimDist::Collapsed],
            ProcGrid::new(vec![4, 1]),
        );
        out.push((format!("cyclic-rows({b})"), d.partition(0)));
    }
    out
}

fn main() {
    let mut args = TableArgs::parse();
    if args.sizes == pf_bench::PAPER_SIZES.to_vec() {
        args.sizes = vec![256, 512];
    }
    let mut rows: Vec<Row> = Vec::new();
    for &n in &args.sizes {
        let file_len = n * n;
        let parts = layouts(n);
        println!("matrix {n}×{n}: matching degree vs measured redistribution cost");
        println!(
            "{:>16} {:>16} {:>8} {:>10} {:>8} {:>10} {:>10}",
            "src", "dst", "degree", "runlen", "runs", "plan µs", "apply µs"
        );
        for (sname, src) in &parts {
            for (dname, dst) in &parts {
                if sname == dname {
                    continue;
                }
                let t0 = Instant::now();
                let plan = RedistributionPlan::build(src, dst).expect("same file");
                let plan_us = t0.elapsed().as_secs_f64() * 1e6;
                let m = MatchingDegree::from_plan(&plan, dst);

                let src_bufs: Vec<Vec<u8>> = (0..src.element_count())
                    .map(|e| {
                        vec![
                            0xA5u8;
                            src.element_len(e, file_len).expect("source element exists") as usize
                        ]
                    })
                    .collect();
                let mut dst_bufs: Vec<Vec<u8>> = (0..dst.element_count())
                    .map(|e| {
                        vec![
                            0u8;
                            dst.element_len(e, file_len).expect("destination element exists")
                                as usize
                        ]
                    })
                    .collect();
                // Best of several runs: single-shot wall-clock at these
                // sizes is dominated by scheduling noise.
                let mut apply_us = f64::INFINITY;
                let mut bytes = 0;
                for _ in 0..7 {
                    let t1 = Instant::now();
                    bytes = plan.apply(&src_bufs, &mut dst_bufs, file_len);
                    apply_us = apply_us.min(t1.elapsed().as_secs_f64() * 1e6);
                }
                println!(
                    "{:>16} {:>16} {:>8.4} {:>10.1} {:>8} {:>10.1} {:>10.1}",
                    sname, dname, m.degree, m.mean_run_len, m.runs_per_period, plan_us, apply_us
                );
                rows.push(Row {
                    size: n,
                    src: sname.clone(),
                    dst: dname.clone(),
                    degree: m.degree,
                    mean_run_len: m.mean_run_len,
                    runs_per_period: m.runs_per_period,
                    plan_us,
                    apply_us,
                    bytes,
                });
            }
        }
        println!();
    }

    // Rank correlations per size. Two candidate metrics:
    //  * `degree` (intrinsic/actual runs) measures *structural* match —
    //    1.0 means the source already delivers data in the destination's
    //    own fragment structure;
    //  * fragmentation (runs per byte = 1/mean_run_len) predicts the raw
    //    *cost* of moving the data.
    for &n in &args.sizes {
        let sub: Vec<&Row> = rows.iter().filter(|r| r.size == n).collect();
        let apply: Vec<f64> = sub.iter().map(|r| r.apply_us).collect();
        let rho_deg = spearman(&sub.iter().map(|r| 1.0 - r.degree).collect::<Vec<_>>(), &apply);
        let rho_frag =
            spearman(&sub.iter().map(|r| 1.0 / r.mean_run_len).collect::<Vec<_>>(), &apply);
        println!("{n}: Spearman((1−degree), apply time) = {rho_deg:.3} (structural match)");
        println!(
            "[{}] {n}: Spearman(1/mean_run_len, apply time) = {rho_frag:.3} (want strongly positive)",
            if rho_frag > 0.5 { "ok" } else { "FAIL" }
        );
    }

    match dump_json("matching_sweep", &rows) {
        Ok(path) => println!("\nresults written to {}", path.display()),
        Err(e) => eprintln!("could not persist results: {e}"),
    }
}

/// Spearman rank correlation.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = ra.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = rb.iter().map(|y| (y - mb).powi(2)).sum();
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).expect("no NaN"));
    let mut out = vec![0.0; v.len()];
    for (rank, &i) in idx.iter().enumerate() {
        out[i] = rank as f64;
    }
    out
}
