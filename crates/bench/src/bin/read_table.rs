//! Read-path counterpart of Table 1 (extension): the paper presents only
//! the write operation "because the write and read are reverse
//! symmetrical" — this sweep produces the read-side evidence.
//!
//! ```text
//! cargo run -p pf-bench --release --bin read_table [--sizes 256,512]
//! ```

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, WritePolicy};
use jsonlite::{obj, Json, ToJson};
use parafile::Mapper;
use pf_bench::{dump_json, TableArgs};

struct Row {
    size: u64,
    layout: String,
    t_m_us: f64,
    t_scatter_us: f64,
    t_r_us: f64,
    t_w_us: f64,
    messages: u64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("layout", self.layout.as_str()),
            ("t_m_us", self.t_m_us),
            ("t_scatter_us", self.t_scatter_us),
            ("t_r_us", self.t_r_us),
            ("t_w_us", self.t_w_us),
            ("messages", self.messages)
        ]
    }
}

fn main() {
    let args = TableArgs::parse();
    println!("read-path breakdown at the compute node (µs) — write t_w for symmetry\n");
    println!(
        "{:>5} {:>4} {:>10} {:>12} {:>12} {:>12} {:>6}",
        "size", "phy", "t_m", "scatter", "t_r (sim)", "t_w (sim)", "msgs"
    );
    let mut rows = Vec::new();
    for &n in &args.sizes {
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        for layout in pf_bench::paper_layouts() {
            let mut fs =
                Clusterfile::new(ClusterfileConfig::paper_deployment(WritePolicy::BufferCache));
            let file = fs.create_file(layout.partition(n, n, 1, 4), n * n);
            fs.set_view(0, file, &logical, 0);
            let m = Mapper::new(&logical, 0);
            let len = logical.element_len(0, n * n).expect("element 0 exists");
            let data: Vec<u8> = (0..len).map(|y| (m.unmap(y) % 251) as u8).collect();
            let w = fs.write(0, file, 0, len - 1, &data);
            let (back, r) = fs.read_timed(0, file, 0, len - 1);
            assert_eq!(back, data, "read returns the written view");
            println!(
                "{:>5} {:>4} {:>10.3} {:>12.1} {:>12.1} {:>12.1} {:>6}",
                n,
                layout.label(),
                r.t_m.as_secs_f64() * 1e6,
                r.t_g.as_secs_f64() * 1e6,
                r.t_w_sim_ns as f64 / 1e3,
                w.t_w_sim_ns as f64 / 1e3,
                r.messages
            );
            rows.push(Row {
                size: n,
                layout: layout.label().to_string(),
                t_m_us: r.t_m.as_secs_f64() * 1e6,
                t_scatter_us: r.t_g.as_secs_f64() * 1e6,
                t_r_us: r.t_w_sim_ns as f64 / 1e3,
                t_w_us: w.t_w_sim_ns as f64 / 1e3,
                messages: r.messages,
            });
        }
        println!();
    }
    // Symmetry check: read and write completions stay within 2.5× of each
    // other for every configuration.
    let worst = rows
        .iter()
        .map(|r| {
            let q = r.t_r_us / r.t_w_us;
            q.max(1.0 / q)
        })
        .fold(0.0f64, f64::max);
    println!(
        "[{}] read/write symmetry: worst t_r/t_w divergence {:.2}×",
        if worst < 2.5 { "ok" } else { "FAIL" },
        worst
    );
    match dump_json("read_table", &rows) {
        Ok(path) => println!("\nresults written to {}", path.display()),
        Err(e) => eprintln!("could not persist results: {e}"),
    }
}
