//! **Ablation E** (extension): direct per-view writes vs two-phase
//! collective writes, per physical layout and size, under both policies.
//!
//! Two-phase I/O is the classic remedy for poor logical/physical matching;
//! the paper's redistribution machinery provides the exchange schedule for
//! free. Expectation: the collective path wins for mismatched layouts
//! (fewer, larger, contiguous I/O requests) and is pointless for the
//! perfect match.
//!
//! ```text
//! cargo run -p pf-bench --release --bin two_phase [--sizes 256,512]
//! ```

use arraydist::matrix::MatrixLayout;
use clusterfile::{Clusterfile, ClusterfileConfig, WritePolicy};
use jsonlite::{obj, Json, ToJson};
use parafile::Mapper;
use pf_bench::{dump_json, TableArgs};

struct Row {
    size: u64,
    layout: String,
    write_through: bool,
    direct_us: f64,
    collective_us: f64,
    exchange_us: f64,
    speedup: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("layout", self.layout.as_str()),
            ("write_through", self.write_through),
            ("direct_us", self.direct_us),
            ("collective_us", self.collective_us),
            ("exchange_us", self.exchange_us),
            ("speedup", self.speedup)
        ]
    }
}

fn view_buffers(logical: &parafile::Partition, file_len: u64) -> Vec<Vec<u8>> {
    (0..logical.element_count())
        .map(|c| {
            let m = Mapper::new(logical, c);
            (0..logical.element_len(c, file_len).expect("view element exists"))
                .map(|y| (m.unmap(y) % 251) as u8)
                .collect()
        })
        .collect()
}

fn main() {
    let args = TableArgs::parse();
    println!("direct vs two-phase collective writes (µs, simulated)\n");
    println!(
        "{:>5} {:>4} {:>6} {:>12} {:>12} {:>12} {:>9}",
        "size", "phy", "disk", "direct", "collective", "exchange", "speedup"
    );
    // Every quantity here is simulated (deterministic), so the combinations
    // run concurrently on real threads, one private cluster each.
    let combos: Vec<(u64, MatrixLayout, bool)> = args
        .sizes
        .iter()
        .flat_map(|&n| {
            pf_bench::paper_layouts().into_iter().flat_map(move |l| [(n, l, false), (n, l, true)])
        })
        .collect();
    let results = clustersim::parallel::run_phase(combos.len(), |i| {
        let (n, layout, write_through) = combos[i];
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
        let data = view_buffers(&logical, n * n);
        {
            let policy =
                if write_through { WritePolicy::WriteThrough } else { WritePolicy::BufferCache };
            // Direct path: per-view writes through set views.
            let direct_ns = {
                let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(policy));
                let file = fs.create_file(layout.partition(n, n, 1, 4), n * n);
                for c in 0..4usize {
                    fs.set_view(c, file, &logical, c);
                }
                let ops: Vec<(usize, u64, u64, Vec<u8>)> = data
                    .iter()
                    .enumerate()
                    .map(|(c, d)| (c, 0, d.len() as u64 - 1, d.clone()))
                    .collect();
                let t = fs.write_group(file, &ops);
                t.iter().map(|w| w.t_w_sim_ns).max().expect("at least one writer")
            };
            // Two-phase collective path.
            let (coll_ns, exch_ns) = {
                let mut fs = Clusterfile::new(ClusterfileConfig::paper_deployment(policy));
                let file = fs.create_file(layout.partition(n, n, 1, 4), n * n);
                let t = fs.collective_write(file, &logical, &data);
                (t.exchange_ns + t.write_ns, t.exchange_ns)
            };
            Row {
                size: n,
                layout: layout.label().to_string(),
                write_through,
                direct_us: direct_ns as f64 / 1e3,
                collective_us: coll_ns as f64 / 1e3,
                exchange_us: exch_ns as f64 / 1e3,
                speedup: direct_ns as f64 / coll_ns as f64,
            }
        }
    });
    let rows: Vec<Row> = results.into_iter().map(|r| r.output).collect();
    let mut last_size = 0;
    for r in &rows {
        if last_size != 0 && r.size != last_size {
            println!();
        }
        last_size = r.size;
        println!(
            "{:>5} {:>4} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>9.2}",
            r.size,
            r.layout,
            r.write_through,
            r.direct_us,
            r.collective_us,
            r.exchange_us,
            r.speedup
        );
    }
    println!();
    let worst = rows
        .iter()
        .filter(|r| r.layout == "c" && r.write_through)
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "[{}] two-phase wins for every write-through column-block case (min speedup {:.2}×)",
        if worst > 1.0 { "ok" } else { "FAIL" },
        worst
    );
    match dump_json("two_phase", &rows) {
        Ok(path) => println!("\nresults written to {}", path.display()),
        Err(e) => eprintln!("could not persist results: {e}"),
    }
}
