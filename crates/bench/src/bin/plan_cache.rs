//! Plan-cache benchmark: cold vs warm view-set compile time through the
//! shared [`PlanEngine`], on the paper's 4×4 matrix scenario (row-block
//! logical view against each physical layout).
//!
//! ```text
//! cargo run -p pf-bench --release --bin plan_cache [--reps N] [--sizes 256,512]
//! ```
//!
//! A **cold** rep builds a fresh engine and compiles all four compute
//! nodes' view plans from scratch; a **warm** rep re-asks the same engine
//! for the same plans and must be served from the cache. Writes
//! `bench_results/plan_cache.json` with per-configuration timings, the
//! warm/cold speedup and the engine's hit/miss counters.

use arraydist::matrix::MatrixLayout;
use jsonlite::{obj, Json, ToJson};
use parafile::PlanEngine;
use pf_bench::{dump_json, paper_layouts, TableArgs};
use std::time::Instant;

/// The paper's machine: 4 compute nodes, 4 I/O nodes.
const PARTS: u64 = 4;

struct Row {
    size: u64,
    layout: String,
    cold_us: f64,
    warm_us: f64,
    speedup: f64,
    hits: u64,
    misses: u64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("layout", self.layout.as_str()),
            ("cold_us", self.cold_us),
            ("warm_us", self.warm_us),
            ("speedup", self.speedup),
            ("hits", self.hits),
            ("misses", self.misses)
        ]
    }
}

struct Report {
    rows: Vec<Row>,
    min_speedup: f64,
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        obj![
            ("rows", Json::Array(self.rows.iter().map(ToJson::to_json).collect())),
            ("min_speedup", self.min_speedup)
        ]
    }
}

/// Compiles every compute node's view plan once against `engine`.
fn compile_all(
    engine: &PlanEngine,
    logical: &parafile::model::Partition,
    physical: &parafile::model::Partition,
) {
    for e in 0..PARTS as usize {
        engine.compile_view(logical, e, physical).expect("view compiles");
    }
}

fn main() {
    let args = TableArgs::parse();
    println!("Plan cache: cold vs warm view-set compile ({} reps)", args.reps);
    println!(
        "{:>5} {:>4} {:>12} {:>12} {:>9} {:>6} {:>7}",
        "size", "phy", "cold (µs)", "warm (µs)", "speedup", "hits", "misses"
    );

    let mut rows = Vec::new();
    for &size in &args.sizes {
        let logical = MatrixLayout::RowBlocks.partition(size, size, 1, PARTS);
        for layout in paper_layouts() {
            let physical = layout.partition(size, size, 1, PARTS);

            // Cold: every rep pays full canonicalization + compilation.
            let t0 = Instant::now();
            for _ in 0..args.reps {
                let engine = PlanEngine::new();
                compile_all(&engine, &logical, &physical);
            }
            let cold_us = t0.elapsed().as_secs_f64() * 1e6 / args.reps as f64;

            // Warm: one engine, prewarmed, so every rep is pure cache hits.
            let engine = PlanEngine::new();
            compile_all(&engine, &logical, &physical);
            let t1 = Instant::now();
            for _ in 0..args.reps {
                compile_all(&engine, &logical, &physical);
            }
            let warm_us = t1.elapsed().as_secs_f64() * 1e6 / args.reps as f64;
            let stats = engine.stats().views;

            let speedup = if warm_us > 0.0 { cold_us / warm_us } else { f64::INFINITY };
            println!(
                "{:>5} {:>4} {:>12.2} {:>12.2} {:>8.1}x {:>6} {:>7}",
                size,
                layout.label(),
                cold_us,
                warm_us,
                speedup,
                stats.hits,
                stats.misses
            );
            rows.push(Row {
                size,
                layout: layout.label().to_string(),
                cold_us,
                warm_us,
                speedup,
                hits: stats.hits,
                misses: stats.misses,
            });
        }
    }

    // The 5x target is judged on the layouts that actually redistribute
    // (`c`, `b`). The row-block physical layout matches the row-block view
    // exactly, so its cold compile is already near-free and the cache can
    // only win a small constant there.
    let min_speedup =
        rows.iter().filter(|r| r.layout != "r").map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    let report = Report { rows, min_speedup };
    let path = dump_json("plan_cache", &report).expect("persist results");
    println!("\nminimum warm speedup over redistributing layouts: {min_speedup:.1}x");
    println!("wrote {}", path.display());
    if min_speedup < 5.0 {
        eprintln!("WARNING: warm view-set compile is under the 5x target");
        std::process::exit(1);
    }
}
