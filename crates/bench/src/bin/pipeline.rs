//! **Ablation G** (extension): the pipelined multi-node data path —
//! persistent per-node session workers, batched pipelined writes and v3
//! chunked streaming — against the PR 4 `net_throughput` baseline.
//!
//! The workload is the paper's worst-matching layout pair (row-block
//! views over a column-block physical file): one compute node writes its
//! full strided view as a batch of pipelined slices, then reads it back.
//! The sweep covers I/O-node count × payload (matrix size) × projected
//! segment size (the element width of the layouts, which sets the length
//! of every scatter run at the I/O nodes).
//!
//! Rows on the baseline configuration (4 nodes, 1-byte segments, a
//! single batched op — the PR 4 workload exactly) carry the committed
//! PR 4 single-client write throughput from
//! `bench_results/net_throughput.json` and the resulting speedup;
//! `--gate X` fails the run (exit 1) unless the best such speedup
//! reaches `X`. Multi-op rows document the batch path, which is
//! round-trip-bound per node today (see ROADMAP: in-worker request
//! pipelining).
//!
//! ```text
//! cargo run -p pf-bench --release --bin pipeline \
//!     [--reps 5] [--sizes 256,512,1024,2048] [--nodes 2,4] [--ops 1,8] [--gate 2.0]
//! ```

use arraydist::matrix::MatrixLayout;
use clusterfile::StorageBackend;
use jsonlite::Json;
use parafile::Mapper;
use parafile_net::session::{spawn_loopback, BatchWrite, Session};
use pf_bench::{dump_json, results_dir};
use std::time::Instant;

struct Args {
    reps: usize,
    sizes: Vec<u64>,
    nodes: Vec<usize>,
    ops: Vec<usize>,
    gate: Option<f64>,
}

fn parse_args() -> Args {
    let mut out = Args {
        reps: 5,
        sizes: vec![256, 512, 1024, 2048],
        nodes: vec![2, 4],
        ops: vec![1, 8],
        gate: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let num = |args: &[String], i: usize, what: &str| -> String {
        args.get(i + 1).unwrap_or_else(|| panic!("{what} needs a value")).clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => out.reps = num(&args, i, "--reps").parse().expect("--reps"),
            "--ops" => {
                out.ops =
                    num(&args, i, "--ops").split(',').map(|v| v.parse().expect("--ops")).collect()
            }
            "--gate" => out.gate = Some(num(&args, i, "--gate").parse().expect("--gate")),
            "--sizes" => {
                out.sizes =
                    num(&args, i, "--sizes").split(',').map(|v| v.parse().expect("size")).collect()
            }
            "--nodes" => {
                out.nodes =
                    num(&args, i, "--nodes").split(',').map(|v| v.parse().expect("nodes")).collect()
            }
            other => {
                eprintln!(
                    "unknown argument {other}; supported: \
                     --reps N, --sizes a,b, --nodes a,b, --ops N, --gate X"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    out
}

struct Row {
    nodes: usize,
    size: u64,
    segment: u64,
    ops: usize,
    reps: usize,
    bytes_per_client: u64,
    write_mib_s: f64,
    read_mib_s: f64,
    baseline_write_mib_s: Option<f64>,
    speedup: Option<f64>,
}

impl jsonlite::ToJson for Row {
    fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Float);
        Json::Object(vec![
            ("nodes".into(), Json::UInt(self.nodes as u64)),
            ("size".into(), Json::UInt(self.size)),
            ("segment".into(), Json::UInt(self.segment)),
            ("ops".into(), Json::UInt(self.ops as u64)),
            ("reps".into(), Json::UInt(self.reps as u64)),
            ("bytes_per_client".into(), Json::UInt(self.bytes_per_client)),
            ("write_mib_s".into(), Json::Float(self.write_mib_s)),
            ("read_mib_s".into(), Json::Float(self.read_mib_s)),
            ("baseline_write_mib_s".into(), opt(self.baseline_write_mib_s)),
            ("speedup".into(), opt(self.speedup)),
        ])
    }
}

/// The committed PR 4 single-client write throughput for matrix side
/// `size`, if `bench_results/net_throughput.json` carries it.
fn baseline_write_mib_s(size: u64) -> Option<f64> {
    let text = std::fs::read_to_string(results_dir().join("net_throughput.json")).ok()?;
    let rows = Json::parse(&text).ok()?;
    rows.as_array()?.iter().find_map(|row| {
        let matches = row.get("size")?.as_u64()? == size && row.get("clients")?.as_u64()? == 1;
        if matches {
            row.get("write_mib_s")?.as_f64()
        } else {
            None
        }
    })
}

/// Runs one configuration: `reps` timed batched-write + read passes of
/// compute 0's full view, after one untimed warm-up pass that opens the
/// connections and primes the chunk-capability probe. Returns
/// `(write_mib_s, read_mib_s, bytes_per_client)`.
fn run_config(
    addrs: &[String],
    nodes: usize,
    n: u64,
    segment: u64,
    ops: usize,
    reps: usize,
    file: &mut u64,
) -> (f64, f64, u64) {
    let physical = MatrixLayout::ColumnBlocks.partition(n, n, segment, nodes as u64);
    let logical = MatrixLayout::RowBlocks.partition(n, n, segment, 4);
    let file_len = n * n * segment;
    let bytes = logical.element_len(0, file_len).expect("view element");
    let m = Mapper::new(&logical, 0);
    let data: Vec<u8> = (0..bytes).map(|y| (m.unmap(y) % 251) as u8).collect();
    // The batch: `ops` contiguous slices of the view, pipelined per node.
    let slice = (bytes / ops as u64).max(1);
    let batch: Vec<BatchWrite<'_>> = (0..bytes)
        .step_by(slice as usize)
        .map(|lo| {
            let hi = (lo + slice - 1).min(bytes - 1);
            BatchWrite { lo_v: lo, hi_v: hi, data: &data[lo as usize..=hi as usize] }
        })
        .collect();

    let mut session = Session::connect(addrs);
    let mut write_ns = 0u128;
    let mut read_ns = 0u128;
    for rep in 0..=reps {
        let fid = *file;
        *file += 1;
        session.create_file(fid, physical.clone(), file_len).expect("create");
        session.set_view(0, fid, &logical, 0).expect("view");
        let start = Instant::now();
        let reports = session.write_batch(0, fid, &batch).expect("batch write");
        let write = start.elapsed().as_nanos();
        for r in &reports {
            assert!(r.fully_applied(), "loopback write must fully apply");
        }
        let start = Instant::now();
        let back = session.read(0, fid, 0, bytes - 1).expect("read");
        let read = start.elapsed().as_nanos();
        assert_eq!(back, data, "read-back must match the strided write");
        // Rep 0 is the warm-up: connections, worker threads and the
        // chunk-capability probe all come up outside the timed region.
        if rep > 0 {
            write_ns += write;
            read_ns += read;
        }
    }
    let total = (bytes * reps as u64) as f64;
    let mib = 1024.0 * 1024.0;
    (total / mib / (write_ns as f64 / 1e9), total / mib / (read_ns as f64 / 1e9), bytes)
}

fn main() {
    let args = parse_args();
    println!("pipelined data path, loopback daemons (MiB/s)\n");
    println!(
        "{:>5} {:>5} {:>7} {:>4} {:>12} {:>12} {:>10} {:>8}",
        "nodes", "size", "segment", "ops", "write", "read", "baseline", "speedup"
    );
    let mut rows = Vec::new();
    let mut file = 1u64;
    for &nodes in &args.nodes {
        let (_daemons, addrs) =
            spawn_loopback(nodes, StorageBackend::Memory).expect("spawn loopback daemons");
        for &n in &args.sizes {
            for segment in [1u64, 8] {
                for &ops in &args.ops {
                    let (write_mib_s, read_mib_s, bytes) =
                        run_config(&addrs, nodes, n, segment, ops, args.reps.max(1), &mut file);
                    // The PR 4 baseline ran 4 nodes, 1-byte elements, one
                    // fan-out per view write; only that configuration is an
                    // apples-to-apples comparison.
                    let baseline = if nodes == 4 && segment == 1 && ops == 1 {
                        baseline_write_mib_s(n)
                    } else {
                        None
                    };
                    let speedup = baseline.map(|b| write_mib_s / b);
                    let fmt_opt = |v: Option<f64>| v.map_or("-".into(), |v| format!("{v:.1}"));
                    println!(
                        "{nodes:>5} {n:>5} {segment:>7} {ops:>4} {write_mib_s:>12.1} \
                         {read_mib_s:>12.1} {:>10} {:>8}",
                        fmt_opt(baseline),
                        fmt_opt(speedup),
                    );
                    rows.push(Row {
                        nodes,
                        size: n,
                        segment,
                        ops,
                        reps: args.reps.max(1),
                        bytes_per_client: bytes,
                        write_mib_s,
                        read_mib_s,
                        baseline_write_mib_s: baseline,
                        speedup,
                    });
                }
            }
        }
    }
    let path = dump_json("pipeline", &rows).expect("persist results");
    println!("\nresults → {}", path.display());
    if let Some(gate) = args.gate {
        let best = rows.iter().filter_map(|r| r.speedup).fold(f64::NAN, f64::max);
        if best.is_nan() {
            eprintln!("gate {gate}: no baseline rows to compare against");
            std::process::exit(1);
        }
        if best < gate {
            eprintln!("gate {gate}: best speedup over the PR 4 baseline is only {best:.2}x");
            std::process::exit(1);
        }
        println!("gate {gate}: passed (best speedup {best:.2}x)");
    }
}
