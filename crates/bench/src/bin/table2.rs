//! Regenerates the paper's **Table 2** — scatter time at the I/O node — for
//! every matrix size and physical layout, printing simulated values next to
//! the paper's references (µs).
//!
//! ```text
//! cargo run -p pf-bench --release --bin table2 [--reps N] [--sizes 256,512]
//! ```

use clusterfile::PaperScenario;
use jsonlite::{obj, Json, ToJson};
use pf_bench::{dump_json, paper_table2_row, TableArgs};

struct Row {
    size: u64,
    layout: String,
    t_s_bc_us: f64,
    t_s_disk_us: f64,
    t_s_real_us: f64,
    fragments_per_io: f64,
    paper_t_s_bc_us: f64,
    paper_t_s_disk_us: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("layout", self.layout.as_str()),
            ("t_s_bc_us", self.t_s_bc_us),
            ("t_s_disk_us", self.t_s_disk_us),
            ("t_s_real_us", self.t_s_real_us),
            ("fragments_per_io", self.fragments_per_io),
            ("paper_t_s_bc_us", self.paper_t_s_bc_us),
            ("paper_t_s_disk_us", self.paper_t_s_disk_us)
        ]
    }
}

fn main() {
    let args = TableArgs::parse();
    println!("Table 2: scatter time at the I/O node (µs)");
    println!("simulated on the paper-calibrated models (paper values in parentheses)\n");
    println!(
        "{:>5} {:>4} {:>4} {:>20} {:>20} {:>12} {:>10}",
        "size", "phy", "log", "t_s^bc", "t_s^disk", "real(µs)", "frags"
    );

    let mut rows = Vec::new();
    for &size in &args.sizes {
        for layout in pf_bench::paper_layouts() {
            let mut bc = PaperScenario::paper(size, layout, false);
            bc.repetitions = args.reps;
            let bc = bc.run();
            let mut disk = PaperScenario::paper(size, layout, true);
            disk.repetitions = args.reps;
            let disk = disk.run();
            let (p_bc, p_disk) = paper_table2_row(size, layout.label()).unwrap_or((0.0, 0.0));
            println!(
                "{:>5} {:>4} {:>4} {:>11.1} ({:>5.0}) {:>11.1} ({:>6.0}) {:>12.2} {:>10.1}",
                size,
                layout.label(),
                "r",
                bc.t_s_us,
                p_bc,
                disk.t_s_us,
                p_disk,
                bc.t_s_real_us,
                bc.fragments_per_io,
            );
            rows.push(Row {
                size,
                layout: layout.label().to_string(),
                t_s_bc_us: bc.t_s_us,
                t_s_disk_us: disk.t_s_us,
                t_s_real_us: bc.t_s_real_us,
                fragments_per_io: bc.fragments_per_io,
                paper_t_s_bc_us: p_bc,
                paper_t_s_disk_us: p_disk,
            });
        }
        println!();
    }

    let find = |size: u64, l: &str| {
        rows.iter().find(|r| r.size == size && r.layout == l).expect("swept row exists")
    };
    println!("shape checks:");
    for &size in &args.sizes {
        let (c, r) = (find(size, "c"), find(size, "r"));
        println!(
            "  [{}] {size}: fragmented layouts cost at least as much to scatter (c ≥ r)",
            if c.t_s_bc_us >= r.t_s_bc_us * 0.95 { "ok" } else { "FAIL" }
        );
        println!(
            "  [{}] {size}: disk writes dominate cache writes",
            if c.t_s_disk_us > 2.0 * c.t_s_bc_us { "ok" } else { "FAIL" }
        );
    }
    if args.sizes.len() >= 2 {
        let small = args.sizes[0];
        let big = *args.sizes.last().expect("size sweep is non-empty");
        let conv_small = find(small, "c").t_s_bc_us / find(small, "r").t_s_bc_us;
        let conv_big = find(big, "c").t_s_bc_us / find(big, "r").t_s_bc_us;
        println!(
            "  [{}] layouts converge for big messages (c/r: {:.2} at {small} → {:.2} at {big})",
            if conv_big < conv_small || conv_big < 1.15 { "ok" } else { "FAIL" },
            conv_small,
            conv_big
        );
    }

    match dump_json("table2", &rows) {
        Ok(path) => println!("\nresults written to {}", path.display()),
        Err(e) => eprintln!("could not persist results: {e}"),
    }
}
