//! Concurrent-clients sweep: the reactor daemon against the legacy
//! thread-per-connection daemon under 1/8/64/256 simultaneous warm client
//! connections.
//!
//! One daemon hosts a single subfile with an identity view; `C` client
//! threads each hold one warm connection and issue positioned writes to
//! disjoint ranges, so the daemon-side concurrency model (one thread per
//! connection vs an event loop over a fixed worker pool) is the only
//! variable. Per-op latencies are recorded on every client and merged
//! into p50/p99; aggregate throughput is total bytes over the phase's
//! wall time.
//!
//! The daemon runs its production admission defaults on purpose: a mode
//! that can only survive a client count by shedding (`Busy` retries
//! inflating p99) shows it in the row instead of hiding behind an
//! uncapped config.
//!
//! ```text
//! cargo run -p pf-bench --release --bin concurrency -- \
//!     [--clients 1,8,64,256] [--ops 200] [--payload 1024] \
//!     [--gate 2.0] [--gate-clients 64] [--smoke]
//! ```
//!
//! `--gate X` fails the run unless reactor aggregate throughput at
//! `--gate-clients` reaches `X`× the thread-per-connection baseline.
//! `--gate-p99 X` gates the tail instead: reactor p99 must be `X`× lower
//! than the baseline's. On single-core runners both modes saturate the
//! CPU and aggregate throughput converges, so CI gates the p99 ratio —
//! the machine-independent signal of the fixed worker pool — plus
//! error-free completion. `--smoke` shrinks the sweep to the gate client
//! count and fails on any client-visible error (a shed storm that
//! exhausts a retry ladder).

use arraydist::matrix::MatrixLayout;
use jsonlite::Json;
use parafile_net::server::{serve, DaemonConfig, DaemonHandle};
use parafile_net::session::Session;
use parafile_net::wire::{Reply, Request};
use parafile_net::NodeClient;
use pf_bench::dump_json;
use std::sync::{Arc, Barrier};
use std::time::Instant;

struct Args {
    clients: Vec<usize>,
    ops: usize,
    payload: u64,
    gate: Option<f64>,
    gate_p99: Option<f64>,
    gate_clients: usize,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        clients: vec![1, 8, 64, 256],
        ops: 200,
        payload: 1024,
        gate: None,
        gate_p99: None,
        gate_clients: 64,
        smoke: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let num = |args: &[String], i: usize, what: &str| -> String {
        args.get(i + 1).unwrap_or_else(|| panic!("{what} needs a value")).clone()
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                out.clients = num(&args, i, "--clients")
                    .split(',')
                    .map(|v| v.parse().expect("--clients"))
                    .collect();
            }
            "--ops" => out.ops = num(&args, i, "--ops").parse().expect("--ops"),
            "--payload" => out.payload = num(&args, i, "--payload").parse().expect("--payload"),
            "--gate" => out.gate = Some(num(&args, i, "--gate").parse().expect("--gate")),
            "--gate-p99" => {
                out.gate_p99 = Some(num(&args, i, "--gate-p99").parse().expect("--gate-p99"));
            }
            "--gate-clients" => {
                out.gate_clients = num(&args, i, "--gate-clients").parse().expect("--gate-clients");
            }
            "--smoke" => {
                out.smoke = true;
                i += 1;
                continue;
            }
            other => {
                eprintln!(
                    "unknown argument {other}; supported: --clients a,b, --ops N, \
                     --payload BYTES, --gate X, --gate-p99 X, --gate-clients N, --smoke"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if out.smoke {
        out.clients = vec![out.gate_clients];
        out.ops = out.ops.min(50);
    }
    out
}

struct Row {
    mode: &'static str,
    workers: usize,
    clients: usize,
    ops_per_client: usize,
    payload: u64,
    p50_us: f64,
    p99_us: f64,
    agg_mib_s: f64,
    ops_per_s: f64,
    errors: u64,
}

impl jsonlite::ToJson for Row {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("mode".into(), Json::Str(self.mode.into())),
            ("workers".into(), Json::UInt(self.workers as u64)),
            ("clients".into(), Json::UInt(self.clients as u64)),
            ("ops_per_client".into(), Json::UInt(self.ops_per_client as u64)),
            ("payload".into(), Json::UInt(self.payload)),
            ("p50_us".into(), Json::Float(self.p50_us)),
            ("p99_us".into(), Json::Float(self.p99_us)),
            ("agg_mib_s".into(), Json::Float(self.agg_mib_s)),
            ("ops_per_s".into(), Json::Float(self.ops_per_s)),
            ("errors".into(), Json::UInt(self.errors)),
        ])
    }
}

fn percentile(sorted: &[u128], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

/// Spawns one daemon in the given mode and registers an identity view
/// big enough for `max_clients` disjoint payload ranges.
fn daemon_with_view(
    workers: usize,
    max_clients: usize,
    payload: u64,
) -> (DaemonHandle, String, Session, u64) {
    // Round up to an even power of two so the byte space is a square
    // matrix (side² = file_len) for the identity layouts.
    let mut file_len = (max_clients as u64 * payload).next_power_of_two().max(4);
    if file_len.trailing_zeros() % 2 == 1 {
        file_len *= 2;
    }
    let side = 1u64 << (file_len.trailing_zeros() / 2);
    debug_assert_eq!(side * side, file_len);
    let physical = MatrixLayout::ColumnBlocks.partition(side, side, 1, 1);
    let logical = MatrixLayout::ColumnBlocks.partition(side, side, 1, 1);
    let config = DaemonConfig { workers, ..DaemonConfig::default() };
    let handle = serve("127.0.0.1:0", config).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let mut session = Session::connect(std::slice::from_ref(&addr));
    session.create_file(1, physical, file_len).expect("create file");
    session.set_view(0, 1, &logical, 0).expect("set view");
    (handle, addr, session, file_len)
}

/// One client-count phase: `clients` threads, each with a warm private
/// connection, all released by a barrier, each issuing `ops` writes to
/// its own range. Returns (merged latencies ns, wall ns, error count).
fn run_phase(addr: &str, clients: usize, ops: usize, payload: u64) -> (Vec<u128>, u128, u64) {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|cid| {
            let addr = addr.to_string();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = NodeClient::new(addr);
                let l_s = cid as u64 * payload;
                let req = Request::Write {
                    file: 1,
                    compute: 0,
                    l_s,
                    r_s: l_s + payload - 1,
                    session: 0,
                    seq: 0,
                    payload: vec![cid as u8; payload as usize],
                };
                // Untimed warm-up: connection, negotiation, chunk probe.
                let mut errors = u64::from(client.call(&req).is_err());
                let mut lat = Vec::with_capacity(ops);
                barrier.wait();
                for _ in 0..ops {
                    let t = Instant::now();
                    match client.call(&req) {
                        Ok(Reply::WriteOk { .. }) => lat.push(t.elapsed().as_nanos()),
                        _ => errors += 1,
                    }
                }
                (lat, errors)
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let mut lat = Vec::with_capacity(clients * ops);
    let mut errors = 0u64;
    for h in handles {
        let (l, e) = h.join().expect("client thread");
        lat.extend(l);
        errors += e;
    }
    let wall = t0.elapsed().as_nanos();
    lat.sort_unstable();
    (lat, wall, errors)
}

fn main() {
    let args = parse_args();
    let max_clients = args.clients.iter().copied().max().unwrap_or(1);
    let pool = std::thread::available_parallelism().map_or(4, |n| n.get()).clamp(2, 8);
    println!("concurrent-clients sweep, {}B writes, {} ops/client\n", args.payload, args.ops);
    println!(
        "{:>8} {:>7} {:>7} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "mode", "clients", "workers", "p50_us", "p99_us", "MiB/s", "ops/s", "errors"
    );
    let mut rows: Vec<Row> = Vec::new();
    for (mode, workers) in [("threads", 0usize), ("reactor", pool)] {
        let (mut handle, addr, session, _) = daemon_with_view(workers, max_clients, args.payload);
        for &clients in &args.clients {
            let (lat, wall, errors) = run_phase(&addr, clients, args.ops, args.payload);
            let total_bytes = (lat.len() as u64 * args.payload) as f64;
            let secs = wall as f64 / 1e9;
            let row = Row {
                mode,
                workers,
                clients,
                ops_per_client: args.ops,
                payload: args.payload,
                p50_us: percentile(&lat, 0.50),
                p99_us: percentile(&lat, 0.99),
                agg_mib_s: total_bytes / (1024.0 * 1024.0) / secs,
                ops_per_s: lat.len() as f64 / secs,
                errors,
            };
            println!(
                "{:>8} {:>7} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.0} {:>7}",
                row.mode,
                row.clients,
                row.workers,
                row.p50_us,
                row.p99_us,
                row.agg_mib_s,
                row.ops_per_s,
                row.errors
            );
            rows.push(row);
        }
        drop(session);
        handle.stop();
    }
    let path = dump_json("concurrency", &rows).expect("persist results");
    println!("\nresults → {}", path.display());

    let total_errors: u64 = rows.iter().map(|r| r.errors).sum();
    if args.smoke && total_errors > 0 {
        eprintln!("smoke: {total_errors} client-visible errors (shed storm); failing");
        std::process::exit(1);
    }
    let pick = |mode: &str, field: fn(&Row) -> f64| {
        rows.iter().find(|r| r.mode == mode && r.clients == args.gate_clients).map(field)
    };
    if let Some(gate) = args.gate {
        match (pick("reactor", |r| r.agg_mib_s), pick("threads", |r| r.agg_mib_s)) {
            (Some(r), Some(t)) if t > 0.0 => {
                let ratio = r / t;
                if ratio < gate {
                    eprintln!(
                        "gate {gate}: reactor is only {ratio:.2}x the thread-per-connection \
                         baseline at {} clients",
                        args.gate_clients
                    );
                    std::process::exit(1);
                }
                println!("gate {gate}: passed ({ratio:.2}x at {} clients)", args.gate_clients);
            }
            _ => {
                eprintln!("gate {gate}: missing rows at {} clients", args.gate_clients);
                std::process::exit(1);
            }
        }
    }
    // Tail-latency gate: on a single-core runner both daemons saturate the
    // CPU and aggregate MiB/s converge, but the reactor's fixed pool keeps
    // the p99 from ballooning with runnable-thread count — that ratio is
    // the stable, machine-independent signal worth gating.
    if let Some(gate) = args.gate_p99 {
        match (pick("reactor", |r| r.p99_us), pick("threads", |r| r.p99_us)) {
            (Some(r), Some(t)) if r > 0.0 => {
                let ratio = t / r;
                if ratio < gate {
                    eprintln!(
                        "gate-p99 {gate}: reactor p99 is only {ratio:.2}x better than the \
                         thread-per-connection baseline at {} clients",
                        args.gate_clients
                    );
                    std::process::exit(1);
                }
                println!(
                    "gate-p99 {gate}: passed (p99 {ratio:.2}x better at {} clients)",
                    args.gate_clients
                );
            }
            _ => {
                eprintln!("gate-p99 {gate}: missing rows at {} clients", args.gate_clients);
                std::process::exit(1);
            }
        }
    }
}
