//! **Ablation F** (extension): real-socket throughput of the
//! `parafile-net` I/O-node daemons on loopback.
//!
//! Spawns four loopback daemons (the paper's I/O-node count) and sweeps
//! concurrent client sessions — each session is one compute node writing
//! and reading back its full row-block view of an N×N matrix stored as
//! column blocks, the paper's worst-matching layout pair. Reported
//! throughput covers the whole client path: plan compilation already done
//! at view-set time, extremity mapping, gather, framing, socket transfer
//! and daemon-side scatter.
//!
//! ```text
//! cargo run -p pf-bench --release --bin net_throughput [--reps 5] [--sizes 256,512]
//! ```

use arraydist::matrix::MatrixLayout;
use clusterfile::StorageBackend;
use jsonlite::{obj, Json, ToJson};
use parafile::Mapper;
use parafile_net::session::{spawn_loopback, Session};
use pf_bench::{dump_json, TableArgs};
use std::time::Instant;

const IO_NODES: usize = 4;

struct Row {
    size: u64,
    clients: usize,
    reps: usize,
    write_mib_s: f64,
    read_mib_s: f64,
    bytes_per_client: u64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("clients", self.clients),
            ("reps", self.reps),
            ("write_mib_s", self.write_mib_s),
            ("read_mib_s", self.read_mib_s),
            ("bytes_per_client", self.bytes_per_client)
        ]
    }
}

fn main() {
    let args = TableArgs::parse();
    let (_daemons, addrs) =
        spawn_loopback(IO_NODES, StorageBackend::Memory).expect("spawn loopback daemons");
    println!("real-socket throughput, {IO_NODES} loopback daemons (MiB/s)\n");
    println!("{:>5} {:>8} {:>12} {:>12}", "size", "clients", "write", "read");
    let mut rows = Vec::new();
    let mut file = 1u64;
    for &n in &args.sizes {
        let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, IO_NODES as u64);
        let logical = MatrixLayout::RowBlocks.partition(n, n, 1, IO_NODES as u64);
        let file_len = n * n;
        for clients in [1usize, 2, 4] {
            // Each client writes its own file so runs are independent; the
            // per-client payload is its full view of one matrix.
            let bytes_per_client = logical.element_len(0, file_len).expect("view element");
            let mut write_ns = 0u128;
            let mut read_ns = 0u128;
            for _ in 0..args.reps.max(1) {
                // Setup (not timed): files, views, payloads.
                let mut sessions: Vec<(Session, u64, Vec<u8>)> = (0..clients)
                    .map(|c| {
                        let mut s = Session::connect(&addrs);
                        let fid = file;
                        file += 1;
                        s.create_file(fid, physical.clone(), file_len).expect("create");
                        s.set_view(c as u32, fid, &logical, c).expect("view");
                        let m = Mapper::new(&logical, c);
                        let data: Vec<u8> =
                            (0..bytes_per_client).map(|y| (m.unmap(y) % 251) as u8).collect();
                        (s, fid, data)
                    })
                    .collect();
                let start = Instant::now();
                std::thread::scope(|scope| {
                    for (c, (s, fid, data)) in sessions.iter_mut().enumerate() {
                        scope.spawn(move || {
                            let written = s
                                .write(c as u32, *fid, 0, data.len() as u64 - 1, data)
                                .expect("write");
                            assert_eq!(written, data.len() as u64);
                        });
                    }
                });
                write_ns += start.elapsed().as_nanos();
                let start = Instant::now();
                std::thread::scope(|scope| {
                    for (c, (s, fid, data)) in sessions.iter_mut().enumerate() {
                        scope.spawn(move || {
                            let back =
                                s.read(c as u32, *fid, 0, data.len() as u64 - 1).expect("read");
                            assert_eq!(back.len(), data.len());
                        });
                    }
                });
                read_ns += start.elapsed().as_nanos();
            }
            let total = (bytes_per_client * clients as u64 * args.reps.max(1) as u64) as f64;
            let mib = 1024.0 * 1024.0;
            let write_mib_s = total / mib / (write_ns as f64 / 1e9);
            let read_mib_s = total / mib / (read_ns as f64 / 1e9);
            println!("{n:>5} {clients:>8} {write_mib_s:>12.1} {read_mib_s:>12.1}");
            rows.push(Row {
                size: n,
                clients,
                reps: args.reps,
                write_mib_s,
                read_mib_s,
                bytes_per_client,
            });
        }
    }
    let path = dump_json("net_throughput", &rows).expect("persist results");
    println!("\nresults → {}", path.display());
}
