//! **Ablation G** (extension): what fault tolerance costs, and what
//! recovery buys back.
//!
//! Three numbers per matrix size, all over real loopback sockets against
//! one I/O-node daemon:
//!
//! * **journaled vs in-memory write throughput** — the write-ahead intent
//!   journal (Directory backend: append + sync before scatter) against
//!   the journal-free Memory backend, same stamped write stream;
//! * **dedup replay rate** — retried stamped writes answered from the
//!   daemon's dedup window without touching the store;
//! * **crash-recovery latency** — client-observed wall time from issuing
//!   a write that tears the daemon mid-scatter to the retried stamp being
//!   acknowledged `replayed` by the restarted, journal-recovered daemon.
//!
//! ```text
//! cargo run -p pf-bench --release --bin fault_recovery [--reps 5] [--sizes 256,512]
//! ```

use clusterfile::StorageBackend;
use jsonlite::{obj, Json, ToJson};
use parafile_audit::{RawElement, RawFalls, RawPattern};
use parafile_net::server::{serve, DaemonConfig};
use parafile_net::wire::{Reply, Request};
use parafile_net::{FaultPlan, NodeClient};
use pf_bench::{dump_json, TableArgs};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Stamped writes per throughput repetition.
const WRITES: u64 = 16;
/// Replayed writes per replay-rate repetition.
const REPLAYS: u64 = 100;

struct Row {
    size: u64,
    reps: usize,
    journaled_write_mib_s: f64,
    memory_write_mib_s: f64,
    journal_overhead_pct: f64,
    replays_per_s: f64,
    recovery_ms: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("reps", self.reps),
            ("journaled_write_mib_s", self.journaled_write_mib_s),
            ("memory_write_mib_s", self.memory_write_mib_s),
            ("journal_overhead_pct", self.journal_overhead_pct),
            ("replays_per_s", self.replays_per_s),
            ("recovery_ms", self.recovery_ms)
        ]
    }
}

/// A two-element view whose element 0 owns the first half of each period:
/// one full-view write lands as a single `len/2`-byte segment.
fn half_view(file: u64, len: u64) -> Request {
    Request::SetView {
        file,
        compute: 0,
        element: 0,
        view: RawPattern {
            displacement: 0,
            elements: vec![
                RawElement::new(vec![RawFalls::leaf(0, len / 2 - 1, len, 1)]),
                RawElement::new(vec![RawFalls::leaf(len / 2, len - 1, len, 1)]),
            ],
        },
        proj_set: vec![RawFalls::leaf(0, len / 2 - 1, len, 1)],
        proj_period: len,
    }
}

fn stamped(file: u64, seq: u64, payload: Vec<u8>, r_s: u64) -> Request {
    Request::Write { file, compute: 0, l_s: 0, r_s, session: 0xBE7C, seq, payload }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pf_bench_fault_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// `WRITES` stamped half-view writes against a fresh daemon on `backend`;
/// returns total nanoseconds.
fn timed_writes(backend: StorageBackend, len: u64, file: u64) -> u128 {
    let config = DaemonConfig { backend, ..Default::default() };
    let daemon = serve("127.0.0.1:0", config).expect("serve");
    let mut client = NodeClient::new(daemon.addr());
    client.expect_ok(&Request::Open { file, subfile: 0, len, tenant: 0 }).expect("open");
    client.expect_ok(&half_view(file, len)).expect("view");
    let payload: Vec<u8> = (0..len / 2).map(|i| i as u8).collect();
    let start = Instant::now();
    for seq in 1..=WRITES {
        match client.call(&stamped(file, seq, payload.clone(), len - 1)).expect("write") {
            Reply::WriteOk { written, replayed: false } => assert_eq!(written, len / 2),
            other => panic!("expected fresh WriteOk, got {other:?}"),
        }
    }
    start.elapsed().as_nanos()
}

/// One torn-write crash/recovery cycle: returns the client-observed gap
/// from issuing the doomed write to the retried stamp acknowledged
/// `replayed` by the restarted daemon.
fn recovery_cycle(len: u64, file: u64, dir: &std::path::Path) -> Duration {
    let seed = (0u64..10_000)
        .find(|&s| FaultPlan::torn_write(s).torn_write == Some(1))
        .expect("some seed tears the first write");
    let plan = FaultPlan::torn_write(seed);
    let config = DaemonConfig {
        backend: StorageBackend::Directory(dir.to_path_buf()),
        fault: Some(plan.clone()),
        ..Default::default()
    };
    let mut handle = serve("127.0.0.1:0", config).expect("serve");
    let addr = handle.addr().to_string();
    let mut client = NodeClient::new(&addr);
    let open = Request::Open { file, subfile: 0, len, tenant: 0 };
    client.expect_ok(&open).expect("open");
    client.expect_ok(&half_view(file, len)).expect("view");
    let payload = vec![0x5Au8; (len / 2) as usize];
    let write = stamped(file, 1, payload, len - 1);

    let start = Instant::now();
    // The write tears the daemon mid-scatter: no reply, every connection
    // severed. Restart it on the same backend (the supervisor's job),
    // then run the client's recovery path: re-open (journal replay +
    // dedup repopulation), re-ship the view, re-send the same stamp.
    let _ = client.call(&write).expect_err("daemon crashes mid-write");
    handle.wait();
    assert!(handle.fault_killed(), "the injected crash fired");
    let config = DaemonConfig {
        backend: StorageBackend::Directory(dir.to_path_buf()),
        fault: Some(plan.disarmed_crashes()),
        ..Default::default()
    };
    let _restarted = serve(&addr, config).expect("rebind");
    client.expect_ok(&open).expect("re-open");
    client.expect_ok(&half_view(file, len)).expect("re-ship view");
    match client.call(&write).expect("retried write") {
        Reply::WriteOk { replayed: true, .. } => {}
        other => panic!("expected a replayed WriteOk, got {other:?}"),
    }
    start.elapsed()
}

fn main() {
    let args = TableArgs::parse();
    let reps = args.reps.max(1);
    println!("fault-tolerance cost and recovery, 1 loopback daemon\n");
    println!(
        "{:>5} {:>14} {:>12} {:>10} {:>12} {:>12}",
        "size", "journaled", "memory", "overhead", "replays/s", "recovery"
    );
    let mut rows = Vec::new();
    let mut file = 1u64;
    for &n in &args.sizes {
        let len = n * n;
        let mut journal_ns = 0u128;
        let mut memory_ns = 0u128;
        let mut replay_ns = 0u128;
        let mut recovery = Duration::ZERO;
        for _ in 0..reps {
            let dir = scratch_dir(&format!("journal_{n}"));
            journal_ns += timed_writes(StorageBackend::Directory(dir.clone()), len, file);
            let _ = std::fs::remove_dir_all(&dir);
            memory_ns += timed_writes(StorageBackend::Memory, len, file + 1);

            // Replay rate: re-send one already-applied stamp.
            let daemon = serve("127.0.0.1:0", DaemonConfig::default()).expect("serve");
            let mut client = NodeClient::new(daemon.addr());
            client
                .expect_ok(&Request::Open { file: file + 2, subfile: 0, len, tenant: 0 })
                .expect("open");
            client.expect_ok(&half_view(file + 2, len)).expect("view");
            let payload = vec![7u8; (len / 2) as usize];
            let w = stamped(file + 2, 1, payload, len - 1);
            client.call(&w).expect("first application");
            let start = Instant::now();
            for _ in 0..REPLAYS {
                match client.call(&w).expect("replay") {
                    Reply::WriteOk { replayed: true, .. } => {}
                    other => panic!("expected replay, got {other:?}"),
                }
            }
            replay_ns += start.elapsed().as_nanos();

            let dir = scratch_dir(&format!("recovery_{n}"));
            recovery += recovery_cycle(len, file + 3, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            file += 4;
        }
        let mib = 1024.0 * 1024.0;
        let total_bytes = (len / 2 * WRITES * reps as u64) as f64;
        let journaled_write_mib_s = total_bytes / mib / (journal_ns as f64 / 1e9);
        let memory_write_mib_s = total_bytes / mib / (memory_ns as f64 / 1e9);
        let journal_overhead_pct = (memory_write_mib_s / journaled_write_mib_s - 1.0) * 100.0;
        let replays_per_s = (REPLAYS * reps as u64) as f64 / (replay_ns as f64 / 1e9);
        let recovery_ms = recovery.as_secs_f64() * 1e3 / reps as f64;
        println!(
            "{n:>5} {journaled_write_mib_s:>12.1}/s {memory_write_mib_s:>10.1}/s \
             {journal_overhead_pct:>9.1}% {replays_per_s:>12.0} {recovery_ms:>10.1}ms"
        );
        rows.push(Row {
            size: n,
            reps,
            journaled_write_mib_s,
            memory_write_mib_s,
            journal_overhead_pct,
            replays_per_s,
            recovery_ms,
        });
    }
    let path = dump_json("fault_recovery", &rows).expect("persist results");
    println!("\nresults → {}", path.display());
}
