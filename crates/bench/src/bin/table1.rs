//! Regenerates the paper's **Table 1** — write-time breakdown at the compute
//! node — for every matrix size and physical layout, under both write
//! policies, and prints it next to the paper's reference values.
//!
//! ```text
//! cargo run -p pf-bench --release --bin table1 [--reps N] [--sizes 256,512]
//! ```
//!
//! `t_i`, `t_m`, `t_g` are real measured wall-clock of the actual algorithms
//! (today's CPU, so absolute values are far below the paper's 800 MHz
//! numbers; orderings and size-(in)dependence are the reproduction target).
//! `t_w` is simulated on the paper-calibrated hardware models and lands in
//! the paper's magnitude range.

use clusterfile::PaperScenario;
use jsonlite::{obj, Json, ToJson};
use pf_bench::{dump_json, paper_table1_row, ratio, TableArgs};

struct Row {
    size: u64,
    layout: String,
    t_i_us: f64,
    t_m_us: f64,
    t_g_us: f64,
    t_w_bc_us: f64,
    t_w_disk_us: f64,
    paper_t_i_us: f64,
    paper_t_m_us: f64,
    paper_t_g_us: f64,
    paper_t_w_bc_us: f64,
    paper_t_w_disk_us: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        obj![
            ("size", self.size),
            ("layout", self.layout.as_str()),
            ("t_i_us", self.t_i_us),
            ("t_m_us", self.t_m_us),
            ("t_g_us", self.t_g_us),
            ("t_w_bc_us", self.t_w_bc_us),
            ("t_w_disk_us", self.t_w_disk_us),
            ("paper_t_i_us", self.paper_t_i_us),
            ("paper_t_m_us", self.paper_t_m_us),
            ("paper_t_g_us", self.paper_t_g_us),
            ("paper_t_w_bc_us", self.paper_t_w_bc_us),
            ("paper_t_w_disk_us", self.paper_t_w_disk_us)
        ]
    }
}

fn main() {
    let args = TableArgs::parse();
    println!("Table 1: write time breakdown at the compute node (µs)");
    println!("logical distribution: row blocks over 4 compute nodes; 4 I/O nodes");
    println!("t_i/t_m/t_g: real measured; t_w: simulated (paper values in parentheses)\n");
    println!(
        "{:>5} {:>4} {:>4} {:>18} {:>16} {:>18} {:>22} {:>22}",
        "size", "phy", "log", "t_i", "t_m", "t_g", "t_w^bc", "t_w^disk"
    );

    // Scenarios run sequentially on purpose: t_i/t_m/t_g are *real*
    // wall-clock measurements, and concurrent workers would pollute them
    // with scheduler contention. (The all-simulated sweeps, e.g. the
    // two_phase ablation, do parallelize.)
    let mut rows = Vec::new();
    for &size in &args.sizes {
        for layout in pf_bench::paper_layouts() {
            let mut bc = PaperScenario::paper(size, layout, false);
            bc.repetitions = args.reps;
            let bc = bc.run();
            let mut disk = PaperScenario::paper(size, layout, true);
            disk.repetitions = args.reps;
            let disk = disk.run();

            let (p_ti, p_tm, p_tg, p_twbc, p_twd) =
                paper_table1_row(size, layout.label()).unwrap_or((0.0, 0.0, 0.0, 0.0, 0.0));
            println!(
                "{:>5} {:>4} {:>4} {:>9.1} ({:>6.0}) {:>7.2} ({:>4.0}) {:>9.1} ({:>6.0}) {:>12.1} ({:>6.0}) {:>12.1} ({:>6.0})",
                size,
                layout.label(),
                "r",
                bc.t_i_us,
                p_ti,
                bc.t_m_us,
                p_tm,
                bc.t_g_us,
                p_tg,
                bc.t_w_us,
                p_twbc,
                disk.t_w_us,
                p_twd,
            );
            rows.push(Row {
                size,
                layout: layout.label().to_string(),
                t_i_us: bc.t_i_us,
                t_m_us: bc.t_m_us,
                t_g_us: bc.t_g_us,
                t_w_bc_us: bc.t_w_us,
                t_w_disk_us: disk.t_w_us,
                paper_t_i_us: p_ti,
                paper_t_m_us: p_tm,
                paper_t_g_us: p_tg,
                paper_t_w_bc_us: p_twbc,
                paper_t_w_disk_us: p_twd,
            });
        }
        println!();
    }

    // Shape summary: the qualitative claims the reproduction must satisfy.
    let find = |size: u64, l: &str| {
        rows.iter().find(|r| r.size == size && r.layout == l).expect("swept row exists")
    };
    let mut checks: Vec<(String, bool)> = Vec::new();
    for &size in &args.sizes {
        let (c, b, r) = (find(size, "c"), find(size, "b"), find(size, "r"));
        checks.push((
            format!("{size}: t_g ordering c>b>r=0"),
            c.t_g_us > b.t_g_us && b.t_g_us > 0.0 && r.t_g_us == 0.0,
        ));
        checks.push((format!("{size}: t_m zero only for r"), r.t_m_us == 0.0 && c.t_m_us > 0.0));
        checks.push((
            format!("{size}: t_i ordering c>b>r"),
            c.t_i_us > b.t_i_us && b.t_i_us > r.t_i_us,
        ));
        checks.push((
            format!("{size}: t_w^bc ordering c>b>r"),
            c.t_w_bc_us > b.t_w_bc_us && b.t_w_bc_us > r.t_w_bc_us,
        ));
        checks.push((
            format!("{size}: disk > cache for every layout"),
            c.t_w_disk_us > c.t_w_bc_us
                && b.t_w_disk_us > b.t_w_bc_us
                && r.t_w_disk_us > r.t_w_bc_us,
        ));
    }
    println!("shape checks:");
    for (name, ok) in &checks {
        println!("  [{}] {}", if *ok { "ok" } else { "FAIL" }, name);
    }
    if args.sizes.len() >= 2 {
        let lo = find(args.sizes[0], "c").t_i_us;
        let hi = find(*args.sizes.last().expect("size sweep is non-empty"), "c").t_i_us;
        println!(
            "  [{}] t_i roughly size-independent (c: {:.1} → {:.1} µs across the sweep)",
            if ratio(hi, lo) < 8.0 { "ok" } else { "FAIL" },
            lo,
            hi
        );
    }

    match dump_json("table1", &rows) {
        Ok(path) => println!("\nresults written to {}", path.display()),
        Err(e) => eprintln!("could not persist results: {e}"),
    }
}
