//! Shared harness code for regenerating the paper's tables and our
//! ablations: the paper's reference numbers, result records, table
//! formatting and JSON persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arraydist::matrix::MatrixLayout;
use jsonlite::ToJson;
use std::path::PathBuf;

/// The paper's matrix sizes (bytes per side).
pub const PAPER_SIZES: [u64; 4] = [256, 512, 1024, 2048];

/// One reference row of the paper's Table 1 (write-time breakdown at the
/// compute node, µs): `(size, layout, t_i, t_m, t_g, t_w_bc, t_w_disk)`.
pub const PAPER_TABLE1: [(u64, &str, f64, f64, f64, f64, f64); 12] = [
    (256, "c", 1229.0, 9.0, 344.0, 1205.0, 4346.0),
    (256, "b", 514.0, 4.0, 203.0, 831.0, 2191.0),
    (256, "r", 310.0, 0.0, 0.0, 510.0, 1455.0),
    (512, "c", 1096.0, 11.0, 940.0, 2871.0, 7614.0),
    (512, "b", 506.0, 6.0, 568.0, 2294.0, 5900.0),
    (512, "r", 333.0, 0.0, 0.0, 1425.0, 4018.0),
    (1024, "c", 1136.0, 18.0, 2414.0, 9237.0, 22309.0),
    (1024, "b", 518.0, 9.0, 1703.0, 7104.0, 19375.0),
    (1024, "r", 318.0, 0.0, 0.0, 5340.0, 15136.0),
    (2048, "c", 1222.0, 22.0, 6501.0, 30781.0, 80793.0),
    (2048, "b", 503.0, 11.0, 5496.0, 26184.0, 71358.0),
    (2048, "r", 296.0, 0.0, 0.0, 20333.0, 56475.0),
];

/// One reference row of the paper's Table 2 (scatter time at the I/O node,
/// µs): `(size, layout, t_s_bc, t_s_disk)`.
pub const PAPER_TABLE2: [(u64, &str, f64, f64); 12] = [
    (256, "c", 87.0, 2255.0),
    (256, "b", 61.0, 1278.0),
    (256, "r", 45.0, 918.0),
    (512, "c", 292.0, 3593.0),
    (512, "b", 261.0, 3095.0),
    (512, "r", 219.0, 2717.0),
    (1024, "c", 1096.0, 10602.0),
    (1024, "b", 1068.0, 10622.0),
    (1024, "r", 1194.0, 10951.0),
    (2048, "c", 4942.0, 41684.0),
    (2048, "b", 4919.0, 41178.0),
    (2048, "r", 5081.0, 41179.0),
];

/// Looks up a paper Table 1 reference row.
#[must_use]
pub fn paper_table1_row(size: u64, layout: &str) -> Option<(f64, f64, f64, f64, f64)> {
    PAPER_TABLE1
        .iter()
        .find(|(s, l, ..)| *s == size && *l == layout)
        .map(|&(_, _, ti, tm, tg, twbc, twd)| (ti, tm, tg, twbc, twd))
}

/// Looks up a paper Table 2 reference row.
#[must_use]
pub fn paper_table2_row(size: u64, layout: &str) -> Option<(f64, f64)> {
    PAPER_TABLE2
        .iter()
        .find(|(s, l, ..)| *s == size && *l == layout)
        .map(|&(_, _, bc, disk)| (bc, disk))
}

/// The three physical layouts in the paper's table order (`c`, `b`, `r`).
#[must_use]
pub fn paper_layouts() -> [MatrixLayout; 3] {
    MatrixLayout::all()
}

/// Writes a JSON-convertible result set to `bench_results/<name>.json`
/// under the workspace root, creating the directory as needed. Returns the
/// path.
pub fn dump_json<T: ToJson>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().render_pretty())?;
    Ok(path)
}

/// The directory bench results are persisted into.
#[must_use]
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("bench_results");
    p
}

/// Parses `--reps N` / `--sizes a,b,c` style command-line overrides used by
/// the table binaries.
#[derive(Debug, Clone)]
pub struct TableArgs {
    /// Repetitions per configuration.
    pub reps: usize,
    /// Matrix sizes to sweep.
    pub sizes: Vec<u64>,
}

impl TableArgs {
    /// Parses `std::env::args`, defaulting to 5 repetitions over the paper's
    /// sizes.
    #[must_use]
    pub fn parse() -> Self {
        let mut reps = 5usize;
        let mut sizes: Vec<u64> = PAPER_SIZES.to_vec();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--reps" => {
                    reps = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--reps needs a number");
                    i += 2;
                }
                "--sizes" => {
                    sizes = args
                        .get(i + 1)
                        .expect("--sizes needs a list")
                        .split(',')
                        .map(|v| v.parse().expect("size must be a number"))
                        .collect();
                    i += 2;
                }
                other => {
                    eprintln!("unknown argument {other}; supported: --reps N, --sizes a,b,c");
                    std::process::exit(2);
                }
            }
        }
        Self { reps, sizes }
    }
}

/// Relative deviation helper used in table footers: `ours / paper`.
#[must_use]
pub fn ratio(ours: f64, paper: f64) -> f64 {
    if paper == 0.0 {
        if ours == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        ours / paper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_rows_cover_the_sweep() {
        for size in PAPER_SIZES {
            for layout in ["c", "b", "r"] {
                assert!(paper_table1_row(size, layout).is_some());
                assert!(paper_table2_row(size, layout).is_some());
            }
        }
        assert!(paper_table1_row(128, "c").is_none());
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert_eq!(ratio(1.0, 0.0), f64::INFINITY);
        assert!((ratio(2.0, 4.0) - 0.5).abs() < 1e-12);
    }
}
