//! Replica placement, quorum policy, and scrub planning for replicated
//! subfiles.
//!
//! The paper's mapping functions place each subfile on exactly one I/O node;
//! this crate layers an R-way replica map *under* that physical partitioning
//! so a subfile survives the permanent loss of a node. The crate is pure
//! bookkeeping — placement arithmetic, quorum thresholds, dirty-replica
//! tracking, and scrub verdicts — with no I/O, so the daemon, the client
//! session, and the model checker can all share one source of truth.
//!
//! # Placement
//!
//! With `n` I/O nodes and replication factor `r`, replica rank `k` of
//! subfile `s` lives on node `(s + k) % n`. The rotation keeps per-node load
//! balanced (every node hosts exactly one copy of each rank) and guarantees
//! the `r` copies of a subfile land on `r` distinct nodes whenever `r <= n`.
//!
//! # Wire file ids
//!
//! The daemon keys state by `(file id, one subfile)`, so the extra copies a
//! node hosts under replication are opened under a *derived* wire file id:
//! [`copy_file_id`] folds the replica rank into the top byte of the id.
//! Rank 0 keeps the caller's id untouched, which makes `r = 1` bit-for-bit
//! identical to the unreplicated protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;

/// Bit offset of the replica rank inside a derived wire file id.
///
/// Ranks are folded into the top byte, which callers must therefore leave
/// clear in their own file ids when replication is in use (rank 0 — the
/// primary — never modifies the id, so unreplicated files are unaffected).
pub const RANK_ID_SHIFT: u32 = 56;

/// Maximum supported replication factor (the rank must fit the top byte).
pub const MAX_REPLICAS: usize = 255;

/// Derive the wire file id under which replica `rank` of logical file
/// `file` is opened on its host daemon.
///
/// Rank 0 returns `file` unchanged; higher ranks XOR the rank into the top
/// byte so each copy gets a distinct per-daemon identity without changing
/// the wire protocol.
#[must_use]
pub fn copy_file_id(file: u64, rank: usize) -> u64 {
    debug_assert!(rank <= MAX_REPLICAS, "replica rank {rank} exceeds one byte");
    file ^ ((rank as u64) << RANK_ID_SHIFT)
}

/// Write quorum for replication factor `r`: `W = ceil((r + 1) / 2)`.
///
/// A write returns to the caller once `W` replicas acknowledged; the
/// stragglers complete asynchronously and are recorded dirty if they fail.
#[must_use]
pub fn write_quorum(r: usize) -> usize {
    (r + 2) / 2
}

/// Errors from constructing a [`ReplicaMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// The replication factor was zero.
    ZeroReplicas,
    /// More replicas requested than distinct nodes available.
    TooManyReplicas {
        /// Requested replication factor.
        replicas: usize,
        /// Available node count.
        nodes: usize,
    },
    /// The node count was zero.
    NoNodes,
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::ZeroReplicas => write!(f, "replication factor must be at least 1"),
            ReplicaError::TooManyReplicas { replicas, nodes } => {
                write!(f, "replication factor {replicas} exceeds the {nodes} available node(s)")
            }
            ReplicaError::NoNodes => write!(f, "replica map needs at least one node"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Maps each subfile index to its ordered replica set.
///
/// This extends the physical partitioning pattern: the pattern still decides
/// which *subfile* a byte belongs to, and the replica map decides which
/// *nodes* host copies of that subfile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaMap {
    nodes: usize,
    replicas: usize,
}

impl ReplicaMap {
    /// Build a map over `nodes` I/O nodes with `replicas` copies per subfile.
    pub fn new(nodes: usize, replicas: usize) -> Result<Self, ReplicaError> {
        if nodes == 0 {
            return Err(ReplicaError::NoNodes);
        }
        if replicas == 0 {
            return Err(ReplicaError::ZeroReplicas);
        }
        if replicas > nodes || replicas > MAX_REPLICAS {
            return Err(ReplicaError::TooManyReplicas { replicas, nodes });
        }
        Ok(ReplicaMap { nodes, replicas })
    }

    /// The degenerate R = 1 map over `nodes` I/O nodes (at least one):
    /// every subfile lives on exactly its own node, so replication adds
    /// nothing and cannot fail to construct.
    #[must_use]
    pub fn unreplicated(nodes: usize) -> Self {
        ReplicaMap { nodes: nodes.max(1), replicas: 1 }
    }

    /// Number of I/O nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Replication factor R.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Write quorum W for this map.
    #[must_use]
    pub fn write_quorum(&self) -> usize {
        write_quorum(self.replicas)
    }

    /// Node hosting replica `rank` of subfile `subfile`.
    #[must_use]
    pub fn node_for(&self, subfile: usize, rank: usize) -> usize {
        debug_assert!(rank < self.replicas);
        (subfile + rank) % self.nodes
    }

    /// The ordered replica set (node indices) of `subfile`, rank 0 first.
    #[must_use]
    pub fn replica_nodes(&self, subfile: usize) -> Vec<usize> {
        (0..self.replicas).map(|k| self.node_for(subfile, k)).collect()
    }

    /// The rank under which `node` hosts `subfile`, if any.
    #[must_use]
    pub fn rank_on(&self, subfile: usize, node: usize) -> Option<usize> {
        let rank = (node + self.nodes - subfile % self.nodes) % self.nodes;
        (rank < self.replicas).then_some(rank)
    }

    /// All `(rank, subfile)` copies hosted by `node`, for subfile indices in
    /// `0..subfiles`.
    #[must_use]
    pub fn hosted(&self, node: usize, subfiles: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for s in 0..subfiles {
            if let Some(rank) = self.rank_on(s, node) {
                out.push((rank, s));
            }
        }
        out
    }
}

/// A replica copy known (or suspected) to be stale, lost, or corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DirtyReplica {
    /// Logical file id (rank 0 wire id).
    pub file: u64,
    /// Subfile index.
    pub subfile: usize,
    /// Replica rank of the dirty copy.
    pub rank: usize,
    /// Node hosting the dirty copy.
    pub node: usize,
}

/// Deduplicating, ordered set of dirty replicas awaiting repair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    entries: BTreeSet<DirtyReplica>,
}

impl DirtySet {
    /// Empty set.
    #[must_use]
    pub fn new() -> Self {
        DirtySet::default()
    }

    /// Record a dirty replica; returns `true` if it was not already
    /// queued. The bool is informational, as on `BTreeSet::insert` —
    /// call sites that only want the entry queued ignore it.
    // pa:allow(PA044)
    pub fn insert(&mut self, entry: DirtyReplica) -> bool {
        self.entries.insert(entry)
    }

    /// Drop an entry once its replica has been repaired; `true` if it
    /// was present (informational, as on `BTreeSet::remove`).
    // pa:allow(PA044)
    pub fn remove(&mut self, entry: &DirtyReplica) -> bool {
        self.entries.remove(entry)
    }

    /// Number of queued entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate queued entries in deterministic order (`impl Iterator` is
    /// already `#[must_use]`, which also satisfies PA044's intent).
    // pa:allow(PA044)
    pub fn iter(&self) -> impl Iterator<Item = &DirtyReplica> {
        self.entries.iter()
    }

    /// Drain every queued entry.
    #[must_use]
    pub fn drain(&mut self) -> Vec<DirtyReplica> {
        let out: Vec<_> = self.entries.iter().copied().collect();
        self.entries.clear();
        out
    }
}

/// Health of one replica copy as observed by a scrub pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopyHealth {
    /// Copy fetched and self-consistent; carries its content checksum and
    /// length so the scrubber can compare copies.
    Ok {
        /// CRC32C of the copy's full contents.
        crc: u32,
        /// Copy length in bytes.
        len: u64,
    },
    /// The daemon is up but does not know the copy (lost, e.g. replaced
    /// node with an empty disk).
    Missing,
    /// The copy exists but failed its checksum.
    Corrupt,
    /// The daemon could not be reached; no verdict about the copy itself.
    Unreachable,
}

/// Scrub verdict for one subfile's replica set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubVerdict {
    /// Every reachable copy agrees; nothing to do.
    Healthy,
    /// At least one good copy exists; the listed ranks must be re-cloned
    /// from `source_rank`.
    Repair {
        /// Rank of the copy whose contents win (majority checksum, ties
        /// broken toward the lowest rank).
        source_rank: usize,
        /// Ranks that are missing, corrupt, or disagree with the source.
        repair_ranks: Vec<usize>,
        /// Ranks that were unreachable and therefore skipped this pass.
        skipped_ranks: Vec<usize>,
    },
    /// No reachable copy survived — data loss for this subfile.
    Lost,
}

/// Decide what a scrub pass must do for one subfile, given the observed
/// health of each replica copy (indexed by rank).
///
/// The winning content is the checksum held by the most `Ok` copies;
/// ties break toward the lowest rank holding that checksum. Copies that are
/// `Missing`, `Corrupt`, or hold a losing checksum are scheduled for repair.
/// `Unreachable` copies get no verdict — they are skipped and reported so
/// the caller can retry on a later pass.
#[must_use]
pub fn plan_subfile(copies: &[CopyHealth]) -> ScrubVerdict {
    let mut votes: Vec<(u32, u64, usize, usize)> = Vec::new(); // (crc, len, count, first rank)
    for (rank, copy) in copies.iter().enumerate() {
        if let CopyHealth::Ok { crc, len } = copy {
            match votes.iter_mut().find(|v| v.0 == *crc && v.1 == *len) {
                Some(v) => v.2 += 1,
                None => votes.push((*crc, *len, 1, rank)),
            }
        }
    }
    let Some(&(crc, len, _, source_rank)) =
        votes.iter().max_by(|a, b| a.2.cmp(&b.2).then(b.3.cmp(&a.3)))
    else {
        return ScrubVerdict::Lost;
    };
    let mut repair_ranks = Vec::new();
    let mut skipped_ranks = Vec::new();
    for (rank, copy) in copies.iter().enumerate() {
        match copy {
            CopyHealth::Ok { crc: c, len: l } if *c == crc && *l == len => {}
            CopyHealth::Unreachable => skipped_ranks.push(rank),
            _ => repair_ranks.push(rank),
        }
    }
    if repair_ranks.is_empty() {
        ScrubVerdict::Healthy
    } else {
        ScrubVerdict::Repair { source_rank, repair_ranks, skipped_ranks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_thresholds() {
        assert_eq!(write_quorum(1), 1);
        assert_eq!(write_quorum(2), 2);
        assert_eq!(write_quorum(3), 2);
        assert_eq!(write_quorum(4), 3);
        assert_eq!(write_quorum(5), 3);
    }

    #[test]
    fn copy_ids_are_distinct_and_rank0_is_identity() {
        assert_eq!(copy_file_id(7, 0), 7);
        let ids: BTreeSet<u64> = (0..4).map(|k| copy_file_id(7, k)).collect();
        assert_eq!(ids.len(), 4);
        // XOR makes the derivation involutive: re-deriving with the same
        // rank recovers the logical id.
        assert_eq!(copy_file_id(copy_file_id(7, 3), 3), 7);
    }

    #[test]
    fn placement_rotates_and_stays_distinct() {
        let map = ReplicaMap::new(3, 2).unwrap();
        assert_eq!(map.replica_nodes(0), vec![0, 1]);
        assert_eq!(map.replica_nodes(1), vec![1, 2]);
        assert_eq!(map.replica_nodes(2), vec![2, 0]);
        // Every node hosts exactly one copy per rank.
        for node in 0..3 {
            let hosted = map.hosted(node, 3);
            assert_eq!(hosted.len(), 2);
            let ranks: BTreeSet<usize> = hosted.iter().map(|&(r, _)| r).collect();
            assert_eq!(ranks, BTreeSet::from([0, 1]));
        }
    }

    #[test]
    fn rank_on_inverts_node_for() {
        let map = ReplicaMap::new(5, 3).unwrap();
        for s in 0..10 {
            for k in 0..3 {
                let node = map.node_for(s, k);
                assert_eq!(map.rank_on(s, node), Some(k));
            }
        }
        // A node outside the replica set has no rank.
        assert_eq!(map.rank_on(0, 4), None);
    }

    #[test]
    fn construction_is_validated() {
        assert_eq!(ReplicaMap::new(0, 1), Err(ReplicaError::NoNodes));
        assert_eq!(ReplicaMap::new(3, 0), Err(ReplicaError::ZeroReplicas));
        assert_eq!(
            ReplicaMap::new(2, 3),
            Err(ReplicaError::TooManyReplicas { replicas: 3, nodes: 2 })
        );
        assert!(ReplicaMap::new(3, 3).is_ok());
    }

    #[test]
    fn dirty_set_dedups_and_drains_in_order() {
        let mut set = DirtySet::new();
        let a = DirtyReplica { file: 1, subfile: 0, rank: 1, node: 1 };
        let b = DirtyReplica { file: 1, subfile: 2, rank: 0, node: 2 };
        assert!(set.insert(b));
        assert!(set.insert(a));
        assert!(!set.insert(a));
        assert_eq!(set.len(), 2);
        assert_eq!(set.drain(), vec![a, b]);
        assert!(set.is_empty());
    }

    #[test]
    fn scrub_healthy_when_all_copies_agree() {
        let copies =
            vec![CopyHealth::Ok { crc: 0xAB, len: 8 }, CopyHealth::Ok { crc: 0xAB, len: 8 }];
        assert_eq!(plan_subfile(&copies), ScrubVerdict::Healthy);
    }

    #[test]
    fn scrub_repairs_corrupt_missing_and_divergent_copies() {
        let copies = vec![
            CopyHealth::Ok { crc: 0xAB, len: 8 },
            CopyHealth::Corrupt,
            CopyHealth::Missing,
            CopyHealth::Ok { crc: 0xAB, len: 8 },
            CopyHealth::Ok { crc: 0xCD, len: 8 },
        ];
        match plan_subfile(&copies) {
            ScrubVerdict::Repair { source_rank, repair_ranks, skipped_ranks } => {
                assert_eq!(source_rank, 0);
                assert_eq!(repair_ranks, vec![1, 2, 4]);
                assert!(skipped_ranks.is_empty());
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn scrub_majority_wins_and_ties_break_low() {
        // Two copies say 0xCD, one says 0xAB: majority wins even though the
        // minority copy has the lowest rank.
        let copies = vec![
            CopyHealth::Ok { crc: 0xAB, len: 4 },
            CopyHealth::Ok { crc: 0xCD, len: 4 },
            CopyHealth::Ok { crc: 0xCD, len: 4 },
        ];
        match plan_subfile(&copies) {
            ScrubVerdict::Repair { source_rank, repair_ranks, .. } => {
                assert_eq!(source_rank, 1);
                assert_eq!(repair_ranks, vec![0]);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        // 1-vs-1 tie: lowest rank wins.
        let tie = vec![CopyHealth::Ok { crc: 0xAB, len: 4 }, CopyHealth::Ok { crc: 0xCD, len: 4 }];
        match plan_subfile(&tie) {
            ScrubVerdict::Repair { source_rank, repair_ranks, .. } => {
                assert_eq!(source_rank, 0);
                assert_eq!(repair_ranks, vec![1]);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn scrub_skips_unreachable_and_reports_loss() {
        let copies = vec![CopyHealth::Unreachable, CopyHealth::Ok { crc: 1, len: 2 }];
        assert_eq!(
            plan_subfile(&copies),
            ScrubVerdict::Healthy,
            "unreachable copies alone do not force a repair"
        );
        let mixed =
            vec![CopyHealth::Unreachable, CopyHealth::Missing, CopyHealth::Ok { crc: 1, len: 2 }];
        match plan_subfile(&mixed) {
            ScrubVerdict::Repair { source_rank, repair_ranks, skipped_ranks } => {
                assert_eq!(source_rank, 2);
                assert_eq!(repair_ranks, vec![1]);
                assert_eq!(skipped_ranks, vec![0]);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        assert_eq!(
            plan_subfile(&[CopyHealth::Unreachable, CopyHealth::Corrupt]),
            ScrubVerdict::Lost
        );
    }

    #[test]
    fn different_lengths_are_different_contents() {
        let copies = vec![
            CopyHealth::Ok { crc: 0, len: 4 },
            CopyHealth::Ok { crc: 0, len: 8 },
            CopyHealth::Ok { crc: 0, len: 8 },
        ];
        match plan_subfile(&copies) {
            ScrubVerdict::Repair { source_rank, repair_ranks, .. } => {
                assert_eq!(source_rank, 1);
                assert_eq!(repair_ranks, vec![0]);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }
}
