//! Encode→decode identity for every frame type, property-tested.
//!
//! Three layers of guarantees, each over randomly generated frames:
//!
//! * **round-trip identity** — every v4 request and reply payload decodes
//!   back to exactly the value that was encoded, including chunked frames
//!   at boundary data sizes (empty, one byte, around the chunk limit);
//! * **version gating** — additive v2/v3/v4 fields are dropped when
//!   encoding for an older peer and refilled with their documented
//!   defaults when decoding, and v3-only/v4-only opcodes are rejected
//!   outright on older connections;
//! * **truncation rejection** — cutting any encoded payload short never
//!   panics and never decodes back to the original value: fixed-layout
//!   payloads answer a typed `WireError`, trailing-bytes payloads (write
//!   data) decode to a visibly shorter value.

use parafile_audit::{RawElement, RawFalls, RawPattern};
use parafile_net::wire::{op, Reply, Request, StatInfo, WireError};
use parafile_net::{ErrCode, ProtocolError};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies

/// A small raw FALLS tree (validity is irrelevant to the codec: the wire
/// carries *raw* trees and the daemon audits them after decoding).
fn arb_falls() -> impl Strategy<Value = RawFalls> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), 0usize..3).prop_map(
        |(l, r, s, n, kids)| RawFalls {
            l,
            r,
            s,
            n,
            inner: (0..kids as u64).map(|k| RawFalls::leaf(k, k + 1, 4, 1)).collect(),
        },
    )
}

fn arb_pattern() -> impl Strategy<Value = RawPattern> {
    (any::<u64>(), prop::collection::vec(arb_falls(), 0..3)).prop_map(|(displacement, fams)| {
        RawPattern { displacement, elements: vec![RawElement::new(fams)] }
    })
}

/// What a sub-v6 wire preserves of `req`: the tenant id is a v6 additive
/// field, so older encodings drop it to the anonymous tenant.
fn below_v6(req: &Request) -> Request {
    match req {
        Request::Open { file, subfile, len, tenant: _ } => {
            Request::Open { file: *file, subfile: *subfile, len: *len, tenant: 0 }
        }
        other => other.clone(),
    }
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u32>())
            .prop_map(|(file, subfile, len, tenant)| Request::Open { file, subfile, len, tenant }),
        (any::<u64>(), any::<u32>(), any::<u32>(), arb_pattern(), arb_falls(), any::<u64>())
            .prop_map(|(file, compute, element, view, proj, proj_period)| Request::SetView {
                file,
                compute,
                element,
                view,
                proj_set: vec![proj],
                proj_period,
            }),
        arb_write(),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(file, compute, l_s, r_s)| Request::Read { file, compute, l_s, r_s }),
        any::<u64>().prop_map(|file| Request::Flush { file }),
        any::<u64>().prop_map(|file| Request::Stat { file }),
        any::<u64>().prop_map(|file| Request::Fetch { file }),
        Just(Request::Shutdown),
        Just(Request::Ping),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(file, session, seq)| { Request::ResumeQuery { file, session, seq } }),
        arb_write_chunk(0..64),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
            |(file, compute, l_s, r_s, max_chunk)| Request::ReadChunk {
                file,
                compute,
                l_s,
                r_s,
                max_chunk,
            }
        ),
    ]
}

fn arb_write() -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(file, compute, l_s, r_s, session, seq, payload)| Request::Write {
            file,
            compute,
            l_s,
            r_s,
            session,
            seq,
            payload,
        })
}

/// A `WriteChunk` with its data length drawn from `sizes` — reused by the
/// general round-trip (small sizes) and the boundary-size suite.
fn arb_write_chunk(sizes: std::ops::Range<usize>) -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        prop::collection::vec(any::<u8>(), sizes),
    )
        .prop_map(|(file, compute, l_s, r_s, session, seq, offset, last, data)| {
            Request::WriteChunk {
                file,
                compute,
                l_s,
                r_s,
                session,
                seq,
                offset,
                total: offset + data.len() as u64,
                last,
                data,
            }
        })
}

fn arb_err_code() -> impl Strategy<Value = ErrCode> {
    (1u16..=14).prop_filter_map("valid wire id", ErrCode::from_u16)
}

/// The v5 admission-control replies (`Busy` / `Overloaded`).
fn arb_shed_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        any::<u32>().prop_map(|retry_after_ms| Reply::Busy { retry_after_ms }),
        any::<u32>().prop_map(|retry_after_ms| Reply::Overloaded { retry_after_ms }),
    ]
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        Just(Reply::Ok),
        (any::<u64>(), any::<bool>())
            .prop_map(|(written, replayed)| Reply::WriteOk { written, replayed }),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|payload| Reply::Data { payload }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(len, views, requests, bytes_written, bytes_read, fragments, checksum_errors)| {
                    Reply::Stat(StatInfo {
                        len,
                        views,
                        requests,
                        bytes_written,
                        bytes_read,
                        fragments,
                        checksum_errors,
                    })
                }
            ),
        (any::<u64>(), any::<u32>())
            .prop_map(|(epoch, max_chunk)| Reply::Pong { epoch, max_chunk }),
        any::<u64>().prop_map(|offset| Reply::ChunkOk { offset }),
        any::<u64>().prop_map(|offset| Reply::ResumeAt { offset }),
        arb_data_chunk(0..64),
        (arb_err_code(), 0usize..3, prop::collection::vec(any::<u8>(), 0..12)).prop_map(
            |(code, n_pa, msg)| Reply::Error(ProtocolError {
                code,
                pa_codes: (0..n_pa).map(|i| format!("PA{:03}", 20 + i)).collect(),
                message: String::from_utf8_lossy(&msg).into_owned(),
            })
        ),
    ]
}

/// A `DataChunk` with its data length drawn from `sizes`.
fn arb_data_chunk(sizes: std::ops::Range<usize>) -> impl Strategy<Value = Reply> {
    (any::<u64>(), any::<bool>(), prop::collection::vec(any::<u8>(), sizes))
        .prop_map(|(offset, last, data)| Reply::DataChunk { offset, last, data })
}

// ---------------------------------------------------------------------------
// Round-trip identity at v3

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request frame type: encode at v4, decode at v4, get the same
    /// value back (modulo the v6 tenant field, which a sub-v6 wire drops
    /// to the anonymous tenant by design).
    #[test]
    fn request_roundtrip_v4(req in arb_request()) {
        let payload = req.encode_payload_at(4);
        let back = Request::decode_at(4, req.opcode(), &payload);
        prop_assert_eq!(back.as_ref(), Ok(&below_v6(&req)));
    }

    /// Every reply frame type likewise.
    #[test]
    fn reply_roundtrip_v4(reply in arb_reply()) {
        let payload = reply.encode_payload_at(4);
        let back = Reply::decode_at(4, reply.opcode(), &payload);
        prop_assert_eq!(back.as_ref(), Ok(&reply));
    }

    /// Chunked frames at boundary data sizes: empty, single-byte, and
    /// straddling a typical negotiated chunk limit.
    #[test]
    fn chunk_frames_roundtrip_at_boundary_sizes(
        req in arb_write_chunk(0..2),
        big in arb_write_chunk(4095..4098),
        reply in arb_data_chunk(0..2),
        big_reply in arb_data_chunk(4095..4098),
    ) {
        for r in [req, big] {
            let payload = r.encode_payload_at(3);
            prop_assert_eq!(Request::decode_at(3, r.opcode(), &payload), Ok(r));
        }
        for r in [reply, big_reply] {
            let payload = r.encode_payload_at(3);
            prop_assert_eq!(Reply::decode_at(3, r.opcode(), &payload), Ok(r));
        }
    }
}

// ---------------------------------------------------------------------------
// Version gating

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The v2 additive fields of `Write` are dropped for a v1 peer and
    /// refilled with the unstamped sentinel on decode; the payload
    /// survives untouched.
    #[test]
    fn write_gates_its_stamp_below_v2(req in arb_write()) {
        let Request::Write { payload, .. } = &req else { unreachable!() };
        let v1 = req.encode_payload_at(1);
        prop_assert_eq!(v1.len() + 16, req.encode_payload_at(2).len());
        match Request::decode_at(1, op::WRITE, &v1) {
            Ok(Request::Write { session, seq, payload: got, .. }) => {
                prop_assert_eq!((session, seq), (0, 0));
                prop_assert_eq!(&got, payload);
            }
            other => return Err(TestCaseError::fail(format!("decoded {other:?}"))),
        }
    }

    /// `Pong` drops its v3 capability field for a v2 peer (capability
    /// defaults to "no chunking"); `WriteOk` drops its v2 replay flag for
    /// a v1 peer.
    #[test]
    fn replies_gate_additive_fields(epoch in any::<u64>(), max_chunk in 1u32..=u32::MAX, written in any::<u64>()) {
        let pong = Reply::Pong { epoch, max_chunk };
        let v2 = pong.encode_payload_at(2);
        prop_assert_eq!(Reply::decode_at(2, op::R_PONG, &v2), Ok(Reply::Pong { epoch, max_chunk: 0 }));

        let ack = Reply::WriteOk { written, replayed: true };
        let v1 = ack.encode_payload_at(1);
        prop_assert_eq!(v1.len(), 8);
        prop_assert_eq!(
            Reply::decode_at(1, op::R_WRITE_OK, &v1),
            Ok(Reply::WriteOk { written, replayed: false })
        );
    }

    /// v3-only opcodes are rejected on older connections no matter what
    /// bytes follow them.
    #[test]
    fn chunk_opcodes_rejected_below_v3(version in 1u8..=2, bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        for opc in [op::WRITE_CHUNK, op::READ_CHUNK] {
            prop_assert_eq!(
                Request::decode_at(version, opc, &bytes),
                Err(WireError::BadValue("opcode"))
            );
        }
        for opc in [op::R_CHUNK_OK, op::R_DATA_CHUNK] {
            prop_assert_eq!(
                Reply::decode_at(version, opc, &bytes),
                Err(WireError::BadValue("opcode"))
            );
        }
    }

    /// The v4-only resume opcodes are likewise rejected on v1–v3
    /// connections.
    #[test]
    fn resume_opcodes_rejected_below_v4(version in 1u8..=3, bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(
            Request::decode_at(version, op::WRITE_RESUME, &bytes),
            Err(WireError::BadValue("opcode"))
        );
        prop_assert_eq!(
            Reply::decode_at(version, op::R_RESUME, &bytes),
            Err(WireError::BadValue("opcode"))
        );
    }
}

// ---------------------------------------------------------------------------
// v5: the deadline prefix and the shed replies

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// At v5 every request payload leads with a `u32` deadline budget that
    /// round-trips alongside the request; v4 encodes no prefix, so the v5
    /// form is exactly four bytes longer and a v4 decode refills 0.
    #[test]
    fn request_deadline_roundtrips_at_v5(req in arb_request(), deadline in any::<u32>()) {
        let mut v5 = Vec::new();
        req.encode_payload_deadline_into(5, deadline, &mut v5);
        prop_assert_eq!(
            Request::decode_deadline_at(5, req.opcode(), &v5),
            Ok((below_v6(&req), deadline))
        );
        let v4 = req.encode_payload_at(4);
        prop_assert_eq!(v4.len() + 4, v5.len(), "the prefix is exactly one u32");
        prop_assert_eq!(
            Request::decode_deadline_at(4, req.opcode(), &v4),
            Ok((below_v6(&req), 0))
        );
    }

    /// Truncating a v5 payload anywhere — inside the deadline prefix or
    /// inside the body — never panics and never yields the original
    /// `(request, deadline)` pair back.
    #[test]
    fn truncated_v5_requests_never_roundtrip(
        req in arb_request(),
        deadline in any::<u32>(),
        cut_seed in any::<u64>(),
    ) {
        let mut payload = Vec::new();
        req.encode_payload_deadline_into(5, deadline, &mut payload);
        let cut = (cut_seed % payload.len() as u64) as usize;
        if let Ok((shorter, d)) = Request::decode_deadline_at(5, req.opcode(), &payload[..cut]) {
            prop_assert!(shorter != req || d != deadline, "truncation went unnoticed");
        }
    }

    /// `Busy` / `Overloaded` round-trip at v5, reject every truncation of
    /// their fixed four-byte payload, and are refused outright on v1–v4
    /// connections (they are v5-only opcodes).
    #[test]
    fn shed_replies_are_v5_only(reply in arb_shed_reply(), version in 1u8..=4) {
        let payload = reply.encode_payload_at(5);
        prop_assert_eq!(Reply::decode_at(5, reply.opcode(), &payload), Ok(reply.clone()));
        for cut in 0..payload.len() {
            prop_assert!(Reply::decode_at(5, reply.opcode(), &payload[..cut]).is_err());
        }
        prop_assert_eq!(
            Reply::decode_at(version, reply.opcode(), &payload),
            Err(WireError::BadValue("opcode"))
        );
    }
}

// ---------------------------------------------------------------------------
// Truncated buffers

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cutting any request payload short never panics and never yields the
    /// original value back: fixed-layout frames answer a typed error,
    /// trailing-data frames decode to a visibly shorter payload.
    #[test]
    fn truncated_requests_never_roundtrip(req in arb_request(), cut_seed in any::<u64>()) {
        let payload = req.encode_payload_at(4);
        prop_assume!(!payload.is_empty());
        let cut = (cut_seed % payload.len() as u64) as usize;
        if let Ok(shorter) = Request::decode_at(4, req.opcode(), &payload[..cut]) {
            prop_assert_ne!(shorter, req);
        }
    }

    /// The same for replies.
    #[test]
    fn truncated_replies_never_roundtrip(reply in arb_reply(), cut_seed in any::<u64>()) {
        let payload = reply.encode_payload_at(4);
        prop_assume!(!payload.is_empty());
        let cut = (cut_seed % payload.len() as u64) as usize;
        if let Ok(shorter) = Reply::decode_at(4, reply.opcode(), &payload[..cut]) {
            prop_assert_ne!(shorter, reply);
        }
    }
}
