//! Chunk-boundary semantics of the v3 streamed data path: a chunked
//! transfer must be byte-for-byte the same logical operation as its
//! monolithic counterpart, at every awkward boundary the framing can
//! produce — chunk edges that straddle projected segment runs, final
//! chunks cut short at EOF, empty projections, and stamped replays that
//! arrive as a stream instead of one frame.

use parafile::Mapper;

use arraydist::matrix::MatrixLayout;
use parafile_audit::{RawElement, RawFalls, RawPattern};
use parafile_net::server::{serve, DaemonConfig, DaemonHandle};
use parafile_net::session::{BatchWrite, Session};
use parafile_net::wire::{Reply, Request};
use parafile_net::NodeClient;

/// The striped view used throughout: element 0 owns bytes `[0,3]` of
/// every 8-byte period, so transfers scatter/gather across disjoint
/// subfile runs and chunk boundaries land mid-run.
fn striped_view(file: u64) -> Request {
    Request::SetView {
        file,
        compute: 0,
        element: 0,
        view: RawPattern {
            displacement: 0,
            elements: vec![
                RawElement::new(vec![RawFalls::leaf(0, 3, 8, 1)]),
                RawElement::new(vec![RawFalls::leaf(4, 7, 8, 1)]),
            ],
        },
        proj_set: vec![RawFalls::leaf(0, 3, 8, 1)],
        proj_period: 8,
    }
}

fn open_with_view(client: &mut NodeClient, file: u64, len: u64) {
    client.expect_ok(&Request::Open { file, subfile: 0, len, tenant: 0 }).expect("open");
    client.expect_ok(&striped_view(file)).expect("set view");
}

fn write(client: &mut NodeClient, file: u64, r_s: u64, stamp: (u64, u64), payload: &[u8]) -> Reply {
    client
        .call(&Request::Write {
            file,
            compute: 0,
            l_s: 0,
            r_s,
            session: stamp.0,
            seq: stamp.1,
            payload: payload.to_vec(),
        })
        .expect("write")
}

fn read(client: &mut NodeClient, file: u64, l_s: u64, r_s: u64) -> Vec<u8> {
    match client.call(&Request::Read { file, compute: 0, l_s, r_s }).expect("read") {
        Reply::Data { payload } => payload,
        other => panic!("expected Data, got {other:?}"),
    }
}

fn fetch(client: &mut NodeClient, file: u64) -> Vec<u8> {
    match client.call(&Request::Fetch { file }).expect("fetch") {
        Reply::Data { payload } => payload,
        other => panic!("expected Data, got {other:?}"),
    }
}

/// A chunked write (chunk far smaller than the payload, boundaries
/// misaligned with the 4-byte segment runs) lands the same bytes as the
/// monolithic request, and the client's lazy capability probe records
/// the daemon's advertised chunk budget on the way.
#[test]
fn chunked_write_matches_monolithic_byte_for_byte() {
    let daemon = serve("127.0.0.1:0", DaemonConfig::default()).expect("serve");
    let mut chunked = NodeClient::new(daemon.addr()).with_chunk(Some(3));
    let mut mono = NodeClient::new(daemon.addr()).with_chunk(Some(0));

    open_with_view(&mut chunked, 1, 16);
    open_with_view(&mut mono, 2, 16);
    let payload = [0xA0, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7];
    assert_eq!(
        write(&mut chunked, 1, 15, (0, 0), &payload),
        Reply::WriteOk { written: 8, replayed: false }
    );
    assert_eq!(
        write(&mut mono, 2, 15, (0, 0), &payload),
        Reply::WriteOk { written: 8, replayed: false }
    );

    assert_eq!(fetch(&mut mono, 1), fetch(&mut mono, 2), "chunked and monolithic bytes agree");
    assert_eq!(
        chunked.negotiated_version(),
        parafile_net::wire::PROTOCOL_VERSION,
        "fresh daemon speaks the current version"
    );
    assert!(
        chunked.peer_max_chunk().unwrap_or(0) > 0,
        "the probe recorded a non-zero chunk capability"
    );
}

/// A stamped chunked write that repeats is answered from the dedup
/// window exactly like a monolithic replay: only the final chunk carries
/// the stamp, so the stream replays without touching the store.
#[test]
fn chunked_write_replays_from_dedup_window() {
    let daemon = serve("127.0.0.1:0", DaemonConfig::default()).expect("serve");
    let mut client = NodeClient::new(daemon.addr()).with_chunk(Some(3));
    open_with_view(&mut client, 5, 16);

    assert_eq!(
        write(&mut client, 5, 15, (0xC0FE, 9), &[0xAA; 8]),
        Reply::WriteOk { written: 8, replayed: false }
    );
    // Same stamp, different bytes: the stream is acknowledged chunk by
    // chunk but the store keeps the first application.
    assert_eq!(
        write(&mut client, 5, 15, (0xC0FE, 9), &[0xBB; 8]),
        Reply::WriteOk { written: 8, replayed: true }
    );
    let bytes = fetch(&mut client, 5);
    for i in [0usize, 1, 2, 3, 8, 9, 10, 11] {
        assert_eq!(bytes[i], 0xAA, "replay did not overwrite byte {i}");
    }
}

/// A read whose projection is clipped at EOF, with a chunk size that
/// puts the boundary mid-way through the EOF-partial run: the stream
/// ends with a short final chunk and reassembles to exactly the
/// monolithic reply.
#[test]
fn partial_read_at_eof_straddles_chunk_boundary() {
    let daemon = serve("127.0.0.1:0", DaemonConfig::default()).expect("serve");
    // Subfile of 10 bytes under a period-8 stripe: the projection selects
    // {0,1,2,3} and the EOF-clipped {8,9} — six bytes across two runs.
    let mut chunked = NodeClient::new(daemon.addr()).with_chunk(Some(5));
    let mut mono = NodeClient::new(daemon.addr()).with_chunk(Some(0));
    open_with_view(&mut chunked, 7, 10);

    let payload = [1, 2, 3, 4, 5, 6];
    assert_eq!(
        write(&mut chunked, 7, 9, (0, 0), &payload),
        Reply::WriteOk { written: 6, replayed: false }
    );

    // Chunk 5 splits the six bytes 5+1: the first chunk swallows run
    // [0,3] plus the first byte of the EOF-partial run, the final chunk
    // is a single byte.
    let streamed = read(&mut chunked, 7, 0, 9);
    let whole = read(&mut mono, 7, 0, 9);
    assert_eq!(streamed, payload, "streamed read reassembles the written bytes");
    assert_eq!(streamed, whole, "chunked and monolithic reads agree at EOF");

    let sub = fetch(&mut mono, 7);
    assert_eq!(sub, vec![1, 2, 3, 4, 0, 0, 0, 0, 5, 6], "bytes landed on the projected runs");
}

/// Intervals whose projection selects nothing: the chunked read answers
/// a single empty terminal chunk (`Data` with no payload) and an empty
/// write acknowledges zero bytes — identical to the monolithic path.
#[test]
fn empty_projections_stream_as_a_single_terminal_chunk() {
    let daemon = serve("127.0.0.1:0", DaemonConfig::default()).expect("serve");
    let mut chunked = NodeClient::new(daemon.addr()).with_chunk(Some(2));
    let mut mono = NodeClient::new(daemon.addr()).with_chunk(Some(0));
    open_with_view(&mut chunked, 9, 16);

    // [4,7] falls entirely in the other element's half of the period:
    // zero projected bytes at the very start of the would-be stream.
    assert_eq!(read(&mut chunked, 9, 4, 7), Vec::<u8>::new());
    assert_eq!(read(&mut mono, 9, 4, 7), Vec::<u8>::new());
    let empty_write = Request::Write {
        file: 9,
        compute: 0,
        l_s: 4,
        r_s: 7,
        session: 0,
        seq: 0,
        payload: Vec::new(),
    };
    assert_eq!(
        chunked.call(&empty_write).expect("empty write"),
        Reply::WriteOk { written: 0, replayed: false }
    );
    // Reads beyond EOF clip to nothing rather than erroring.
    let past_eof = Request::Read { file: 9, compute: 0, l_s: 20, r_s: 40 };
    assert_eq!(
        chunked.call(&past_eof).expect("chunked read past EOF"),
        mono.call(&past_eof).expect("monolithic read past EOF"),
    );
}

/// The full session data path against daemons whose advertised chunk
/// budget is far below every payload: the matrix-redistribution write
/// (pipelined via `write_batch`) streams every message and the read-back
/// is byte-identical to what was written.
#[test]
fn session_write_batch_streams_against_small_daemon_chunk_cap() {
    let n = 16u64;
    let file_len = n * n;
    let file = 42u64;
    let io_nodes = 4usize;
    let daemons: Vec<DaemonHandle> = (0..io_nodes)
        .map(|_| {
            serve("127.0.0.1:0", DaemonConfig { max_chunk: 5, ..Default::default() })
                .expect("serve")
        })
        .collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr().to_string()).collect();

    let physical = MatrixLayout::ColumnBlocks.partition(n, n, 1, io_nodes as u64);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 4);
    let mut session = Session::connect(&addrs);
    session.create_file(file, physical.clone(), file_len).expect("create");
    for c in 0..4u32 {
        session.set_view(c, file, &logical, c as usize).expect("set view");
    }

    // Every compute's 64-byte message streams as 13 five-byte chunks.
    let len = logical.element_len(0, file_len).unwrap();
    let fills: Vec<Vec<u8>> = (0..4u8).map(|c| vec![0x60 + c; len as usize]).collect();
    for (c, data) in fills.iter().enumerate() {
        let reports = session
            .write_batch(
                c as u32,
                file,
                &[BatchWrite { lo_v: 0, hi_v: len - 1, data: data.as_slice() }],
            )
            .expect("batch write");
        assert!(reports[0].fully_applied(), "compute {c}: {:?}", reports[0].outcomes);
    }
    for (c, data) in fills.iter().enumerate() {
        let back = session.read(c as u32, file, 0, len - 1).expect("read");
        assert_eq!(&back, data, "compute {c} reads back its streamed write");
    }

    // Cross-check one subfile against the mapping functions directly.
    let sub0 = session.subfile(file, 0).expect("fetch subfile 0");
    let pm = Mapper::new(&physical, 0);
    for (s, &b) in sub0.iter().enumerate() {
        let x = pm.unmap(s as u64);
        let owner = (0..4).find(|&c| Mapper::new(&logical, c).map(x).is_some()).unwrap();
        assert_eq!(b, 0x60 + owner as u8, "subfile 0 byte {s} (file offset {x})");
    }
}

/// `ResumeQuery` for a stamp whose final chunk already journaled answers
/// offset 0: the completed write must be retried as a whole (and
/// deduplicated as a replay), never resumed mid-stream past the end.
/// Unstamped queries likewise answer 0.
#[test]
fn resume_query_after_completed_stream_answers_zero() {
    let daemon = serve("127.0.0.1:0", DaemonConfig::default()).expect("serve");
    let mut client = NodeClient::new(daemon.addr()).with_chunk(Some(2));
    open_with_view(&mut client, 3, 16);
    assert_eq!(
        write(&mut client, 3, 15, (7, 4), &[0xD0; 8]),
        Reply::WriteOk { written: 8, replayed: false }
    );
    // The stamp completed: its progress entry is gone and the dedup
    // window holds the full write, so a resume would skip real work.
    assert_eq!(
        client.call(&Request::ResumeQuery { file: 3, session: 7, seq: 4 }).expect("query"),
        Reply::ResumeAt { offset: 0 }
    );
    assert_eq!(
        client.call(&Request::ResumeQuery { file: 3, session: 0, seq: 0 }).expect("query"),
        Reply::ResumeAt { offset: 0 }
    );
}

/// A mid-stream `WriteChunk` is accepted as a resume only when the
/// daemon recorded exactly that much progress for exactly that
/// `(session, seq)`: a stamp with no recorded progress, and a chunk
/// continuing *another* stamp's stream, are both rejected as malformed
/// instead of silently fast-forwarding someone else's bytes.
#[test]
fn mid_stream_chunk_with_mismatched_stamp_is_rejected() {
    use parafile_net::{ErrCode, NetError};
    let daemon = serve("127.0.0.1:0", DaemonConfig::default()).expect("serve");
    // Chunking disabled so raw WriteChunk frames pass through `call`.
    let mut client = NodeClient::new(daemon.addr()).with_chunk(Some(0));
    open_with_view(&mut client, 4, 16);
    let chunk = |session: u64, offset: u64, last: bool| Request::WriteChunk {
        file: 4,
        compute: 0,
        l_s: 0,
        r_s: 15,
        session,
        seq: 1,
        offset,
        total: 8,
        last,
        data: vec![0xEE; 4],
    };
    let expect_malformed = |r: Result<Reply, NetError>, what: &str| match r {
        Err(NetError::Protocol(e)) => assert_eq!(e.code, ErrCode::Malformed, "{what}: {e:?}"),
        other => panic!("{what}: expected Malformed, got {other:?}"),
    };
    // No stream, no recorded progress: a mid-stream first frame for
    // stamp 99 cannot resume anything.
    expect_malformed(client.call(&chunk(99, 4, false)), "unknown stamp");
    // Start a genuine stream for stamp 9, then try to continue it with
    // stamp 88: the daemon has progress for (9,1) only, so (88,1) at the
    // matching offset is still refused.
    assert_eq!(
        client.call(&chunk(9, 0, false)).expect("first chunk"),
        Reply::ChunkOk { offset: 0 }
    );
    expect_malformed(client.call(&chunk(88, 4, false)), "mismatched stamp");
    // The genuine owner finishes its stream unharmed after a reconnect
    // resume from its own recorded progress.
    assert_eq!(
        client.call(&chunk(9, 4, true)).expect("final chunk"),
        Reply::WriteOk { written: 8, replayed: false }
    );
}

/// A daemon capped at protocol v4 makes a v5 client step its ladder down
/// transparently: calls succeed at v4, no deadline prefix or shed reply
/// ever crosses the wire, and a bounded client deadline still works
/// client-side (expiry is enforced locally even when it cannot be
/// propagated).
#[test]
fn v5_client_falls_back_to_a_v4_daemon() {
    use parafile_net::{Deadline, ErrCode, NetError};
    use std::time::Duration;
    let config = DaemonConfig { max_version: 4, ..DaemonConfig::default() };
    let daemon = serve("127.0.0.1:0", config).expect("serve");
    let mut client = NodeClient::new(daemon.addr()).with_chunk(Some(3));
    open_with_view(&mut client, 6, 16);
    let payload = [0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88];
    assert_eq!(
        write(&mut client, 6, 15, (5, 2), &payload),
        Reply::WriteOk { written: 8, replayed: false }
    );
    assert_eq!(client.negotiated_version(), 4, "ladder stepped down to the daemon's cap");
    assert_eq!(read(&mut client, 6, 0, 15), payload, "v4 data path works end to end");
    // A live deadline is harmless at v4 (not propagated, not violated)…
    client.set_deadline(Deadline::within(Duration::from_secs(30)));
    assert_eq!(read(&mut client, 6, 0, 15), payload);
    // …and an expired one still fails fast client-side.
    client.set_deadline(Deadline::within(Duration::ZERO));
    match client.call(&Request::Read { file: 6, compute: 0, l_s: 0, r_s: 15 }) {
        Err(NetError::Protocol(e)) => assert_eq!(e.code, ErrCode::DeadlineExceeded),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

/// A stamped chunked write severed mid-stream by a one-shot connection
/// drop resumes on retry from the last acknowledged chunk (protocol ≥ 4):
/// the client queries the daemon's recorded partial progress with
/// `ResumeQuery` and fast-forwards past the chunks an earlier attempt
/// already applied and journaled — instead of restarting at offset 0.
#[test]
fn interrupted_chunked_write_resumes_from_last_acked_chunk() {
    use parafile_net::fault::FaultPlan;
    // Frames on the faulted connection: 1 Open, 2 SetView, 3 the Ping
    // capability probe, 4.. the chunk stream. Dropping frame 6 lands
    // mid-stream with two 2-byte chunks already applied and acked.
    let fault = FaultPlan { drop_once_after_frames: Some(6), ..FaultPlan::none() };
    let config = DaemonConfig { fault: Some(fault), ..DaemonConfig::default() };
    let daemon = serve("127.0.0.1:0", config).expect("serve");
    let mut client = NodeClient::new(daemon.addr()).with_chunk(Some(2));

    open_with_view(&mut client, 1, 32);
    let payload: Vec<u8> = (0..16u8).map(|i| 0xB0 + i).collect();
    assert_eq!(
        write(&mut client, 1, 31, (9, 1), &payload),
        Reply::WriteOk { written: 16, replayed: false }
    );
    assert!(
        client.last_resume_offset() > 0,
        "the retry resumed mid-stream instead of restarting at offset 0"
    );
    assert_eq!(read(&mut client, 1, 0, 31), payload, "resumed stream lands every byte");
}
