//! Malformed-input hardening: fuzz-style frames — truncated, oversized,
//! garbage — must produce a typed protocol error (or a clean close), never
//! a panic or a hang, and must never poison the daemon for later clients.
//!
//! Two layers are attacked: the pure decoders (no sockets, high case
//! count) and a live daemon over real loopback TCP (lower case count, with
//! client-side read timeouts standing guard against hangs).

use parafile_net::server::{serve, DaemonConfig, DaemonHandle};
use parafile_net::wire::{self, Reply, Request, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use parafile_net::ErrCode;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Layer 1: pure decoders on arbitrary bytes

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes through every opcode's request decoder: `Ok` or a
    /// typed `WireError`, never a panic.
    #[test]
    fn request_decoder_totals(opcode in 0u8..=255, bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Request::decode(opcode, &bytes);
    }

    /// Arbitrary bytes through the reply decoder likewise.
    #[test]
    fn reply_decoder_totals(opcode in 0u8..=255, bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Reply::decode(opcode, &bytes);
    }

    /// Every truncation of a valid `SetView` (the structurally richest
    /// payload: nested FALLS trees inside) decodes to a typed error.
    #[test]
    fn truncated_setview_is_typed(cut_seed in any::<u64>()) {
        let req = sample_setview();
        let payload = req.encode_payload();
        let cut = (cut_seed % payload.len() as u64) as usize;
        prop_assert!(Request::decode(req.opcode(), &payload[..cut]).is_err());
    }

    /// Arbitrary byte streams through the frame reader: a frame, a typed
    /// framing error, or clean close — never a panic, never an
    /// out-of-bounds read.
    #[test]
    fn frame_reader_totals(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut cursor = bytes.as_slice();
        let _ = wire::read_frame(&mut cursor, 1 << 16);
    }
}

fn sample_setview() -> Request {
    use parafile_audit::{RawElement, RawFalls, RawPattern};
    Request::SetView {
        file: 3,
        compute: 1,
        element: 0,
        view: RawPattern {
            displacement: 0,
            elements: vec![
                RawElement::new(vec![RawFalls::leaf(0, 3, 8, 2)]),
                RawElement::new(vec![RawFalls::leaf(4, 7, 8, 2)]),
            ],
        },
        proj_set: vec![RawFalls::nested(0, 7, 16, 1, vec![RawFalls::leaf(0, 1, 4, 2)])],
        proj_period: 16,
    }
}

// ---------------------------------------------------------------------------
// Layer 2: a live daemon under hostile framing

struct Attack {
    handle: DaemonHandle,
}

impl Attack {
    fn new() -> Self {
        let handle = serve("127.0.0.1:0", DaemonConfig::default()).expect("bind loopback");
        Attack { handle }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.handle.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        s
    }

    /// The daemon must still serve a well-formed request on a fresh
    /// connection (i.e. hostile input did not kill or wedge it).
    fn assert_alive(&self) {
        let mut s = self.connect();
        let req = Request::Open { file: 99, subfile: 0, len: 8, tenant: 0 };
        wire::write_frame(&mut s, req.opcode(), 7, &req.encode_payload()).expect("send");
        let frame = wire::read_frame(&mut s, DEFAULT_MAX_FRAME).expect("daemon replies");
        assert_eq!(frame.request_id, 7);
        assert!(matches!(Reply::decode(frame.opcode, &frame.payload), Ok(Reply::Ok)));
    }
}

/// Reads one reply and asserts it is a typed protocol error of `code`.
fn expect_error(s: &mut TcpStream, code: ErrCode) {
    let frame = wire::read_frame(s, DEFAULT_MAX_FRAME).expect("error reply arrives");
    match Reply::decode(frame.opcode, &frame.payload) {
        Ok(Reply::Error(e)) => assert_eq!(e.code, code, "{e}"),
        other => panic!("expected an Error reply, got {other:?}"),
    }
}

#[test]
fn garbage_frames_get_typed_errors_and_daemon_survives() {
    let attack = Attack::new();
    let mut rng = proptest::TestRng::new(0x5EED);
    for _ in 0..64 {
        let mut s = attack.connect();
        // A well-framed request whose body is garbage: random opcode and
        // random payload bytes.
        let opcode = rng.next_u64() as u8;
        let n = (rng.next_u64() % 64) as usize;
        let payload: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        wire::write_frame(&mut s, opcode, 42, &payload).expect("send garbage");
        let frame = wire::read_frame(&mut s, DEFAULT_MAX_FRAME).expect("typed reply, not a hang");
        assert_eq!(frame.request_id, 42, "reply matches the offending request");
        // Any reply is acceptable for a by-chance-valid request; garbage
        // must come back as one of the malformed-class errors.
        if let Reply::Error(e) =
            Reply::decode(frame.opcode, &frame.payload).expect("decodable reply")
        {
            assert!(
                matches!(
                    e.code,
                    ErrCode::UnknownOp
                        | ErrCode::Malformed
                        | ErrCode::UnknownFile
                        | ErrCode::BadRange
                        | ErrCode::NoView
                        | ErrCode::PatternRejected
                ),
                "unexpected error class: {e}"
            );
        }
    }
    attack.assert_alive();
}

#[test]
fn oversized_frame_is_rejected_then_connection_closed() {
    let attack = Attack::new();
    let mut s = attack.connect();
    // Claim a body far over the budget; send nothing else.
    s.write_all(&(DEFAULT_MAX_FRAME + 1).to_le_bytes()).expect("send length");
    expect_error(&mut s, ErrCode::FrameTooLarge);
    // The daemon closes after replying — the stream must reach EOF, not hang.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).expect("clean close"), 0);
    attack.assert_alive();
}

#[test]
fn undersized_frame_is_rejected() {
    let attack = Attack::new();
    let mut s = attack.connect();
    // A length prefix smaller than the fixed header.
    s.write_all(&3u32.to_le_bytes()).expect("send length");
    s.write_all(&[1, 2, 3]).expect("send stub body");
    expect_error(&mut s, ErrCode::Malformed);
    attack.assert_alive();
}

#[test]
fn truncated_frame_then_close_does_not_wedge_the_daemon() {
    let attack = Attack::new();
    for cut in [0usize, 1, 3, 4, 9, 13] {
        let mut s = attack.connect();
        let req = Request::Stat { file: 1 };
        let mut bytes = Vec::new();
        wire::write_frame(&mut bytes, req.opcode(), 1, &req.encode_payload()).expect("encode");
        s.write_all(&bytes[..cut]).expect("send truncated prefix");
        drop(s); // hang up mid-frame
    }
    attack.assert_alive();
}

#[test]
fn wrong_version_gets_typed_error() {
    let attack = Attack::new();
    let mut s = attack.connect();
    let payload = Request::Stat { file: 1 }.encode_payload();
    // Hand-build a frame with a bad version byte.
    let len = 10 + payload.len() as u32;
    s.write_all(&len.to_le_bytes()).expect("len");
    s.write_all(&[PROTOCOL_VERSION + 9, Request::Stat { file: 1 }.opcode()]).expect("header");
    s.write_all(&5u64.to_le_bytes()).expect("id");
    s.write_all(&payload).expect("payload");
    expect_error(&mut s, ErrCode::UnsupportedVersion);
    attack.assert_alive();
}

#[test]
fn malicious_setview_trees_are_rejected_not_recursed() {
    use parafile_audit::RawFalls;
    let attack = Attack::new();
    let mut s = attack.connect();
    // Open a file so SetView reaches the decoder, then send a view whose
    // FALLS tree nests beyond the decoder's depth budget.
    let open = Request::Open { file: 5, subfile: 0, len: 64, tenant: 0 };
    wire::write_frame(&mut s, open.opcode(), 1, &open.encode_payload()).expect("open");
    wire::read_frame(&mut s, DEFAULT_MAX_FRAME).expect("open reply");
    let mut tree = RawFalls::leaf(0, 0, 1, 1);
    for _ in 0..wire::MAX_TREE_DEPTH + 4 {
        tree = RawFalls::nested(0, 0, 1, 1, vec![tree]);
    }
    let mut req = sample_setview();
    if let Request::SetView { file, proj_set, .. } = &mut req {
        *file = 5;
        *proj_set = vec![tree];
    }
    wire::write_frame(&mut s, req.opcode(), 2, &req.encode_payload()).expect("send");
    expect_error(&mut s, ErrCode::Malformed);
    attack.assert_alive();
}
