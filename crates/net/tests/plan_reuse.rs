//! A `Session` must reuse a cached compiled plan across repeated
//! `SetView` calls: the second identical view set is a hit in the
//! process-global plan engine, not a recompilation.
//!
//! This lives in its own integration binary so the global engine's
//! counters are not shared with unrelated tests.

use arraydist::matrix::MatrixLayout;
use clusterfile::StorageBackend;
use parafile::PlanEngine;
use parafile_net::session::{spawn_loopback, Session};

#[test]
fn repeated_set_view_reuses_the_cached_plan() {
    const N: u64 = 16;
    const P: u64 = 4;
    // The paper's matrix scenario: column-block physical layout, row-block
    // logical view, 4 partitions each.
    let physical = MatrixLayout::ColumnBlocks.partition(N, N, 1, P);
    let logical = MatrixLayout::RowBlocks.partition(N, N, 1, P);

    let (mut handles, addrs) =
        spawn_loopback(P as usize, StorageBackend::Memory).expect("spawn loopback daemons");
    let mut session = Session::connect(&addrs);
    session.create_file(7, physical, N * N).expect("create file");

    let before = PlanEngine::global().stats().views;
    session.set_view(0, 7, &logical, 0).expect("first set_view");
    let mid = PlanEngine::global().stats().views;
    assert!(mid.misses > before.misses, "the first set_view compiles the plan (a cache miss)");

    session.set_view(1, 7, &logical, 0).expect("second set_view");
    let after = PlanEngine::global().stats().views;
    assert!(after.hits > mid.hits, "an identical SetView must reuse the cached plan");
    assert_eq!(after.misses, mid.misses, "no recompilation on the second SetView");

    // The cached plan must still be usable end to end.
    session.write(1, 7, 0, 15, &[0xAB; 16]).expect("write through the cached plan");
    let got = session.read(1, 7, 0, 15).expect("read back");
    assert_eq!(got, vec![0xAB; 16]);

    drop(session);
    for h in &mut handles {
        h.stop();
    }
}
