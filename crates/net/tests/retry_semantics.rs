//! Retry-safety semantics at the wire level: stamped writes must be
//! applied exactly once across torn uploads, daemon restarts, and dedup
//! window churn.
//!
//! Three scenarios the fault-tolerance design document calls out by name:
//!
//! * a client connection dying **mid-frame during a `Write` payload
//!   upload** (the daemon sees a torn request and must not apply it; the
//!   client's stamped retry must apply it exactly once);
//! * a daemon **restarting between `set_view` and `read`** (the session
//!   must re-establish the file and view from cached state and the read
//!   must return the pre-restart bytes from the `Directory` backend);
//! * **dedup-window eviction under sequence wraparound** (an evicted
//!   stamp is forgotten and re-applies; a stamp still in the window
//!   replays without touching the store).

use parafile_net::fault::Direction;
use parafile_net::server::{serve, DaemonConfig};
use parafile_net::session::Session;
use parafile_net::wire::{Reply, Request};
use parafile_net::{chaos_proxy, FaultPlan, NodeClient, NodeHealth, TruncateFault};

use arraydist::matrix::MatrixLayout;
use clusterfile::StorageBackend;
use parafile_audit::{RawElement, RawFalls, RawPattern};
use std::path::PathBuf;

/// Subfile length used throughout: two 8-byte tiling periods.
const SUB_LEN: u64 = 16;

/// A strided view: element 0 owns bytes `[0,3]` and `[4,7]` of each
/// 8-byte period — so one full-view write scatters into **two** subfile
/// segments (`[0,3]` and `[8,11]`), which is what makes torn frames and
/// torn writes observable.
fn striped_view(file: u64) -> Request {
    Request::SetView {
        file,
        compute: 0,
        element: 0,
        view: RawPattern {
            displacement: 0,
            elements: vec![
                RawElement::new(vec![RawFalls::leaf(0, 3, 8, 1)]),
                RawElement::new(vec![RawFalls::leaf(4, 7, 8, 1)]),
            ],
        },
        proj_set: vec![RawFalls::leaf(0, 3, 8, 1)],
        proj_period: 8,
    }
}

/// A stamped full-view write: 8 payload bytes of `fill` landing on the
/// two projected segments.
fn stamped_write(file: u64, session: u64, seq: u64, fill: u8) -> Request {
    Request::Write {
        file,
        compute: 0,
        l_s: 0,
        r_s: SUB_LEN - 1,
        session,
        seq,
        payload: vec![fill; 8],
    }
}

/// What the subfile must hold after one full-view write of `fill`.
fn expected_subfile(fill: u8) -> Vec<u8> {
    let mut v = vec![0u8; SUB_LEN as usize];
    for i in [0, 1, 2, 3, 8, 9, 10, 11] {
        v[i] = fill;
    }
    v
}

fn fetch(client: &mut NodeClient, file: u64) -> Vec<u8> {
    match client.call(&Request::Fetch { file }).expect("fetch") {
        Reply::Data { payload } => payload,
        other => panic!("expected Data, got {other:?}"),
    }
}

fn bytes_written(client: &mut NodeClient, file: u64) -> u64 {
    match client.call(&Request::Stat { file }).expect("stat") {
        Reply::Stat(s) => s.bytes_written,
        other => panic!("expected Stat, got {other:?}"),
    }
}

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pf_retry_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The proxy tears the `Write` request frame apart mid-payload — the
/// daemon reads a short frame and must drop it unapplied; the client's
/// transparent retry (same `(session, seq)` stamp, fresh connection)
/// must land the bytes exactly once.
#[test]
fn mid_frame_disconnect_during_write_upload_applies_exactly_once() {
    let file = 1u64;
    let daemon = serve("127.0.0.1:0", DaemonConfig::default()).expect("serve");
    // Frame 3 of the first proxied connection is the Write (after Open and
    // SetView); forward 20 bytes of it — header plus a sliver of payload —
    // then sever.
    let plan = FaultPlan {
        truncate: Some(TruncateFault { frame: 3, keep: 20, dir: Direction::ClientToServer }),
        ..FaultPlan::none()
    };
    let mut proxy = chaos_proxy("127.0.0.1:0", daemon.addr(), plan).expect("proxy");
    let mut client = NodeClient::new(proxy.addr());

    client.expect_ok(&Request::Open { file, subfile: 0, len: SUB_LEN, tenant: 0 }).expect("open");
    client.expect_ok(&striped_view(file)).expect("set view");
    let reply = client.call(&stamped_write(file, 77, 1, 0xAB)).expect("write survives torn frame");
    assert_eq!(
        reply,
        Reply::WriteOk { written: 8, replayed: false },
        "the torn upload was never applied; the retry applied it fresh"
    );

    // Re-sending the same stamp is answered from the dedup window.
    let reply = client.call(&stamped_write(file, 77, 1, 0xCD)).expect("replay");
    assert_eq!(
        reply,
        Reply::WriteOk { written: 8, replayed: true },
        "the stamp is deduplicated, not re-applied"
    );

    // Exactly once, physically: the bytes are the first write's, and the
    // daemon counted them exactly once.
    assert_eq!(fetch(&mut client, file), expected_subfile(0xAB));
    assert_eq!(bytes_written(&mut client, file), 8, "stored bytes counted once");
    proxy.stop();
}

/// The daemon restarts (same address, same `Directory` backend) after the
/// session shipped its view but before it read: the session re-opens the
/// subfile, re-ships the view from cached state, and the read returns the
/// pre-restart bytes. `probe` sees the restart as a changed boot epoch.
#[test]
fn daemon_restart_between_set_view_and_read_recovers() {
    let dir = scratch_dir("restart_read");
    let config =
        || DaemonConfig { backend: StorageBackend::Directory(dir.clone()), ..Default::default() };
    let mut daemon = serve("127.0.0.1:0", config()).expect("serve");
    let addr = daemon.addr().to_string();

    let n = 8u64;
    let file_len = n * n;
    let file = 5u64;
    let physical = MatrixLayout::RowBlocks.partition(n, n, 1, 1);
    let logical = MatrixLayout::RowBlocks.partition(n, n, 1, 2);
    let mut session = Session::connect(std::slice::from_ref(&addr));
    session.create_file(file, physical, file_len).expect("create");
    session.set_view(0, file, &logical, 0).expect("set view");
    let data: Vec<u8> = (0..32).map(|i| 40 + i as u8).collect();
    session.write(0, file, 0, 31, &data).expect("write");
    session.flush(file).expect("flush");

    let health = session.probe();
    let NodeHealth::Alive { epoch: epoch_before } = health[0] else {
        panic!("daemon must answer the first probe, got {health:?}");
    };

    daemon.stop();
    let daemon2 = serve(&addr, config()).expect("rebind on the same address");

    // No manual re-setup: the read hits UnknownFile on the restarted
    // daemon and the session transparently re-establishes and retries.
    let back = session.read(0, file, 0, 31).expect("read after restart");
    assert_eq!(back, data, "pre-restart bytes survive the restart");

    let health = session.probe();
    let NodeHealth::Alive { epoch: epoch_after } = health[0] else {
        panic!("restarted daemon must answer the probe, got {health:?}");
    };
    assert_ne!(epoch_before, epoch_after, "a restart shows as a new boot epoch");

    drop(daemon2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dedup-window churn: stamps inside the window replay without touching
/// the store, evicted stamps are forgotten and re-apply, and unstamped
/// (v1-style, session 0) writes never deduplicate.
#[test]
fn dedup_window_eviction_under_sequence_wraparound() {
    let file = 9u64;
    let session = 3u64;
    let config = DaemonConfig { dedup_window: 2, ..Default::default() };
    let daemon = serve("127.0.0.1:0", config).expect("serve");
    let mut client = NodeClient::new(daemon.addr());
    client.expect_ok(&Request::Open { file, subfile: 0, len: SUB_LEN, tenant: 0 }).expect("open");
    client.expect_ok(&striped_view(file)).expect("set view");

    let call = |client: &mut NodeClient, seq: u64, fill: u8| {
        client.call(&stamped_write(file, session, seq, fill)).expect("write")
    };

    // A client at the top of the sequence space…
    assert_eq!(call(&mut client, u64::MAX - 1, 1), Reply::WriteOk { written: 8, replayed: false });
    // …replays while the stamp is still in the window…
    assert_eq!(call(&mut client, u64::MAX - 1, 2), Reply::WriteOk { written: 8, replayed: true });
    assert_eq!(call(&mut client, u64::MAX, 3), Reply::WriteOk { written: 8, replayed: false });
    // …then wraps around. The new stamp evicts the oldest (MAX-1).
    assert_eq!(call(&mut client, 1, 4), Reply::WriteOk { written: 8, replayed: false });
    // The evicted stamp is forgotten: re-sending it applies fresh instead
    // of answering a stale replay.
    assert_eq!(call(&mut client, u64::MAX - 1, 5), Reply::WriteOk { written: 8, replayed: false });
    assert_eq!(fetch(&mut client, file), expected_subfile(5));
    // A replay never rewrites: the store keeps the latest application.
    assert_eq!(call(&mut client, 1, 6), Reply::WriteOk { written: 8, replayed: true });
    assert_eq!(fetch(&mut client, file), expected_subfile(5));

    // Unstamped writes (session 0 — what a v1 client sends) never enter
    // the window: identical repeats always re-apply.
    let unstamped = |fill: u8| Request::Write {
        file,
        compute: 0,
        l_s: 0,
        r_s: SUB_LEN - 1,
        session: 0,
        seq: 0,
        payload: vec![fill; 8],
    };
    assert_eq!(
        client.call(&unstamped(7)).expect("unstamped"),
        Reply::WriteOk { written: 8, replayed: false }
    );
    assert_eq!(
        client.call(&unstamped(8)).expect("unstamped repeat"),
        Reply::WriteOk { written: 8, replayed: false },
        "unstamped writes are never deduplicated"
    );
    assert_eq!(fetch(&mut client, file), expected_subfile(8));
}

/// Chunked streaming must not change the fault-tolerance story: under
/// every chaos fault family, a chunked write ends in exactly the same
/// subfile bytes as the monolithic write — and both match the fault-free
/// mapping-function oracle.
///
/// One sizing constraint is inherent to streaming and deliberate here:
/// the `drop` and `truncate` families re-fire on **every** connection's
/// Nth frame, so a stream that needs ≥ N frames on one connection can
/// never complete (progress restarts at offset 0 after a reconnect).
/// Seeds for those two families are therefore steered to a frame budget
/// of at least 3 and the chunk size keeps each write to 2 frames; the
/// one-shot crash families (`kill`, `torn`, `flush`) stream 7 chunks per
/// write. Resumable chunk offsets would lift the constraint — that is a
/// ROADMAP follow-up, not something this test hides.
mod chunked_chaos {
    use super::*;
    use parafile::Mapper;
    use parafile_net::server::serve;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::Duration;

    const N: u64 = 8;
    const FILE_LEN: u64 = N * N;
    const FILE: u64 = 4100;

    fn dir_config(dir: &std::path::Path, fault: Option<FaultPlan>, max_chunk: u32) -> DaemonConfig {
        DaemonConfig {
            backend: StorageBackend::Directory(dir.to_path_buf()),
            fault,
            max_chunk,
            ..Default::default()
        }
    }

    /// One I/O node with a restart supervisor: an injected kill/torn
    /// crash is answered by rebinding the same address over the same
    /// directory backend with crash faults disarmed.
    struct ChaosNode {
        addr: String,
        stop: Arc<AtomicBool>,
        supervisor: Option<JoinHandle<()>>,
    }

    impl ChaosNode {
        fn spawn(dir: std::path::PathBuf, plan: FaultPlan, max_chunk: u32) -> Self {
            let handle = serve("127.0.0.1:0", dir_config(&dir, Some(plan.clone()), max_chunk))
                .expect("serve chaos node");
            let addr = handle.addr().to_string();
            let stop = Arc::new(AtomicBool::new(false));
            let supervisor = std::thread::spawn({
                let addr = addr.clone();
                let stop = Arc::clone(&stop);
                move || {
                    let mut handle = handle;
                    loop {
                        handle.wait();
                        if stop.load(Ordering::SeqCst) || !handle.fault_killed() {
                            break;
                        }
                        let disarmed = plan.disarmed_crashes();
                        handle = loop {
                            match serve(&addr, dir_config(&dir, Some(disarmed.clone()), max_chunk))
                            {
                                Ok(h) => break h,
                                Err(_) => std::thread::sleep(Duration::from_millis(5)),
                            }
                        };
                    }
                }
            });
            Self { addr, stop, supervisor: Some(supervisor) }
        }
    }

    impl Drop for ChaosNode {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            let _ = NodeClient::new(&self.addr).call(&Request::Shutdown);
            if let Some(t) = self.supervisor.take() {
                let _ = t.join();
            }
        }
    }

    fn physical() -> parafile::Partition {
        MatrixLayout::RowBlocks.partition(N, N, 1, 1)
    }

    fn logical() -> parafile::Partition {
        MatrixLayout::ColumnBlocks.partition(N, N, 1, 2)
    }

    /// The fault-free oracle, straight from the paper's mapping
    /// functions: view byte `y` lands at `MAP_S(MAP_V⁻¹(y))`.
    fn expected_bytes(data: &[u8]) -> Vec<u8> {
        let physical = physical();
        let logical = logical();
        let vm = Mapper::new(&logical, 0);
        let pm = Mapper::new(&physical, 0);
        let mut out = vec![0u8; FILE_LEN as usize];
        for (y, &b) in data.iter().enumerate() {
            let x = vm.unmap(y as u64);
            let s = pm.map(x).expect("the single subfile holds every file byte");
            out[s as usize] = b;
        }
        out
    }

    /// Expands `(family, seed)` to a plan plus the daemon chunk budget
    /// that keeps the scenario live (see the module comment).
    fn plan_for(family: &str, seed: u64) -> (FaultPlan, u32) {
        match family {
            "drop" => {
                let seed = (seed..)
                    .find(|&s| {
                        matches!(FaultPlan::drop_connection(s).drop_after_frames, Some(n) if n >= 3)
                    })
                    .expect("some seed drops at frame 3 or later");
                (FaultPlan::drop_connection(seed), 17)
            }
            "truncate" => {
                let seed = (seed..)
                    .find(|&s| {
                        matches!(&FaultPlan::truncate_frame(s).truncate, Some(t) if t.frame >= 3)
                    })
                    .expect("some seed truncates frame 3 or later");
                (FaultPlan::truncate_frame(seed), 17)
            }
            "flush" => (FaultPlan::fail_flush(seed), 5),
            "kill" => (FaultPlan::kill_one_node(seed), 5),
            _ => (FaultPlan::torn_write(seed), 5),
        }
    }

    /// Runs the strided write through one chaos node and returns the
    /// final subfile bytes. `max_chunk = 0` forces the monolithic path
    /// (the daemon advertises no chunk capability).
    fn final_subfile(tag: &str, plan: &FaultPlan, max_chunk: u32, data: &[u8]) -> Vec<u8> {
        let dir = scratch_dir(tag);
        let node = ChaosNode::spawn(dir.clone(), plan.clone(), max_chunk);
        let mut session = Session::connect(std::slice::from_ref(&node.addr));
        session.create_file(FILE, physical(), FILE_LEN).expect("create under chaos");
        session.set_view(0, FILE, &logical(), 0).expect("set view under chaos");
        let hi = data.len() as u64 - 1;
        let mut tries = 0;
        loop {
            let report = session.write_report(0, FILE, 0, hi, data).expect("write under chaos");
            if report.fully_applied() {
                break;
            }
            tries += 1;
            assert!(tries < 6, "{tag}: write never fully applied: {:?}", report.outcomes);
            std::thread::sleep(Duration::from_millis(40));
            session.probe();
        }
        session.flush(FILE).expect("flush under chaos");
        let bytes = session.subfile(FILE, 0).expect("fetch subfile");
        drop(node);
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3 })]
        #[test]
        fn chunked_and_monolithic_writes_agree_under_every_fault_family(
            seed in 1u64..5000,
            fill in any::<u8>(),
        ) {
            let data: Vec<u8> = (0..32u8).map(|i| fill.wrapping_add(i)).collect();
            let want = expected_bytes(&data);
            for family in ["drop", "truncate", "flush", "kill", "torn"] {
                let (plan, chunk) = plan_for(family, seed);
                let chunked =
                    final_subfile(&format!("{family}_{seed}_chunked"), &plan, chunk, &data);
                let mono = final_subfile(&format!("{family}_{seed}_mono"), &plan, 0, &data);
                prop_assert_eq!(
                    &chunked, &mono,
                    "family {} seed {}: chunked and monolithic bytes diverge", family, seed
                );
                prop_assert_eq!(
                    &chunked, &want,
                    "family {} seed {}: bytes diverge from the mapping oracle", family, seed
                );
            }
        }
    }
}
