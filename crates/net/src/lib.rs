//! parafile-net — a real networked I/O-node daemon and client library.
//!
//! This crate moves the paper's compute-node / I/O-node split from the
//! discrete-event simulator ([`clustersim`]/[`clusterfile`]) onto real
//! sockets. The division of labor is exactly the paper's:
//!
//! * the **compute node** (client [`Session`]) intersects its view with
//!   every subfile via [`parafile::redist::ViewPlan`], keeps `PROJ_V(V∩S)`
//!   locally and ships `PROJ_S(V∩S)` to the I/O node at view-set time;
//!   at access time it maps the interval extremities, gathers view bytes
//!   into per-node messages and fans them out concurrently;
//! * the **I/O node** (the [`serve`] daemon) stores subfiles behind the
//!   same [`clusterfile::StorageBackend`] the simulator uses, audits every
//!   incoming view pattern with `parafile-audit`, and scatters/gathers
//!   message buffers through the stored projection.
//!
//! The wire protocol ([`wire`]) is length-prefixed binary frames with a
//! versioned header and request ids; redistribution stays segment-granular
//! on the wire. See DESIGN.md §10 for the full specification.

// `deny` rather than `forbid`: the reactor's syscall shim
// (`reactor::sys`) carries the crate's only scoped `#[allow(unsafe_code)]`
// for its FFI readiness calls; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod client;
pub mod error;
pub mod fault;
pub mod mux;
pub mod pool;
pub mod proto;
pub mod reactor;
pub mod resilience;
pub mod server;
pub mod session;
pub mod wire;

pub use backoff::Backoff;
pub use client::NodeClient;
pub use error::{ErrCode, NetError, ProtocolError};
pub use fault::{
    chaos_proxy, ChaosOutcome, ChaosProxyHandle, FaultInjector, FaultPlan, TruncateFault,
};
pub use pool::{evict_idle, pool_stats, MuxHandle};
pub use proto::{ChunkHeader, ChunkPlan, ChunkSender, Negotiation, ProtoViolation, WriteStream};
pub use reactor::{Clock, ManualClock, MonotonicClock, Reactor, TimerId, TimerWheel};
pub use resilience::{
    Admission, BreakerCore, BreakerState, CircuitBreaker, Deadline, LatencyTracker, RetryBudget,
};
pub use server::{serve, DaemonConfig, DaemonHandle, NetListener, DEFAULT_MAX_CHUNK};
pub use session::{
    spawn_loopback, BatchWrite, NodeHealth, RedistReport, ScrubReport, SegmentOutcome, Session,
};
pub use wire::{
    Reply, Request, StatInfo, DEFAULT_MAX_FRAME, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
